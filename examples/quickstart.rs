//! Quickstart: profile the paths of a small hand-built routine.
//!
//! Builds a function with two correlated branches inside a loop, collects
//! the exact path profile, instruments the module with PPP, runs the
//! instrumented code, and prints the measured hot paths — demonstrating
//! that path profiling sees the branch correlation an edge profile
//! cannot.
//!
//! Run with: `cargo run --example quickstart`

use ppp::core::{instrument_module, measured_paths, normalize_module, ProfilerConfig};
use ppp::ir::{BinOp, FuncId, FunctionBuilder, Module};
use ppp::vm::{run, RunOptions};

fn main() {
    // fn work(n): loop n times; each iteration draws a scenario bit and
    // takes *both* branches the same way (perfect correlation).
    let mut b = FunctionBuilder::new("main", 0);
    let n = b.constant(1000);
    let i = b.copy(n);
    let (hdr, body, l1, r1, mid, l2, r2, latch, exit) = (
        b.new_block(),
        b.new_block(),
        b.new_block(),
        b.new_block(),
        b.new_block(),
        b.new_block(),
        b.new_block(),
        b.new_block(),
        b.new_block(),
    );
    b.jump(hdr);
    b.switch_to(hdr);
    b.branch(i, body, exit);
    b.switch_to(body);
    let two = b.constant(2);
    let s = b.rand(two); // hidden scenario bit
    b.branch(s, l1, r1);
    b.switch_to(l1);
    b.jump(mid);
    b.switch_to(r1);
    b.jump(mid);
    b.switch_to(mid);
    b.branch(s, l2, r2); // same bit: perfectly correlated
    b.switch_to(l2);
    b.jump(latch);
    b.switch_to(r2);
    b.jump(latch);
    b.switch_to(latch);
    let one = b.constant(1);
    b.binary_to(i, BinOp::Sub, i, one);
    b.jump(hdr);
    b.switch_to(exit);
    b.ret(None);

    let mut module = Module::new();
    module.add_function(b.finish());
    normalize_module(&mut module);

    // 1. A traced run gives the edge profile (what a dynamic optimizer
    //    already has) and the exact path profile (our ground truth).
    let traced = run(&module, "main", &RunOptions::default().traced()).expect("runs");
    let edges = traced.edge_profile.expect("traced");
    let truth = traced.path_profile.expect("traced");
    println!(
        "ground truth: {} dynamic paths, {} distinct",
        truth.total_unit_flow(),
        truth.distinct_paths()
    );

    // 2. Instrument with PPP and run the instrumented module.
    let plan = instrument_module(&module, Some(&edges), &ProfilerConfig::ppp());
    let result = run(&plan.module, "main", &RunOptions::default()).expect("instrumented runs");
    assert_eq!(
        result.checksum, traced.checksum,
        "instrumentation is transparent"
    );
    println!(
        "PPP overhead: {:+.1}% ({} instrumentation ops executed)",
        100.0 * result.overhead_vs(traced.cost).expect("live baseline"),
        result.prof_steps
    );

    // 3. Decode the counters back to concrete paths.
    let measured = measured_paths(&plan, &module, &result.store);
    let mut paths: Vec<_> = measured.func(FuncId(0)).paths.iter().collect();
    paths.sort_by_key(|(_, s)| std::cmp::Reverse(s.freq));
    println!("\nhottest measured paths:");
    for (key, stats) in paths.iter().take(4) {
        let blocks: Vec<String> = key
            .blocks(module.function(FuncId(0)))
            .iter()
            .map(|b| b.to_string())
            .collect();
        println!(
            "  {:>6}x  ({} branches)  {}",
            stats.freq,
            stats.branches,
            blocks.join(" -> ")
        );
    }
    println!(
        "\nOnly the two correlated paths (both-left, both-right) are hot — an \
         edge profile\nwould rate all four branch combinations equally."
    );
}
