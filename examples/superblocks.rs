//! A downstream client: superblock selection from a path profile.
//!
//! The paper motivates path profiles with path-based optimizations such
//! as superblock formation (§1). This example uses PPP's measured paths
//! to pick *superblocks* — straight-line block sequences along hot paths
//! — and compares how much dynamic flow they cover when chosen from
//! (a) PPP's path profile versus (b) greedy edge-following on the edge
//! profile, on a workload with correlated branches. The path profile wins
//! because hot paths are not simply chains of hottest edges.
//!
//! Run with: `cargo run --release --example superblocks`

use ppp::core::{
    actual_hot_paths, instrument_module, measured_paths, normalize_module, FlowMetric,
    ProfilerConfig,
};
use ppp::ir::{BlockId, FuncId};
use ppp::vm::{run, RunOptions};
use ppp::workloads::{generate, BenchmarkSpec};

fn main() {
    let mut spec = BenchmarkSpec::named("superblock-demo");
    spec.correlation = 0.85; // strongly correlated branches
    spec.bias = 0.55; // nearly unbiased edges: edge profiles look flat
    spec.outer_iters = 1500;
    let mut module = generate(&spec);
    normalize_module(&mut module);

    let traced = run(&module, "main", &RunOptions::default().traced()).expect("runs");
    let edges = traced.edge_profile.expect("traced");
    let truth = traced.path_profile.expect("traced");

    // Instrument with PPP and measure.
    let plan = instrument_module(&module, Some(&edges), &ProfilerConfig::ppp());
    let result = run(&plan.module, "main", &RunOptions::default()).expect("runs");
    let measured = measured_paths(&plan, &module, &result.store);

    // (a) Superblocks from the measured path profile: the top paths.
    let mut by_flow: Vec<(FuncId, Vec<BlockId>, u64)> = measured
        .iter()
        .map(|(f, k, s)| (f, k.blocks(module.function(f)), s.branch_flow()))
        .collect();
    by_flow.sort_by_key(|t| std::cmp::Reverse(t.2));
    let k = 10;
    let path_blocks: Vec<(FuncId, Vec<BlockId>)> = by_flow
        .iter()
        .take(k)
        .map(|(f, bs, _)| (*f, bs.clone()))
        .collect();

    // (b) Superblocks by greedy edge-following: from each hot seed block,
    // repeatedly take the hottest outgoing edge.
    let mut greedy_blocks: Vec<(FuncId, Vec<BlockId>)> = Vec::new();
    for (f, path, _) in by_flow.iter().take(k) {
        let fid = *f;
        let func = module.function(fid);
        let prof = edges.func(fid);
        let mut cur = path[0]; // same seed as the path-profile superblock
        let mut blocks = vec![cur];
        for _ in 0..path.len().saturating_sub(1) {
            let term = &func.block(cur).term;
            let mut best: Option<(u64, BlockId)> = None;
            for s in 0..term.successor_count() {
                let e = ppp::ir::EdgeRef::new(cur, s);
                let freq = prof.edge(e);
                if best.is_none_or(|(bf, _)| freq > bf) {
                    best = Some((freq, term.successor(s).unwrap()));
                }
            }
            let Some((_, nxt)) = best else { break };
            cur = nxt;
            blocks.push(cur);
        }
        greedy_blocks.push((fid, blocks));
    }

    // Score: how much actual hot-path flow does each selection cover?
    // A superblock "covers" a path when the path's blocks are a prefix of
    // the superblock (the path executes entirely inside it).
    let hot = actual_hot_paths(&truth, FlowMetric::Branch, 0.00125);
    let total: u64 = hot.iter().map(|h| h.flow).sum();
    let covered = |selection: &[(FuncId, Vec<BlockId>)]| -> u64 {
        hot.iter()
            .filter(|h| {
                let blocks = h.key.blocks(module.function(h.func));
                selection
                    .iter()
                    .any(|(f, sb)| *f == h.func && sb.starts_with(&blocks))
            })
            .map(|h| h.flow)
            .sum()
    };
    let from_paths = covered(&path_blocks);
    let from_edges = covered(&greedy_blocks);

    println!(
        "hot paths: {} carrying {} branch-flow units",
        hot.len(),
        total
    );
    println!(
        "top-{k} superblocks from the PATH profile cover {:.1}% of hot flow",
        100.0 * from_paths as f64 / total as f64
    );
    println!(
        "top-{k} superblocks from greedy EDGE following cover {:.1}% of hot flow",
        100.0 * from_edges as f64 / total as f64
    );
    assert!(
        from_paths >= from_edges,
        "path-guided selection should never lose to greedy edges here"
    );
    println!(
        "\nWith correlated, weakly-biased branches the hottest *edges* chain into\n\
         paths that rarely execute as a whole — the situation Ball et al. call\n\
         unpredictable — while the path profile names the real traces."
    );
}
