//! Sampling versus cheaper instrumentation (§2).
//!
//! Prior work lowered path-profiling overhead by running instrumented
//! code only part of the time (code sampling / bursty tracing). The paper
//! argues PPP is *orthogonal*: it makes the instrumentation itself cheap,
//! collects every path, and its overhead is "comparable to that of code
//! sampling frameworks alone".
//!
//! This example sweeps the sampling rate for PP-with-sampling and puts
//! always-on PPP on the same axis: overhead vs. fraction of dynamic paths
//! actually observed.
//!
//! Run with: `cargo run --release --example sampling_tradeoff`

use ppp::core::{
    accuracy, instrument_module, measured_paths, normalize_module, profiler_estimate,
    sampled_module, EstimateOptions, EstimatedPath, EstimatedProfile, FlowMetric, ProfilerConfig,
};
use ppp::vm::{run, RunOptions};
use ppp::workloads::{generate, BenchmarkSpec};

fn main() {
    let mut spec = BenchmarkSpec::named("sampling-demo");
    // A suite-like personality: biased branches and hot loops give both
    // TPP-style pruning and loop disconnection something to work with.
    spec.bias = 0.85;
    spec.correlation = 0.65;
    spec.avg_trip = 7; // below the disconnection threshold: loops stay profiled
    spec.counted_loop_prob = 0.4;
    spec.loop_prob = 0.3;
    // A short profiling window: the regime where sampling's "extends the
    // time it takes to collect a given number of samples" (§2) bites.
    spec.outer_iters = 250;
    let mut module = generate(&spec);
    normalize_module(&mut module);
    let traced = run(&module, "main", &RunOptions::default().traced()).expect("runs");
    let baseline = traced.cost;
    let edges = traced.edge_profile.expect("traced");
    let truth = traced.path_profile.expect("traced");
    let total_paths = truth.total_unit_flow();

    println!(
        "{:24} {:>9} {:>16} {:>9}",
        "configuration", "overhead", "paths observed", "accuracy"
    );
    let pp = instrument_module(&module, Some(&edges), &ProfilerConfig::pp());
    let report = |label: &str, cost: u64, observed: u64, acc: f64| {
        println!(
            "{:24} {:>+8.1}% {:>15.1}% {:>8.1}%",
            label,
            100.0 * (cost as f64 / baseline as f64 - 1.0),
            100.0 * observed as f64 / total_paths as f64,
            100.0 * acc
        );
    };
    // A sampled profile's estimate is just its (rescaled) counts; scaling
    // does not change the ranking accuracy is computed from.
    let counts_accuracy = |measured: &ppp::ir::ModulePathProfile| {
        let est = EstimatedProfile {
            funcs: measured
                .funcs
                .iter()
                .map(|fp| {
                    fp.paths
                        .iter()
                        .map(|(k, s)| {
                            (
                                k.clone(),
                                EstimatedPath {
                                    freq: s.freq,
                                    branches: s.branches,
                                    measured: true,
                                },
                            )
                        })
                        .collect()
                })
                .collect(),
        };
        accuracy(&truth, &est, FlowMetric::Branch, 0.00125)
    };

    let full = run(&pp.module, "main", &RunOptions::default()).expect("runs");
    let m_full = measured_paths(&pp, &module, &full.store);
    report(
        "PP always-on",
        full.cost,
        m_full.total_unit_flow(),
        counts_accuracy(&m_full),
    );
    for rate in [5, 10, 25, 100] {
        let sampled = sampled_module(&pp, &module, rate);
        let r = run(&sampled, "main", &RunOptions::default()).expect("runs");
        let m = measured_paths(&pp, &module, &r.store);
        report(
            &format!("PP sampled 1/{rate}"),
            r.cost,
            m.total_unit_flow(),
            counts_accuracy(&m),
        );
    }

    let ppp = instrument_module(&module, Some(&edges), &ProfilerConfig::ppp());
    let r = run(&ppp.module, "main", &RunOptions::default()).expect("runs");
    let m = measured_paths(&ppp, &module, &r.store);
    let est = profiler_estimate(
        &module,
        &ppp,
        &edges,
        &r.store,
        FlowMetric::Branch,
        &EstimateOptions::default(),
    );
    report(
        "PPP always-on",
        r.cost,
        m.total_unit_flow(),
        accuracy(&truth, &est, FlowMetric::Branch, 0.00125),
    );

    println!(
        "\nSampling rides a single curve: less overhead means fewer samples and a\n\
         noisier ranking. PPP sits at sampling-class overhead (the paper's §2\n\
         claim) while its unmeasured remainder is *estimated* from the edge\n\
         profile rather than lost — and the approaches compose: PPP's cheap\n\
         instrumentation can itself be sampled."
    );
}
