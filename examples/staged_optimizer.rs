//! The whole product: a self-hosted staged dynamic optimizer cycle.
//!
//! No oracle profiles anywhere — every profile is collected by
//! instrumentation this library inserted:
//!
//! 1. **stage 0**: instrument all edges, run, decode an edge profile,
//!    persist it to text (what a profile file on disk would hold);
//! 2. **stage 1**: reload the edge profile, inline + unroll + scalar-opt
//!    the program (the paper's §7.3 staging), re-collect edges on the
//!    optimized code;
//! 3. **stage 2**: PPP-instrument the optimized code guided by that
//!    profile, run, decode the hot paths a path-based optimizer would
//!    consume (§1's superblock/hyperblock clients).
//!
//! Run with: `cargo run --release --example staged_optimizer`

use ppp::core::{
    edge_instrument, instrument_module, measured_paths, normalize_module, ProfilerConfig,
};
use ppp::ir::{read_edge_profile, write_edge_profile, Module, ModuleEdgeProfile};
use ppp::opt::{inline_module, optimize_module, unroll_module, InlineOptions, UnrollOptions};
use ppp::vm::{run, RunOptions};
use ppp::workloads::{generate, BenchmarkSpec};

fn collect_edges(module: &Module) -> (ModuleEdgeProfile, u64, u64) {
    let instr = edge_instrument(module);
    let r = run(&instr.module, "main", &RunOptions::default()).expect("runs");
    let base = run(module, "main", &RunOptions::default()).expect("runs");
    (instr.decode(module, &r.store), r.cost, base.cost)
}

fn main() {
    let mut spec = BenchmarkSpec::named("staged-demo");
    spec.bias = 0.88; // SPEC-like: most branches are predictable
    spec.avg_trip = 14;
    spec.counted_loop_prob = 0.6;
    let mut module = generate(&spec);
    normalize_module(&mut module);

    // Stage 0: collect and persist an edge profile.
    let (edges0, cost_instr, cost_base) = collect_edges(&module);
    let profile_file = write_edge_profile(&module, &edges0);
    println!(
        "stage 0: edge-instrumented run (+{:.1}% overhead), profile persisted ({} bytes)",
        100.0 * (cost_instr as f64 / cost_base as f64 - 1.0),
        profile_file.len()
    );

    // Stage 1: reload and optimize.
    let edges0 = read_edge_profile(&module, &profile_file).expect("profile reloads");
    let inline = inline_module(&mut module, &edges0, &InlineOptions::default());
    let (edges1, _, _) = collect_edges(&module);
    let unroll = unroll_module(&mut module, &edges1, &UnrollOptions::default());
    optimize_module(&mut module);
    normalize_module(&mut module);
    println!(
        "stage 1: inlined {:.0}% of dynamic calls, avg unroll {:.2}",
        100.0 * inline.dynamic_fraction(),
        unroll.dynamic_avg_factor()
    );

    // Stage 2: path-profile the optimized code with PPP.
    let (edges2, _, base2) = collect_edges(&module);
    let plan = instrument_module(&module, Some(&edges2), &ProfilerConfig::ppp());
    let r = run(&plan.module, "main", &RunOptions::default()).expect("runs");
    let measured = measured_paths(&plan, &module, &r.store);
    let mut hot: Vec<_> = measured
        .iter()
        .map(|(f, k, s)| (f, k.clone(), s.branch_flow()))
        .collect();
    hot.sort_by_key(|t| std::cmp::Reverse(t.2));
    println!(
        "stage 2: PPP path profiling at +{:.1}% overhead, {} paths measured",
        100.0 * r.overhead_vs(base2).expect("live baseline"),
        measured.distinct_paths()
    );
    println!("\nhottest paths for the optimizer:");
    for (f, key, flow) in hot.iter().take(5) {
        let func = module.function(*f);
        println!(
            "  {:12} {} blocks starting at {}, branch flow {}",
            func.name,
            key.blocks(func).len(),
            key.start,
            flow
        );
    }
    println!(
        "\nEvery profile above came from inserted instrumentation — the full\n\
         staged-compilation loop the paper targets, with path profiling cheap\n\
         enough to leave on (§9)."
    );
}
