//! Compare PP, TPP, and PPP on one generated benchmark.
//!
//! Generates a SPEC2000-style workload, optimizes it (inline + unroll, as
//! the paper's methodology prescribes), then instruments with each
//! profiler and reports overhead, accuracy, coverage, and the fraction of
//! dynamic paths instrumented.
//!
//! Run with: `cargo run --release --example compare_profilers [benchmark]`

use ppp::repro::{run_benchmark, PipelineOptions};
use ppp::workloads::spec2000_suite;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "vpr".to_owned());
    let suite = spec2000_suite();
    let entry = suite
        .iter()
        .find(|e| e.spec.name == name)
        .unwrap_or_else(|| {
            eprintln!(
                "unknown benchmark {name:?}; pick one of: {}",
                suite
                    .iter()
                    .map(|e| e.spec.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        });

    let options = PipelineOptions {
        scale: 0.3,
        ..PipelineOptions::default()
    };
    eprintln!("running {name} (scale {})...", options.scale);
    let run = run_benchmark(entry, &options).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    println!(
        "{name}: {} dynamic paths ({} distinct), {:.2} branches and {:.1} \
         instructions per path",
        run.opt.dynamic_paths, run.opt.distinct_paths, run.opt.avg_branches, run.opt.avg_insts
    );
    println!(
        "inlined {:.0}% of dynamic calls; average unroll factor {:.2}\n",
        100.0 * run.inline.dynamic_fraction(),
        run.unroll.dynamic_avg_factor()
    );
    println!(
        "{:8} {:>9} {:>9} {:>9} {:>11} {:>7}",
        "profiler", "overhead", "accuracy", "coverage", "instrumented", "hashed"
    );
    println!(
        "{:8} {:>9} {:>8.1}% {:>8.1}% {:>11} {:>7}",
        "edge",
        "~0%",
        100.0 * run.edge.accuracy,
        100.0 * run.edge.coverage,
        "none",
        "-"
    );
    for p in &run.profilers {
        println!(
            "{:8} {:>+8.1}% {:>8.1}% {:>8.1}% {:>10.1}% {:>6.1}%",
            p.label,
            100.0 * p.overhead,
            100.0 * p.accuracy,
            100.0 * p.coverage,
            100.0 * p.fraction.measured,
            100.0 * p.fraction.hashed,
        );
    }
    println!(
        "\npaper's headline (Figure 12): PP 31% overhead, TPP 12%, PPP 5% — with \
         PPP keeping\naccuracy within 1% of TPP (Figure 9)."
    );
}
