//! Dynamo's NET predictor versus a real path profile (§2).
//!
//! Dynamo selects hot traces with *Next Executing Tail*: once a trace
//! head becomes hot, the very next path to execute there is chosen — one
//! trace per head, no counting. The paper argues NET "cannot distinguish
//! between the cases of a few dominant hot paths and many warm paths",
//! while PPP sees all of them (§2).
//!
//! This example builds both cases and measures how much hot flow each
//! approach identifies:
//!
//! - **dominant**: strongly biased branches — one path per head carries
//!   most flow. NET does fine.
//! - **warm**: near-uniform scenario-driven paths — each head spreads its
//!   flow over several warm paths. NET's one-per-head selection collapses.
//!
//! Run with: `cargo run --release --example net_vs_ppp`

use ppp::core::{
    accuracy, instrument_module, net_hot_flow_coverage, normalize_module, profiler_estimate,
    EstimateOptions, FlowMetric, NetConfig, NetPredictor, ProfilerConfig,
};
use ppp::vm::{run, RunOptions};
use ppp::workloads::{generate, BenchmarkSpec};

fn scenario(name: &str, correlation: f64, bias: f64) -> (f64, f64) {
    // Identical program structure for both scenarios (fixed seed): only
    // the branch-behaviour knobs differ.
    let mut spec = BenchmarkSpec::named("net-demo");
    spec.name = name.to_owned();
    spec.correlation = correlation;
    spec.bias = bias;
    spec.scenario_ways = 64;
    spec.outer_iters = 4000;
    let mut module = generate(&spec);
    normalize_module(&mut module);

    // One traced run with the ordered path stream.
    let traced = run(
        &module,
        "main",
        &RunOptions::default().traced_with_sequence(),
    )
    .expect("runs");
    let truth = traced.path_profile.clone().expect("traced");
    let edges = traced.edge_profile.clone().expect("traced");

    // NET consumes the stream online.
    let mut net = NetPredictor::new(NetConfig { hot_threshold: 10 });
    net.observe_stream(&traced.path_sequence);
    let net_cov = net_hot_flow_coverage(&net, &truth, FlowMetric::Branch, 0.00125);

    // PPP profiles, then its estimate is scored the usual way (§6.1).
    let plan = instrument_module(&module, Some(&edges), &ProfilerConfig::ppp());
    let r = run(&plan.module, "main", &RunOptions::default()).expect("runs");
    let est = profiler_estimate(
        &module,
        &plan,
        &edges,
        &r.store,
        FlowMetric::Branch,
        &EstimateOptions::default(),
    );
    let ppp_acc = accuracy(&truth, &est, FlowMetric::Branch, 0.00125);
    (net_cov, ppp_acc)
}

fn main() {
    println!(
        "{:12} {:>14} {:>14}",
        "scenario", "NET coverage", "PPP accuracy"
    );
    let (net_dom, ppp_dom) = scenario("net-dominant", 0.0, 0.97);
    println!(
        "{:12} {:>13.1}% {:>13.1}%   (one dominant path per head)",
        "dominant",
        100.0 * net_dom,
        100.0 * ppp_dom
    );
    let (net_warm, ppp_warm) = scenario("net-warm", 1.0, 0.55);
    println!(
        "{:12} {:>13.1}% {:>13.1}%   (many warm paths per head)",
        "warm",
        100.0 * net_warm,
        100.0 * ppp_warm
    );
    assert!(
        ppp_warm > net_warm,
        "PPP must beat NET in the warm-path regime"
    );
    assert!(
        net_dom > net_warm,
        "NET should degrade when flow spreads over warm paths"
    );
    println!(
        "\nNET keeps up when one path dominates each head, but in the warm regime it\n\
         commits to a single (possibly unlucky) tail per head — Dynamo's bail-out\n\
         scenario — while PPP's counters rank every warm path (§2)."
    );
}
