//! The paper's Figure 8 worked example: estimating path flow from an edge
//! profile alone.
//!
//! Builds the routine from Figure 8 with its published edge frequencies,
//! computes definite and potential flow (appendix Figs. 14–15), and
//! reconstructs the hot paths (Fig. 16) — printing the exact numbers the
//! paper derives in §5.2: definite flows 60/20/0/0 and 50% edge-profile
//! coverage.
//!
//! Run with: `cargo run --example flow_estimation`

use ppp::core::{definite_flow, potential_flow, reconstruct, Dag, FlowKind, FlowMetric};
use ppp::ir::{BlockId, EdgeRef, FuncEdgeProfile, FunctionBuilder, Reg};

fn main() {
    // Figure 8: A -> B(50) | C(30); B,C -> D; D -> E(60) | F(20); E,F -> G.
    let mut b = FunctionBuilder::new("fig8", 1);
    let a = b.new_block();
    let bb = b.new_block();
    let cc = b.new_block();
    let dd = b.new_block();
    let ee = b.new_block();
    let ff = b.new_block();
    let gg = b.new_block();
    b.jump(a);
    b.switch_to(a);
    b.branch(Reg(0), bb, cc);
    b.switch_to(bb);
    b.jump(dd);
    b.switch_to(cc);
    b.jump(dd);
    b.switch_to(dd);
    b.branch(Reg(0), ee, ff);
    b.switch_to(ee);
    b.jump(gg);
    b.switch_to(ff);
    b.jump(gg);
    b.switch_to(gg);
    b.ret(None);
    let f = b.finish();

    let mut profile = FuncEdgeProfile::zeroed(&f);
    profile.set_entries(80);
    let e = |from: u32, s: usize| EdgeRef::new(BlockId(from), s);
    for (edge, freq) in [
        (e(0, 0), 80),
        (e(1, 0), 50), // A -> B
        (e(1, 1), 30), // A -> C
        (e(2, 0), 50),
        (e(3, 0), 30),
        (e(4, 0), 60), // D -> E
        (e(4, 1), 20), // D -> F
        (e(5, 0), 60),
        (e(6, 0), 20),
    ] {
        profile.set_edge(edge, freq);
    }

    let dag = Dag::build(&f, Some(&profile));
    println!(
        "total branch flow (sum of branch-edge frequencies): {}",
        dag.total_branch_flow()
    );

    let name = |blk: BlockId| ["entry", "A", "B", "C", "D", "E", "F", "G"][blk.index()];
    let render = |dag: &Dag, edges: &[ppp::core::DagEdgeId]| -> String {
        let mut blocks = vec![name(dag.entry).to_owned()];
        for &id in edges {
            blocks.push(name(dag.edge(id).to).to_owned());
        }
        blocks.join("")
    };

    let df = definite_flow(&dag);
    println!("\ndefinite flow (minimum flow the edge profile guarantees):");
    let mut total_df = 0;
    for p in reconstruct(&dag, &df, FlowKind::Definite, FlowMetric::Branch, 0, 100) {
        let flow = p.flow(FlowMetric::Branch);
        total_df += flow;
        println!(
            "  path {:10}  freq >= {:2}, {} branches  -> flow {}",
            render(&dag, &p.edges),
            p.freq,
            p.branches,
            flow
        );
    }
    println!(
        "  routine definite flow {total_df} / actual 160 = coverage {:.0}%  (paper: 50%)",
        100.0 * total_df as f64 / 160.0
    );

    let pf = potential_flow(&dag);
    println!("\npotential flow (the most the edge profile allows each path):");
    for p in reconstruct(&dag, &pf, FlowKind::Potential, FlowMetric::Branch, 0, 100) {
        println!(
            "  path {:10}  freq <= {:2}  -> flow {}",
            render(&dag, &p.edges),
            p.freq,
            p.flow(FlowMetric::Branch)
        );
    }
    println!(
        "\nThe edge profile can only *guarantee* half the flow (ABDEG and ACDEG); the\n\
         other half could belong to any of the four paths — which is why dynamic\n\
         optimizers that rely on edge profiles mispredict hot paths (§8.1)."
    );
}
