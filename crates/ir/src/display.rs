//! Textual printing of modules and functions.
//!
//! The format round-trips through [`crate::parse::parse_module`]. Example:
//!
//! ```text
//! func @abs(params=1, regs=3) {
//! b0:
//!   r1 = const 0
//!   r2 = lt r0, r1
//!   br r2, b1, b2
//! b1:
//!   r2 = neg r0
//!   ret r2
//! b2:
//!   ret r0
//! }
//! ```

use crate::function::Function;
use crate::inst::{Inst, Terminator};
use crate::module::{Module, TableKind};
use std::fmt::{self, Write as _};

/// Renders a whole module, including table declarations, in parseable form.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for (i, t) in m.tables.iter().enumerate() {
        let fname = &m.function(t.func).name;
        match t.kind {
            TableKind::Array { size } => {
                let _ = writeln!(
                    out,
                    "table t{i} func=@{fname} array[{size}] hot={}",
                    t.hot_paths
                );
            }
            TableKind::Hash { slots, max_probes } => {
                let _ = writeln!(
                    out,
                    "table t{i} func=@{fname} hash[{slots}x{max_probes}] hot={}",
                    t.hot_paths
                );
            }
        }
    }
    for (i, f) in m.functions.iter().enumerate() {
        if i > 0 || !m.tables.is_empty() {
            out.push('\n');
        }
        print_function_into(&mut out, f, Some(m));
    }
    out
}

/// Renders one function. Callee names resolve through `module` when given;
/// otherwise calls print as `@f{index}`.
pub fn print_function(f: &Function, module: Option<&Module>) -> String {
    let mut out = String::new();
    print_function_into(&mut out, f, module);
    out
}

fn callee_name(module: Option<&Module>, id: crate::ids::FuncId) -> String {
    match module {
        Some(m) if id.index() < m.functions.len() => format!("@{}", m.function(id).name),
        _ => format!("@f{}", id.0),
    }
}

fn print_function_into(out: &mut String, f: &Function, module: Option<&Module>) {
    let _ = writeln!(
        out,
        "func @{}(params={}, regs={}) {{",
        f.name, f.param_count, f.reg_count
    );
    for (id, b) in f.iter_blocks() {
        let entry_mark = if id == f.entry && id.index() != 0 {
            "  ; entry"
        } else {
            ""
        };
        let _ = writeln!(out, "{id}:{entry_mark}");
        for inst in &b.insts {
            let _ = writeln!(out, "  {}", InstDisplay { inst, module });
        }
        let _ = writeln!(out, "  {}", TermDisplay { term: &b.term });
    }
    out.push_str("}\n");
}

struct InstDisplay<'a> {
    inst: &'a Inst,
    module: Option<&'a Module>,
}

impl fmt::Display for InstDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inst {
            Inst::Const { dst, value } => write!(f, "{dst} = const {value}"),
            Inst::Copy { dst, src } => write!(f, "{dst} = copy {src}"),
            Inst::Unary { dst, op, src } => write!(f, "{dst} = {} {src}", op.mnemonic()),
            Inst::Binary { dst, op, lhs, rhs } => {
                write!(f, "{dst} = {} {lhs}, {rhs}", op.mnemonic())
            }
            Inst::Load { dst, addr } => write!(f, "{dst} = load {addr}"),
            Inst::Store { addr, src } => write!(f, "store {addr}, {src}"),
            Inst::Rand { dst, bound } => write!(f, "{dst} = rand {bound}"),
            Inst::Call { dst, callee, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                write!(f, "call {}(", callee_name(self.module, *callee))?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Inst::Emit { src } => write!(f, "emit {src}"),
            Inst::Prof(op) => write!(f, "{op}"),
        }
    }
}

struct TermDisplay<'a> {
    term: &'a Terminator,
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.term {
            Terminator::Jump { target } => write!(f, "jmp {target}"),
            Terminator::Branch {
                cond,
                then_target,
                else_target,
            } => write!(f, "br {cond}, {then_target}, {else_target}"),
            Terminator::Switch {
                disc,
                targets,
                default,
            } => {
                write!(f, "switch {disc}, [")?;
                for (i, t) in targets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "], {default}")
            }
            Terminator::Return { value } => match value {
                Some(v) => write!(f, "ret {v}"),
                None => write!(f, "ret"),
            },
        }
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&print_module(self))
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&print_function(self, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;
    use crate::ids::{FuncId, Reg, TableId};
    use crate::inst::{BinOp, ProfOp, UnOp};
    use crate::module::{TableDecl, TableKind};

    fn sample_module() -> Module {
        let mut m = Module::new();
        let mut g = FunctionBuilder::new("g", 1);
        let p = g.param(0);
        g.ret(Some(p));
        let gid = m.add_function(g.finish());

        let mut b = FunctionBuilder::new("main", 0);
        let c = b.constant(5);
        let n = b.unary(UnOp::Neg, c);
        let s = b.binary(BinOp::Add, c, n);
        let r = b.rand(c);
        let v = b.call(gid, vec![s]);
        b.call_void(gid, vec![r]);
        b.store(c, v);
        let l = b.load(c);
        b.emit(l);
        let (t1, t2) = (b.new_block(), b.new_block());
        b.branch(l, t1, t2);
        b.switch_to(t1);
        b.switch(l, vec![t2], t2);
        b.switch_to(t2);
        b.ret(None);
        m.add_function(b.finish());

        m.add_table(TableDecl {
            func: gid,
            kind: TableKind::Array { size: 12 },
            hot_paths: 4,
        });
        m.add_table(TableDecl {
            func: gid,
            kind: TableKind::Hash {
                slots: 701,
                max_probes: 3,
            },
            hot_paths: 5000,
        });
        m
    }

    #[test]
    fn module_prints_tables_and_functions() {
        let text = print_module(&sample_module());
        assert!(text.contains("table t0 func=@g array[12] hot=4"));
        assert!(text.contains("table t1 func=@g hash[701x3] hot=5000"));
        assert!(text.contains("func @g(params=1, regs=1) {"));
        assert!(text.contains("r4 = call @g(r2)"));
        assert!(text.contains("call @g(r3)"));
        assert!(text.contains("switch r5, [b2], b2"));
        assert!(text.contains("br r5, b1, b2"));
    }

    #[test]
    fn prof_ops_print() {
        let mut m = sample_module();
        let t = TableId(0);
        m.function_mut(FuncId(0)).blocks[0]
            .insts
            .push(Inst::Prof(ProfOp::CountRPlus {
                table: t,
                addend: 3,
            }));
        let text = print_module(&m);
        assert!(text.contains("prof count t0[r + 3]"));
    }

    #[test]
    fn standalone_function_prints_index_callees() {
        let m = sample_module();
        let text = print_function(m.function(FuncId(1)), None);
        assert!(text.contains("call @f0(r2)"));
    }

    #[test]
    fn display_impls_delegate() {
        let m = sample_module();
        assert_eq!(m.to_string(), print_module(&m));
        let f = m.function(FuncId(0));
        assert_eq!(f.to_string(), print_function(f, None));
    }

    #[test]
    fn ret_with_and_without_value() {
        let m = sample_module();
        let text = print_module(&m);
        assert!(text.contains("  ret r0\n"));
        assert!(text.contains("  ret\n"));
    }

    #[test]
    fn reg_display_in_store() {
        let m = sample_module();
        let text = print_module(&m);
        assert!(text.contains("store r0, r4"));
        let _ = Reg(0); // silence unused import in some cfgs
    }
}
