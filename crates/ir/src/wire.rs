//! Length-prefixed binary wire framing for streamed profile deltas.
//!
//! The aggregation tier (`ppp-agg`) receives profile deltas from many
//! concurrent VM workers — over in-process channels or a localhost TCP
//! socket. Either way the bytes cross a trust boundary: a frame can be
//! cut short by a dying worker, damaged in a buffer, or interleaved with
//! garbage. The frame format therefore carries the same integrity
//! armour as the persisted v2 profile container ([`crate::PROFILE_MAGIC`]), which is
//! exactly what frame payloads hold:
//!
//! ```text
//! +------+------+----------------+----------------+-- - - - --+
//! | PPAG | kind | payload len LE | payload CRC-32 |  payload  |
//! | 4 B  | 1 B  |     4 B        |      4 B       |  len B    |
//! +------+------+----------------+----------------+-- - - - --+
//! ```
//!
//! - **magic** `PPAG` re-synchronizes nothing on purpose: a stream whose
//!   framing is lost cannot be trusted past the damage, so decoding
//!   stops with a typed error (mirroring the v2 container's policy that
//!   a broken section header ends salvage);
//! - **kind** selects the payload grammar ([`FrameKind`]);
//! - **len** is a little-endian `u32`, bounded by
//!   [`MAX_FRAME_PAYLOAD`] so a flipped length byte cannot drive an
//!   allocation of gigabytes;
//! - **crc** is the CRC-32 ([`crate::crc32`]) of the payload
//!   bytes — a flipped payload byte rejects the *frame*, not the stream.
//!
//! [`FrameKind::EdgeDelta`] and [`FrameKind::PathDelta`] payloads are
//! whole v2 profile containers (see [`crate::write_edge_profile_v2`]) holding the
//! *delta* counts accumulated since the worker's previous flush; the
//! aggregator merges them with saturating adds, which are commutative
//! and associative, so any arrival order yields byte-identical merged
//! profiles.
//!
//! # Sequenced frames and idempotent retry
//!
//! [`FrameKind::SeqEdgeDelta`] / [`FrameKind::SeqPathDelta`] carry the
//! same containers behind a 16-byte prefix ([`SEQ_HEADER_LEN`]):
//!
//! ```text
//! | client id u64 LE | sequence u64 LE | v2 container ... |
//! ```
//!
//! Sequence numbers are per-client and strictly monotonic starting at
//! one. The aggregator keeps a watermark per client and drops any frame
//! whose sequence is at or below it, so a client that retries after an
//! ambiguous failure (crashed server, dead socket) can resend its whole
//! unacked window without ever double-counting a delta. The server
//! reports its watermark back in [`FrameKind::Ack`] frames (same
//! 16-byte payload, container empty); [`FrameKind::Reject`] carries a
//! `class\ndetail` text payload and is the never-silent refusal — an
//! overloaded or timed-out server says so before closing, it never
//! just hangs.

use crate::persist_v2::crc32;
use std::fmt;

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"PPAG";

/// Fixed size of the frame header (magic + kind + len + crc).
pub const FRAME_HEADER_LEN: usize = 13;

/// Upper bound on a frame payload; larger lengths are rejected as
/// damage before any allocation happens.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// What a frame carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameKind {
    /// Session opener: a text payload identifying the worker and the
    /// benchmark/module the following deltas belong to.
    Hello = 1,
    /// An edge-profile delta: a v2 `edge` container of counts
    /// accumulated since the previous flush.
    EdgeDelta = 2,
    /// A path-profile delta: a v2 `path` container.
    PathDelta = 3,
    /// Orderly end of stream; the receiver acknowledges after merging
    /// everything that came before.
    Done = 4,
    /// An edge-profile delta with a `(client, seq)` prefix
    /// ([`SEQ_HEADER_LEN`]); duplicates (seq at or below the client's
    /// watermark) are dropped, making retry idempotent.
    SeqEdgeDelta = 5,
    /// A path-profile delta with a `(client, seq)` prefix.
    SeqPathDelta = 6,
    /// Server → client: the acked sequence watermark for a client
    /// (`(client, watermark)` prefix, empty container). Sent after
    /// `Hello` (resume point) and after `Done` (final receipt).
    Ack = 7,
    /// Server → client: a typed, never-silent refusal. Payload is
    /// `class\ndetail` text (e.g. `overloaded`, `timed-out`); the
    /// connection closes right after.
    Reject = 8,
    /// Client → server: live-introspection request (empty payload).
    /// Answering never disturbs ingestion — the server reads nothing
    /// but its own counters.
    StatsRequest = 9,
    /// Server → client: the stats snapshot, a `ppp-stats/v1` JSON text
    /// payload (uptime, frames, per-shard queue depths, watermarks,
    /// metrics registry).
    StatsResponse = 10,
}

impl FrameKind {
    /// All frame kinds.
    pub const ALL: [FrameKind; 10] = [
        FrameKind::Hello,
        FrameKind::EdgeDelta,
        FrameKind::PathDelta,
        FrameKind::Done,
        FrameKind::SeqEdgeDelta,
        FrameKind::SeqPathDelta,
        FrameKind::Ack,
        FrameKind::Reject,
        FrameKind::StatsRequest,
        FrameKind::StatsResponse,
    ];

    /// Stable machine-readable name (metric labels, reports).
    pub fn name(self) -> &'static str {
        match self {
            FrameKind::Hello => "hello",
            FrameKind::EdgeDelta => "edge-delta",
            FrameKind::PathDelta => "path-delta",
            FrameKind::Done => "done",
            FrameKind::SeqEdgeDelta => "seq-edge-delta",
            FrameKind::SeqPathDelta => "seq-path-delta",
            FrameKind::Ack => "ack",
            FrameKind::Reject => "reject",
            FrameKind::StatsRequest => "stats-request",
            FrameKind::StatsResponse => "stats-response",
        }
    }

    /// Parses a kind byte.
    pub fn from_byte(b: u8) -> Option<FrameKind> {
        FrameKind::ALL.into_iter().find(|k| *k as u8 == b)
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One decoded frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// Payload grammar selector.
    pub kind: FrameKind,
    /// Raw payload bytes (CRC already verified by the decoder).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame.
    pub fn new(kind: FrameKind, payload: Vec<u8>) -> Self {
        Self { kind, payload }
    }

    /// Encodes the frame into its wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        encode_frame(self.kind, &self.payload)
    }
}

/// Typed wire-decoding failures. Decoding never panics, whatever the
/// input bytes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The next four bytes are not [`FRAME_MAGIC`].
    BadMagic,
    /// The kind byte names no [`FrameKind`].
    UnknownKind(u8),
    /// The declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversize {
        /// Declared payload length.
        declared: usize,
    },
    /// The stream ends before the header or the declared payload.
    Truncated {
        /// Bytes the frame needs.
        expected: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The payload does not hash to the header's CRC-32.
    ChecksumMismatch {
        /// CRC the header promised.
        expected: u32,
        /// CRC of the bytes present.
        actual: u32,
    },
    /// The peer stopped sending mid-frame and the read deadline fired
    /// (slowloris). Raised by transports with `set_read_timeout`, not
    /// by the in-memory decoders.
    TimedOut,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "not a PPAG frame (bad magic)"),
            WireError::UnknownKind(b) => write!(f, "unknown frame kind {b:#04x}"),
            WireError::Oversize { declared } => {
                write!(
                    f,
                    "frame declares {declared} payload bytes (limit {MAX_FRAME_PAYLOAD})"
                )
            }
            WireError::Truncated {
                expected,
                available,
            } => {
                write!(
                    f,
                    "truncated frame: {expected} bytes expected, {available} remain"
                )
            }
            WireError::ChecksumMismatch { expected, actual } => write!(
                f,
                "frame checksum mismatch (recorded {expected:08x}, computed {actual:08x})"
            ),
            WireError::TimedOut => write!(f, "read timed out mid-frame (stalled peer)"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// Stable machine-readable class name (used as a metric label).
    pub fn class(&self) -> &'static str {
        match self {
            WireError::BadMagic => "bad-magic",
            WireError::UnknownKind(_) => "unknown-kind",
            WireError::Oversize { .. } => "oversize",
            WireError::Truncated { .. } => "truncated",
            WireError::ChecksumMismatch { .. } => "checksum",
            WireError::TimedOut => "timed-out",
        }
    }
}

/// Fixed size of the `(client, seq)` prefix on sequenced payloads.
pub const SEQ_HEADER_LEN: usize = 16;

/// Builds a sequenced payload: `client` + `seq` (both `u64` LE)
/// followed by `container` (a v2 profile container, or empty for
/// [`FrameKind::Ack`]).
pub fn encode_seq_payload(client: u64, seq: u64, container: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEQ_HEADER_LEN + container.len());
    out.extend_from_slice(&client.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(container);
    out
}

/// Splits a sequenced payload into `(client, seq, container)`.
///
/// # Errors
///
/// A payload shorter than [`SEQ_HEADER_LEN`] is typed truncation.
pub fn split_seq_payload(payload: &[u8]) -> Result<(u64, u64, &[u8]), WireError> {
    if payload.len() < SEQ_HEADER_LEN {
        return Err(WireError::Truncated {
            expected: SEQ_HEADER_LEN,
            available: payload.len(),
        });
    }
    let client = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    let seq = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
    Ok((client, seq, &payload[SEQ_HEADER_LEN..]))
}

/// Magic bytes opening an optional trace-context block.
pub const TRACE_CONTEXT_MAGIC: [u8; 4] = *b"TCX1";

/// Fixed size of an encoded trace-context block (magic + trace id +
/// parent span id + flags).
pub const TRACE_CONTEXT_LEN: usize = 21;

/// Cross-process trace context carried in sequenced delta frames.
///
/// When present, the block sits between the 16-byte `(client, seq)`
/// prefix and the v2 profile container:
///
/// ```text
/// | TCX1 | trace id u64 LE | parent span u64 LE | flags u8 |
/// ```
///
/// `trace_id` names one logical client→server trace; `parent_span` is
/// the sender's span id, so the receiver's apply span can attach under
/// it when the two observation sinks are stitched into one tree. The
/// block is *optional* and self-describing: a v2 profile container
/// starts with the `ppp-profile` text magic and an `Ack` container is
/// empty, so neither can alias [`TRACE_CONTEXT_MAGIC`] — frames written
/// by older clients decode exactly as before.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceContext {
    /// Trace identifier shared by every span of one distributed trace.
    pub trace_id: u64,
    /// Span id of the sending side's in-flight span.
    pub parent_span: u64,
    /// Bit 0: sampled (the receiver should open a span).
    pub flags: u8,
}

impl TraceContext {
    /// Flag bit marking the trace as sampled.
    pub const FLAG_SAMPLED: u8 = 1;

    /// Builds a sampled context.
    pub fn sampled(trace_id: u64, parent_span: u64) -> Self {
        Self {
            trace_id,
            parent_span,
            flags: Self::FLAG_SAMPLED,
        }
    }

    /// `true` when the sampled flag is set.
    pub fn is_sampled(&self) -> bool {
        self.flags & Self::FLAG_SAMPLED != 0
    }

    /// Encodes the block ([`TRACE_CONTEXT_LEN`] bytes).
    pub fn encode(&self) -> [u8; TRACE_CONTEXT_LEN] {
        let mut out = [0u8; TRACE_CONTEXT_LEN];
        out[..4].copy_from_slice(&TRACE_CONTEXT_MAGIC);
        out[4..12].copy_from_slice(&self.trace_id.to_le_bytes());
        out[12..20].copy_from_slice(&self.parent_span.to_le_bytes());
        out[20] = self.flags;
        out
    }
}

/// Builds a sequenced payload with a trace-context block between the
/// `(client, seq)` prefix and `container`.
pub fn encode_seq_payload_traced(
    client: u64,
    seq: u64,
    ctx: &TraceContext,
    container: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEQ_HEADER_LEN + TRACE_CONTEXT_LEN + container.len());
    out.extend_from_slice(&client.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&ctx.encode());
    out.extend_from_slice(container);
    out
}

/// Strips the optional trace-context block off the front of a
/// sequenced payload's container part (the third element of
/// [`split_seq_payload`]). Containers written without a block — every
/// frame from a pre-trace client — come back unchanged with `None`.
pub fn split_trace_context(container: &[u8]) -> (Option<TraceContext>, &[u8]) {
    if container.len() < TRACE_CONTEXT_LEN || container[..4] != TRACE_CONTEXT_MAGIC {
        return (None, container);
    }
    let trace_id = u64::from_le_bytes(container[4..12].try_into().expect("8 bytes"));
    let parent_span = u64::from_le_bytes(container[12..20].try_into().expect("8 bytes"));
    let ctx = TraceContext {
        trace_id,
        parent_span,
        flags: container[20],
    };
    (Some(ctx), &container[TRACE_CONTEXT_LEN..])
}

/// Builds a [`FrameKind::Reject`] payload: `class` on the first line,
/// free-form detail after.
pub fn encode_reject_payload(class: &str, detail: &str) -> Vec<u8> {
    format!("{class}\n{detail}").into_bytes()
}

/// Splits a [`FrameKind::Reject`] payload into `(class, detail)`.
/// Tolerant: a payload with no newline is all class, non-UTF-8 bytes
/// are replaced.
pub fn split_reject_payload(payload: &[u8]) -> (String, String) {
    let text = String::from_utf8_lossy(payload);
    match text.split_once('\n') {
        Some((class, detail)) => (class.to_owned(), detail.to_owned()),
        None => (text.into_owned(), String::new()),
    }
}

/// Encodes one frame: header ([`FRAME_HEADER_LEN`] bytes) + payload.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD, "oversize frame");
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses a frame header; returns `(kind, payload_len, crc)`.
///
/// # Errors
///
/// Any malformed or truncated header yields a typed [`WireError`].
pub fn decode_header(bytes: &[u8]) -> Result<(FrameKind, usize, u32), WireError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(WireError::Truncated {
            expected: FRAME_HEADER_LEN,
            available: bytes.len(),
        });
    }
    if bytes[..4] != FRAME_MAGIC {
        return Err(WireError::BadMagic);
    }
    let kind = FrameKind::from_byte(bytes[4]).ok_or(WireError::UnknownKind(bytes[4]))?;
    let len = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversize { declared: len });
    }
    let crc = u32::from_le_bytes([bytes[9], bytes[10], bytes[11], bytes[12]]);
    Ok((kind, len, crc))
}

/// Decodes the first frame of `bytes`; returns the frame and the number
/// of bytes consumed.
///
/// # Errors
///
/// Yields a typed [`WireError`] for any damage; the caller must not
/// trust anything past the reported failure (there is no resync).
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
    let (kind, len, crc) = decode_header(bytes)?;
    let total = FRAME_HEADER_LEN + len;
    if bytes.len() < total {
        return Err(WireError::Truncated {
            expected: total,
            available: bytes.len(),
        });
    }
    let payload = &bytes[FRAME_HEADER_LEN..total];
    let actual = crc32(payload);
    if actual != crc {
        return Err(WireError::ChecksumMismatch {
            expected: crc,
            actual,
        });
    }
    Ok((
        Frame {
            kind,
            payload: payload.to_vec(),
        },
        total,
    ))
}

/// Decodes a whole stream of concatenated frames. Returns every frame
/// decoded before the first damage, plus the damage (if any) and the
/// byte offset where it was found.
pub fn decode_stream(bytes: &[u8]) -> (Vec<Frame>, Option<(usize, WireError)>) {
    let mut frames = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        match decode_frame(&bytes[pos..]) {
            Ok((frame, used)) => {
                frames.push(frame);
                pos += used;
            }
            Err(e) => return (frames, Some((pos, e))),
        }
    }
    (frames, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_every_kind() {
        for kind in FrameKind::ALL {
            let payload = format!("payload for {kind}").into_bytes();
            let bytes = encode_frame(kind, &payload);
            let (frame, used) = decode_frame(&bytes).expect("decodes");
            assert_eq!(used, bytes.len());
            assert_eq!(frame.kind, kind);
            assert_eq!(frame.payload, payload);
        }
    }

    #[test]
    fn stream_roundtrip_and_tail_truncation() {
        let mut stream = Vec::new();
        stream.extend(encode_frame(FrameKind::Hello, b"hi"));
        stream.extend(encode_frame(FrameKind::EdgeDelta, b"ppp-profile v2 ..."));
        stream.extend(encode_frame(FrameKind::Done, b""));
        let (frames, err) = decode_stream(&stream);
        assert_eq!(frames.len(), 3);
        assert!(err.is_none());

        // Cut anywhere inside the stream: decoded prefix only, typed error.
        for cut in [1, FRAME_HEADER_LEN, stream.len() - 1] {
            let (frames, err) = decode_stream(&stream[..cut]);
            assert!(frames.len() < 3);
            assert!(err.is_some(), "cut at {cut} must report damage");
        }
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_error() {
        let mut bytes = encode_frame(FrameKind::EdgeDelta, b"entries 10");
        let at = FRAME_HEADER_LEN + 3;
        bytes[at] ^= 0x40;
        match decode_frame(&bytes) {
            Err(WireError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn header_damage_is_typed() {
        let good = encode_frame(FrameKind::Hello, b"x");
        let mut bad_magic = good.clone();
        bad_magic[0] = b'Q';
        assert_eq!(decode_frame(&bad_magic).unwrap_err(), WireError::BadMagic);

        let mut bad_kind = good.clone();
        bad_kind[4] = 0xEE;
        assert_eq!(
            decode_frame(&bad_kind).unwrap_err(),
            WireError::UnknownKind(0xEE)
        );

        let mut oversize = good;
        oversize[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&oversize).unwrap_err(),
            WireError::Oversize { .. }
        ));
        assert!(matches!(
            decode_frame(b"PPAG").unwrap_err(),
            WireError::Truncated { .. }
        ));
    }

    #[test]
    fn error_classes_are_stable() {
        assert_eq!(WireError::BadMagic.class(), "bad-magic");
        assert_eq!(WireError::UnknownKind(9).class(), "unknown-kind");
        assert_eq!(WireError::Oversize { declared: 1 }.class(), "oversize");
        assert_eq!(
            WireError::Truncated {
                expected: 1,
                available: 0
            }
            .class(),
            "truncated"
        );
        assert_eq!(
            WireError::ChecksumMismatch {
                expected: 1,
                actual: 2
            }
            .class(),
            "checksum"
        );
        assert_eq!(WireError::TimedOut.class(), "timed-out");
    }

    #[test]
    fn seq_payload_roundtrip_and_truncation() {
        let payload = encode_seq_payload(7, 42, b"container bytes");
        let (client, seq, container) = split_seq_payload(&payload).expect("splits");
        assert_eq!((client, seq), (7, 42));
        assert_eq!(container, b"container bytes");

        // An Ack-style payload has an empty container.
        let ack = encode_seq_payload(3, 9, b"");
        assert_eq!(ack.len(), SEQ_HEADER_LEN);
        assert_eq!(split_seq_payload(&ack).expect("splits").2, b"");

        assert!(matches!(
            split_seq_payload(&payload[..SEQ_HEADER_LEN - 1]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn seq_frames_survive_the_frame_codec() {
        let payload = encode_seq_payload(1, 2, b"delta");
        for kind in [FrameKind::SeqEdgeDelta, FrameKind::SeqPathDelta] {
            let bytes = encode_frame(kind, &payload);
            let (frame, _) = decode_frame(&bytes).expect("decodes");
            assert_eq!(frame.kind, kind);
            assert_eq!(split_seq_payload(&frame.payload).unwrap().1, 2);
        }
    }

    #[test]
    fn trace_context_roundtrip_through_the_frame_codec() {
        let ctx = TraceContext::sampled(0xDEAD_BEEF_0BAD_F00D, 17);
        let payload = encode_seq_payload_traced(3, 9, &ctx, b"ppp-profile v2 ...");
        let bytes = encode_frame(FrameKind::SeqEdgeDelta, &payload);
        let (frame, _) = decode_frame(&bytes).expect("decodes");
        let (client, seq, container) = split_seq_payload(&frame.payload).expect("splits");
        assert_eq!((client, seq), (3, 9));
        let (got, rest) = split_trace_context(container);
        assert_eq!(got, Some(ctx));
        assert!(got.expect("present").is_sampled());
        assert_eq!(rest, b"ppp-profile v2 ...");
    }

    #[test]
    fn frames_without_trace_context_still_decode() {
        // The PR 8 writer: no block. The container must come back
        // byte-identical with no context.
        let payload = encode_seq_payload(1, 4, b"ppp-profile v2 container");
        let (_, _, container) = split_seq_payload(&payload).expect("splits");
        let (ctx, rest) = split_trace_context(container);
        assert_eq!(ctx, None);
        assert_eq!(rest, b"ppp-profile v2 container");
        // Ack payloads have empty containers — also context-free.
        let (ctx, rest) = split_trace_context(b"");
        assert_eq!(ctx, None);
        assert!(rest.is_empty());
    }

    /// Property test: random trace ids/parents/flags through the full
    /// encode → frame → decode path are identity, for both sequenced
    /// delta kinds, and stripping is stable when the block is absent.
    #[test]
    fn trace_context_property_roundtrip() {
        // SplitMix64: deterministic, dependency-free.
        let mut state = 0x5CA1_AB1E_u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in 0..200 {
            let ctx = TraceContext {
                trace_id: next(),
                parent_span: next(),
                flags: (next() & 0xFF) as u8,
            };
            let client = next();
            let seq = next() | 1;
            let container = format!("ppp-profile v2 synthetic {i}").into_bytes();
            let kind = if i % 2 == 0 {
                FrameKind::SeqEdgeDelta
            } else {
                FrameKind::SeqPathDelta
            };
            let traced = encode_seq_payload_traced(client, seq, &ctx, &container);
            let bytes = encode_frame(kind, &traced);
            let (frame, used) = decode_frame(&bytes).expect("decodes");
            assert_eq!(used, bytes.len());
            assert_eq!(frame.kind, kind);
            let (c, s, rest) = split_seq_payload(&frame.payload).expect("splits");
            assert_eq!((c, s), (client, seq));
            let (got, body) = split_trace_context(rest);
            assert_eq!(got, Some(ctx));
            assert_eq!(body, &container[..]);

            // The same payload without a block stays untouched.
            let plain = encode_seq_payload(client, seq, &container);
            let bytes = encode_frame(kind, &plain);
            let (frame, _) = decode_frame(&bytes).expect("decodes");
            let (_, _, rest) = split_seq_payload(&frame.payload).expect("splits");
            let (got, body) = split_trace_context(rest);
            assert_eq!(got, None);
            assert_eq!(body, &container[..]);
        }
    }

    #[test]
    fn stats_frames_roundtrip_with_text_payloads() {
        let req = encode_frame(FrameKind::StatsRequest, b"");
        let (frame, _) = decode_frame(&req).expect("decodes");
        assert_eq!(frame.kind, FrameKind::StatsRequest);
        assert!(frame.payload.is_empty());
        let body = br#"{"schema":"ppp-stats/v1"}"#;
        let resp = encode_frame(FrameKind::StatsResponse, body);
        let (frame, _) = decode_frame(&resp).expect("decodes");
        assert_eq!(frame.kind, FrameKind::StatsResponse);
        assert_eq!(frame.payload, body);
        assert_eq!(FrameKind::from_byte(9), Some(FrameKind::StatsRequest));
        assert_eq!(FrameKind::from_byte(10), Some(FrameKind::StatsResponse));
    }

    #[test]
    fn reject_payload_roundtrip() {
        let p = encode_reject_payload("overloaded", "queue depth 64 over limit");
        assert_eq!(
            split_reject_payload(&p),
            (
                "overloaded".to_owned(),
                "queue depth 64 over limit".to_owned()
            )
        );
        assert_eq!(
            split_reject_payload(b"timed-out"),
            ("timed-out".to_owned(), String::new())
        );
    }
}
