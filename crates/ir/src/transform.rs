//! Structural CFG transforms: single-exit normalization, edge splitting,
//! and unreachable-block removal.

use crate::cfg::Cfg;
use crate::function::{Block, Function};
use crate::ids::{BlockId, EdgeRef};
use crate::inst::{Inst, Terminator};

/// Ensures `f` has exactly one `return` block and returns its id.
///
/// If the function already has a unique return block it is returned
/// unchanged. Otherwise every return is rewritten to copy its value into a
/// fresh register and jump to a new common exit block, which returns that
/// register. Path-profiling DAG construction requires a unique EXIT (§3.1).
pub fn single_exit(f: &mut Function) -> BlockId {
    let returns = f.return_blocks();
    if returns.len() == 1 {
        return returns[0];
    }
    assert!(
        !returns.is_empty(),
        "function {} has no return block",
        f.name
    );
    let unified = f.new_reg();
    let exit = f.add_block(Block::new(Terminator::Return {
        value: Some(unified),
    }));
    for r in returns {
        let block = f.block_mut(r);
        let value = match block.term {
            Terminator::Return { value } => value,
            _ => unreachable!("return_blocks returned a non-return block"),
        };
        match value {
            Some(src) => block.insts.push(Inst::Copy { dst: unified, src }),
            None => block.insts.push(Inst::Const {
                dst: unified,
                value: 0,
            }),
        }
        block.term = Terminator::Jump { target: exit };
    }
    exit
}

/// Normalizes every function of a module for path profiling: a unique
/// `return` block and a predecessor-free entry, the shape Ball–Larus DAG
/// conversion requires (§3.1). Idempotent. Both the traced copy and the
/// instrumented copy of a program must be normalized identically so their
/// block ids agree.
pub fn normalize_for_profiling(module: &mut crate::Module) {
    for f in &mut module.functions {
        ensure_virtual_entry(f);
        single_exit(f);
    }
}

/// Ensures the entry block has no predecessors, inserting a fresh entry
/// block that jumps to the old one if necessary. Returns the entry block.
///
/// Ball–Larus DAG conversion adds dummy edges *from* ENTRY (§3.1), which
/// requires ENTRY itself to never be a branch target (in particular, never
/// a loop header).
pub fn ensure_virtual_entry(f: &mut Function) -> BlockId {
    let has_pred = f
        .iter_blocks()
        .any(|(_, b)| b.term.successors().contains(&f.entry));
    if !has_pred {
        return f.entry;
    }
    let old = f.entry;
    let new_entry = f.add_block(Block::new(Terminator::Jump { target: old }));
    f.entry = new_entry;
    new_entry
}

/// Splits `edge` by inserting a fresh block containing only a jump, and
/// returns the new block's id.
///
/// The edge keeps its identity `(from, succ)` but now targets the new
/// block. Instrumenters use this to place edge instrumentation when
/// neither endpoint can hold it (critical edges).
pub fn split_edge(f: &mut Function, edge: EdgeRef) -> BlockId {
    let old_target = f.edge_target(edge);
    let mid = f.add_block(Block::new(Terminator::Jump { target: old_target }));
    f.block_mut(edge.from)
        .term
        .set_successor(edge.succ_index(), mid);
    mid
}

/// Removes blocks unreachable from entry, compacting ids.
///
/// Returns the mapping `old BlockId -> new BlockId` (unreachable blocks map
/// to `None`). Instruction contents are preserved; terminator targets are
/// remapped.
pub fn remove_unreachable(f: &mut Function) -> Vec<Option<BlockId>> {
    let cfg = Cfg::new(f);
    let n = f.blocks.len();
    let mut mapping: Vec<Option<BlockId>> = vec![None; n];
    let mut next = 0u32;
    for (i, slot) in mapping.iter_mut().enumerate() {
        if cfg.is_reachable(BlockId::new(i)) {
            *slot = Some(BlockId(next));
            next += 1;
        }
    }
    if next as usize == n {
        return mapping; // nothing to do
    }
    let mut new_blocks = Vec::with_capacity(next as usize);
    for (i, block) in std::mem::take(&mut f.blocks).into_iter().enumerate() {
        if mapping[i].is_none() {
            continue;
        }
        let mut block = block;
        let succ_count = block.term.successor_count();
        for s in 0..succ_count {
            let tgt = block.term.successor(s).expect("in-range successor");
            let new_tgt =
                mapping[tgt.index()].expect("successor of a reachable block is reachable");
            block.term.set_successor(s, new_tgt);
        }
        new_blocks.push(block);
    }
    f.blocks = new_blocks;
    f.entry = mapping[f.entry.index()].expect("entry is reachable");
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;
    use crate::ids::Reg;

    fn two_returns() -> Function {
        let mut b = FunctionBuilder::new("f", 1);
        let (t, e) = (b.new_block(), b.new_block());
        b.branch(Reg(0), t, e);
        b.switch_to(t);
        let c = b.constant(1);
        b.ret(Some(c));
        b.switch_to(e);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn single_exit_unifies_returns() {
        let mut f = two_returns();
        let exit = single_exit(&mut f);
        assert_eq!(f.return_blocks(), vec![exit]);
        // Both former returns now jump to the exit.
        assert_eq!(f.block(BlockId(1)).term, Terminator::Jump { target: exit });
        assert_eq!(f.block(BlockId(2)).term, Terminator::Jump { target: exit });
        // The void return feeds 0 into the unified register.
        assert!(matches!(
            f.block(BlockId(2)).insts.last(),
            Some(Inst::Const { value: 0, .. })
        ));
    }

    #[test]
    fn single_exit_is_idempotent() {
        let mut f = two_returns();
        let e1 = single_exit(&mut f);
        let blocks_before = f.blocks.len();
        let e2 = single_exit(&mut f);
        assert_eq!(e1, e2);
        assert_eq!(f.blocks.len(), blocks_before);
    }

    #[test]
    fn virtual_entry_added_when_entry_is_loop_header() {
        // entry is its own loop header: entry -> entry | exit
        let mut b = FunctionBuilder::new("f", 1);
        let exit = b.new_block();
        let entry = b.current_block();
        b.branch(Reg(0), entry, exit);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        let new_entry = ensure_virtual_entry(&mut f);
        assert_ne!(new_entry, entry);
        assert_eq!(f.entry, new_entry);
        assert_eq!(f.block(new_entry).term, Terminator::Jump { target: entry });
        // Idempotent.
        assert_eq!(ensure_virtual_entry(&mut f), new_entry);
    }

    #[test]
    fn virtual_entry_noop_without_preds() {
        let mut f = two_returns();
        let entry = f.entry;
        assert_eq!(ensure_virtual_entry(&mut f), entry);
    }

    #[test]
    fn split_edge_preserves_identity_and_flow() {
        let mut f = two_returns();
        let edge = EdgeRef::new(BlockId(0), 1);
        let old_target = f.edge_target(edge);
        let mid = split_edge(&mut f, edge);
        assert_eq!(f.edge_target(edge), mid);
        assert_eq!(f.block(mid).term, Terminator::Jump { target: old_target });
        assert!(f.block(mid).insts.is_empty());
    }

    #[test]
    fn remove_unreachable_compacts_and_remaps() {
        let mut b = FunctionBuilder::new("f", 1);
        let dead = b.new_block();
        let live = b.new_block();
        b.jump(live);
        b.switch_to(dead);
        b.ret(None);
        b.switch_to(live);
        b.ret(None);
        let mut f = b.finish();
        let mapping = remove_unreachable(&mut f);
        assert_eq!(f.blocks.len(), 2);
        assert_eq!(mapping[dead.index()], None);
        assert_eq!(mapping[live.index()], Some(BlockId(1)));
        assert_eq!(
            f.block(BlockId(0)).term,
            Terminator::Jump { target: BlockId(1) }
        );
        assert_eq!(f.entry, BlockId(0));
    }

    #[test]
    fn remove_unreachable_noop_when_all_reachable() {
        let mut f = two_returns();
        let before = f.clone();
        let mapping = remove_unreachable(&mut f);
        assert_eq!(f, before);
        assert!(mapping.iter().all(Option::is_some));
    }
}
