//! Dominator tree computation (Cooper–Harvey–Kennedy).

use crate::cfg::Cfg;
use crate::ids::BlockId;

/// Immediate-dominator tree for the reachable portion of a CFG.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[b] == Some(d)` means `d` immediately dominates `b`; the entry
    /// block is its own idom. Unreachable blocks have `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Computes dominators with the Cooper–Harvey–Kennedy iterative
    /// algorithm over reverse postorder.
    pub fn new(cfg: &Cfg) -> Self {
        let n = cfg.block_count();
        let entry = cfg.entry();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let rpo = cfg.reverse_postorder();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor with a known idom.
                let mut new_idom: Option<BlockId> = None;
                for p in cfg.preds(b) {
                    let p = p.from;
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cfg, cur, p),
                    });
                }
                let new_idom = new_idom.expect("reachable non-entry block has a processed pred");
                if idom[b.index()] != Some(new_idom) {
                    idom[b.index()] = Some(new_idom);
                    changed = true;
                }
            }
        }
        Self { idom, entry }
    }

    /// Returns the immediate dominator of `b`, or `None` if `b` is the
    /// entry block or unreachable.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            None
        } else {
            self.idom[b.index()]
        }
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    ///
    /// Unreachable blocks dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() || self.idom[a.index()].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = self.idom[cur.index()].expect("reachable block chain");
        }
    }
}

fn intersect(idom: &[Option<BlockId>], cfg: &Cfg, mut a: BlockId, mut b: BlockId) -> BlockId {
    let rpo = |x: BlockId| {
        cfg.rpo_index(x)
            .expect("block in dominator walk is reachable")
    };
    while a != b {
        while rpo(a) > rpo(b) {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo(b) > rpo(a) {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{Function, FunctionBuilder};
    use crate::ids::Reg;

    /// Classic example:
    /// entry(0) -> 1; 1 -> 2,3; 2 -> 4; 3 -> 4; 4 -> 1 (back), 4 -> 5(ret)
    fn looped() -> Function {
        let mut b = FunctionBuilder::new("f", 1);
        let b1 = b.new_block();
        let b2 = b.new_block();
        let b3 = b.new_block();
        let b4 = b.new_block();
        let b5 = b.new_block();
        b.jump(b1);
        b.switch_to(b1);
        b.branch(Reg(0), b2, b3);
        b.switch_to(b2);
        b.jump(b4);
        b.switch_to(b3);
        b.jump(b4);
        b.switch_to(b4);
        b.branch(Reg(0), b1, b5);
        b.switch_to(b5);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn idoms_of_loop_diamond() {
        let f = looped();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        assert_eq!(dom.idom(BlockId(0)), None);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(1)));
        assert_eq!(dom.idom(BlockId(4)), Some(BlockId(1)));
        assert_eq!(dom.idom(BlockId(5)), Some(BlockId(4)));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let f = looped();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        assert!(dom.dominates(BlockId(1), BlockId(1)));
        assert!(dom.dominates(BlockId(0), BlockId(5)));
        assert!(dom.dominates(BlockId(1), BlockId(4)));
        assert!(!dom.dominates(BlockId(2), BlockId(4)));
        assert!(!dom.dominates(BlockId(5), BlockId(0)));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut b = FunctionBuilder::new("f", 0);
        let orphan = b.new_block();
        b.ret(None);
        b.switch_to(orphan);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        assert_eq!(dom.idom(orphan), None);
        assert!(!dom.dominates(BlockId(0), orphan));
        assert!(!dom.dominates(orphan, BlockId(0)));
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let f = looped();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        for b in cfg.reverse_postorder() {
            assert!(dom.dominates(BlockId(0), *b));
        }
    }
}
