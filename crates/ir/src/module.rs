//! Modules: collections of functions plus profile-table declarations.

use crate::function::Function;
use crate::ids::{FuncId, TableId};

/// Storage strategy for a path-frequency counter table.
///
/// Routines with at most the hashing threshold of possible paths use a
/// dense array; larger routines fall back to a hash table with a fixed
/// number of slots and a bounded number of probes, after which paths are
/// *lost* (counted in a lost-path counter), exactly as in §7.4 of the
/// paper. Joshi et al. estimate a hash probe costs about five times an
/// array access, which the VM cost model reflects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TableKind {
    /// Dense array of `size` 64-bit counters, indexed directly.
    Array {
        /// Number of counter slots.
        size: u64,
    },
    /// Open-addressed hash table.
    Hash {
        /// Number of hash slots (the paper uses 701).
        slots: u64,
        /// Maximum probes before the path is counted as lost (paper: 3).
        max_probes: u32,
    },
}

impl TableKind {
    /// Returns `true` for hash-backed tables.
    pub fn is_hash(self) -> bool {
        matches!(self, TableKind::Hash { .. })
    }
}

/// Declaration of a counter table owned by an instrumented function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TableDecl {
    /// The function whose paths this table counts.
    pub func: FuncId,
    /// Storage strategy.
    pub kind: TableKind,
    /// Number of *hot* path numbers (`N` in the paper): measured indices in
    /// `0..hot_paths` are genuine path counts; with free poisoning (§4.6),
    /// indices in `hot_paths..` are poisoned (cold) paths.
    pub hot_paths: u64,
}

/// A module: the unit of compilation and execution.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Module {
    /// Functions, indexed by [`FuncId`].
    pub functions: Vec<Function>,
    /// Profile counter tables declared by instrumenters.
    pub tables: Vec<TableDecl>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a function and returns its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId::new(self.functions.len());
        self.functions.push(f);
        id
    }

    /// Returns the function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Returns the function with the given id, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(FuncId::new)
    }

    /// Returns all function ids in index order.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + 'static {
        (0..self.functions.len() as u32).map(FuncId)
    }

    /// Declares a counter table and returns its id.
    pub fn add_table(&mut self, decl: TableDecl) -> TableId {
        let id = TableId::new(self.tables.len());
        self.tables.push(decl);
        id
    }

    /// Returns the table declaration with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn table(&self, id: TableId) -> &TableDecl {
        &self.tables[id.index()]
    }

    /// Total static size (IR statements) of all functions.
    pub fn size(&self) -> usize {
        self.functions.iter().map(Function::size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_functions() {
        let mut m = Module::new();
        let a = m.add_function(Function::new("alpha", 0));
        let b = m.add_function(Function::new("beta", 2));
        assert_eq!(a, FuncId(0));
        assert_eq!(b, FuncId(1));
        assert_eq!(m.function_by_name("beta"), Some(b));
        assert_eq!(m.function_by_name("gamma"), None);
        assert_eq!(m.function(b).param_count, 2);
        assert_eq!(m.func_ids().collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    fn tables_declare_and_lookup() {
        let mut m = Module::new();
        let f = m.add_function(Function::new("f", 0));
        let t = m.add_table(TableDecl {
            func: f,
            kind: TableKind::Array { size: 24 },
            hot_paths: 8,
        });
        assert_eq!(t, TableId(0));
        assert!(!m.table(t).kind.is_hash());
        let h = m.add_table(TableDecl {
            func: f,
            kind: TableKind::Hash {
                slots: 701,
                max_probes: 3,
            },
            hot_paths: 5000,
        });
        assert!(m.table(h).kind.is_hash());
    }

    #[test]
    fn module_size_sums_functions() {
        let mut m = Module::new();
        m.add_function(Function::new("f", 0)); // 1 block, 1 terminator
        m.add_function(Function::new("g", 0));
        assert_eq!(m.size(), 2);
    }
}
