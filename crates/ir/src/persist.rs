//! Profile persistence: a stable text format for edge and path profiles.
//!
//! Staged optimizers collect a profile in one run and consume it in a
//! later compile (§1, §7.2's *self advice* is the same-run special case).
//! This module serializes [`ModuleEdgeProfile`]s and
//! [`ModulePathProfile`]s to a line-oriented format and parses them back,
//! validating shape against the module they describe.
//!
//! Format:
//!
//! ```text
//! edge-profile v1
//! func 0 entries 120
//! edge 0 b0 0 120        ; func, block, successor index, count
//! block 0 b0 120
//! path-profile v1
//! path 0 b3 17 : b3#0 b5#1   ; func, start, freq, then the edge list
//! ```

use crate::function::Function;
use crate::ids::{BlockId, EdgeRef, FuncId};
use crate::module::Module;
use crate::path::{ModulePathProfile, PathKey};
use crate::profile::ModuleEdgeProfile;
use std::fmt::Write as _;

/// Errors from parsing persisted profiles.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProfileParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ProfileParseError {}

/// Serializes an edge profile.
pub fn write_edge_profile(module: &Module, profile: &ModuleEdgeProfile) -> String {
    let mut out = String::from("edge-profile v1\n");
    for (fi, f) in module.functions.iter().enumerate() {
        let fid = FuncId::new(fi);
        let p = profile.func(fid);
        let _ = writeln!(out, "func {fi} entries {}", p.entries());
        for (bid, b) in f.iter_blocks() {
            if p.block(bid) > 0 {
                let _ = writeln!(out, "block {fi} {bid} {}", p.block(bid));
            }
            for s in 0..b.term.successor_count() {
                let e = EdgeRef::new(bid, s);
                if p.edge(e) > 0 {
                    let _ = writeln!(out, "edge {fi} {bid} {s} {}", p.edge(e));
                }
            }
        }
    }
    out
}

/// Parses an edge profile written by [`write_edge_profile`].
///
/// # Errors
///
/// Fails on malformed lines or references outside `module`'s shape.
pub fn read_edge_profile(
    module: &Module,
    text: &str,
) -> Result<ModuleEdgeProfile, ProfileParseError> {
    let mut profile = ModuleEdgeProfile::zeroed(module);
    let mut lines = text.lines().enumerate();
    let err = |line: usize, m: &str| ProfileParseError {
        line: line + 1,
        message: m.to_owned(),
    };
    match lines.next() {
        Some((_, "edge-profile v1")) => {}
        _ => return Err(err(0, "expected 'edge-profile v1' header")),
    }
    for (ln, raw) in lines {
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut w = line.split_whitespace();
        let kind = w.next().unwrap_or("");
        let func: usize = w
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(ln, "missing function index"))?;
        if func >= module.functions.len() {
            return Err(err(ln, "function index out of range"));
        }
        let fid = FuncId::new(func);
        match kind {
            "func" => {
                if w.next() != Some("entries") {
                    return Err(err(ln, "expected 'entries'"));
                }
                let n = w
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln, "bad entry count"))?;
                profile.func_mut(fid).set_entries(n);
            }
            "block" => {
                let b = parse_block(w.next(), ln, module.function(fid))?;
                let n = w
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln, "bad block count"))?;
                profile.func_mut(fid).set_block(b, n);
            }
            "edge" => {
                let b = parse_block(w.next(), ln, module.function(fid))?;
                let s: usize = w
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| err(ln, "bad successor index"))?;
                if module.function(fid).block(b).term.successor(s).is_none() {
                    return Err(err(ln, "successor index out of range"));
                }
                let n = w
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| err(ln, "bad edge count"))?;
                profile.func_mut(fid).set_edge(EdgeRef::new(b, s), n);
            }
            other => return Err(err(ln, &format!("unknown record {other:?}"))),
        }
    }
    Ok(profile)
}

/// Serializes a path profile.
pub fn write_path_profile(profile: &ModulePathProfile) -> String {
    let mut out = String::from("path-profile v1\n");
    // Deterministic order: function, then start block, then edge list.
    let mut entries: Vec<(FuncId, &PathKey, u64)> =
        profile.iter().map(|(f, k, s)| (f, k, s.freq)).collect();
    entries.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then(a.1.start.cmp(&b.1.start))
            .then(a.1.edges.cmp(&b.1.edges))
    });
    for (f, key, freq) in entries {
        let _ = write!(out, "path {} {} {} :", f.index(), key.start, freq);
        for e in &key.edges {
            let _ = write!(out, " {e}");
        }
        out.push('\n');
    }
    out
}

/// Parses a path profile written by [`write_path_profile`].
///
/// # Errors
///
/// Fails on malformed lines or paths that do not fit `module`'s CFGs.
pub fn read_path_profile(
    module: &Module,
    text: &str,
) -> Result<ModulePathProfile, ProfileParseError> {
    let mut profile = ModulePathProfile::with_capacity(module.functions.len());
    let err = |line: usize, m: &str| ProfileParseError {
        line: line + 1,
        message: m.to_owned(),
    };
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "path-profile v1")) => {}
        _ => return Err(err(0, "expected 'path-profile v1' header")),
    }
    for (ln, raw) in lines {
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (head, edges_txt) = line
            .split_once(':')
            .ok_or_else(|| err(ln, "missing ':' separator"))?;
        let mut w = head.split_whitespace();
        if w.next() != Some("path") {
            return Err(err(ln, "expected 'path'"));
        }
        let func: usize = w
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(ln, "bad function index"))?;
        if func >= module.functions.len() {
            return Err(err(ln, "function index out of range"));
        }
        let fid = FuncId::new(func);
        let f = module.function(fid);
        let start = parse_block(w.next(), ln, f)?;
        let freq: u64 = w
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(ln, "bad frequency"))?;
        let mut edges = Vec::new();
        for tok in edges_txt.split_whitespace() {
            let (b, s) = tok
                .split_once('#')
                .ok_or_else(|| err(ln, "bad edge token"))?;
            let b = parse_block(Some(b), ln, f)?;
            let s: usize = s.parse().map_err(|_| err(ln, "bad successor index"))?;
            if f.block(b).term.successor(s).is_none() {
                return Err(err(ln, "edge does not exist"));
            }
            edges.push(EdgeRef::new(b, s));
        }
        profile
            .func_mut(fid)
            .record(f, PathKey { start, edges }, freq);
    }
    Ok(profile)
}

fn parse_block(tok: Option<&str>, ln: usize, f: &Function) -> Result<BlockId, ProfileParseError> {
    let err = |m: &str| ProfileParseError {
        line: ln + 1,
        message: m.to_owned(),
    };
    let t = tok.ok_or_else(|| err("missing block"))?;
    let n: u32 = t
        .strip_prefix('b')
        .and_then(|x| x.parse().ok())
        .ok_or_else(|| err("bad block token"))?;
    if (n as usize) < f.blocks.len() {
        Ok(BlockId(n))
    } else {
        Err(err("block out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;
    use crate::ids::Reg;
    use crate::path::PathStats;

    fn sample() -> Module {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main", 0);
        let c = b.constant(1);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        m.add_function(b.finish());
        let mut g = FunctionBuilder::new("g", 1);
        let p = g.param(0);
        g.ret(Some(p));
        m.add_function(g.finish());
        let _ = Reg(0);
        m
    }

    #[test]
    fn edge_profile_roundtrips() {
        let m = sample();
        let mut p = ModuleEdgeProfile::zeroed(&m);
        p.func_mut(FuncId(0)).set_entries(10);
        p.func_mut(FuncId(0)).set_block(BlockId(0), 10);
        p.func_mut(FuncId(0))
            .set_edge(EdgeRef::new(BlockId(0), 0), 7);
        p.func_mut(FuncId(0))
            .set_edge(EdgeRef::new(BlockId(0), 1), 3);
        p.func_mut(FuncId(1)).set_entries(4);
        let text = write_edge_profile(&m, &p);
        let back = read_edge_profile(&m, &text).expect("parses");
        assert_eq!(p, back);
    }

    #[test]
    fn path_profile_roundtrips() {
        let m = sample();
        let mut p = ModulePathProfile::with_capacity(2);
        let f = m.function(FuncId(0));
        p.func_mut(FuncId(0)).record(
            f,
            PathKey {
                start: BlockId(0),
                edges: vec![EdgeRef::new(BlockId(0), 0), EdgeRef::new(BlockId(1), 0)],
            },
            7,
        );
        p.func_mut(FuncId(0)).record(
            f,
            PathKey {
                start: BlockId(0),
                edges: vec![EdgeRef::new(BlockId(0), 1), EdgeRef::new(BlockId(2), 0)],
            },
            3,
        );
        let text = write_path_profile(&p);
        let back = read_path_profile(&m, &text).expect("parses");
        assert_eq!(p.total_unit_flow(), back.total_unit_flow());
        assert_eq!(p.distinct_paths(), back.distinct_paths());
        for (fid, k, s) in p.iter() {
            assert_eq!(back.func(fid).paths.get(k), Some(&PathStats { ..*s }));
        }
    }

    #[test]
    fn bad_references_rejected() {
        let m = sample();
        assert!(read_edge_profile(&m, "edge-profile v1\nedge 9 b0 0 1\n").is_err());
        assert!(read_edge_profile(&m, "edge-profile v1\nedge 0 b9 0 1\n").is_err());
        assert!(read_edge_profile(&m, "edge-profile v1\nedge 0 b0 5 1\n").is_err());
        assert!(read_edge_profile(&m, "nope\n").is_err());
        assert!(read_path_profile(&m, "path-profile v1\npath 0 b0 3 : b0#7\n").is_err());
        assert!(read_path_profile(&m, "wrong header\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let m = sample();
        let text = "edge-profile v1\n\n; a comment\nfunc 0 entries 2 ; trailing\n";
        let p = read_edge_profile(&m, text).expect("parses");
        assert_eq!(p.func(FuncId(0)).entries(), 2);
    }
}
