//! Module and function validation.
//!
//! The verifier catches malformed IR early: dangling block targets,
//! out-of-range registers, arity-mismatched calls, and dangling profile
//! table references. Generators, instrumenters, and optimizers all verify
//! their output in tests.

use crate::ids::{BlockId, FuncId, Reg, TableId};
use crate::inst::{Inst, Terminator};
use crate::module::Module;
use std::fmt;

/// A single verification failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerifyError {
    /// A terminator names a block that does not exist.
    BadBlockTarget {
        /// Function containing the bad reference.
        func: FuncId,
        /// Block whose terminator is bad.
        block: BlockId,
        /// The out-of-range target.
        target: BlockId,
    },
    /// An instruction or terminator uses a register `>= reg_count`.
    BadRegister {
        /// Function containing the bad reference.
        func: FuncId,
        /// Block containing the bad instruction.
        block: BlockId,
        /// The out-of-range register.
        reg: Reg,
    },
    /// The function declares more parameters than registers.
    ParamsExceedRegs {
        /// Offending function.
        func: FuncId,
    },
    /// The entry block id is out of range.
    BadEntry {
        /// Offending function.
        func: FuncId,
    },
    /// A call names a function that does not exist.
    BadCallee {
        /// Function containing the call.
        func: FuncId,
        /// Block containing the call.
        block: BlockId,
        /// The out-of-range callee.
        callee: FuncId,
    },
    /// A call passes the wrong number of arguments.
    CallArity {
        /// Function containing the call.
        func: FuncId,
        /// Block containing the call.
        block: BlockId,
        /// The callee.
        callee: FuncId,
        /// Arguments passed.
        got: usize,
        /// Parameters expected.
        want: usize,
    },
    /// A profiling op names a table that does not exist.
    BadTable {
        /// Function containing the op.
        func: FuncId,
        /// Block containing the op.
        block: BlockId,
        /// The out-of-range table.
        table: TableId,
    },
    /// Two functions share a name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadBlockTarget {
                func,
                block,
                target,
            } => write!(f, "{func}/{block}: terminator targets missing {target}"),
            VerifyError::BadRegister { func, block, reg } => {
                write!(f, "{func}/{block}: register {reg} out of range")
            }
            VerifyError::ParamsExceedRegs { func } => {
                write!(f, "{func}: param_count exceeds reg_count")
            }
            VerifyError::BadEntry { func } => write!(f, "{func}: entry block out of range"),
            VerifyError::BadCallee {
                func,
                block,
                callee,
            } => write!(f, "{func}/{block}: call to missing function {callee}"),
            VerifyError::CallArity {
                func,
                block,
                callee,
                got,
                want,
            } => write!(
                f,
                "{func}/{block}: call to {callee} passes {got} args, expects {want}"
            ),
            VerifyError::BadTable { func, block, table } => {
                write!(f, "{func}/{block}: reference to missing table {table}")
            }
            VerifyError::DuplicateName { name } => {
                write!(f, "duplicate function name {name:?}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function in `module`.
///
/// # Errors
///
/// Returns all problems found (never an empty vector on `Err`).
pub fn verify_module(module: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errs = Vec::new();

    let mut seen = std::collections::HashSet::new();
    for f in &module.functions {
        if !seen.insert(f.name.as_str()) {
            errs.push(VerifyError::DuplicateName {
                name: f.name.clone(),
            });
        }
    }

    for (fi, f) in module.functions.iter().enumerate() {
        let func = FuncId::new(fi);
        if f.param_count > f.reg_count {
            errs.push(VerifyError::ParamsExceedRegs { func });
        }
        if f.entry.index() >= f.blocks.len() {
            errs.push(VerifyError::BadEntry { func });
            continue;
        }
        let check_reg = |errs: &mut Vec<VerifyError>, block: BlockId, reg: Reg| {
            if reg.0 >= f.reg_count {
                errs.push(VerifyError::BadRegister { func, block, reg });
            }
        };
        let mut uses = Vec::new();
        for (bi, b) in f.iter_blocks() {
            for inst in &b.insts {
                uses.clear();
                inst.uses(&mut uses);
                for &r in &uses {
                    check_reg(&mut errs, bi, r);
                }
                if let Some(d) = inst.def() {
                    check_reg(&mut errs, bi, d);
                }
                match inst {
                    Inst::Call { callee, args, .. } => {
                        if callee.index() >= module.functions.len() {
                            errs.push(VerifyError::BadCallee {
                                func,
                                block: bi,
                                callee: *callee,
                            });
                        } else {
                            let want = module.function(*callee).param_count as usize;
                            if args.len() != want {
                                errs.push(VerifyError::CallArity {
                                    func,
                                    block: bi,
                                    callee: *callee,
                                    got: args.len(),
                                    want,
                                });
                            }
                        }
                    }
                    Inst::Prof(op) => {
                        if let Some(t) = op.table() {
                            if t.index() >= module.tables.len() {
                                errs.push(VerifyError::BadTable {
                                    func,
                                    block: bi,
                                    table: t,
                                });
                            }
                        }
                    }
                    _ => {}
                }
            }
            match &b.term {
                Terminator::Return { value } => {
                    if let Some(r) = value {
                        check_reg(&mut errs, bi, *r);
                    }
                }
                t => {
                    if let Some(r) = t.use_reg() {
                        check_reg(&mut errs, bi, r);
                    }
                    for s in 0..t.successor_count() {
                        let tgt = t.successor(s).expect("in-range successor");
                        if tgt.index() >= f.blocks.len() {
                            errs.push(VerifyError::BadBlockTarget {
                                func,
                                block: bi,
                                target: tgt,
                            });
                        }
                    }
                }
            }
        }
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{Block, Function, FunctionBuilder};
    use crate::inst::ProfOp;

    fn ok_module() -> Module {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main", 0);
        let c = b.constant(3);
        b.emit(c);
        b.ret(Some(c));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn valid_module_verifies() {
        assert_eq!(verify_module(&ok_module()), Ok(()));
    }

    #[test]
    fn dangling_block_target_detected() {
        let mut m = ok_module();
        m.function_mut(FuncId(0)).blocks[0].term = Terminator::Jump {
            target: BlockId(99),
        };
        let errs = verify_module(&m).unwrap_err();
        assert!(matches!(errs[0], VerifyError::BadBlockTarget { .. }));
        assert!(errs[0].to_string().contains("b99"));
    }

    #[test]
    fn out_of_range_register_detected() {
        let mut m = ok_module();
        m.function_mut(FuncId(0)).blocks[0]
            .insts
            .push(Inst::Emit { src: Reg(1000) });
        let errs = verify_module(&m).unwrap_err();
        assert!(matches!(errs[0], VerifyError::BadRegister { .. }));
    }

    #[test]
    fn bad_callee_and_arity_detected() {
        let mut m = ok_module();
        let mut b = FunctionBuilder::new("callee", 2);
        b.ret(None);
        let callee = m.add_function(b.finish());
        let f0 = m.function_mut(FuncId(0));
        f0.blocks[0].insts.push(Inst::Call {
            dst: None,
            callee: FuncId(42),
            args: vec![],
        });
        f0.blocks[0].insts.push(Inst::Call {
            dst: None,
            callee,
            args: vec![Reg(0)], // expects 2
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::BadCallee { .. })));
        assert!(errs.iter().any(|e| matches!(
            e,
            VerifyError::CallArity {
                got: 1,
                want: 2,
                ..
            }
        )));
    }

    #[test]
    fn dangling_table_detected() {
        let mut m = ok_module();
        m.function_mut(FuncId(0)).blocks[0]
            .insts
            .push(Inst::Prof(ProfOp::CountR { table: TableId(9) }));
        let errs = verify_module(&m).unwrap_err();
        assert!(matches!(errs[0], VerifyError::BadTable { .. }));
    }

    #[test]
    fn duplicate_names_detected() {
        let mut m = ok_module();
        let mut b = FunctionBuilder::new("main", 0);
        b.ret(None);
        m.add_function(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(matches!(errs[0], VerifyError::DuplicateName { .. }));
    }

    #[test]
    fn bad_entry_detected() {
        let mut m = Module::new();
        let mut f = Function::new("f", 0);
        f.entry = BlockId(5);
        f.blocks = vec![Block::new(Terminator::Return { value: None })];
        m.add_function(f);
        let errs = verify_module(&m).unwrap_err();
        assert!(matches!(errs[0], VerifyError::BadEntry { .. }));
    }
}
