//! Transformation witnesses: correspondence maps emitted by optimizer
//! transforms for translation validation.
//!
//! Every structural transform over a [`crate::Module`] (inlining,
//! unrolling, the scalar pipeline) can emit a [`TransformWitness`]
//! alongside its report: a compact record of *what it claims to have
//! done* — which call site was spliced where, which blocks are the `j`-th
//! unroll replica of which source block, which source block each
//! surviving block descends from. A witness says nothing by itself; the
//! `ppp-lint` translation-validation pass replays and checks it against
//! the source and optimized modules (PPP3xx diagnostics).
//!
//! Witnesses deliberately record ids the transform *allocated* (fresh
//! registers, appended block ids) rather than re-deriving them, so the
//! checker can cross-validate the transform's bookkeeping instead of
//! trusting it.

use crate::ids::{BlockId, EdgeRef, FuncId, Reg};

/// The witness emitted by one optimizer transform invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransformWitness {
    /// Emitted by profile-guided inlining.
    Inline(InlineWitness),
    /// Emitted by profile-guided loop unrolling.
    Unroll(UnrollWitness),
    /// Emitted by the scalar optimization pipeline.
    Scalar(ScalarWitness),
}

/// Witness for one `inline_module` invocation: every splice performed, in
/// application order. Replaying the steps on the source module must
/// reproduce the optimized module exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InlineWitness {
    /// Splices in the order they were applied (module-global order
    /// matters: a callee inlined after being modified by an earlier
    /// splice is cloned in its *modified* form).
    pub steps: Vec<InlineStep>,
}

/// One call-site splice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InlineStep {
    /// Function the callee was spliced into.
    pub caller: FuncId,
    /// Function that was cloned.
    pub callee: FuncId,
    /// Block holding the call, at application time.
    pub block: BlockId,
    /// Instruction index of the call within `block`, at application time.
    pub inst: usize,
    /// Continuation block that received the call block's tail.
    pub cont: BlockId,
    /// First register id assigned to the cloned callee body
    /// (caller `reg_count` at application time).
    pub reg_base: u32,
    /// First block id assigned to the cloned callee body.
    pub block_base: u32,
}

/// Witness for one `unroll_module` invocation: every loop that was
/// replicated, in application order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UnrollWitness {
    /// Unrolled loops in the order they were transformed.
    pub loops: Vec<UnrolledLoop>,
}

/// One unrolled loop: the source blocks that were replicated and the ids
/// of every replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnrolledLoop {
    /// Function containing the loop.
    pub func: FuncId,
    /// Source loop header.
    pub header: BlockId,
    /// Source blocks that were replicated, sorted ascending. Excludes the
    /// header in counted mode (its test is elided), includes it in
    /// generic mode (its test is retained).
    pub cloned: Vec<BlockId>,
    /// `copies[j][k]` is the `j`-th replica of `cloned[k]`.
    pub copies: Vec<Vec<BlockId>>,
    /// How the replicas were wired up.
    pub mode: UnrollMode,
}

/// The two unrolling strategies (see `ppp-opt`'s unroller).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnrollMode {
    /// Counted unrolling: `factor` test-elided copies guarded by an
    /// `induction < factor` check, original loop kept as the remainder.
    Counted {
        /// Replication factor (and the guard constant).
        factor: u32,
        /// The loop's induction register (the header's branch condition).
        induction: Reg,
        /// The synthesized guard block dispatching between the remainder
        /// loop and the wide body.
        main_header: BlockId,
        /// Fresh register holding the guard comparison result.
        guard_cond: Reg,
        /// Fresh register holding the constant `factor`.
        guard_bound: Reg,
    },
    /// Generic unrolling: `factor - 1` extra copies with tests retained,
    /// latches re-chained through the copies.
    Generic {
        /// Replication factor (copies made = `factor - 1`).
        factor: u32,
        /// The loop's back edges in the source function (their latches
        /// are the blocks whose header-successors were re-chained).
        back_edges: Vec<EdgeRef>,
    },
}

/// Witness for one scalar-pipeline invocation over a whole module.
///
/// The scalar passes never clone blocks, so the witness is just the
/// per-function descent map from surviving blocks to source blocks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScalarWitness {
    /// One entry per function, indexed by [`FuncId`].
    pub funcs: Vec<ScalarFuncWitness>,
}

/// Block descent map for one function after the scalar pipeline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScalarFuncWitness {
    /// `origin[b]` is the source block that optimized block `b` descends
    /// from (an injective map: unreachable source blocks have no image).
    pub origin: Vec<BlockId>,
}

impl ScalarFuncWitness {
    /// The identity witness for an untouched function with `n` blocks.
    pub fn identity(n: usize) -> Self {
        Self {
            origin: (0..n).map(BlockId::new).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_witness_maps_each_block_to_itself() {
        let w = ScalarFuncWitness::identity(3);
        assert_eq!(w.origin, vec![BlockId(0), BlockId(1), BlockId(2)]);
    }

    #[test]
    fn witness_variants_compare_structurally() {
        let a = TransformWitness::Inline(InlineWitness::default());
        let b = TransformWitness::Inline(InlineWitness {
            steps: vec![InlineStep {
                caller: FuncId(0),
                callee: FuncId(1),
                block: BlockId(2),
                inst: 3,
                cont: BlockId(4),
                reg_base: 5,
                block_base: 6,
            }],
        });
        assert_ne!(a, b);
        assert_eq!(a.clone(), a);
    }
}
