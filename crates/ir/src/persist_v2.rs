//! Hardened profile persistence: the versioned, checksummed v2 container.
//!
//! The v1 format ([`crate::persist`]) is a bare line format: a flipped
//! byte silently becomes a different count and a truncated file parses as
//! a smaller profile. Staged optimizers cannot afford either (§1: path
//! profiles *feed* optimization decisions), so v2 wraps the same record
//! grammar in an integrity-protected container:
//!
//! ```text
//! ppp-profile v2 edge funcs 2
//! func 0 len 34 crc 9a0b1c2d name main
//! entries 120
//! block b0 120
//! edge b0 0 120
//! func 1 len 10 crc 00112233 name helper
//! entries 4
//! end
//! ```
//!
//! - a **magic + version + kind** header line;
//! - one **length-prefixed section per function** carrying the function's
//!   records, its name, and a CRC-32 of the payload bytes;
//! - an **`end` trailer** so silent tail truncation is detectable.
//!
//! Three loader strictness levels correspond to the degradation ladder's
//! rungs:
//!
//! 1. [`read_edge_profile_v2`] / [`read_path_profile_v2`] — strict: any
//!    fault is a typed [`ProfileLoadError`].
//! 2. [`salvage_edge_profile`] / [`salvage_path_profile`] — per-section
//!    salvage: a corrupted section quarantines *that function only*
//!    (left zeroed / pathless); everything else loads normally.
//! 3. [`read_edge_profile_stale`] / [`read_path_profile_stale`] — stale
//!    shape tolerance: sections are matched to functions **by name**
//!    (indices are allowed to have shifted), records that still fit the
//!    current CFG shape are kept, and the rest are dropped and counted
//!    (Meta's Stale Profile Matching shows salvaging beats discarding).
//!
//! All loaders take raw bytes and never panic: corrupt input — including
//! invalid UTF-8 from byte-level damage — yields a typed error or a
//! recorded per-section fault.

use crate::function::Function;
use crate::ids::{BlockId, EdgeRef, FuncId};
use crate::module::Module;
use crate::path::{FuncPathProfile, ModulePathProfile, PathKey};
use crate::persist::ProfileParseError;
use crate::profile::{FuncEdgeProfile, ModuleEdgeProfile};
use std::fmt;
use std::fmt::Write as _;

/// Magic token opening every v2 profile artifact.
pub const PROFILE_MAGIC: &str = "ppp-profile";

/// Typed errors from loading a persisted v2 profile.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProfileLoadError {
    /// The artifact does not start with `ppp-profile`.
    BadMagic,
    /// The artifact's version token is not `v2`.
    UnsupportedVersion {
        /// The version token found.
        found: String,
    },
    /// The artifact holds the other profile kind (edge vs. path).
    WrongKind {
        /// The kind the loader expected.
        expected: &'static str,
        /// The kind the header declares.
        found: String,
    },
    /// The container header or a section header is malformed.
    MalformedHeader {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// The artifact ends before a declared section payload (or the `end`
    /// trailer): the file was truncated.
    Truncated {
        /// Section (function) index being read, when known.
        func: Option<usize>,
        /// Bytes the section header promised.
        expected: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A section's payload does not hash to its recorded CRC-32.
    ChecksumMismatch {
        /// Section (function) index.
        func: usize,
        /// Function name recorded in the section header.
        name: String,
        /// CRC the header promised.
        expected: u32,
        /// CRC of the bytes actually present.
        actual: u32,
    },
    /// A section payload is not valid UTF-8 (byte-level damage).
    NotUtf8 {
        /// Section (function) index, when the damage is inside a section.
        func: Option<usize>,
    },
    /// A record inside a section failed to parse or referenced a block or
    /// successor outside the function's shape.
    Record {
        /// Section (function) index.
        func: usize,
        /// Function name.
        name: String,
        /// The underlying parse failure.
        error: ProfileParseError,
    },
    /// The artifact's section count does not match the module.
    FunctionCount {
        /// Functions in the module.
        expected: usize,
        /// Sections in the artifact.
        found: usize,
    },
    /// A section's recorded name differs from the module's function name
    /// at that index (strict loading only; the stale loader matches by
    /// name instead).
    NameMismatch {
        /// Section (function) index.
        func: usize,
        /// Name the module has.
        expected: String,
        /// Name the artifact recorded.
        found: String,
    },
}

impl fmt::Display for ProfileLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileLoadError::BadMagic => write!(f, "not a ppp-profile artifact (bad magic)"),
            ProfileLoadError::UnsupportedVersion { found } => {
                write!(f, "unsupported profile version {found:?} (expected v2)")
            }
            ProfileLoadError::WrongKind { expected, found } => {
                write!(f, "expected a {expected} profile but found kind {found:?}")
            }
            ProfileLoadError::MalformedHeader { line, message } => {
                write!(f, "line {line}: malformed header: {message}")
            }
            ProfileLoadError::Truncated {
                func,
                expected,
                available,
            } => match func {
                Some(i) => write!(
                    f,
                    "truncated artifact: function {i} section promises {expected} bytes, \
                     {available} remain"
                ),
                None => write!(
                    f,
                    "truncated artifact: {expected} bytes expected, {available} remain"
                ),
            },
            ProfileLoadError::ChecksumMismatch {
                func,
                name,
                expected,
                actual,
            } => write!(
                f,
                "function {i} ({name:?}): checksum mismatch (recorded {expected:08x}, \
                 computed {actual:08x})",
                i = func
            ),
            ProfileLoadError::NotUtf8 { func } => match func {
                Some(i) => write!(f, "function {i} section is not valid UTF-8"),
                None => write!(f, "artifact is not valid UTF-8"),
            },
            ProfileLoadError::Record { func, name, error } => {
                write!(f, "function {func} ({name:?}): {error}")
            }
            ProfileLoadError::FunctionCount { expected, found } => write!(
                f,
                "artifact has {found} function section(s) but the module has {expected}"
            ),
            ProfileLoadError::NameMismatch {
                func,
                expected,
                found,
            } => write!(
                f,
                "function {func} is named {expected:?} in the module but {found:?} in the artifact"
            ),
        }
    }
}

impl std::error::Error for ProfileLoadError {}

/// One quarantined section from a salvage load.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SectionFault {
    /// Section (function) index in the artifact.
    pub func: usize,
    /// Function name from the section header (empty when unreadable).
    pub name: String,
    /// What went wrong.
    pub error: ProfileLoadError,
}

impl fmt::Display for SectionFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.error)
    }
}

/// Result of a salvage load: the intact portions of the profile plus the
/// per-section faults that were quarantined instead of trusted.
#[derive(Clone, Debug)]
pub struct Salvaged<T> {
    /// The loaded profile; quarantined functions are zeroed (edge) or
    /// pathless (path).
    pub profile: T,
    /// Function indices (into the *module*) whose sections were
    /// quarantined.
    pub quarantined: Vec<FuncId>,
    /// What was wrong with each quarantined section.
    pub faults: Vec<SectionFault>,
}

impl<T> Salvaged<T> {
    /// `true` when nothing was quarantined: the artifact loaded clean.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Outcome of a stale-shape load: what aligned, what was dropped.
#[derive(Clone, Debug, Default)]
pub struct StaleReport {
    /// Sections matched to a module function by name.
    pub matched_funcs: usize,
    /// Matched sections whose index had shifted (renumbered functions).
    pub renumbered_funcs: usize,
    /// Section names with no function in the module.
    pub unmatched_sections: Vec<String>,
    /// Module functions with no section in the artifact.
    pub unprofiled_funcs: Vec<String>,
    /// Record lines (edge) or whole paths (path) dropped because they no
    /// longer fit the matched function's CFG shape.
    pub dropped_records: u64,
    /// Sections skipped for integrity faults (CRC, truncation, UTF-8).
    pub faults: Vec<SectionFault>,
}

impl StaleReport {
    /// `true` when every section matched at its original index with no
    /// drops: the artifact is not stale at all.
    pub fn is_exact(&self) -> bool {
        self.renumbered_funcs == 0
            && self.unmatched_sections.is_empty()
            && self.unprofiled_funcs.is_empty()
            && self.dropped_records == 0
            && self.faults.is_empty()
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

fn write_container(module: &Module, kind: &str, payload_of: impl Fn(usize) -> String) -> String {
    let mut out = format!(
        "{PROFILE_MAGIC} v2 {kind} funcs {}\n",
        module.functions.len()
    );
    for (i, f) in module.functions.iter().enumerate() {
        let payload = payload_of(i);
        let _ = writeln!(
            out,
            "func {i} len {} crc {:08x} name {}",
            payload.len(),
            crc32(payload.as_bytes()),
            f.name
        );
        out.push_str(&payload);
    }
    out.push_str("end\n");
    out
}

/// Serializes an edge profile into the checksummed v2 container.
pub fn write_edge_profile_v2(module: &Module, profile: &ModuleEdgeProfile) -> String {
    write_container(module, "edge", |i| {
        let f = &module.functions[i];
        let p = profile.func(FuncId::new(i));
        let mut s = String::new();
        let _ = writeln!(s, "entries {}", p.entries());
        for (bid, b) in f.iter_blocks() {
            if p.block(bid) > 0 {
                let _ = writeln!(s, "block {bid} {}", p.block(bid));
            }
            for succ in 0..b.term.successor_count() {
                let e = EdgeRef::new(bid, succ);
                if p.edge(e) > 0 {
                    let _ = writeln!(s, "edge {bid} {succ} {}", p.edge(e));
                }
            }
        }
        s
    })
}

/// Serializes a path profile into the checksummed v2 container.
pub fn write_path_profile_v2(module: &Module, profile: &ModulePathProfile) -> String {
    write_container(module, "path", |i| {
        let fp = profile.func(FuncId::new(i));
        // Deterministic record order: start block, then edge list.
        let mut entries: Vec<(&PathKey, u64)> = fp.paths.iter().map(|(k, s)| (k, s.freq)).collect();
        entries.sort_by(|a, b| a.0.start.cmp(&b.0.start).then(a.0.edges.cmp(&b.0.edges)));
        let mut s = String::new();
        for (key, freq) in entries {
            let _ = write!(s, "path {} {freq} :", key.start);
            for e in &key.edges {
                let _ = write!(s, " {e}");
            }
            s.push('\n');
        }
        s
    })
}

// ---------------------------------------------------------------------------
// Container walking
// ---------------------------------------------------------------------------

/// One raw section of a v2 container.
struct RawSection<'a> {
    /// Index recorded in the section header.
    index: usize,
    /// Name recorded in the section header.
    name: String,
    /// Raw payload bytes (UTF-8 not yet verified).
    payload: &'a [u8],
    /// Recorded CRC-32.
    crc: u32,
    /// 1-based line number of the section header (for diagnostics).
    line: usize,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            line: 0,
        }
    }

    /// Next `\n`-terminated line (without the newline); `None` at EOF.
    fn next_line(&mut self) -> Option<&'a [u8]> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        self.line += 1;
        let rest = &self.bytes[self.pos..];
        match rest.iter().position(|&b| b == b'\n') {
            Some(n) => {
                self.pos += n + 1;
                Some(&rest[..n])
            }
            None => {
                self.pos = self.bytes.len();
                Some(rest)
            }
        }
    }

    /// Takes exactly `n` raw bytes, or `None` if fewer remain.
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let rest = &self.bytes[self.pos..];
        if rest.len() < n {
            return None;
        }
        self.pos += n;
        self.line += rest[..n].iter().filter(|&&b| b == b'\n').count();
        Some(&rest[..n])
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

fn header_err(line: usize, message: &str) -> ProfileLoadError {
    ProfileLoadError::MalformedHeader {
        line,
        message: message.to_owned(),
    }
}

/// Parses the container header line; returns the declared section count.
fn parse_header(
    cursor: &mut Cursor<'_>,
    expected_kind: &'static str,
) -> Result<usize, ProfileLoadError> {
    let line = cursor.next_line().ok_or(ProfileLoadError::BadMagic)?;
    let line = std::str::from_utf8(line).map_err(|_| ProfileLoadError::BadMagic)?;
    let mut w = line.split_whitespace();
    if w.next() != Some(PROFILE_MAGIC) {
        return Err(ProfileLoadError::BadMagic);
    }
    match w.next() {
        Some("v2") => {}
        found => {
            return Err(ProfileLoadError::UnsupportedVersion {
                found: found.unwrap_or("").to_owned(),
            })
        }
    }
    match w.next() {
        Some(k) if k == expected_kind => {}
        found => {
            return Err(ProfileLoadError::WrongKind {
                expected: expected_kind,
                found: found.unwrap_or("").to_owned(),
            })
        }
    }
    if w.next() != Some("funcs") {
        return Err(header_err(cursor.line, "expected 'funcs <n>'"));
    }
    w.next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| header_err(cursor.line, "bad function count"))
}

/// Parses a `func <i> len <n> crc <hex> name <name>` section header.
fn parse_section_header(
    line: &str,
    ln: usize,
) -> Result<(usize, usize, u32, String), ProfileLoadError> {
    let mut w = line.split_whitespace();
    if w.next() != Some("func") {
        return Err(header_err(ln, "expected 'func' section header or 'end'"));
    }
    let index: usize = w
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| header_err(ln, "bad section index"))?;
    if w.next() != Some("len") {
        return Err(header_err(ln, "expected 'len'"));
    }
    let len: usize = w
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| header_err(ln, "bad section length"))?;
    if w.next() != Some("crc") {
        return Err(header_err(ln, "expected 'crc'"));
    }
    let crc = w
        .next()
        .and_then(|s| u32::from_str_radix(s, 16).ok())
        .ok_or_else(|| header_err(ln, "bad section crc"))?;
    if w.next() != Some("name") {
        return Err(header_err(ln, "expected 'name'"));
    }
    let name = match line.split_once(" name ") {
        Some((_, n)) => n.to_owned(),
        None => return Err(header_err(ln, "expected 'name'")),
    };
    Ok((index, len, crc, name))
}

/// Walks every section of a v2 container. Container-level damage (bad
/// magic / unreadable header) is a hard error; the caller decides what to
/// do with per-section outcomes.
fn walk_sections<'a>(
    bytes: &'a [u8],
    expected_kind: &'static str,
) -> Result<(usize, Vec<Result<RawSection<'a>, SectionFault>>), ProfileLoadError> {
    let mut cursor = Cursor::new(bytes);
    let declared = parse_header(&mut cursor, expected_kind)?;
    let mut sections = Vec::new();
    let mut next_index = 0usize;
    loop {
        let ln = cursor.line + 1;
        let Some(raw_line) = cursor.next_line() else {
            // Missing `end` trailer: the tail of the artifact is gone.
            sections.push(Err(SectionFault {
                func: next_index,
                name: String::new(),
                error: ProfileLoadError::Truncated {
                    func: None,
                    expected: 4, // the `end\n` trailer
                    available: 0,
                },
            }));
            break;
        };
        let Ok(line) = std::str::from_utf8(raw_line) else {
            sections.push(Err(SectionFault {
                func: next_index,
                name: String::new(),
                error: ProfileLoadError::NotUtf8 { func: None },
            }));
            break;
        };
        if line.trim() == "end" {
            break;
        }
        match parse_section_header(line, ln) {
            Ok((index, len, crc, name)) => {
                let available = cursor.remaining();
                match cursor.take(len) {
                    Some(payload) => {
                        next_index = index + 1;
                        sections.push(Ok(RawSection {
                            index,
                            name,
                            payload,
                            crc,
                            line: ln,
                        }));
                    }
                    None => {
                        sections.push(Err(SectionFault {
                            func: index,
                            name,
                            error: ProfileLoadError::Truncated {
                                func: Some(index),
                                expected: len,
                                available,
                            },
                        }));
                        break;
                    }
                }
            }
            Err(error) => {
                // Without a trustworthy length prefix there is no way to
                // find the next section boundary; everything from here on
                // is unrecoverable.
                sections.push(Err(SectionFault {
                    func: next_index,
                    name: String::new(),
                    error,
                }));
                break;
            }
        }
    }
    Ok((declared, sections))
}

/// Verifies a raw section's integrity and returns its payload text.
fn section_text<'a>(s: &RawSection<'a>) -> Result<&'a str, ProfileLoadError> {
    let actual = crc32(s.payload);
    if actual != s.crc {
        return Err(ProfileLoadError::ChecksumMismatch {
            func: s.index,
            name: s.name.clone(),
            expected: s.crc,
            actual,
        });
    }
    std::str::from_utf8(s.payload).map_err(|_| ProfileLoadError::NotUtf8 {
        func: Some(s.index),
    })
}

// ---------------------------------------------------------------------------
// Section record parsing
// ---------------------------------------------------------------------------

fn record_err(line: usize, message: &str) -> ProfileParseError {
    ProfileParseError {
        line,
        message: message.to_owned(),
    }
}

fn parse_block_tok(
    tok: Option<&str>,
    ln: usize,
    f: &Function,
) -> Result<BlockId, ProfileParseError> {
    let t = tok.ok_or_else(|| record_err(ln, "missing block"))?;
    let n: u32 = t
        .strip_prefix('b')
        .and_then(|x| x.parse().ok())
        .ok_or_else(|| record_err(ln, "bad block token"))?;
    if (n as usize) < f.blocks.len() {
        Ok(BlockId(n))
    } else {
        Err(record_err(ln, "block out of range"))
    }
}

/// Applies one edge-profile record line to `p`.
fn apply_edge_record(
    f: &Function,
    p: &mut FuncEdgeProfile,
    line: &str,
    ln: usize,
) -> Result<(), ProfileParseError> {
    let mut w = line.split_whitespace();
    match w.next().unwrap_or("") {
        "entries" => {
            let n = w
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| record_err(ln, "bad entry count"))?;
            p.set_entries(n);
        }
        "block" => {
            let b = parse_block_tok(w.next(), ln, f)?;
            let n = w
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| record_err(ln, "bad block count"))?;
            p.set_block(b, n);
        }
        "edge" => {
            let b = parse_block_tok(w.next(), ln, f)?;
            let s: usize = w
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| record_err(ln, "bad successor index"))?;
            if f.block(b).term.successor(s).is_none() {
                return Err(record_err(ln, "successor index out of range"));
            }
            let n = w
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| record_err(ln, "bad edge count"))?;
            p.set_edge(EdgeRef::new(b, s), n);
        }
        other => return Err(record_err(ln, &format!("unknown record {other:?}"))),
    }
    Ok(())
}

/// Parses an edge section payload into `p`. In lenient mode, records that
/// fail are dropped and counted; in strict mode the first failure wins.
fn parse_edge_section(
    f: &Function,
    text: &str,
    lenient: bool,
    p: &mut FuncEdgeProfile,
) -> Result<u64, ProfileParseError> {
    let mut dropped = 0u64;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        match apply_edge_record(f, p, line, ln + 1) {
            Ok(()) => {}
            Err(e) if lenient => {
                let _ = e;
                dropped += 1;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(dropped)
}

/// Parses one `path <start> <freq> : <edges>` record.
fn parse_path_record(
    f: &Function,
    line: &str,
    ln: usize,
) -> Result<(PathKey, u64), ProfileParseError> {
    let (head, edges_txt) = line
        .split_once(':')
        .ok_or_else(|| record_err(ln, "missing ':' separator"))?;
    let mut w = head.split_whitespace();
    if w.next() != Some("path") {
        return Err(record_err(ln, "expected 'path'"));
    }
    let start = parse_block_tok(w.next(), ln, f)?;
    let freq: u64 = w
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| record_err(ln, "bad frequency"))?;
    let mut edges = Vec::new();
    let mut cur = start;
    for tok in edges_txt.split_whitespace() {
        let (b, s) = tok
            .split_once('#')
            .ok_or_else(|| record_err(ln, "bad edge token"))?;
        let b = parse_block_tok(Some(b), ln, f)?;
        let s: usize = s
            .parse()
            .map_err(|_| record_err(ln, "bad successor index"))?;
        let Some(tgt) = f.block(b).term.successor(s) else {
            return Err(record_err(ln, "edge does not exist"));
        };
        if b != cur {
            return Err(record_err(ln, "path edges do not chain"));
        }
        cur = tgt;
        edges.push(EdgeRef::new(b, s));
    }
    Ok((PathKey { start, edges }, freq))
}

/// Parses a path section payload into `out` (lenient: drop + count).
fn parse_path_section(
    f: &Function,
    text: &str,
    lenient: bool,
    out: &mut FuncPathProfile,
) -> Result<u64, ProfileParseError> {
    let mut dropped = 0u64;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        match parse_path_record(f, line, ln + 1) {
            Ok((key, freq)) => out.record(f, key, freq),
            Err(e) if lenient => {
                let _ = e;
                dropped += 1;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(dropped)
}

// ---------------------------------------------------------------------------
// Strict loaders
// ---------------------------------------------------------------------------

fn strict_sections<'a>(
    module: &Module,
    bytes: &'a [u8],
    kind: &'static str,
) -> Result<Vec<(FuncId, &'a str)>, ProfileLoadError> {
    let (declared, sections) = walk_sections(bytes, kind)?;
    if declared != module.functions.len() {
        return Err(ProfileLoadError::FunctionCount {
            expected: module.functions.len(),
            found: declared,
        });
    }
    let mut out = Vec::with_capacity(sections.len());
    for (i, s) in sections.into_iter().enumerate() {
        let s = s.map_err(|f| f.error)?;
        if s.index != i || s.index >= module.functions.len() {
            return Err(header_err(s.line, "section index out of order"));
        }
        let f = &module.functions[s.index];
        if f.name != s.name {
            return Err(ProfileLoadError::NameMismatch {
                func: s.index,
                expected: f.name.clone(),
                found: s.name,
            });
        }
        out.push((FuncId::new(s.index), section_text(&s)?));
    }
    if out.len() != module.functions.len() {
        return Err(ProfileLoadError::FunctionCount {
            expected: module.functions.len(),
            found: out.len(),
        });
    }
    Ok(out)
}

/// Loads a v2 edge profile strictly: any integrity or shape fault is a
/// typed error.
///
/// # Errors
///
/// Every fault class maps to a [`ProfileLoadError`] variant; this
/// function never panics, whatever the input bytes.
pub fn read_edge_profile_v2(
    module: &Module,
    bytes: &[u8],
) -> Result<ModuleEdgeProfile, ProfileLoadError> {
    let sections = strict_sections(module, bytes, "edge")?;
    let mut profile = ModuleEdgeProfile::zeroed(module);
    for (fid, text) in sections {
        let f = module.function(fid);
        parse_edge_section(f, text, false, profile.func_mut(fid)).map_err(|error| {
            ProfileLoadError::Record {
                func: fid.index(),
                name: f.name.clone(),
                error,
            }
        })?;
    }
    Ok(profile)
}

/// Loads a v2 path profile strictly.
///
/// # Errors
///
/// See [`read_edge_profile_v2`]; identical policy.
pub fn read_path_profile_v2(
    module: &Module,
    bytes: &[u8],
) -> Result<ModulePathProfile, ProfileLoadError> {
    let sections = strict_sections(module, bytes, "path")?;
    let mut profile = ModulePathProfile::with_capacity(module.functions.len());
    for (fid, text) in sections {
        let f = module.function(fid);
        parse_path_section(f, text, false, profile.func_mut(fid)).map_err(|error| {
            ProfileLoadError::Record {
                func: fid.index(),
                name: f.name.clone(),
                error,
            }
        })?;
    }
    Ok(profile)
}

// ---------------------------------------------------------------------------
// Salvage loaders
// ---------------------------------------------------------------------------

fn salvage_load<T>(
    module: &Module,
    bytes: &[u8],
    kind: &'static str,
    mut profile: T,
    mut apply: impl FnMut(&mut T, FuncId, &str) -> Result<(), ProfileParseError>,
) -> Result<Salvaged<T>, ProfileLoadError> {
    let (_, sections) = walk_sections(bytes, kind)?;
    let mut faults = Vec::new();
    let mut quarantined = Vec::new();
    let mut seen = vec![false; module.functions.len()];
    for s in sections {
        match s {
            Ok(raw) => {
                let index = raw.index;
                if index >= module.functions.len() {
                    faults.push(SectionFault {
                        func: index,
                        name: raw.name,
                        error: ProfileLoadError::FunctionCount {
                            expected: module.functions.len(),
                            found: index + 1,
                        },
                    });
                    continue;
                }
                let fid = FuncId::new(index);
                let f = module.function(fid);
                seen[index] = true;
                let outcome = section_text(&raw).and_then(|text| {
                    apply(&mut profile, fid, text).map_err(|error| ProfileLoadError::Record {
                        func: index,
                        name: f.name.clone(),
                        error,
                    })
                });
                if let Err(error) = outcome {
                    quarantined.push(fid);
                    faults.push(SectionFault {
                        func: index,
                        name: f.name.clone(),
                        error,
                    });
                }
            }
            Err(fault) => {
                // Container damage from this point on: every not-yet-seen
                // function is effectively quarantined by the same fault.
                if fault.func < module.functions.len() && !seen[fault.func] {
                    quarantined.push(FuncId::new(fault.func));
                }
                faults.push(fault);
            }
        }
    }
    for (i, s) in seen.iter().enumerate() {
        if !s && !quarantined.contains(&FuncId::new(i)) {
            quarantined.push(FuncId::new(i));
        }
    }
    quarantined.sort();
    quarantined.dedup();
    Ok(Salvaged {
        profile,
        quarantined,
        faults,
    })
}

/// Loads a v2 edge profile, quarantining corrupted sections instead of
/// failing: each faulty function is left zeroed (trivially conservative)
/// and reported, everything intact loads normally.
///
/// # Errors
///
/// Only container-level damage (bad magic, wrong kind/version) is fatal.
pub fn salvage_edge_profile(
    module: &Module,
    bytes: &[u8],
) -> Result<Salvaged<ModuleEdgeProfile>, ProfileLoadError> {
    salvage_load(
        module,
        bytes,
        "edge",
        ModuleEdgeProfile::zeroed(module),
        |profile, fid, text| {
            // Parse into a scratch profile so a mid-section fault cannot
            // leave half a function's counts behind.
            let f = module.function(fid);
            let mut scratch = FuncEdgeProfile::zeroed(f);
            parse_edge_section(f, text, false, &mut scratch)?;
            *profile.func_mut(fid) = scratch;
            Ok(())
        },
    )
}

/// Loads a v2 path profile, quarantining corrupted sections (see
/// [`salvage_edge_profile`]); faulty functions end up with no paths.
///
/// # Errors
///
/// Only container-level damage is fatal.
pub fn salvage_path_profile(
    module: &Module,
    bytes: &[u8],
) -> Result<Salvaged<ModulePathProfile>, ProfileLoadError> {
    salvage_load(
        module,
        bytes,
        "path",
        ModulePathProfile::with_capacity(module.functions.len()),
        |profile, fid, text| {
            let f = module.function(fid);
            let mut scratch = FuncPathProfile::new();
            parse_path_section(f, text, false, &mut scratch)?;
            *profile.func_mut(fid) = scratch;
            Ok(())
        },
    )
}

// ---------------------------------------------------------------------------
// Stale-shape loaders
// ---------------------------------------------------------------------------

fn stale_load<T>(
    module: &Module,
    bytes: &[u8],
    kind: &'static str,
    mut profile: T,
    mut apply: impl FnMut(&mut T, FuncId, &str) -> Result<u64, ProfileParseError>,
) -> Result<(T, StaleReport), ProfileLoadError> {
    let (_, sections) = walk_sections(bytes, kind)?;
    let mut report = StaleReport::default();
    let mut seen = vec![false; module.functions.len()];
    for s in sections {
        match s {
            Ok(raw) => match module.function_by_name(&raw.name) {
                Some(fid) => {
                    seen[fid.index()] = true;
                    report.matched_funcs += 1;
                    if fid.index() != raw.index {
                        report.renumbered_funcs += 1;
                    }
                    match section_text(&raw) {
                        Ok(text) => match apply(&mut profile, fid, text) {
                            Ok(dropped) => report.dropped_records += dropped,
                            // Lenient application never errors, but keep
                            // the plumbing honest.
                            Err(error) => report.faults.push(SectionFault {
                                func: raw.index,
                                name: raw.name,
                                error: ProfileLoadError::Record {
                                    func: fid.index(),
                                    name: module.function(fid).name.clone(),
                                    error,
                                },
                            }),
                        },
                        Err(error) => report.faults.push(SectionFault {
                            func: raw.index,
                            name: raw.name,
                            error,
                        }),
                    }
                }
                None => report.unmatched_sections.push(raw.name),
            },
            Err(fault) => report.faults.push(fault),
        }
    }
    for (i, s) in seen.iter().enumerate() {
        if !s {
            report
                .unprofiled_funcs
                .push(module.functions[i].name.clone());
        }
    }
    Ok((profile, report))
}

/// Loads a v2 edge profile written for a *different build* of the module:
/// sections are matched to functions by name (indices may have shifted),
/// and every record that still fits the current CFG shape is kept while
/// the rest are dropped and counted — salvaging a stale profile instead
/// of refusing it.
///
/// The result is generally *not* flow conservative (dropped records break
/// Kirchhoff's law); callers are expected to push it through the
/// degradation ladder, which quarantines or re-derives the functions that
/// no longer balance.
///
/// # Errors
///
/// Only container-level damage is fatal.
pub fn read_edge_profile_stale(
    module: &Module,
    bytes: &[u8],
) -> Result<(ModuleEdgeProfile, StaleReport), ProfileLoadError> {
    stale_load(
        module,
        bytes,
        "edge",
        ModuleEdgeProfile::zeroed(module),
        |profile, fid, text| {
            parse_edge_section(module.function(fid), text, true, profile.func_mut(fid))
        },
    )
}

/// Loads a v2 path profile for a different build of the module; see
/// [`read_edge_profile_stale`]. Paths whose edges no longer chain in the
/// renamed function are dropped and counted.
///
/// # Errors
///
/// Only container-level damage is fatal.
pub fn read_path_profile_stale(
    module: &Module,
    bytes: &[u8],
) -> Result<(ModulePathProfile, StaleReport), ProfileLoadError> {
    stale_load(
        module,
        bytes,
        "path",
        ModulePathProfile::with_capacity(module.functions.len()),
        |profile, fid, text| {
            parse_path_section(module.function(fid), text, true, profile.func_mut(fid))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;

    fn sample() -> Module {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main", 0);
        let c = b.constant(1);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        m.add_function(b.finish());
        let mut g = FunctionBuilder::new("g", 1);
        let p = g.param(0);
        g.ret(Some(p));
        m.add_function(g.finish());
        m
    }

    fn sample_edges(m: &Module) -> ModuleEdgeProfile {
        let mut p = ModuleEdgeProfile::zeroed(m);
        let f0 = p.func_mut(FuncId(0));
        f0.set_entries(10);
        f0.set_block(BlockId(0), 10);
        f0.set_edge(EdgeRef::new(BlockId(0), 0), 7);
        f0.set_edge(EdgeRef::new(BlockId(0), 1), 3);
        f0.set_block(BlockId(1), 7);
        f0.set_edge(EdgeRef::new(BlockId(1), 0), 7);
        f0.set_block(BlockId(2), 3);
        f0.set_edge(EdgeRef::new(BlockId(2), 0), 3);
        f0.set_block(BlockId(3), 10);
        p.func_mut(FuncId(1)).set_entries(4);
        p.func_mut(FuncId(1)).set_block(BlockId(0), 4);
        p
    }

    #[test]
    fn v2_edge_roundtrip() {
        let m = sample();
        let p = sample_edges(&m);
        let text = write_edge_profile_v2(&m, &p);
        let back = read_edge_profile_v2(&m, text.as_bytes()).expect("loads");
        assert_eq!(p, back);
    }

    #[test]
    fn v2_path_roundtrip() {
        let m = sample();
        let mut p = ModulePathProfile::with_capacity(2);
        let f = m.function(FuncId(0));
        p.func_mut(FuncId(0)).record(
            f,
            PathKey {
                start: BlockId(0),
                edges: vec![EdgeRef::new(BlockId(0), 0), EdgeRef::new(BlockId(1), 0)],
            },
            7,
        );
        let text = write_path_profile_v2(&m, &p);
        let back = read_path_profile_v2(&m, text.as_bytes()).expect("loads");
        assert_eq!(p.total_unit_flow(), back.total_unit_flow());
        assert_eq!(p.distinct_paths(), back.distinct_paths());
    }

    #[test]
    fn flipped_byte_is_detected() {
        let m = sample();
        let p = sample_edges(&m);
        let text = write_edge_profile_v2(&m, &p);
        // Flip a digit inside the first payload (after the section header).
        let pos = text.find("entries 10").expect("payload") + "entries 1".len();
        let mut bytes = text.into_bytes();
        bytes[pos] = b'9';
        match read_edge_profile_v2(&m, &bytes) {
            Err(ProfileLoadError::ChecksumMismatch { func: 0, .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected() {
        let m = sample();
        let p = sample_edges(&m);
        let text = write_edge_profile_v2(&m, &p);
        // (Cutting only the final newline leaves a complete artifact, so
        // start the cuts inside the `end` trailer.)
        for cut in [text.len() - 2, text.len() / 2, 20] {
            let r = read_edge_profile_v2(&m, &text.as_bytes()[..cut]);
            assert!(r.is_err(), "cut at {cut} must not load cleanly");
        }
    }

    #[test]
    fn salvage_quarantines_only_the_damaged_function() {
        let m = sample();
        let p = sample_edges(&m);
        let text = write_edge_profile_v2(&m, &p);
        let pos = text.find("entries 10").expect("payload");
        let mut bytes = text.into_bytes();
        bytes[pos] = b'X';
        let s = salvage_edge_profile(&m, &bytes).expect("container ok");
        assert_eq!(s.quarantined, vec![FuncId(0)]);
        assert_eq!(s.faults.len(), 1);
        assert!(s.profile.func(FuncId(0)).is_zero());
        assert_eq!(s.profile.func(FuncId(1)).entries(), 4);
    }

    #[test]
    fn stale_loader_matches_by_name_across_reordering() {
        let m = sample();
        let p = sample_edges(&m);
        let text = write_edge_profile_v2(&m, &p);
        // A "newer build" with the functions in the opposite order.
        let mut m2 = Module::new();
        let mut g = FunctionBuilder::new("g", 1);
        let pr = g.param(0);
        g.ret(Some(pr));
        m2.add_function(g.finish());
        let mut b = FunctionBuilder::new("main", 0);
        let c = b.constant(1);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        m2.add_function(b.finish());
        let (loaded, report) = read_edge_profile_stale(&m2, text.as_bytes()).expect("loads");
        assert_eq!(report.matched_funcs, 2);
        assert_eq!(report.renumbered_funcs, 2);
        assert_eq!(report.dropped_records, 0);
        let main2 = m2.function_by_name("main").unwrap();
        assert_eq!(loaded.func(main2).entries(), 10);
        assert_eq!(loaded.func(main2).edge(EdgeRef::new(BlockId(0), 0)), 7);
        assert!(loaded.is_flow_conservative(&m2));
    }

    #[test]
    fn stale_loader_drops_records_that_no_longer_fit() {
        let m = sample();
        let p = sample_edges(&m);
        let text = write_edge_profile_v2(&m, &p);
        // A build of "main" that lost its diamond: single block, ret.
        let mut m2 = Module::new();
        let mut b = FunctionBuilder::new("main", 0);
        b.ret(None);
        m2.add_function(b.finish());
        let (loaded, report) = read_edge_profile_stale(&m2, text.as_bytes()).expect("loads");
        assert_eq!(report.matched_funcs, 1);
        assert!(report.dropped_records > 0);
        assert_eq!(report.unmatched_sections, vec!["g".to_owned()]);
        assert_eq!(loaded.func(FuncId(0)).entries(), 10);
    }

    #[test]
    fn wrong_kind_and_bad_magic_are_typed() {
        let m = sample();
        let p = sample_edges(&m);
        let text = write_edge_profile_v2(&m, &p);
        assert!(matches!(
            read_path_profile_v2(&m, text.as_bytes()),
            Err(ProfileLoadError::WrongKind { .. })
        ));
        assert!(matches!(
            read_edge_profile_v2(&m, b"edge-profile v1\n"),
            Err(ProfileLoadError::BadMagic)
        ));
        assert!(matches!(
            read_edge_profile_v2(&m, b"ppp-profile v3 edge funcs 2\nend\n"),
            Err(ProfileLoadError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_typed_not_panicking() {
        let m = sample();
        let p = sample_edges(&m);
        let mut bytes = write_edge_profile_v2(&m, &p).into_bytes();
        let pos = bytes.len() / 2;
        bytes[pos] = 0xFF;
        let r = read_edge_profile_v2(&m, &bytes);
        assert!(r.is_err());
    }

    #[test]
    fn crc32_matches_known_vector() {
        // CRC-32/IEEE of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
