//! Graphviz (DOT) export of CFGs, optionally annotated with an edge
//! profile — handy for inspecting generated workloads and instrumented
//! functions (`dot -Tsvg`).

use crate::function::Function;
use crate::module::Module;
use crate::profile::FuncEdgeProfile;
use std::fmt::Write as _;

/// Renders one function as a DOT digraph.
///
/// With a `profile`, edges are labeled with their frequencies and scaled
/// in pen width by relative hotness; blocks show their instruction count
/// and execution count.
///
/// # Examples
///
/// ```
/// use ppp_ir::{FunctionBuilder, to_dot};
/// let mut b = FunctionBuilder::new("f", 1);
/// let x = b.param(0);
/// b.ret(Some(x));
/// let dot = to_dot(&b.finish(), None);
/// assert!(dot.starts_with("digraph"));
/// ```
pub fn to_dot(f: &Function, profile: Option<&FuncEdgeProfile>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", f.name);
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    let max_freq = profile
        .map(|p| {
            f.edges()
                .iter()
                .map(|&e| p.edge(e))
                .max()
                .unwrap_or(0)
                .max(1)
        })
        .unwrap_or(1);
    for (id, b) in f.iter_blocks() {
        let mut label = format!("{id}");
        if id == f.entry {
            label.push_str(" (entry)");
        }
        let _ = write!(label, "\\n{} insts", b.insts.len());
        if let Some(p) = profile {
            let _ = write!(label, "\\nexec {}", p.block(id));
        }
        let _ = writeln!(out, "  {} [label=\"{}\"];", id.index(), label);
    }
    for e in f.edges() {
        let tgt = f.edge_target(e);
        let mut attrs = String::new();
        if let Some(p) = profile {
            let freq = p.edge(e);
            let width = 1.0 + 4.0 * freq as f64 / max_freq as f64;
            let _ = write!(attrs, " [label=\"{freq}\", penwidth={width:.2}]");
        }
        let _ = writeln!(out, "  {} -> {}{};", e.from.index(), tgt.index(), attrs);
    }
    out.push_str("}\n");
    out
}

/// Renders every function of a module, concatenated.
pub fn module_to_dot(m: &Module, profile: Option<&crate::profile::ModuleEdgeProfile>) -> String {
    m.functions
        .iter()
        .enumerate()
        .map(|(i, f)| to_dot(f, profile.map(|p| p.func(crate::ids::FuncId::new(i)))))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;
    use crate::ids::{BlockId, EdgeRef, Reg};

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("dot_test", 1);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(Reg(0), t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn renders_all_blocks_and_edges() {
        let f = diamond();
        let dot = to_dot(&f, None);
        assert!(dot.starts_with("digraph \"dot_test\""));
        assert_eq!(dot.matches("label=\"b").count(), 4);
        assert_eq!(dot.matches(" -> ").count(), 4);
        assert!(dot.contains("(entry)"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn profile_annotations_included() {
        let f = diamond();
        let mut p = FuncEdgeProfile::zeroed(&f);
        p.set_edge(EdgeRef::new(BlockId(0), 0), 90);
        p.set_edge(EdgeRef::new(BlockId(0), 1), 10);
        p.set_block(BlockId(0), 100);
        let dot = to_dot(&f, Some(&p));
        assert!(dot.contains("label=\"90\""));
        assert!(dot.contains("exec 100"));
        assert!(dot.contains("penwidth=5.00"), "hottest edge at max width");
    }

    #[test]
    fn module_export_concatenates() {
        let mut m = Module::new();
        m.add_function(diamond());
        let mut b2 = FunctionBuilder::new("other", 0);
        b2.ret(None);
        m.add_function(b2.finish());
        let dot = module_to_dot(&m, None);
        assert_eq!(dot.matches("digraph").count(), 2);
    }
}
