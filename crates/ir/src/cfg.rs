//! Control-flow-graph utilities: successor/predecessor views, depth-first
//! orders, and reachability.

use crate::function::Function;
use crate::ids::{BlockId, EdgeRef};

/// Precomputed CFG adjacency for one function.
///
/// Holds successor and predecessor lists plus a reverse postorder, so
/// analyses can traverse without re-walking terminators.
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<EdgeRef>>,
    rpo: Vec<BlockId>,
    rpo_index: Vec<Option<u32>>,
    entry: BlockId,
}

impl Cfg {
    /// Builds the CFG view of `f`.
    pub fn new(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (id, b) in f.iter_blocks() {
            for s in 0..b.term.successor_count() {
                let tgt = b.term.successor(s).expect("in-range successor");
                succs[id.index()].push(tgt);
                preds[tgt.index()].push(EdgeRef::new(id, s));
            }
        }
        let po = postorder_from(f.entry, &succs);
        let mut rpo = po;
        rpo.reverse();
        let mut rpo_index = vec![None; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = Some(i as u32);
        }
        Self {
            succs,
            preds,
            rpo,
            rpo_index,
            entry: f.entry,
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of blocks (including unreachable ones).
    pub fn block_count(&self) -> usize {
        self.succs.len()
    }

    /// Successors of `b` in successor-index order.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessor edges of `b` (each names the source block and the
    /// successor slot in that source's terminator).
    pub fn preds(&self, b: BlockId) -> &[EdgeRef] {
        &self.preds[b.index()]
    }

    /// Reverse postorder over blocks reachable from entry.
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Postorder over blocks reachable from entry (the reverse of
    /// [`Cfg::reverse_postorder`]) — the natural seeding order for
    /// backward dataflow analyses.
    pub fn postorder(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.rpo.iter().rev().copied()
    }

    /// Predecessor *blocks* of `b`, one entry per incoming edge (a block
    /// with two edges into `b` appears twice). Convenience view of
    /// [`Cfg::preds`] for dataflow analyses that join over blocks.
    pub fn pred_blocks(&self, b: BlockId) -> impl Iterator<Item = BlockId> + '_ {
        self.preds[b.index()].iter().map(|e| e.from)
    }

    /// Position of `b` in reverse postorder, or `None` if unreachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<u32> {
        self.rpo_index[b.index()]
    }

    /// Returns `true` if `b` is reachable from entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index(b).is_some()
    }

    /// Returns `true` if edge `from -> to` is *retreating* with respect to
    /// reverse postorder (target does not come after source). On reducible
    /// graphs these are exactly the natural-loop back edges; on irreducible
    /// graphs they still give a valid set of edges whose removal makes the
    /// graph acyclic, which is all Ball–Larus DAG conversion needs (§3.1).
    pub fn is_retreating(&self, from: BlockId, to: BlockId) -> bool {
        match (self.rpo_index(from), self.rpo_index(to)) {
            (Some(f), Some(t)) => t <= f,
            _ => false,
        }
    }
}

/// Computes a postorder of blocks reachable from `entry` using an explicit
/// stack (no recursion, so deep CFGs cannot overflow the call stack).
fn postorder_from(entry: BlockId, succs: &[Vec<BlockId>]) -> Vec<BlockId> {
    let n = succs.len();
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    // (block, next successor index to visit)
    let mut stack: Vec<(BlockId, usize)> = Vec::new();
    visited[entry.index()] = true;
    stack.push((entry, 0));
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let ss = &succs[b.index()];
        if *next < ss.len() {
            let s = ss[*next];
            *next += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            order.push(b);
            stack.pop();
        }
    }
    order
}

/// Returns the blocks reachable from the function entry, in reverse
/// postorder, without building a full [`Cfg`].
pub fn reachable_blocks(f: &Function) -> Vec<BlockId> {
    Cfg::new(f).reverse_postorder().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;
    use crate::ids::Reg;

    /// entry -> (b1 | b2) -> b3 -> ret, plus unreachable b4.
    fn diamond_with_orphan() -> Function {
        let mut b = FunctionBuilder::new("f", 1);
        let (t, e, j, orphan) = (b.new_block(), b.new_block(), b.new_block(), b.new_block());
        b.branch(Reg(0), t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        b.switch_to(orphan);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn adjacency_is_consistent() {
        let f = diamond_with_orphan();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)).len(), 2);
        assert_eq!(cfg.preds(BlockId(0)).len(), 0);
        assert_eq!(cfg.block_count(), 5);
    }

    #[test]
    fn rpo_starts_at_entry_and_skips_unreachable() {
        let f = diamond_with_orphan();
        let cfg = Cfg::new(&f);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        assert!(!cfg.is_reachable(BlockId(4)));
        assert!(cfg.is_reachable(BlockId(3)));
        // Topological property on this acyclic graph: every edge goes
        // forward in RPO.
        for (id, b) in f.iter_blocks() {
            if !cfg.is_reachable(id) {
                continue;
            }
            for s in b.term.successors() {
                assert!(cfg.rpo_index(id).unwrap() < cfg.rpo_index(s).unwrap());
            }
        }
    }

    #[test]
    fn retreating_edges_detect_loops() {
        // entry -> header -> body -> header (back edge), header -> exit
        let mut b = FunctionBuilder::new("loopy", 1);
        let (header, body, exit) = (b.new_block(), b.new_block(), b.new_block());
        b.jump(header);
        b.switch_to(header);
        b.branch(Reg(0), body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert!(cfg.is_retreating(body, header));
        assert!(!cfg.is_retreating(header, body));
        assert!(!cfg.is_retreating(BlockId(0), header));
    }

    #[test]
    fn self_loop_is_retreating() {
        let mut b = FunctionBuilder::new("selfloop", 1);
        let (l, exit) = (b.new_block(), b.new_block());
        b.jump(l);
        b.switch_to(l);
        b.branch(Reg(0), l, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert!(cfg.is_retreating(l, l));
    }

    #[test]
    fn postorder_reverses_rpo_and_pred_blocks_match_edges() {
        let f = diamond_with_orphan();
        let cfg = Cfg::new(&f);
        let po: Vec<BlockId> = cfg.postorder().collect();
        let mut rpo = cfg.reverse_postorder().to_vec();
        rpo.reverse();
        assert_eq!(po, rpo);
        let preds: Vec<BlockId> = cfg.pred_blocks(BlockId(3)).collect();
        assert_eq!(preds, vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.pred_blocks(BlockId(0)).count(), 0);
    }

    #[test]
    fn reachable_blocks_helper() {
        let f = diamond_with_orphan();
        let r = reachable_blocks(&f);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], BlockId(0));
    }
}
