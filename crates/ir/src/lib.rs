//! # ppp-ir: a compact compiler IR for path profiling
//!
//! This crate provides the intermediate representation that the whole PPP
//! reproduction (Bond & McKinley, *Practical Path Profiling for Dynamic
//! Optimizers*, CGO 2005) is built on. It plays the role of Scale's
//! low-level IR in the paper: a register machine over `i64` values with
//! explicit basic blocks, two-way branches, multi-way switches, calls, and
//! a synthetic-input intrinsic ([`Inst::Rand`]) standing in for program
//! input.
//!
//! On top of the data structures it provides the standard analyses path
//! profiling needs:
//!
//! - [`Cfg`]: successor/predecessor views and reverse postorder;
//! - [`Dominators`]: Cooper–Harvey–Kennedy dominator trees;
//! - [`LoopForest`]: natural loops with nesting, entries, and exits;
//! - [`transform`]: single-exit normalization and edge splitting (used by
//!   instrumenters to place edge instrumentation);
//! - [`FuncEdgeProfile`]/[`ModuleEdgeProfile`]: edge profiles, the cheap
//!   profile the paper's techniques are guided by;
//! - a [`verify`](verify_module)r, a pretty-printer, and a parser for a
//!   stable textual format.
//!
//! # Examples
//!
//! Build a function with [`FunctionBuilder`], print it, and parse it back:
//!
//! ```
//! use ppp_ir::{FunctionBuilder, Module, BinOp, parse_module, print_module};
//!
//! let mut b = FunctionBuilder::new("double", 1);
//! let x = b.param(0);
//! let two = b.constant(2);
//! let y = b.binary(BinOp::Mul, x, two);
//! b.ret(Some(y));
//!
//! let mut module = Module::new();
//! module.add_function(b.finish());
//! let text = print_module(&module);
//! let reparsed = parse_module(&text)?;
//! assert_eq!(module, reparsed);
//! # Ok::<(), ppp_ir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cfg;
mod display;
mod dom;
mod dot;
mod function;
mod ids;
mod inst;
mod loops;
mod module;
mod parse;
mod path;
mod persist;
mod persist_v2;
mod profile;
pub mod transform;
mod verify;
pub mod wire;
mod witness;

pub use cfg::{reachable_blocks, Cfg};
pub use display::{print_function, print_module};
pub use dom::Dominators;
pub use dot::{module_to_dot, to_dot};
pub use function::{Block, Function, FunctionBuilder};
pub use ids::{BlockId, EdgeRef, FuncId, Reg, TableId};
pub use inst::{BinOp, Inst, ProfOp, Terminator, UnOp};
pub use loops::{analyze_loops, LoopForest, NaturalLoop};
pub use module::{Module, TableDecl, TableKind};
pub use parse::{parse_module, ParseError};
pub use path::{FuncPathProfile, ModulePathProfile, PathKey, PathStats};
pub use persist::{
    read_edge_profile, read_path_profile, write_edge_profile, write_path_profile, ProfileParseError,
};
pub use persist_v2::{
    crc32, read_edge_profile_stale, read_edge_profile_v2, read_path_profile_stale,
    read_path_profile_v2, salvage_edge_profile, salvage_path_profile, write_edge_profile_v2,
    write_path_profile_v2, ProfileLoadError, Salvaged, SectionFault, StaleReport, PROFILE_MAGIC,
};
pub use profile::{
    FlowViolation, FlowViolationKind, FuncEdgeProfile, ModuleEdgeProfile, ProfileStats,
};
pub use verify::{verify_module, VerifyError};
pub use wire::{
    decode_frame, decode_stream, encode_frame, encode_reject_payload, encode_seq_payload,
    encode_seq_payload_traced, split_reject_payload, split_seq_payload, split_trace_context, Frame,
    FrameKind, TraceContext, WireError, FRAME_HEADER_LEN, FRAME_MAGIC, MAX_FRAME_PAYLOAD,
    SEQ_HEADER_LEN, TRACE_CONTEXT_LEN, TRACE_CONTEXT_MAGIC,
};
pub use witness::{
    InlineStep, InlineWitness, ScalarFuncWitness, ScalarWitness, TransformWitness, UnrollMode,
    UnrollWitness, UnrolledLoop,
};
