//! Natural-loop detection and loop-nesting analysis.

use crate::cfg::Cfg;
use crate::dom::Dominators;
use crate::function::Function;
use crate::ids::{BlockId, EdgeRef};

/// One natural loop.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// Loop header (the target of the loop's back edges).
    pub header: BlockId,
    /// Back edges `latch -> header` where the header dominates the latch.
    pub back_edges: Vec<EdgeRef>,
    /// All blocks in the loop body, including the header, sorted by index.
    pub body: Vec<BlockId>,
    /// Nesting depth; outermost loops have depth 1.
    pub depth: u32,
    /// Index of the enclosing loop in the forest, if any.
    pub parent: Option<usize>,
}

impl NaturalLoop {
    /// Returns `true` if `b` is in the loop body.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.binary_search(&b).is_ok()
    }

    /// Edges entering the loop from outside (their target is the header;
    /// back edges are excluded).
    pub fn entry_edges(&self, cfg: &Cfg) -> Vec<EdgeRef> {
        cfg.preds(self.header)
            .iter()
            .copied()
            .filter(|e| !self.contains(e.from))
            .collect()
    }

    /// Edges leaving the loop (source inside, target outside).
    pub fn exit_edges(&self, f: &Function) -> Vec<EdgeRef> {
        let mut out = Vec::new();
        for &b in &self.body {
            let term = &f.block(b).term;
            for s in 0..term.successor_count() {
                let tgt = term.successor(s).expect("in-range successor");
                if !self.contains(tgt) {
                    out.push(EdgeRef::new(b, s));
                }
            }
        }
        out
    }
}

/// All natural loops of a function, with nesting.
///
/// Irreducible regions (retreating edges whose target does not dominate the
/// source) do not form natural loops; those edges are reported separately
/// via [`LoopForest::irreducible_edges`] so that DAG conversion can still
/// break them (Ball–Larus only needs *some* acyclic skeleton).
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<NaturalLoop>,
    /// For each block, the index of the innermost containing loop.
    innermost: Vec<Option<usize>>,
    irreducible: Vec<EdgeRef>,
}

impl LoopForest {
    /// Detects natural loops in `f`.
    pub fn new(f: &Function, cfg: &Cfg, dom: &Dominators) -> Self {
        let n = f.blocks.len();
        // Group back edges by header.
        let mut by_header: Vec<Vec<EdgeRef>> = vec![Vec::new(); n];
        let mut irreducible = Vec::new();
        for (id, b) in f.iter_blocks() {
            if !cfg.is_reachable(id) {
                continue;
            }
            for s in 0..b.term.successor_count() {
                let tgt = b.term.successor(s).expect("in-range successor");
                if cfg.is_retreating(id, tgt) {
                    if dom.dominates(tgt, id) {
                        by_header[tgt.index()].push(EdgeRef::new(id, s));
                    } else {
                        irreducible.push(EdgeRef::new(id, s));
                    }
                }
            }
        }

        // Build loop bodies by backwards reachability from the latches,
        // stopping at the header.
        let mut loops = Vec::new();
        for header_idx in 0..n {
            let edges = std::mem::take(&mut by_header[header_idx]);
            if edges.is_empty() {
                continue;
            }
            let header = BlockId::new(header_idx);
            let mut in_body = vec![false; n];
            in_body[header_idx] = true;
            let mut stack: Vec<BlockId> = Vec::new();
            for e in &edges {
                if !in_body[e.from.index()] {
                    in_body[e.from.index()] = true;
                    stack.push(e.from);
                }
            }
            while let Some(b) = stack.pop() {
                for p in cfg.preds(b) {
                    if !in_body[p.from.index()] && cfg.is_reachable(p.from) {
                        in_body[p.from.index()] = true;
                        stack.push(p.from);
                    }
                }
            }
            let body: Vec<BlockId> = (0..n).filter(|&i| in_body[i]).map(BlockId::new).collect();
            loops.push(NaturalLoop {
                header,
                back_edges: edges,
                body,
                depth: 0,
                parent: None,
            });
        }

        // Nesting: loop A is nested in B iff A's header is in B's body and
        // A != B. Sort by body size so parents (larger) come later.
        let mut order: Vec<usize> = (0..loops.len()).collect();
        order.sort_by_key(|&i| loops[i].body.len());
        for pos in 0..order.len() {
            let i = order[pos];
            // The smallest strictly-larger loop containing our header is
            // the parent.
            let mut parent: Option<usize> = None;
            for &j in order.iter().skip(pos + 1) {
                if loops[j].contains(loops[i].header) && j != i {
                    parent = Some(j);
                    break;
                }
            }
            loops[i].parent = parent;
        }
        // Depths.
        for i in 0..loops.len() {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p].parent;
            }
            loops[i].depth = d;
        }
        // Innermost loop per block: the smallest loop containing it.
        let mut innermost: Vec<Option<usize>> = vec![None; n];
        for &i in &order {
            for &b in &loops[i].body {
                if innermost[b.index()].is_none() {
                    innermost[b.index()] = Some(i);
                }
            }
        }

        Self {
            loops,
            innermost,
            irreducible,
        }
    }

    /// All detected natural loops.
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<&NaturalLoop> {
        self.innermost[b.index()].map(|i| &self.loops[i])
    }

    /// Index (into [`LoopForest::loops`]) of the innermost loop containing
    /// `b`, if any.
    pub fn innermost_index(&self, b: BlockId) -> Option<usize> {
        self.innermost[b.index()]
    }

    /// Loop-nesting depth of `b` (0 if not in any loop).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.innermost(b).map_or(0, |l| l.depth)
    }

    /// Retreating edges that are not natural-loop back edges (irreducible
    /// control flow).
    pub fn irreducible_edges(&self) -> &[EdgeRef] {
        &self.irreducible
    }

    /// Returns `true` if the loop at `index` has no nested loop inside it.
    pub fn is_innermost_loop(&self, index: usize) -> bool {
        !self.loops.iter().any(|l| l.parent == Some(index))
    }
}

/// Convenience: builds CFG, dominators, and the loop forest together.
pub fn analyze_loops(f: &Function) -> (Cfg, Dominators, LoopForest) {
    let cfg = Cfg::new(f);
    let dom = Dominators::new(&cfg);
    let loops = LoopForest::new(f, &cfg, &dom);
    (cfg, dom, loops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;
    use crate::ids::Reg;

    /// Nested loops:
    /// 0 -> 1(outer hdr) -> 2(inner hdr) -> 3 -> 2 (back), 3 -> 4,
    /// 4 -> 1 (back), 4 -> 5 ret
    fn nested() -> Function {
        let mut b = FunctionBuilder::new("nested", 1);
        let b1 = b.new_block();
        let b2 = b.new_block();
        let b3 = b.new_block();
        let b4 = b.new_block();
        let b5 = b.new_block();
        b.jump(b1);
        b.switch_to(b1);
        b.jump(b2);
        b.switch_to(b2);
        b.jump(b3);
        b.switch_to(b3);
        b.branch(Reg(0), b2, b4);
        b.switch_to(b4);
        b.branch(Reg(0), b1, b5);
        b.switch_to(b5);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn detects_nested_loops_and_depths() {
        let f = nested();
        let (_cfg, _dom, forest) = analyze_loops(&f);
        assert_eq!(forest.loops().len(), 2);
        let outer = forest
            .loops()
            .iter()
            .find(|l| l.header == BlockId(1))
            .unwrap();
        let inner = forest
            .loops()
            .iter()
            .find(|l| l.header == BlockId(2))
            .unwrap();
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert_eq!(inner.body, vec![BlockId(2), BlockId(3)]);
        assert_eq!(
            outer.body,
            vec![BlockId(1), BlockId(2), BlockId(3), BlockId(4)]
        );
        assert_eq!(forest.depth(BlockId(3)), 2);
        assert_eq!(forest.depth(BlockId(4)), 1);
        assert_eq!(forest.depth(BlockId(5)), 0);
        assert!(forest.irreducible_edges().is_empty());
    }

    #[test]
    fn entry_and_exit_edges() {
        let f = nested();
        let (cfg, _dom, forest) = analyze_loops(&f);
        let inner_idx = forest.innermost_index(BlockId(2)).unwrap();
        let inner = &forest.loops()[inner_idx];
        let entries = inner.entry_edges(&cfg);
        assert_eq!(entries, vec![EdgeRef::new(BlockId(1), 0)]);
        let exits = inner.exit_edges(&f);
        assert_eq!(exits, vec![EdgeRef::new(BlockId(3), 1)]);
        assert!(forest.is_innermost_loop(inner_idx));
        let outer_idx = forest.innermost_index(BlockId(4)).unwrap();
        assert!(!forest.is_innermost_loop(outer_idx));
    }

    #[test]
    fn self_loop_detected() {
        let mut b = FunctionBuilder::new("selfloop", 1);
        let (l, exit) = (b.new_block(), b.new_block());
        b.jump(l);
        b.switch_to(l);
        b.branch(Reg(0), l, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let (_cfg, _dom, forest) = analyze_loops(&f);
        assert_eq!(forest.loops().len(), 1);
        let lp = &forest.loops()[0];
        assert_eq!(lp.header, l);
        assert_eq!(lp.body, vec![l]);
        assert_eq!(lp.back_edges, vec![EdgeRef::new(l, 0)]);
    }

    #[test]
    fn irreducible_edge_reported() {
        // 0 -> 1, 0 -> 2; 1 -> 2; 2 -> 1 (retreating, but 1 does not
        // dominate 2); 1 -> 3 ret — the classic irreducible triangle.
        let mut b = FunctionBuilder::new("irr", 1);
        let b1 = b.new_block();
        let b2 = b.new_block();
        let b3 = b.new_block();
        b.branch(Reg(0), b1, b2);
        b.switch_to(b1);
        b.branch(Reg(0), b2, b3);
        b.switch_to(b2);
        b.jump(b1);
        b.switch_to(b3);
        b.ret(None);
        let f = b.finish();
        let (_cfg, _dom, forest) = analyze_loops(&f);
        // One retreating edge exists and it is irreducible (no natural loop).
        assert_eq!(forest.loops().len(), 0);
        assert_eq!(forest.irreducible_edges().len(), 1);
    }

    #[test]
    fn multiple_latches_one_loop() {
        // 0 -> 1; 1 -> 2,3; 2 -> 1 (back); 3 -> 1 (back) ... need an exit:
        // make 3 -> 1 | 4.
        let mut b = FunctionBuilder::new("two_latches", 1);
        let b1 = b.new_block();
        let b2 = b.new_block();
        let b3 = b.new_block();
        let b4 = b.new_block();
        b.jump(b1);
        b.switch_to(b1);
        b.branch(Reg(0), b2, b3);
        b.switch_to(b2);
        b.jump(b1);
        b.switch_to(b3);
        b.branch(Reg(0), b1, b4);
        b.switch_to(b4);
        b.ret(None);
        let f = b.finish();
        let (_cfg, _dom, forest) = analyze_loops(&f);
        assert_eq!(forest.loops().len(), 1);
        assert_eq!(forest.loops()[0].back_edges.len(), 2);
        assert_eq!(
            forest.loops()[0].body,
            vec![BlockId(1), BlockId(2), BlockId(3)]
        );
    }
}
