//! Edge profiles: execution frequencies for CFG edges and blocks.
//!
//! Edge profiles are the cheap profile the paper assumes a dynamic
//! optimizer already has (overheads of 0.5–3% via sampling or hardware,
//! §2). Here they are produced exactly by the VM tracer and consumed by
//! the inliner, the unroller, and the TPP/PPP instrumenters.

use crate::function::Function;
use crate::ids::{BlockId, EdgeRef, FuncId};
use std::fmt;

/// Which side of Kirchhoff's law a [`FlowViolation`] breaks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowViolationKind {
    /// Incoming edge flow (plus entries, for the entry block) does not
    /// equal the block's frequency.
    In,
    /// Outgoing edge flow does not equal the block's frequency
    /// (non-return blocks only; return blocks exit instead).
    Out,
    /// The total frequency of return blocks does not equal the entry
    /// count (flow must leave the function exactly once per activation).
    Exit,
}

impl fmt::Display for FlowViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FlowViolationKind::In => "in-flow",
            FlowViolationKind::Out => "out-flow",
            FlowViolationKind::Exit => "exit-flow",
        })
    }
}

/// One violation of per-block flow conservation (Kirchhoff's law).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlowViolation {
    /// The block at fault ([`None`] for the function-wide exit check).
    pub block: Option<BlockId>,
    /// Which conservation equation failed.
    pub kind: FlowViolationKind,
    /// The value the equation requires.
    pub expected: u64,
    /// The value the profile records.
    pub actual: u64,
}

/// Edge and block frequencies for one function.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FuncEdgeProfile {
    /// `edge_freq[b][s]` = executions of edge `(b, s)`.
    edge_freq: Vec<Vec<u64>>,
    /// `block_freq[b]` = executions of block `b`.
    block_freq: Vec<u64>,
    /// Number of times the function was entered.
    entries: u64,
}

impl FuncEdgeProfile {
    /// Creates an all-zero profile shaped like `f`.
    pub fn zeroed(f: &Function) -> Self {
        Self {
            edge_freq: f
                .blocks
                .iter()
                .map(|b| vec![0; b.term.successor_count()])
                .collect(),
            block_freq: vec![0; f.blocks.len()],
            entries: 0,
        }
    }

    /// Frequency of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if the edge is out of range for the profiled function.
    #[inline]
    pub fn edge(&self, edge: EdgeRef) -> u64 {
        self.edge_freq[edge.from.index()][edge.succ_index()]
    }

    /// Frequency of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range for the profiled function.
    #[inline]
    pub fn block(&self, b: BlockId) -> u64 {
        self.block_freq[b.index()]
    }

    /// Number of invocations of the function.
    #[inline]
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Records one execution of `edge` (used by the tracer). Saturates at
    /// [`u64::MAX`] instead of overflowing; see
    /// [`FuncEdgeProfile::saturated`].
    #[inline]
    pub fn bump_edge(&mut self, edge: EdgeRef) {
        let c = &mut self.edge_freq[edge.from.index()][edge.succ_index()];
        *c = c.saturating_add(1);
    }

    /// Records one execution of block `b` (used by the tracer). Saturating.
    #[inline]
    pub fn bump_block(&mut self, b: BlockId) {
        let c = &mut self.block_freq[b.index()];
        *c = c.saturating_add(1);
    }

    /// Records one function entry (used by the tracer). Saturating.
    #[inline]
    pub fn bump_entry(&mut self) {
        self.entries = self.entries.saturating_add(1);
    }

    /// Sets the frequency of `edge` (used when synthesizing profiles).
    pub fn set_edge(&mut self, edge: EdgeRef, freq: u64) {
        self.edge_freq[edge.from.index()][edge.succ_index()] = freq;
    }

    /// Sets the frequency of block `b` (used when synthesizing profiles).
    pub fn set_block(&mut self, b: BlockId, freq: u64) {
        self.block_freq[b.index()] = freq;
    }

    /// Sets the entry count (used when synthesizing profiles).
    pub fn set_entries(&mut self, entries: u64) {
        self.entries = entries;
    }

    /// Sum of all edge frequencies (saturating: two pinned counters must
    /// total [`u64::MAX`], not wrap back to small).
    pub fn total_edge_flow(&self) -> u64 {
        self.edge_freq
            .iter()
            .flatten()
            .fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// Sum of frequencies of *branch* edges: edges whose source block has
    /// at least two successors (the paper's definition of a branch, §5.1).
    /// Saturating.
    pub fn total_branch_flow(&self) -> u64 {
        self.edge_freq
            .iter()
            .filter(|edges| edges.len() >= 2)
            .flatten()
            .fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// Merges another profile of the same shape into this one
    /// (used to combine multi-run inputs, §7.2). Counter sums saturate at
    /// [`u64::MAX`] instead of overflowing.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn merge(&mut self, other: &FuncEdgeProfile) {
        assert_eq!(
            self.edge_freq.len(),
            other.edge_freq.len(),
            "profiles must have the same shape"
        );
        for (a, b) in self.edge_freq.iter_mut().zip(&other.edge_freq) {
            assert_eq!(a.len(), b.len(), "profiles must have the same shape");
            for (x, y) in a.iter_mut().zip(b) {
                *x = x.saturating_add(*y);
            }
        }
        for (x, y) in self.block_freq.iter_mut().zip(&other.block_freq) {
            *x = x.saturating_add(*y);
        }
        self.entries = self.entries.saturating_add(other.entries);
    }

    /// `true` when any counter has pinned at [`u64::MAX`]: the profile
    /// overflowed and degraded to saturation, so relative frequencies are
    /// no longer trustworthy. Ingestion reports (and usually quarantines)
    /// saturated functions instead of consuming them silently.
    pub fn saturated(&self) -> bool {
        self.entries == u64::MAX
            || self.block_freq.contains(&u64::MAX)
            || self.edge_freq.iter().flatten().any(|&c| c == u64::MAX)
    }

    /// Resets every counter to zero (used to quarantine a function whose
    /// profile cannot be trusted: the all-zero profile is trivially flow
    /// conservative, so downstream consumers treat the routine as
    /// never-executed rather than mis-guided).
    pub fn zero(&mut self) {
        for row in &mut self.edge_freq {
            row.iter_mut().for_each(|c| *c = 0);
        }
        self.block_freq.iter_mut().for_each(|c| *c = 0);
        self.entries = 0;
    }

    /// `true` when every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.entries == 0
            && self.block_freq.iter().all(|&c| c == 0)
            && self.edge_freq.iter().flatten().all(|&c| c == 0)
    }

    /// `true` when the profile's shape matches `f`: one block-frequency
    /// slot per block and one edge-frequency slot per successor.
    pub fn shape_matches(&self, f: &Function) -> bool {
        self.block_freq.len() == f.blocks.len()
            && self.edge_freq.len() == f.blocks.len()
            && self
                .edge_freq
                .iter()
                .zip(&f.blocks)
                .all(|(row, b)| row.len() == b.term.successor_count())
    }

    /// Checks per-block flow conservation (Kirchhoff's law) against `f`:
    /// for every block, incoming edge flow (plus the entry count, for the
    /// entry block) must equal the block frequency; for every non-return
    /// block, outgoing edge flow must equal the block frequency; and the
    /// total frequency of return blocks must equal the entry count. Exact
    /// tracing of any run that terminates normally satisfies all three.
    ///
    /// Returns every violation, in block order.
    ///
    /// # Panics
    ///
    /// Panics if the profile's shape does not match `f` (check
    /// [`FuncEdgeProfile::shape_matches`] first).
    pub fn flow_violations(&self, f: &Function) -> Vec<FlowViolation> {
        assert!(
            self.shape_matches(f),
            "profile shape does not match function {}",
            f.name
        );
        let n = f.blocks.len();
        let mut inflow = vec![0u64; n];
        inflow[f.entry.index()] = self.entries;
        for (bi, row) in self.edge_freq.iter().enumerate() {
            for (s, &freq) in row.iter().enumerate() {
                let tgt = f.blocks[bi]
                    .term
                    .successor(s)
                    .expect("shape-matched successor");
                // Saturating: a profile whose counters pinned at MAX is
                // being *checked* here, not trusted — the check must
                // report violations, not overflow.
                inflow[tgt.index()] = inflow[tgt.index()].saturating_add(freq);
            }
        }
        let mut violations = Vec::new();
        let mut exit_flow = 0u64;
        for (bi, block) in f.blocks.iter().enumerate() {
            let freq = self.block_freq[bi];
            if inflow[bi] != freq {
                violations.push(FlowViolation {
                    block: Some(BlockId::new(bi)),
                    kind: FlowViolationKind::In,
                    expected: freq,
                    actual: inflow[bi],
                });
            }
            if block.term.is_return() {
                exit_flow = exit_flow.saturating_add(freq);
            } else {
                let out: u64 = self.edge_freq[bi]
                    .iter()
                    .fold(0u64, |acc, &c| acc.saturating_add(c));
                if out != freq {
                    violations.push(FlowViolation {
                        block: Some(BlockId::new(bi)),
                        kind: FlowViolationKind::Out,
                        expected: freq,
                        actual: out,
                    });
                }
            }
        }
        if exit_flow != self.entries {
            violations.push(FlowViolation {
                block: None,
                kind: FlowViolationKind::Exit,
                expected: self.entries,
                actual: exit_flow,
            });
        }
        violations
    }

    /// `true` when the profile both matches `f`'s shape and satisfies
    /// flow conservation everywhere.
    pub fn is_flow_conservative(&self, f: &Function) -> bool {
        self.shape_matches(f) && self.flow_violations(f).is_empty()
    }

    /// Average trip count of a loop, estimated from the profile as
    /// `(back-edge flow + entry flow) / entry flow` — i.e. body executions
    /// per loop entry. Returns `None` when the loop never runs.
    pub fn loop_trip_count(&self, back_edges: &[EdgeRef], entry_edges: &[EdgeRef]) -> Option<f64> {
        let back: u64 = back_edges.iter().map(|&e| self.edge(e)).sum();
        let entry: u64 = entry_edges.iter().map(|&e| self.edge(e)).sum();
        if entry == 0 {
            None
        } else {
            Some((back + entry) as f64 / entry as f64)
        }
    }
}

/// Edge profiles for every function in a module.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModuleEdgeProfile {
    /// Per-function profiles, indexed by [`FuncId`].
    pub funcs: Vec<FuncEdgeProfile>,
}

impl ModuleEdgeProfile {
    /// Creates an all-zero profile shaped like `module`.
    pub fn zeroed(module: &crate::Module) -> Self {
        Self {
            funcs: module
                .functions
                .iter()
                .map(FuncEdgeProfile::zeroed)
                .collect(),
        }
    }

    /// Profile for function `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    #[inline]
    pub fn func(&self, f: FuncId) -> &FuncEdgeProfile {
        &self.funcs[f.index()]
    }

    /// Profile for function `f`, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    #[inline]
    pub fn func_mut(&mut self, f: FuncId) -> &mut FuncEdgeProfile {
        &mut self.funcs[f.index()]
    }

    /// Program-wide branch flow (the denominator of branch-flow ratios;
    /// saturating).
    pub fn total_branch_flow(&self) -> u64 {
        self.funcs
            .iter()
            .fold(0u64, |acc, p| acc.saturating_add(p.total_branch_flow()))
    }

    /// `true` when any function's counters have pinned at [`u64::MAX`].
    pub fn saturated(&self) -> bool {
        self.funcs.iter().any(FuncEdgeProfile::saturated)
    }

    /// Derives an edge profile from a path profile, reversing the exact
    /// tracer's bookkeeping: every taken edge on a path bumps that edge
    /// and its target block, return-ending paths contribute function
    /// entries, and the entry block is bumped once per entry. For a
    /// complete path profile of a terminating run, the result is exactly
    /// the edge profile the tracer would have recorded (in particular it
    /// is flow conservative).
    ///
    /// Paths that do not fit `module` — dangling block/successor
    /// references or edges that fail to chain — are skipped rather than
    /// trusted; the second return value counts the *dynamic* flow dropped
    /// that way. This is the degradation-ladder rung that rebuilds
    /// instrumentation guidance from whatever paths survived a corrupted
    /// or truncated artifact.
    pub fn from_paths(module: &crate::Module, paths: &crate::ModulePathProfile) -> (Self, u64) {
        let mut out = Self::zeroed(module);
        let mut dropped = 0u64;
        for (fid, key, stats) in paths.iter() {
            if fid.index() >= module.functions.len() {
                dropped = dropped.saturating_add(stats.freq);
                continue;
            }
            let f = module.function(fid);
            let p = &mut out.funcs[fid.index()];
            if !apply_path(f, p, key, stats.freq) {
                dropped = dropped.saturating_add(stats.freq);
            }
        }
        (out, dropped)
    }

    /// `true` when the profile has one entry per function and each
    /// matches that function's shape.
    pub fn shape_matches(&self, module: &crate::Module) -> bool {
        self.funcs.len() == module.functions.len()
            && self
                .funcs
                .iter()
                .zip(&module.functions)
                .all(|(p, f)| p.shape_matches(f))
    }

    /// `true` when the profile matches `module`'s shape and every
    /// function's counts satisfy flow conservation
    /// (see [`FuncEdgeProfile::flow_violations`]).
    pub fn is_flow_conservative(&self, module: &crate::Module) -> bool {
        self.shape_matches(module)
            && self
                .funcs
                .iter()
                .zip(&module.functions)
                .all(|(p, f)| p.flow_violations(f).is_empty())
    }

    /// Merges another module profile of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn merge(&mut self, other: &ModuleEdgeProfile) {
        assert_eq!(self.funcs.len(), other.funcs.len());
        for (a, b) in self.funcs.iter_mut().zip(&other.funcs) {
            a.merge(b);
        }
    }

    /// Summarizes the profile for telemetry (see [`ProfileStats`]).
    pub fn stats(&self) -> ProfileStats {
        ProfileStats {
            functions: self.funcs.len() as u64,
            entries: self
                .funcs
                .iter()
                .fold(0u64, |acc, p| acc.saturating_add(p.entries())),
            total_edge_flow: self
                .funcs
                .iter()
                .fold(0u64, |acc, p| acc.saturating_add(p.total_edge_flow())),
            total_branch_flow: self
                .funcs
                .iter()
                .fold(0u64, |acc, p| acc.saturating_add(p.total_branch_flow())),
            saturated_functions: self.funcs.iter().filter(|p| p.saturated()).count() as u64,
            zero_functions: self.funcs.iter().filter(|p| p.is_zero()).count() as u64,
        }
    }
}

/// Aggregate metadata about an edge profile, cheap to compute and stable
/// to report: the observability layer records these as gauges per
/// pipeline stage, and `repro trace` prints them in its breakdown tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProfileStats {
    /// Functions covered by the profile.
    pub functions: u64,
    /// Total function entries observed.
    pub entries: u64,
    /// Total edge flow (sum over all edges; saturating).
    pub total_edge_flow: u64,
    /// Total branch flow (the accuracy denominator; saturating).
    pub total_branch_flow: u64,
    /// Functions with at least one counter pinned at [`u64::MAX`].
    pub saturated_functions: u64,
    /// Functions with no recorded flow at all (cold or unreached).
    pub zero_functions: u64,
}

/// Replays one path onto `p`, validating every reference against `f`.
/// Returns `false` (leaving `p` untouched) when the path does not fit.
fn apply_path(f: &Function, p: &mut FuncEdgeProfile, key: &crate::PathKey, freq: u64) -> bool {
    if key.start.index() >= f.blocks.len() {
        return false;
    }
    // Validation pass first so a half-applied malformed path cannot skew
    // the counts it already touched.
    let mut cur = key.start;
    for e in &key.edges {
        if e.from != cur || e.from.index() >= f.blocks.len() {
            return false;
        }
        match f.block(e.from).term.successor(e.succ_index()) {
            Some(tgt) => cur = tgt,
            None => return false,
        }
    }
    let final_block = cur;
    for e in &key.edges {
        let tgt = f.edge_target(*e);
        let c = &mut p.edge_freq[e.from.index()][e.succ_index()];
        *c = c.saturating_add(freq);
        let b = &mut p.block_freq[tgt.index()];
        *b = b.saturating_add(freq);
    }
    // Back edges never target a return block (a return block cannot lie on
    // a cycle), so a path whose final block returns is a return-ending
    // path: it accounts for one function activation, whose entry the
    // tracer bumps on function entry.
    if f.block(final_block).term.is_return() {
        p.entries = p.entries.saturating_add(freq);
        let b = &mut p.block_freq[f.entry.index()];
        *b = b.saturating_add(freq);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;
    use crate::ids::Reg;

    fn branchy() -> Function {
        let mut b = FunctionBuilder::new("f", 1);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(Reg(0), t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn stats_summarize_entries_flow_and_cold_functions() {
        let mut m = crate::Module::new();
        let fa = m.add_function(branchy());
        let fb = m.add_function(branchy());
        let mut mp = ModuleEdgeProfile::zeroed(&m);
        mp.func_mut(fa).bump_entry();
        mp.func_mut(fa).bump_edge(EdgeRef::new(BlockId(0), 0));
        mp.func_mut(fa).bump_edge(EdgeRef::new(BlockId(0), 0));
        mp.func_mut(fb)
            .set_edge(EdgeRef::new(BlockId(0), 1), u64::MAX);
        let s = mp.stats();
        assert_eq!(s.functions, 2);
        assert_eq!(s.entries, 1);
        assert_eq!(s.total_edge_flow, u64::MAX); // saturating sum
        assert_eq!(s.saturated_functions, 1);
        assert_eq!(s.zero_functions, 0);
        assert_eq!(ModuleEdgeProfile::zeroed(&m).stats().zero_functions, 2);
    }

    #[test]
    fn bump_and_read() {
        let f = branchy();
        let mut p = FuncEdgeProfile::zeroed(&f);
        let e0 = EdgeRef::new(BlockId(0), 0);
        p.bump_entry();
        p.bump_block(BlockId(0));
        p.bump_edge(e0);
        p.bump_edge(e0);
        assert_eq!(p.edge(e0), 2);
        assert_eq!(p.block(BlockId(0)), 1);
        assert_eq!(p.entries(), 1);
    }

    #[test]
    fn branch_flow_counts_only_multi_successor_sources() {
        let f = branchy();
        let mut p = FuncEdgeProfile::zeroed(&f);
        // Branch edges from b0 (2 successors) count; jump edges do not.
        p.set_edge(EdgeRef::new(BlockId(0), 0), 7);
        p.set_edge(EdgeRef::new(BlockId(0), 1), 3);
        p.set_edge(EdgeRef::new(BlockId(1), 0), 7);
        p.set_edge(EdgeRef::new(BlockId(2), 0), 3);
        assert_eq!(p.total_branch_flow(), 10);
        assert_eq!(p.total_edge_flow(), 20);
    }

    #[test]
    fn merge_adds_counts() {
        let f = branchy();
        let mut a = FuncEdgeProfile::zeroed(&f);
        let mut b = FuncEdgeProfile::zeroed(&f);
        let e = EdgeRef::new(BlockId(0), 1);
        a.bump_edge(e);
        b.bump_edge(e);
        b.bump_entry();
        a.merge(&b);
        assert_eq!(a.edge(e), 2);
        assert_eq!(a.entries(), 1);
    }

    #[test]
    fn trip_count_estimation() {
        let f = branchy();
        let mut p = FuncEdgeProfile::zeroed(&f);
        let back = EdgeRef::new(BlockId(1), 0);
        let entry = EdgeRef::new(BlockId(0), 0);
        p.set_edge(back, 90);
        p.set_edge(entry, 10);
        assert_eq!(p.loop_trip_count(&[back], &[entry]), Some(10.0));
        let cold = FuncEdgeProfile::zeroed(&f);
        assert_eq!(cold.loop_trip_count(&[back], &[entry]), None);
    }

    #[test]
    fn shape_match_detects_mismatches() {
        let f = branchy();
        let p = FuncEdgeProfile::zeroed(&f);
        assert!(p.shape_matches(&f));
        let mut g = FunctionBuilder::new("g", 0);
        g.ret(None);
        let g = g.finish();
        assert!(!p.shape_matches(&g));
    }

    #[test]
    fn conservative_profile_has_no_violations() {
        // branchy: b0 -> b1 | b2, b1 -> b3, b2 -> b3, b3 ret.
        let f = branchy();
        let mut p = FuncEdgeProfile::zeroed(&f);
        p.set_entries(10);
        p.set_block(BlockId(0), 10);
        p.set_edge(EdgeRef::new(BlockId(0), 0), 7);
        p.set_edge(EdgeRef::new(BlockId(0), 1), 3);
        p.set_block(BlockId(1), 7);
        p.set_edge(EdgeRef::new(BlockId(1), 0), 7);
        p.set_block(BlockId(2), 3);
        p.set_edge(EdgeRef::new(BlockId(2), 0), 3);
        p.set_block(BlockId(3), 10);
        assert_eq!(p.flow_violations(&f), vec![]);
        assert!(p.is_flow_conservative(&f));
    }

    #[test]
    fn each_kirchhoff_side_is_detected() {
        let f = branchy();
        let mut p = FuncEdgeProfile::zeroed(&f);
        p.set_entries(1);
        // Entry block frequency missing: in-flow 1 vs freq 0, and the
        // exit check (returns total 0 vs 1 entry) also fires.
        let v = p.flow_violations(&f);
        assert!(v
            .iter()
            .any(|x| x.kind == FlowViolationKind::In && x.block == Some(BlockId(0))));
        assert!(v.iter().any(|x| x.kind == FlowViolationKind::Exit));
        assert!(!p.is_flow_conservative(&f));

        // Out-flow: block executed but no edge leaves it.
        let mut q = FuncEdgeProfile::zeroed(&f);
        q.set_block(BlockId(1), 5);
        let v = q.flow_violations(&f);
        assert!(v
            .iter()
            .any(|x| x.kind == FlowViolationKind::Out && x.block == Some(BlockId(1))));
    }

    #[test]
    fn zero_profile_is_conservative() {
        let f = branchy();
        let p = FuncEdgeProfile::zeroed(&f);
        assert!(p.is_flow_conservative(&f));
    }

    #[test]
    fn module_conservation_covers_all_functions() {
        let mut m = crate::Module::new();
        m.add_function(branchy());
        m.add_function(branchy());
        let mut p = ModuleEdgeProfile::zeroed(&m);
        assert!(p.shape_matches(&m) && p.is_flow_conservative(&m));
        p.func_mut(FuncId(1)).set_block(BlockId(2), 1);
        assert!(!p.is_flow_conservative(&m));
        p.funcs.pop();
        assert!(!p.shape_matches(&m));
    }

    #[test]
    fn saturated_counters_never_wrap_totals_or_flow_checks() {
        let f = branchy();
        let mut p = FuncEdgeProfile::zeroed(&f);
        // Two pinned branch edges: totals must pin at MAX, not wrap to ~MAX-1.
        p.set_edge(EdgeRef::new(BlockId(0), 0), u64::MAX);
        p.set_edge(EdgeRef::new(BlockId(0), 1), u64::MAX);
        assert_eq!(p.total_edge_flow(), u64::MAX);
        assert_eq!(p.total_branch_flow(), u64::MAX);
        assert!(p.saturated());

        // flow_violations must *report* (not overflow) on a saturated
        // profile: b3 receives MAX from both b1 and b2.
        p.set_edge(EdgeRef::new(BlockId(1), 0), u64::MAX);
        p.set_edge(EdgeRef::new(BlockId(2), 0), u64::MAX);
        p.set_block(BlockId(3), u64::MAX);
        p.set_entries(u64::MAX);
        let v = p.flow_violations(&f); // must not panic in debug builds
        assert!(v.iter().any(|x| x.kind == FlowViolationKind::In));

        // Module totals saturate too.
        let mut m = crate::Module::new();
        m.add_function(branchy());
        m.add_function(branchy());
        let mut mp = ModuleEdgeProfile::zeroed(&m);
        mp.func_mut(FuncId(0))
            .set_edge(EdgeRef::new(BlockId(0), 0), u64::MAX);
        mp.func_mut(FuncId(1))
            .set_edge(EdgeRef::new(BlockId(0), 1), 9);
        assert_eq!(mp.total_branch_flow(), u64::MAX);
    }

    #[test]
    fn merge_saturates_at_max() {
        let f = branchy();
        let e = EdgeRef::new(BlockId(0), 0);
        let mut a = FuncEdgeProfile::zeroed(&f);
        a.set_edge(e, u64::MAX - 1);
        a.set_entries(u64::MAX);
        let mut b = FuncEdgeProfile::zeroed(&f);
        b.set_edge(e, 5);
        b.set_entries(1);
        a.merge(&b);
        assert_eq!(a.edge(e), u64::MAX);
        assert_eq!(a.entries(), u64::MAX);
    }

    #[test]
    fn module_profile_totals() {
        let mut m = crate::Module::new();
        m.add_function(branchy());
        m.add_function(branchy());
        let mut p = ModuleEdgeProfile::zeroed(&m);
        p.func_mut(FuncId(0))
            .set_edge(EdgeRef::new(BlockId(0), 0), 5);
        p.func_mut(FuncId(1))
            .set_edge(EdgeRef::new(BlockId(0), 1), 6);
        assert_eq!(p.total_branch_flow(), 11);
    }
}
