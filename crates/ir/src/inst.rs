//! Instructions, terminators, and profiling operations.
//!
//! The IR is a low-level untyped register machine over `i64` values,
//! comparable in granularity to Scale's low-level internal representation
//! that the paper counts "instructions" in (Table 1). Every instruction
//! except [`Inst::Prof`] is ordinary program code; [`Inst::Prof`] carries a
//! [`ProfOp`] inserted by a path-profiling instrumenter and manipulates the
//! implicit per-activation *path register* `r` and the per-function path
//! frequency table.

use crate::ids::{BlockId, FuncId, Reg, TableId};
use std::fmt;

/// Binary arithmetic, logic, and comparison operators.
///
/// Comparison operators produce `1` for true and `0` for false.
/// `Div`/`Rem` by zero produce `0` (the VM is total and deterministic).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; `x / 0 == 0`.
    Div,
    /// Remainder; `x % 0 == 0`.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift by `rhs & 63`.
    Shl,
    /// Arithmetic right shift by `rhs & 63`.
    Shr,
    /// `1` if `lhs < rhs` else `0`.
    Lt,
    /// `1` if `lhs <= rhs` else `0`.
    Le,
    /// `1` if `lhs == rhs` else `0`.
    Eq,
    /// `1` if `lhs != rhs` else `0`.
    Ne,
    /// Minimum of the operands.
    Min,
    /// Maximum of the operands.
    Max,
}

impl BinOp {
    /// Evaluates the operator on two values, matching the VM semantics.
    pub fn eval(self, lhs: i64, rhs: i64) -> i64 {
        match self {
            BinOp::Add => lhs.wrapping_add(rhs),
            BinOp::Sub => lhs.wrapping_sub(rhs),
            BinOp::Mul => lhs.wrapping_mul(rhs),
            BinOp::Div => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_div(rhs)
                }
            }
            BinOp::Rem => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_rem(rhs)
                }
            }
            BinOp::And => lhs & rhs,
            BinOp::Or => lhs | rhs,
            BinOp::Xor => lhs ^ rhs,
            BinOp::Shl => lhs.wrapping_shl((rhs & 63) as u32),
            BinOp::Shr => lhs.wrapping_shr((rhs & 63) as u32),
            BinOp::Lt => i64::from(lhs < rhs),
            BinOp::Le => i64::from(lhs <= rhs),
            BinOp::Eq => i64::from(lhs == rhs),
            BinOp::Ne => i64::from(lhs != rhs),
            BinOp::Min => lhs.min(rhs),
            BinOp::Max => lhs.max(rhs),
        }
    }

    /// Returns the lowercase mnemonic used by the printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Lt => "lt",
            BinOp::Le => "le",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }

    /// Parses a mnemonic produced by [`BinOp::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "div" => BinOp::Div,
            "rem" => BinOp::Rem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "shr" => BinOp::Shr,
            "lt" => BinOp::Lt,
            "le" => BinOp::Le,
            "eq" => BinOp::Eq,
            "ne" => BinOp::Ne,
            "min" => BinOp::Min,
            "max" => BinOp::Max,
            _ => return None,
        })
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Wrapping arithmetic negation.
    Neg,
    /// Bitwise complement.
    Not,
}

impl UnOp {
    /// Evaluates the operator, matching the VM semantics.
    pub fn eval(self, v: i64) -> i64 {
        match self {
            UnOp::Neg => v.wrapping_neg(),
            UnOp::Not => !v,
        }
    }

    /// Returns the lowercase mnemonic used by the printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
        }
    }

    /// Parses a mnemonic produced by [`UnOp::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "neg" => UnOp::Neg,
            "not" => UnOp::Not,
            _ => return None,
        })
    }
}

/// A path-profiling runtime operation, inserted by an instrumenter.
///
/// Each operation manipulates the implicit per-activation path register
/// `r` and/or a counter table. These are exactly the instrumentation forms
/// the paper describes: `r=0`/`r=c` initialization and poisoning (§3.1,
/// §4.6), `r+=c` increments, and the three counting forms produced by
/// pushing and combining instrumentation (§3.1): `count[r]++`,
/// `count[r+c]++`, and `count[c]++`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProfOp {
    /// `r = value` — path register initialization or poisoning.
    SetR {
        /// Value assigned to the path register.
        value: i64,
    },
    /// `r += value` — path register increment.
    AddR {
        /// Value added to the path register.
        value: i64,
    },
    /// `count[r]++` — bump the counter indexed by the path register.
    CountR {
        /// Counter table to update.
        table: TableId,
    },
    /// `count[r + addend]++` — combined increment-and-count.
    CountRPlus {
        /// Counter table to update.
        table: TableId,
        /// Constant added to the path register to form the index.
        addend: i64,
    },
    /// `count[index]++` — constant-index count (fully combined; the path
    /// register is not read). This is the cheapest form and is what an
    /// *obvious path* (§3.2) degenerates to after pushing.
    CountConst {
        /// Counter table to update.
        table: TableId,
        /// Constant counter index.
        index: i64,
    },
    /// `if r < 0 { cold++ } else { count[r]++ }` — TPP-style counting with
    /// an explicit poison check (§3.2). The check adds one cost unit; PPP's
    /// free poisoning (§4.6) exists to eliminate it.
    CountRChecked {
        /// Counter table to update.
        table: TableId,
    },
    /// `if r < 0 { cold++ } else { count[r + addend]++ }` — checked
    /// combined increment-and-count.
    CountRPlusChecked {
        /// Counter table to update.
        table: TableId,
        /// Constant added to the path register to form the index.
        addend: i64,
    },
}

impl ProfOp {
    /// Returns the counter table this op updates, if it is a counting op.
    pub fn table(self) -> Option<TableId> {
        match self {
            ProfOp::SetR { .. } | ProfOp::AddR { .. } => None,
            ProfOp::CountR { table }
            | ProfOp::CountRPlus { table, .. }
            | ProfOp::CountConst { table, .. }
            | ProfOp::CountRChecked { table }
            | ProfOp::CountRPlusChecked { table, .. } => Some(table),
        }
    }

    /// Returns `true` if this op updates a counter table.
    pub fn is_count(self) -> bool {
        self.table().is_some()
    }

    /// Returns `true` if this op only touches the path register.
    pub fn is_register_only(self) -> bool {
        !self.is_count()
    }

    /// Returns `true` for the checked (poison-testing) counting forms.
    pub fn is_checked(self) -> bool {
        matches!(
            self,
            ProfOp::CountRChecked { .. } | ProfOp::CountRPlusChecked { .. }
        )
    }
}

impl fmt::Display for ProfOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ProfOp::SetR { value } => write!(f, "prof r = {value}"),
            ProfOp::AddR { value } => write!(f, "prof r += {value}"),
            ProfOp::CountR { table } => write!(f, "prof count {table}[r]"),
            ProfOp::CountRPlus { table, addend } => {
                write!(f, "prof count {table}[r + {addend}]")
            }
            ProfOp::CountConst { table, index } => {
                write!(f, "prof count {table}[{index}]")
            }
            ProfOp::CountRChecked { table } => write!(f, "prof countck {table}[r]"),
            ProfOp::CountRPlusChecked { table, addend } => {
                write!(f, "prof countck {table}[r + {addend}]")
            }
        }
    }
}

/// A non-terminator instruction.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// `dst = value`.
    Const {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: i64,
    },
    /// `dst = src`.
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = op src`.
    Unary {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: UnOp,
        /// Operand register.
        src: Reg,
    },
    /// `dst = lhs op rhs`.
    Binary {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = memory[addr % MEM_SIZE]` — load from the VM's global memory.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address register (wrapped into the memory size).
        addr: Reg,
    },
    /// `memory[addr % MEM_SIZE] = src` — store to the VM's global memory.
    Store {
        /// Address register (wrapped into the memory size).
        addr: Reg,
        /// Value register.
        src: Reg,
    },
    /// `dst = uniform random in [0, max(bound, 1))`.
    ///
    /// This is the *synthetic input intrinsic*: it stands in for reading
    /// program input (SPEC ref inputs in the paper). The VM draws from a
    /// deterministic seeded stream, so runs are reproducible and the same
    /// seed yields bit-identical control flow across instrumented and
    /// uninstrumented executions.
    Rand {
        /// Destination register.
        dst: Reg,
        /// Exclusive upper bound register (values `< 1` behave as `1`).
        bound: Reg,
    },
    /// Call `callee(args...)`, optionally receiving the return value.
    ///
    /// Per Ball–Larus path semantics (§3.1), a call *defers* the caller's
    /// current path: the callee's blocks form their own paths and the
    /// caller's path register is per-activation, so it resumes unchanged
    /// after the call returns.
    Call {
        /// Register receiving the return value, if any.
        dst: Option<Reg>,
        /// Callee.
        callee: FuncId,
        /// Argument registers, copied into the callee's `r0..`.
        args: Vec<Reg>,
    },
    /// Fold `src` into the VM's output checksum.
    ///
    /// Used as an observable effect so that program results can be compared
    /// between uninstrumented, instrumented, and optimized versions.
    Emit {
        /// Value folded into the checksum.
        src: Reg,
    },
    /// A profiling runtime operation (see [`ProfOp`]).
    Prof(ProfOp),
}

impl Inst {
    /// Returns the register this instruction writes, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Unary { dst, .. }
            | Inst::Binary { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Rand { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } | Inst::Emit { .. } | Inst::Prof(_) => None,
        }
    }

    /// Appends the registers this instruction reads to `out`.
    pub fn uses(&self, out: &mut Vec<Reg>) {
        match self {
            Inst::Const { .. } | Inst::Prof(_) => {}
            Inst::Copy { src, .. } | Inst::Unary { src, .. } | Inst::Emit { src } => out.push(*src),
            Inst::Binary { lhs, rhs, .. } => {
                out.push(*lhs);
                out.push(*rhs);
            }
            Inst::Load { addr, .. } => out.push(*addr),
            Inst::Store { addr, src } => {
                out.push(*addr);
                out.push(*src);
            }
            Inst::Rand { bound, .. } => out.push(*bound),
            Inst::Call { args, .. } => out.extend_from_slice(args),
        }
    }

    /// Returns `true` if this is profiling instrumentation rather than
    /// original program code.
    pub fn is_prof(&self) -> bool {
        matches!(self, Inst::Prof(_))
    }
}

/// A block terminator.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Terminator {
    /// Unconditional jump.
    Jump {
        /// Target block.
        target: BlockId,
    },
    /// Two-way conditional branch: `cond != 0` takes `then_target`.
    Branch {
        /// Condition register.
        cond: Reg,
        /// Successor 0, taken when the condition is non-zero.
        then_target: BlockId,
        /// Successor 1, taken when the condition is zero.
        else_target: BlockId,
    },
    /// Multi-way branch: value `v` in `0..targets.len()` selects
    /// `targets[v]`; anything else selects `default`.
    Switch {
        /// Discriminant register.
        disc: Reg,
        /// In-range targets.
        targets: Vec<BlockId>,
        /// Out-of-range target (successor index `targets.len()`).
        default: BlockId,
    },
    /// Return from the function.
    Return {
        /// Returned value, or `0` if absent.
        value: Option<Reg>,
    },
}

impl Terminator {
    /// Returns the successor blocks in successor-index order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump { target } => vec![*target],
            Terminator::Branch {
                then_target,
                else_target,
                ..
            } => vec![*then_target, *else_target],
            Terminator::Switch {
                targets, default, ..
            } => {
                let mut v = targets.clone();
                v.push(*default);
                v
            }
            Terminator::Return { .. } => Vec::new(),
        }
    }

    /// Returns the number of successors without allocating.
    pub fn successor_count(&self) -> usize {
        match self {
            Terminator::Jump { .. } => 1,
            Terminator::Branch { .. } => 2,
            Terminator::Switch { targets, .. } => targets.len() + 1,
            Terminator::Return { .. } => 0,
        }
    }

    /// Returns the `i`-th successor, if it exists.
    pub fn successor(&self, i: usize) -> Option<BlockId> {
        match self {
            Terminator::Jump { target } => (i == 0).then_some(*target),
            Terminator::Branch {
                then_target,
                else_target,
                ..
            } => match i {
                0 => Some(*then_target),
                1 => Some(*else_target),
                _ => None,
            },
            Terminator::Switch {
                targets, default, ..
            } => {
                if i < targets.len() {
                    Some(targets[i])
                } else if i == targets.len() {
                    Some(*default)
                } else {
                    None
                }
            }
            Terminator::Return { .. } => None,
        }
    }

    /// Replaces the `i`-th successor.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for this terminator.
    pub fn set_successor(&mut self, i: usize, new: BlockId) {
        match self {
            Terminator::Jump { target } => {
                assert_eq!(i, 0, "jump has a single successor");
                *target = new;
            }
            Terminator::Branch {
                then_target,
                else_target,
                ..
            } => match i {
                0 => *then_target = new,
                1 => *else_target = new,
                _ => panic!("branch successor index {i} out of range"),
            },
            Terminator::Switch {
                targets, default, ..
            } => {
                if i < targets.len() {
                    targets[i] = new;
                } else if i == targets.len() {
                    *default = new;
                } else {
                    panic!("switch successor index {i} out of range");
                }
            }
            Terminator::Return { .. } => panic!("return has no successors"),
        }
    }

    /// Returns `true` for [`Terminator::Return`].
    pub fn is_return(&self) -> bool {
        matches!(self, Terminator::Return { .. })
    }

    /// Returns the register this terminator reads, if any.
    pub fn use_reg(&self) -> Option<Reg> {
        match self {
            Terminator::Jump { .. } => None,
            Terminator::Branch { cond, .. } => Some(*cond),
            Terminator::Switch { disc, .. } => Some(*disc),
            Terminator::Return { value } => *value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_arithmetic() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Sub.eval(2, 3), -1);
        assert_eq!(BinOp::Mul.eval(4, -3), -12);
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), i64::MIN);
    }

    #[test]
    fn binop_div_rem_by_zero_is_zero() {
        assert_eq!(BinOp::Div.eval(5, 0), 0);
        assert_eq!(BinOp::Rem.eval(5, 0), 0);
        assert_eq!(BinOp::Div.eval(i64::MIN, -1), i64::MIN.wrapping_div(-1));
    }

    #[test]
    fn binop_comparisons_are_zero_one() {
        assert_eq!(BinOp::Lt.eval(1, 2), 1);
        assert_eq!(BinOp::Lt.eval(2, 1), 0);
        assert_eq!(BinOp::Eq.eval(7, 7), 1);
        assert_eq!(BinOp::Ne.eval(7, 7), 0);
        assert_eq!(BinOp::Le.eval(3, 3), 1);
    }

    #[test]
    fn binop_shifts_mask_amount() {
        assert_eq!(BinOp::Shl.eval(1, 64), 1);
        assert_eq!(BinOp::Shl.eval(1, 3), 8);
        assert_eq!(BinOp::Shr.eval(-8, 1), -4);
    }

    #[test]
    fn mnemonic_roundtrip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Min,
            BinOp::Max,
        ] {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(BinOp::from_mnemonic("bogus"), None);
        for op in [UnOp::Neg, UnOp::Not] {
            assert_eq!(UnOp::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Neg.eval(5), -5);
        assert_eq!(UnOp::Not.eval(0), -1);
        assert_eq!(UnOp::Neg.eval(i64::MIN), i64::MIN);
    }

    #[test]
    fn prof_op_classification() {
        let t = TableId::new(0);
        assert!(ProfOp::SetR { value: 0 }.is_register_only());
        assert!(ProfOp::AddR { value: 3 }.is_register_only());
        assert!(ProfOp::CountR { table: t }.is_count());
        assert_eq!(
            ProfOp::CountRPlus {
                table: t,
                addend: 2
            }
            .table(),
            Some(t)
        );
        assert_eq!(ProfOp::SetR { value: 4 }.table(), None);
    }

    #[test]
    fn prof_op_display() {
        let t = TableId::new(1);
        assert_eq!(ProfOp::SetR { value: 0 }.to_string(), "prof r = 0");
        assert_eq!(ProfOp::AddR { value: -2 }.to_string(), "prof r += -2");
        assert_eq!(ProfOp::CountR { table: t }.to_string(), "prof count t1[r]");
        assert_eq!(
            ProfOp::CountRPlus {
                table: t,
                addend: 2
            }
            .to_string(),
            "prof count t1[r + 2]"
        );
        assert_eq!(
            ProfOp::CountConst { table: t, index: 5 }.to_string(),
            "prof count t1[5]"
        );
    }

    #[test]
    fn inst_def_use() {
        let mut uses = Vec::new();
        let i = Inst::Binary {
            dst: Reg(3),
            op: BinOp::Add,
            lhs: Reg(1),
            rhs: Reg(2),
        };
        assert_eq!(i.def(), Some(Reg(3)));
        i.uses(&mut uses);
        assert_eq!(uses, vec![Reg(1), Reg(2)]);

        uses.clear();
        let c = Inst::Call {
            dst: None,
            callee: FuncId(0),
            args: vec![Reg(5), Reg(6)],
        };
        assert_eq!(c.def(), None);
        c.uses(&mut uses);
        assert_eq!(uses, vec![Reg(5), Reg(6)]);

        assert!(Inst::Prof(ProfOp::SetR { value: 0 }).is_prof());
        assert!(!c.is_prof());
    }

    #[test]
    fn terminator_successors() {
        let b = Terminator::Branch {
            cond: Reg(0),
            then_target: BlockId(1),
            else_target: BlockId(2),
        };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(b.successor(0), Some(BlockId(1)));
        assert_eq!(b.successor(2), None);
        assert_eq!(b.successor_count(), 2);
        assert_eq!(b.use_reg(), Some(Reg(0)));

        let s = Terminator::Switch {
            disc: Reg(1),
            targets: vec![BlockId(3), BlockId(4)],
            default: BlockId(5),
        };
        assert_eq!(s.successor_count(), 3);
        assert_eq!(s.successor(2), Some(BlockId(5)));
        assert_eq!(s.successors(), vec![BlockId(3), BlockId(4), BlockId(5)]);

        let r = Terminator::Return { value: None };
        assert!(r.is_return());
        assert_eq!(r.successor_count(), 0);
        assert_eq!(r.use_reg(), None);
    }

    #[test]
    fn terminator_set_successor() {
        let mut t = Terminator::Branch {
            cond: Reg(0),
            then_target: BlockId(1),
            else_target: BlockId(2),
        };
        t.set_successor(1, BlockId(9));
        assert_eq!(t.successor(1), Some(BlockId(9)));

        let mut s = Terminator::Switch {
            disc: Reg(0),
            targets: vec![BlockId(1)],
            default: BlockId(2),
        };
        s.set_successor(1, BlockId(7));
        assert_eq!(s.successor(1), Some(BlockId(7)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_successor_out_of_range_panics() {
        let mut t = Terminator::Branch {
            cond: Reg(0),
            then_target: BlockId(1),
            else_target: BlockId(2),
        };
        t.set_successor(2, BlockId(0));
    }
}
