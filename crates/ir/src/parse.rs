//! Parser for the textual IR format produced by [`crate::display`].
//!
//! The grammar is line-oriented: table declarations, then functions. `;`
//! starts a comment running to end of line (a comment of exactly `entry`
//! after a block label marks a non-zero entry block).

use crate::function::{Block, Function};
use crate::ids::{BlockId, FuncId, Reg, TableId};
use crate::inst::{BinOp, Inst, ProfOp, Terminator, UnOp};
use crate::module::{Module, TableDecl, TableKind};
use std::collections::HashMap;
use std::fmt;

/// A parse failure with a 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line where the failure occurred.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

/// Parses a module from its textual form.
///
/// # Errors
///
/// Returns the first syntax error with its line number. Semantic problems
/// (dangling registers, arity mismatches) are left to
/// [`crate::verify::verify_module`].
///
/// # Examples
///
/// ```
/// let text = "\
/// func @id(params=1, regs=1) {
/// b0:
///   ret r0
/// }
/// ";
/// let module = ppp_ir::parse_module(text)?;
/// assert_eq!(module.functions.len(), 1);
/// # Ok::<(), ppp_ir::ParseError>(())
/// ```
pub fn parse_module(text: &str) -> Result<Module> {
    // Pass 1: collect function names so calls can resolve forward.
    let mut names: HashMap<String, FuncId> = HashMap::new();
    let mut next = 0u32;
    for (ln, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if let Some(rest) = line.strip_prefix("func @") {
            let name: String = rest.chars().take_while(|c| is_ident(*c)).collect();
            if name.is_empty() {
                return Err(err(ln, "missing function name after 'func @'"));
            }
            if names.insert(name.clone(), FuncId(next)).is_some() {
                return Err(err(ln, format!("duplicate function @{name}")));
            }
            next += 1;
        }
    }

    let mut parser = Parser {
        names: &names,
        module: Module::new(),
    };
    let mut lines = text.lines().enumerate().peekable();
    while let Some((ln, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("table ") {
            parser.parse_table(ln, &line)?;
        } else if line.starts_with("func ") {
            parser.parse_function(ln, &line, &mut lines)?;
        } else {
            return Err(err(ln, format!("expected 'table' or 'func', got {line:?}")));
        }
    }
    Ok(parser.module)
}

fn strip_comment(s: &str) -> &str {
    match s.find(';') {
        Some(i) => &s[..i],
        None => s,
    }
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

fn err(line0: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line: line0 + 1,
        message: message.into(),
    }
}

struct Parser<'a> {
    names: &'a HashMap<String, FuncId>,
    module: Module,
}

impl Parser<'_> {
    /// `table t0 func=@name array[24] hot=8`
    /// `table t1 func=@name hash[701x3] hot=5000`
    fn parse_table(&mut self, ln: usize, line: &str) -> Result<()> {
        let mut c = Cursor::new(ln, line);
        c.expect_word("table")?;
        let t = c.table_id()?;
        if t.index() != self.module.tables.len() {
            return Err(err(
                ln,
                format!("table ids must be declared in order; got {t}"),
            ));
        }
        c.expect_word("func")?;
        c.expect_char('=')?;
        let func = c.func_ref(self.names)?;
        let kind = if c.try_word("array") {
            c.expect_char('[')?;
            let size = c.unsigned()?;
            c.expect_char(']')?;
            TableKind::Array { size }
        } else if c.try_word("hash") {
            c.expect_char('[')?;
            let slots = c.unsigned()?;
            c.expect_char('x')?;
            let max_probes = c.unsigned()? as u32;
            c.expect_char(']')?;
            TableKind::Hash { slots, max_probes }
        } else {
            return Err(err(ln, "expected 'array[N]' or 'hash[SxP]'"));
        };
        c.expect_word("hot")?;
        c.expect_char('=')?;
        let hot_paths = c.unsigned()?;
        c.expect_end()?;
        self.module.add_table(TableDecl {
            func,
            kind,
            hot_paths,
        });
        Ok(())
    }

    /// `func @name(params=P, regs=R) {` ... `}`
    fn parse_function<'l>(
        &mut self,
        ln: usize,
        header: &str,
        lines: &mut std::iter::Peekable<impl Iterator<Item = (usize, &'l str)>>,
    ) -> Result<()> {
        let mut c = Cursor::new(ln, header);
        c.expect_word("func")?;
        c.expect_char('@')?;
        let name = c.ident()?;
        c.expect_char('(')?;
        c.expect_word("params")?;
        c.expect_char('=')?;
        let param_count = c.unsigned()? as u32;
        c.expect_char(',')?;
        c.expect_word("regs")?;
        c.expect_char('=')?;
        let reg_count = c.unsigned()? as u32;
        c.expect_char(')')?;
        c.expect_char('{')?;
        c.expect_end()?;

        let mut func = Function {
            name,
            param_count,
            reg_count,
            blocks: Vec::new(),
            entry: BlockId(0),
        };
        let mut current: Option<(BlockId, Vec<Inst>)> = None;

        loop {
            let (ln, raw) = lines
                .next()
                .ok_or_else(|| err(ln, "unterminated function body"))?;
            let no_comment = strip_comment(raw).trim().to_owned();
            let is_entry_comment = raw.contains("; entry");
            if no_comment.is_empty() {
                continue;
            }
            if no_comment == "}" {
                if current.is_some() {
                    return Err(err(ln, "block missing terminator before '}'"));
                }
                break;
            }
            if let Some(label) = no_comment.strip_suffix(':') {
                if current.is_some() {
                    return Err(err(ln, "previous block missing terminator"));
                }
                let id = parse_block_id(ln, label.trim())?;
                if id.index() != func.blocks.len() {
                    return Err(err(ln, format!("blocks must appear in order; got {id}")));
                }
                if is_entry_comment {
                    func.entry = id;
                }
                current = Some((id, Vec::new()));
                continue;
            }
            let (_, insts) = current
                .as_mut()
                .ok_or_else(|| err(ln, "instruction outside any block"))?;
            match self.parse_line(ln, &no_comment)? {
                Line::Inst(i) => insts.push(i),
                Line::Term(t) => {
                    let (_, insts) = current.take().expect("current checked above");
                    func.blocks.push(Block { insts, term: t });
                }
            }
        }
        self.module.add_function(func);
        Ok(())
    }

    fn parse_line(&self, ln: usize, line: &str) -> Result<Line> {
        let mut c = Cursor::new(ln, line);
        // Terminators and no-destination instructions first.
        if c.try_word("jmp") {
            let target = c.block_id()?;
            c.expect_end()?;
            return Ok(Line::Term(Terminator::Jump { target }));
        }
        if c.try_word("br") {
            let cond = c.reg()?;
            c.expect_char(',')?;
            let then_target = c.block_id()?;
            c.expect_char(',')?;
            let else_target = c.block_id()?;
            c.expect_end()?;
            return Ok(Line::Term(Terminator::Branch {
                cond,
                then_target,
                else_target,
            }));
        }
        if c.try_word("switch") {
            let disc = c.reg()?;
            c.expect_char(',')?;
            c.expect_char('[')?;
            let mut targets = Vec::new();
            if !c.peek_char(']') {
                loop {
                    targets.push(c.block_id()?);
                    if !c.try_char(',') {
                        break;
                    }
                }
            }
            c.expect_char(']')?;
            c.expect_char(',')?;
            let default = c.block_id()?;
            c.expect_end()?;
            return Ok(Line::Term(Terminator::Switch {
                disc,
                targets,
                default,
            }));
        }
        if c.try_word("ret") {
            if c.at_end() {
                return Ok(Line::Term(Terminator::Return { value: None }));
            }
            let v = c.reg()?;
            c.expect_end()?;
            return Ok(Line::Term(Terminator::Return { value: Some(v) }));
        }
        if c.try_word("store") {
            let addr = c.reg()?;
            c.expect_char(',')?;
            let src = c.reg()?;
            c.expect_end()?;
            return Ok(Line::Inst(Inst::Store { addr, src }));
        }
        if c.try_word("emit") {
            let src = c.reg()?;
            c.expect_end()?;
            return Ok(Line::Inst(Inst::Emit { src }));
        }
        if c.try_word("prof") {
            return Ok(Line::Inst(Inst::Prof(self.parse_prof(&mut c)?)));
        }
        if c.try_word("call") {
            let (callee, args) = self.parse_call_tail(&mut c)?;
            c.expect_end()?;
            return Ok(Line::Inst(Inst::Call {
                dst: None,
                callee,
                args,
            }));
        }
        // Otherwise: `rN = ...`
        let dst = c.reg()?;
        c.expect_char('=')?;
        if c.try_word("const") {
            let value = c.signed()?;
            c.expect_end()?;
            return Ok(Line::Inst(Inst::Const { dst, value }));
        }
        if c.try_word("copy") {
            let src = c.reg()?;
            c.expect_end()?;
            return Ok(Line::Inst(Inst::Copy { dst, src }));
        }
        if c.try_word("load") {
            let addr = c.reg()?;
            c.expect_end()?;
            return Ok(Line::Inst(Inst::Load { dst, addr }));
        }
        if c.try_word("rand") {
            let bound = c.reg()?;
            c.expect_end()?;
            return Ok(Line::Inst(Inst::Rand { dst, bound }));
        }
        if c.try_word("call") {
            let (callee, args) = self.parse_call_tail(&mut c)?;
            c.expect_end()?;
            return Ok(Line::Inst(Inst::Call {
                dst: Some(dst),
                callee,
                args,
            }));
        }
        let word = c.ident()?;
        if let Some(op) = UnOp::from_mnemonic(&word) {
            let src = c.reg()?;
            c.expect_end()?;
            return Ok(Line::Inst(Inst::Unary { dst, op, src }));
        }
        if let Some(op) = BinOp::from_mnemonic(&word) {
            let lhs = c.reg()?;
            c.expect_char(',')?;
            let rhs = c.reg()?;
            c.expect_end()?;
            return Ok(Line::Inst(Inst::Binary { dst, op, lhs, rhs }));
        }
        Err(err(ln, format!("unknown operation {word:?}")))
    }

    fn parse_call_tail(&self, c: &mut Cursor<'_>) -> Result<(FuncId, Vec<Reg>)> {
        let callee = c.func_ref(self.names)?;
        c.expect_char('(')?;
        let mut args = Vec::new();
        if !c.peek_char(')') {
            loop {
                args.push(c.reg()?);
                if !c.try_char(',') {
                    break;
                }
            }
        }
        c.expect_char(')')?;
        Ok((callee, args))
    }

    /// After the `prof` keyword:
    /// `r = C` | `r += C` | `count tN[r]` | `count tN[r + C]` | `count tN[C]`
    fn parse_prof(&self, c: &mut Cursor<'_>) -> Result<ProfOp> {
        let checked = if c.try_word("countck") {
            Some(true)
        } else if c.try_word("count") {
            Some(false)
        } else {
            None
        };
        if let Some(checked) = checked {
            let table = c.table_id()?;
            c.expect_char('[')?;
            if c.try_word("r") {
                if c.try_char('+') {
                    let addend = c.signed()?;
                    c.expect_char(']')?;
                    c.expect_end()?;
                    return Ok(if checked {
                        ProfOp::CountRPlusChecked { table, addend }
                    } else {
                        ProfOp::CountRPlus { table, addend }
                    });
                }
                c.expect_char(']')?;
                c.expect_end()?;
                return Ok(if checked {
                    ProfOp::CountRChecked { table }
                } else {
                    ProfOp::CountR { table }
                });
            }
            if checked {
                return Err(c.fail("countck requires an r-relative index"));
            }
            let index = c.signed()?;
            c.expect_char(']')?;
            c.expect_end()?;
            return Ok(ProfOp::CountConst { table, index });
        }
        c.expect_word("r")?;
        if c.try_char('+') {
            c.expect_char('=')?;
            let value = c.signed()?;
            c.expect_end()?;
            return Ok(ProfOp::AddR { value });
        }
        c.expect_char('=')?;
        let value = c.signed()?;
        c.expect_end()?;
        Ok(ProfOp::SetR { value })
    }
}

enum Line {
    Inst(Inst),
    Term(Terminator),
}

fn parse_block_id(ln: usize, s: &str) -> Result<BlockId> {
    s.strip_prefix('b')
        .and_then(|n| n.parse::<u32>().ok())
        .map(BlockId)
        .ok_or_else(|| err(ln, format!("expected block label like 'b0', got {s:?}")))
}

/// Tiny character cursor over one line.
struct Cursor<'a> {
    line0: usize,
    text: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(line0: usize, text: &'a str) -> Self {
        Self {
            line0,
            text,
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.text[self.pos..].starts_with([' ', '\t']) {
            self.pos += 1;
        }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.rest().is_empty()
    }

    fn fail(&self, message: impl Into<String>) -> ParseError {
        err(self.line0, message)
    }

    fn expect_end(&mut self) -> Result<()> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.fail(format!("unexpected trailing input {:?}", self.rest())))
        }
    }

    fn try_char(&mut self, ch: char) -> bool {
        self.skip_ws();
        if self.rest().starts_with(ch) {
            self.pos += ch.len_utf8();
            true
        } else {
            false
        }
    }

    fn peek_char(&mut self, ch: char) -> bool {
        self.skip_ws();
        self.rest().starts_with(ch)
    }

    fn expect_char(&mut self, ch: char) -> Result<()> {
        if self.try_char(ch) {
            Ok(())
        } else {
            Err(self.fail(format!("expected {ch:?} at {:?}", self.rest())))
        }
    }

    fn try_word(&mut self, word: &str) -> bool {
        self.skip_ws();
        let rest = self.rest();
        if let Some(after) = rest.strip_prefix(word) {
            if after.chars().next().is_none_or(|c| !is_ident(c)) {
                self.pos += word.len();
                return true;
            }
        }
        false
    }

    fn expect_word(&mut self, word: &str) -> Result<()> {
        if self.try_word(word) {
            Ok(())
        } else {
            Err(self.fail(format!("expected {word:?} at {:?}", self.rest())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let rest = self.rest();
        let n = rest.chars().take_while(|c| is_ident(*c)).count();
        if n == 0 {
            return Err(self.fail(format!("expected identifier at {rest:?}")));
        }
        let word = rest[..n].to_owned();
        self.pos += n;
        Ok(word)
    }

    fn unsigned(&mut self) -> Result<u64> {
        self.skip_ws();
        let rest = self.rest();
        let n = rest.chars().take_while(char::is_ascii_digit).count();
        if n == 0 {
            return Err(self.fail(format!("expected number at {rest:?}")));
        }
        let v = rest[..n]
            .parse::<u64>()
            .map_err(|e| self.fail(format!("bad number: {e}")))?;
        self.pos += n;
        Ok(v)
    }

    fn signed(&mut self) -> Result<i64> {
        self.skip_ws();
        let neg = self.try_char('-');
        let v = self.unsigned()? as i64;
        Ok(if neg { -v } else { v })
    }

    fn reg(&mut self) -> Result<Reg> {
        self.skip_ws();
        if !self.rest().starts_with('r') {
            return Err(self.fail(format!("expected register at {:?}", self.rest())));
        }
        self.pos += 1;
        Ok(Reg(self.unsigned()? as u32))
    }

    fn block_id(&mut self) -> Result<BlockId> {
        self.skip_ws();
        if !self.rest().starts_with('b') {
            return Err(self.fail(format!("expected block at {:?}", self.rest())));
        }
        self.pos += 1;
        Ok(BlockId(self.unsigned()? as u32))
    }

    fn table_id(&mut self) -> Result<TableId> {
        self.skip_ws();
        if !self.rest().starts_with('t') {
            return Err(self.fail(format!("expected table at {:?}", self.rest())));
        }
        self.pos += 1;
        Ok(TableId(self.unsigned()? as u32))
    }

    fn func_ref(&mut self, names: &HashMap<String, FuncId>) -> Result<FuncId> {
        self.expect_char('@')?;
        let name = self.ident()?;
        names
            .get(&name)
            .copied()
            .ok_or_else(|| self.fail(format!("unknown function @{name}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::print_module;
    use crate::verify::verify_module;

    const SAMPLE: &str = "\
; a comment line
table t0 func=@g array[12] hot=4

func @g(params=1, regs=3) {
b0:
  r1 = const -5
  r2 = add r0, r1
  prof r = 0
  prof r += 3
  prof count t0[r]
  prof count t0[r + 2]
  prof count t0[5]
  prof countck t0[r]
  prof countck t0[r + -2]
  ret r2
}

func @main(params=0, regs=6) {
b0:
  r0 = const 7
  r1 = rand r0
  r2 = call @g(r1)
  call @g(r2)
  r3 = neg r2
  store r0, r3
  r4 = load r0
  emit r4
  br r4, b1, b2
b1:
  switch r1, [b2, b3], b3
b2:
  jmp b3
b3:
  ret
}
";

    #[test]
    fn parses_sample() {
        let m = parse_module(SAMPLE).expect("sample parses");
        assert_eq!(m.functions.len(), 2);
        assert_eq!(m.tables.len(), 1);
        assert_eq!(verify_module(&m), Ok(()));
        let main = m.function_by_name("main").unwrap();
        assert_eq!(m.function(main).blocks.len(), 4);
    }

    #[test]
    fn print_parse_roundtrip() {
        let m = parse_module(SAMPLE).unwrap();
        let text = print_module(&m);
        let m2 = parse_module(&text).expect("printed module parses");
        assert_eq!(m, m2);
        assert_eq!(print_module(&m2), text);
    }

    #[test]
    fn forward_references_resolve() {
        let text = "\
func @a(params=0, regs=1) {
b0:
  r0 = call @b()
  ret r0
}
func @b(params=0, regs=1) {
b0:
  r0 = const 1
  ret r0
}
";
        let m = parse_module(text).unwrap();
        assert_eq!(verify_module(&m), Ok(()));
    }

    #[test]
    fn entry_comment_sets_entry() {
        let text = "\
func @f(params=0, regs=0) {
b0:
  ret
b1: ; entry
  jmp b0
}
";
        let m = parse_module(text).unwrap();
        assert_eq!(m.functions[0].entry, BlockId(1));
        // And it round-trips.
        let m2 = parse_module(&print_module(&m)).unwrap();
        assert_eq!(m2.functions[0].entry, BlockId(1));
    }

    #[test]
    fn error_reports_line() {
        let text = "func @f(params=0, regs=0) {\nb0:\n  bogus r1\n}\n";
        let e = parse_module(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn unknown_callee_rejected() {
        let text = "func @f(params=0, regs=1) {\nb0:\n  r0 = call @nope()\n  ret\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("unknown function"));
    }

    #[test]
    fn missing_terminator_rejected() {
        let text = "func @f(params=0, regs=1) {\nb0:\n  r0 = const 1\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("terminator"));
    }

    #[test]
    fn out_of_order_blocks_rejected() {
        let text = "func @f(params=0, regs=0) {\nb1:\n  ret\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("order"));
    }

    #[test]
    fn duplicate_function_rejected() {
        let text = "func @f(params=0, regs=0) {\nb0:\n  ret\n}\nfunc @f(params=0, regs=0) {\nb0:\n  ret\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn empty_switch_targets_parse() {
        let text = "func @f(params=0, regs=1) {\nb0:\n  r0 = const 0\n  switch r0, [], b1\nb1:\n  ret\n}\n";
        let m = parse_module(text).unwrap();
        assert_eq!(verify_module(&m), Ok(()));
    }
}
