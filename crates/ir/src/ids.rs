//! Small index newtypes used throughout the IR.
//!
//! All of these are plain `u32` indices wrapped in newtypes so the type
//! system distinguishes a block index from a register index
//! ([C-NEWTYPE]). They are `Copy` and cheap to pass by value.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn new(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflowed u32"))
            }

            /// Returns the raw index as `usize`, for container indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifies a [`Function`](crate::Function) within a
    /// [`Module`](crate::Module) by position.
    FuncId,
    "@f"
);
id_type!(
    /// Identifies a [`Block`](crate::Block) within a function by position.
    BlockId,
    "b"
);
id_type!(
    /// Identifies a virtual register within a function.
    ///
    /// Registers `r0..r{params}` hold the function arguments on entry.
    Reg,
    "r"
);
id_type!(
    /// Identifies a profile counter table declared in a
    /// [`Module`](crate::Module).
    TableId,
    "t"
);

/// A CFG edge, identified by its source block and the index of the target
/// in the source block's successor list.
///
/// Identifying edges by `(from, successor position)` rather than
/// `(from, to)` keeps edges distinct even when a two-way branch sends both
/// arms to the same block, and keeps the identity stable while other parts
/// of the CFG change.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeRef {
    /// Source block.
    pub from: BlockId,
    /// Index into the source block's successor list.
    pub succ: u32,
}

impl EdgeRef {
    /// Creates an edge reference.
    #[inline]
    pub fn new(from: BlockId, succ: usize) -> Self {
        Self {
            from,
            succ: u32::try_from(succ).expect("successor index overflowed u32"),
        }
    }

    /// Returns the successor index as `usize`.
    #[inline]
    pub fn succ_index(self) -> usize {
        self.succ as usize
    }
}

impl fmt::Display for EdgeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.from, self.succ)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_usize() {
        let b = BlockId::new(7);
        assert_eq!(b.index(), 7);
        assert_eq!(usize::from(b), 7);
        assert_eq!(format!("{b}"), "b7");
        assert_eq!(format!("{b:?}"), "b7");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(Reg::new(1) < Reg::new(2));
        assert_eq!(FuncId::new(3), FuncId(3));
    }

    #[test]
    fn edge_ref_display_and_identity() {
        let e1 = EdgeRef::new(BlockId::new(4), 0);
        let e2 = EdgeRef::new(BlockId::new(4), 1);
        assert_ne!(e1, e2);
        assert_eq!(format!("{e1}"), "b4#0");
        assert_eq!(e2.succ_index(), 1);
    }

    #[test]
    #[should_panic(expected = "id index overflowed u32")]
    fn id_overflow_panics() {
        let _ = BlockId::new(usize::MAX);
    }
}
