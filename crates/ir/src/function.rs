//! Functions, blocks, and the [`FunctionBuilder`].

use crate::ids::{BlockId, EdgeRef, FuncId, Reg};
use crate::inst::{BinOp, Inst, Terminator, UnOp};

/// A basic block: straight-line instructions followed by one terminator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    /// Non-terminator instructions, executed in order.
    pub insts: Vec<Inst>,
    /// The block terminator.
    pub term: Terminator,
}

impl Block {
    /// Creates a block with the given terminator and no instructions.
    pub fn new(term: Terminator) -> Self {
        Self {
            insts: Vec::new(),
            term,
        }
    }

    /// Returns the number of instructions including the terminator.
    pub fn len_with_term(&self) -> usize {
        self.insts.len() + 1
    }
}

/// A function: a CFG of [`Block`]s over a flat register file.
///
/// Registers `r0..r{param_count}` hold the arguments on entry; all other
/// registers start at `0`. Functions may have multiple `return` blocks;
/// passes that need a unique exit use
/// [`single_exit`](crate::transform::single_exit) first.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Function {
    /// Function name, unique within a module.
    pub name: String,
    /// Number of parameters (stored in `r0..param_count`).
    pub param_count: u32,
    /// Total number of virtual registers.
    pub reg_count: u32,
    /// Blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
}

impl Function {
    /// Creates an empty function with a single `return` block as entry.
    pub fn new(name: impl Into<String>, param_count: u32) -> Self {
        Self {
            name: name.into(),
            param_count,
            reg_count: param_count,
            blocks: vec![Block::new(Terminator::Return { value: None })],
            entry: BlockId(0),
        }
    }

    /// Returns the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Returns the block with the given id, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Returns an iterator over `(BlockId, &Block)` pairs in index order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::new(i), b))
    }

    /// Returns all block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + 'static {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Allocates a fresh register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg(self.reg_count);
        self.reg_count += 1;
        r
    }

    /// Appends a new block and returns its id.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        let id = BlockId::new(self.blocks.len());
        self.blocks.push(block);
        id
    }

    /// Returns the target block of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if the edge does not exist.
    pub fn edge_target(&self, edge: EdgeRef) -> BlockId {
        self.block(edge.from)
            .term
            .successor(edge.succ_index())
            .expect("edge successor index out of range")
    }

    /// Returns every CFG edge in deterministic (block, successor) order.
    pub fn edges(&self) -> Vec<EdgeRef> {
        let mut out = Vec::new();
        for (id, b) in self.iter_blocks() {
            for s in 0..b.term.successor_count() {
                out.push(EdgeRef::new(id, s));
            }
        }
        out
    }

    /// Returns the ids of all blocks whose terminator is `return`.
    pub fn return_blocks(&self) -> Vec<BlockId> {
        self.iter_blocks()
            .filter(|(_, b)| b.term.is_return())
            .map(|(id, _)| id)
            .collect()
    }

    /// Returns the total static instruction count (instructions plus
    /// terminators), the "IR statements" size measure used for the
    /// inlining and unrolling limits (§7.3).
    pub fn size(&self) -> usize {
        self.blocks.iter().map(Block::len_with_term).sum()
    }

    /// Returns the number of instrumentation instructions.
    pub fn prof_inst_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.insts.iter().filter(|i| i.is_prof()).count())
            .sum()
    }
}

/// Incrementally constructs a [`Function`].
///
/// The builder keeps a *current block*; instruction-emitting methods append
/// to it. Blocks are created unterminated and must each be sealed with one
/// of the terminator methods before [`FunctionBuilder::finish`].
///
/// # Examples
///
/// ```
/// use ppp_ir::{FunctionBuilder, BinOp};
///
/// let mut b = FunctionBuilder::new("abs_diff", 2);
/// let (x, y) = (b.param(0), b.param(1));
/// let lt = b.binary(BinOp::Lt, x, y);
/// let (then_, else_, join) = (b.new_block(), b.new_block(), b.new_block());
/// b.branch(lt, then_, else_);
/// b.switch_to(then_);
/// let a = b.binary(BinOp::Sub, y, x);
/// b.jump(join);
/// b.switch_to(else_);
/// let c = b.binary(BinOp::Sub, x, y);
/// b.jump(join);
/// b.switch_to(join);
/// let m = b.binary(BinOp::Max, a, c);
/// b.ret(Some(m));
/// let f = b.finish();
/// assert_eq!(f.blocks.len(), 4);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
    sealed: Vec<bool>,
}

impl FunctionBuilder {
    /// Starts building a function with `param_count` parameters. The entry
    /// block is current.
    pub fn new(name: impl Into<String>, param_count: u32) -> Self {
        let func = Function::new(name, param_count);
        Self {
            func,
            current: BlockId(0),
            sealed: vec![false],
        }
    }

    /// Returns the `i`-th parameter register.
    ///
    /// # Panics
    ///
    /// Panics if `i >= param_count`.
    pub fn param(&self, i: u32) -> Reg {
        assert!(i < self.func.param_count, "parameter index out of range");
        Reg(i)
    }

    /// Returns the block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Creates a new, empty, unterminated block (not yet current).
    pub fn new_block(&mut self) -> BlockId {
        let id = self
            .func
            .add_block(Block::new(Terminator::Return { value: None }));
        self.sealed.push(false);
        id
    }

    /// Makes `block` the current block.
    ///
    /// # Panics
    ///
    /// Panics if `block` was already terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            !self.sealed[block.index()],
            "block {block} is already terminated"
        );
        self.current = block;
    }

    fn push(&mut self, inst: Inst) {
        assert!(
            !self.sealed[self.current.index()],
            "current block is already terminated"
        );
        let cur = self.current;
        self.func.block_mut(cur).insts.push(inst);
    }

    /// Emits `dst = value` into a fresh register and returns it.
    pub fn constant(&mut self, value: i64) -> Reg {
        let dst = self.func.new_reg();
        self.push(Inst::Const { dst, value });
        dst
    }

    /// Emits `dst = src` into a fresh register and returns it.
    pub fn copy(&mut self, src: Reg) -> Reg {
        let dst = self.func.new_reg();
        self.push(Inst::Copy { dst, src });
        dst
    }

    /// Emits a copy into an *existing* register (for loop-carried values).
    pub fn copy_to(&mut self, dst: Reg, src: Reg) {
        self.push(Inst::Copy { dst, src });
    }

    /// Emits `dst = op src` into a fresh register and returns it.
    pub fn unary(&mut self, op: UnOp, src: Reg) -> Reg {
        let dst = self.func.new_reg();
        self.push(Inst::Unary { dst, op, src });
        dst
    }

    /// Emits `dst = lhs op rhs` into a fresh register and returns it.
    pub fn binary(&mut self, op: BinOp, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.func.new_reg();
        self.push(Inst::Binary { dst, op, lhs, rhs });
        dst
    }

    /// Emits a binary op writing to an *existing* register.
    pub fn binary_to(&mut self, dst: Reg, op: BinOp, lhs: Reg, rhs: Reg) {
        self.push(Inst::Binary { dst, op, lhs, rhs });
    }

    /// Emits a load from global memory.
    pub fn load(&mut self, addr: Reg) -> Reg {
        let dst = self.func.new_reg();
        self.push(Inst::Load { dst, addr });
        dst
    }

    /// Emits a store to global memory.
    pub fn store(&mut self, addr: Reg, src: Reg) {
        self.push(Inst::Store { addr, src });
    }

    /// Emits the synthetic-input intrinsic `dst = rand(bound)`.
    pub fn rand(&mut self, bound: Reg) -> Reg {
        let dst = self.func.new_reg();
        self.push(Inst::Rand { dst, bound });
        dst
    }

    /// Emits a call with a result.
    pub fn call(&mut self, callee: FuncId, args: Vec<Reg>) -> Reg {
        let dst = self.func.new_reg();
        self.push(Inst::Call {
            dst: Some(dst),
            callee,
            args,
        });
        dst
    }

    /// Emits a call discarding the result.
    pub fn call_void(&mut self, callee: FuncId, args: Vec<Reg>) {
        self.push(Inst::Call {
            dst: None,
            callee,
            args,
        });
    }

    /// Emits `emit src` (folds `src` into the VM checksum).
    pub fn emit(&mut self, src: Reg) {
        self.push(Inst::Emit { src });
    }

    fn terminate(&mut self, term: Terminator) {
        assert!(
            !self.sealed[self.current.index()],
            "current block is already terminated"
        );
        let cur = self.current;
        self.func.block_mut(cur).term = term;
        self.sealed[cur.index()] = true;
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump { target });
    }

    /// Terminates the current block with a two-way branch.
    pub fn branch(&mut self, cond: Reg, then_target: BlockId, else_target: BlockId) {
        self.terminate(Terminator::Branch {
            cond,
            then_target,
            else_target,
        });
    }

    /// Terminates the current block with a multi-way switch.
    pub fn switch(&mut self, disc: Reg, targets: Vec<BlockId>, default: BlockId) {
        self.terminate(Terminator::Switch {
            disc,
            targets,
            default,
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Reg>) {
        self.terminate(Terminator::Return { value });
    }

    /// Finishes the function.
    ///
    /// # Panics
    ///
    /// Panics if any created block was never terminated.
    pub fn finish(self) -> Function {
        for (i, sealed) in self.sealed.iter().enumerate() {
            assert!(sealed, "block b{i} was never terminated");
        }
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("diamond", 1);
        let p = b.param(0);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(p, t, e);
        b.switch_to(t);
        let c1 = b.constant(1);
        b.emit(c1);
        b.jump(j);
        b.switch_to(e);
        let c2 = b.constant(2);
        b.emit(c2);
        b.jump(j);
        b.switch_to(j);
        b.ret(Some(p));
        b.finish()
    }

    #[test]
    fn builder_constructs_diamond() {
        let f = diamond();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.entry, BlockId(0));
        assert_eq!(f.block(BlockId(0)).term.successor_count(), 2);
        assert_eq!(f.return_blocks(), vec![BlockId(3)]);
        assert_eq!(f.edges().len(), 4);
        assert_eq!(f.size(), 4 + 4); // 4 insts + 4 terminators
    }

    #[test]
    fn edge_target_resolves() {
        let f = diamond();
        let e = EdgeRef::new(BlockId(0), 1);
        assert_eq!(f.edge_target(e), BlockId(2));
    }

    #[test]
    fn new_reg_allocates_after_params() {
        let mut f = Function::new("f", 3);
        assert_eq!(f.new_reg(), Reg(3));
        assert_eq!(f.new_reg(), Reg(4));
        assert_eq!(f.reg_count, 5);
    }

    #[test]
    fn prof_inst_count_counts_only_prof() {
        use crate::inst::ProfOp;
        let mut f = diamond();
        assert_eq!(f.prof_inst_count(), 0);
        f.block_mut(BlockId(1))
            .insts
            .push(Inst::Prof(ProfOp::SetR { value: 0 }));
        assert_eq!(f.prof_inst_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn switching_to_sealed_block_panics() {
        let mut b = FunctionBuilder::new("f", 0);
        let entry = b.current_block();
        b.ret(None);
        b.switch_to(entry);
    }

    #[test]
    #[should_panic(expected = "never terminated")]
    fn finish_requires_all_terminated() {
        let mut b = FunctionBuilder::new("f", 0);
        let _orphan = b.new_block();
        b.ret(None);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "parameter index out of range")]
    fn param_out_of_range_panics() {
        let b = FunctionBuilder::new("f", 1);
        let _ = b.param(1);
    }
}
