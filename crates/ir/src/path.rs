//! Acyclic intraprocedural paths and path profiles.
//!
//! A *path* in the Ball–Larus sense (§3.1 of the paper) starts at the
//! function entry or at a loop header (immediately after a back edge is
//! taken), and ends at a `return` or with a taken back edge. Calls do not
//! end paths: the caller's path is deferred across the call.
//!
//! [`PathKey`] identifies a path by its start block and the sequence of CFG
//! edges taken, *including* the terminating back edge when the path ends at
//! one. This representation is shared by the VM's exact tracer (ground
//! truth) and by `ppp-core`'s decoded measured/estimated profiles, so the
//! two sides compare paths without agreeing on any particular numbering.

use crate::function::Function;
use crate::ids::{BlockId, EdgeRef, FuncId};
use std::collections::HashMap;

/// Identity of one acyclic intraprocedural path.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PathKey {
    /// First block of the path (function entry or a loop header).
    pub start: BlockId,
    /// CFG edges taken, in order, including the terminating back edge if
    /// the path ends at one. Empty for a single-block path that returns.
    pub edges: Vec<EdgeRef>,
}

impl PathKey {
    /// Number of *branches* on the path: taken edges whose source block has
    /// at least two CFG successors (§5.1's definition of a branch).
    pub fn branch_count(&self, f: &Function) -> u32 {
        self.edges
            .iter()
            .filter(|e| f.block(e.from).term.successor_count() >= 2)
            .count() as u32
    }

    /// Blocks visited by the path, in order, derived from the edges.
    ///
    /// When the path ends with a back edge, the back edge's target (the
    /// loop header) is *not* included; it belongs to the next path.
    pub fn blocks(&self, f: &Function) -> Vec<BlockId> {
        let mut out = vec![self.start];
        for (i, e) in self.edges.iter().enumerate() {
            debug_assert_eq!(e.from, *out.last().expect("non-empty"));
            let tgt = f.edge_target(*e);
            let is_last = i + 1 == self.edges.len();
            // The terminating edge may be a back edge, whose target starts
            // the *next* path; detect that by target repetition.
            if is_last && out.contains(&tgt) {
                break;
            }
            out.push(tgt);
        }
        out
    }
}

/// Statistics recorded for one path.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PathStats {
    /// Execution count.
    pub freq: u64,
    /// Branches on the path (cached [`PathKey::branch_count`]).
    pub branches: u32,
}

impl PathStats {
    /// Branch flow of this path: `freq * branches` (§5.1). Saturating, so
    /// a saturated frequency degrades to [`u64::MAX`] instead of a
    /// debug-build overflow panic.
    pub fn branch_flow(&self) -> u64 {
        self.freq.saturating_mul(u64::from(self.branches))
    }

    /// Unit flow of this path: just `freq` (§5.1).
    pub fn unit_flow(&self) -> u64 {
        self.freq
    }
}

/// Path profile of a single function.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FuncPathProfile {
    /// Paths and their statistics.
    pub paths: HashMap<PathKey, PathStats>,
}

impl FuncPathProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `freq` executions of `key` (computing the branch count from
    /// `f` if the path is new). Counts saturate at [`u64::MAX`] instead
    /// of overflowing.
    pub fn record(&mut self, f: &Function, key: PathKey, freq: u64) {
        let branches = key.branch_count(f);
        let e = self
            .paths
            .entry(key)
            .or_insert(PathStats { freq: 0, branches });
        e.freq = e.freq.saturating_add(freq);
    }

    /// Total branch flow over all paths (saturating).
    pub fn total_branch_flow(&self) -> u64 {
        self.paths
            .values()
            .fold(0u64, |acc, s| acc.saturating_add(s.branch_flow()))
    }

    /// Total unit flow (dynamic path count) over all paths (saturating).
    pub fn total_unit_flow(&self) -> u64 {
        self.paths
            .values()
            .fold(0u64, |acc, s| acc.saturating_add(s.unit_flow()))
    }

    /// Merges `other` into `self`, adding frequencies path by path.
    /// Counts saturate at [`u64::MAX`] instead of wrapping, which makes
    /// the merge commutative *and* associative — any merge order over
    /// any partition of deltas produces the same profile.
    pub fn merge(&mut self, other: &FuncPathProfile) {
        for (key, stats) in &other.paths {
            let e = self.paths.entry(key.clone()).or_insert(PathStats {
                freq: 0,
                branches: stats.branches,
            });
            e.freq = e.freq.saturating_add(stats.freq);
        }
    }

    /// `true` when any path's frequency has pinned at [`u64::MAX`].
    pub fn saturated(&self) -> bool {
        self.paths.values().any(|s| s.freq == u64::MAX)
    }

    /// Drops every recorded path (used to quarantine a function whose
    /// path data cannot be trusted).
    pub fn clear(&mut self) {
        self.paths.clear();
    }

    /// Number of distinct paths recorded.
    pub fn distinct_paths(&self) -> usize {
        self.paths.len()
    }
}

/// Path profiles for every function in a module.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ModulePathProfile {
    /// Per-function profiles, indexed by [`FuncId`].
    pub funcs: Vec<FuncPathProfile>,
}

impl ModulePathProfile {
    /// Creates an empty profile with one slot per function.
    pub fn with_capacity(func_count: usize) -> Self {
        Self {
            funcs: vec![FuncPathProfile::new(); func_count],
        }
    }

    /// Profile of function `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    #[inline]
    pub fn func(&self, f: FuncId) -> &FuncPathProfile {
        &self.funcs[f.index()]
    }

    /// Profile of function `f`, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    #[inline]
    pub fn func_mut(&mut self, f: FuncId) -> &mut FuncPathProfile {
        &mut self.funcs[f.index()]
    }

    /// Merges `other` into `self` function by function (saturating; see
    /// [`FuncPathProfile::merge`]).
    ///
    /// # Panics
    ///
    /// Panics if the profiles have different function counts.
    pub fn merge(&mut self, other: &ModulePathProfile) {
        assert_eq!(
            self.funcs.len(),
            other.funcs.len(),
            "merging path profiles of different shapes"
        );
        for (a, b) in self.funcs.iter_mut().zip(&other.funcs) {
            a.merge(b);
        }
    }

    /// Program-wide branch flow (saturating).
    pub fn total_branch_flow(&self) -> u64 {
        self.funcs
            .iter()
            .fold(0u64, |acc, f| acc.saturating_add(f.total_branch_flow()))
    }

    /// Program-wide unit flow (total dynamic paths, saturating).
    pub fn total_unit_flow(&self) -> u64 {
        self.funcs
            .iter()
            .fold(0u64, |acc, f| acc.saturating_add(f.total_unit_flow()))
    }

    /// Total distinct paths across all functions.
    pub fn distinct_paths(&self) -> usize {
        self.funcs.iter().map(FuncPathProfile::distinct_paths).sum()
    }

    /// `true` when any function's path counts have saturated.
    pub fn saturated(&self) -> bool {
        self.funcs.iter().any(FuncPathProfile::saturated)
    }

    /// Iterates `(function, key, stats)` over all recorded paths.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &PathKey, &PathStats)> {
        self.funcs
            .iter()
            .enumerate()
            .flat_map(|(i, fp)| fp.paths.iter().map(move |(k, s)| (FuncId::new(i), k, s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;
    use crate::ids::Reg;

    /// entry(0) --cond--> b1 | b2; both -> b3(loop hdr); b3 -> b3(back) | b4(ret)
    fn looped() -> Function {
        let mut b = FunctionBuilder::new("f", 1);
        let b1 = b.new_block();
        let b2 = b.new_block();
        let b3 = b.new_block();
        let b4 = b.new_block();
        b.branch(Reg(0), b1, b2);
        b.switch_to(b1);
        b.jump(b3);
        b.switch_to(b2);
        b.jump(b3);
        b.switch_to(b3);
        b.branch(Reg(0), b3, b4);
        b.switch_to(b4);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn branch_count_counts_multi_successor_sources() {
        let f = looped();
        // entry -> b1 -> b3 -> (back to b3): entry edge is a branch, b1->b3
        // is not, the back edge b3->b3 is a branch.
        let key = PathKey {
            start: BlockId(0),
            edges: vec![
                EdgeRef::new(BlockId(0), 0),
                EdgeRef::new(BlockId(1), 0),
                EdgeRef::new(BlockId(3), 0),
            ],
        };
        assert_eq!(key.branch_count(&f), 2);
    }

    #[test]
    fn blocks_excludes_next_path_header() {
        let f = looped();
        let key = PathKey {
            start: BlockId(0),
            edges: vec![
                EdgeRef::new(BlockId(0), 0),
                EdgeRef::new(BlockId(1), 0),
                EdgeRef::new(BlockId(3), 0), // back edge to b3 itself
            ],
        };
        assert_eq!(key.blocks(&f), vec![BlockId(0), BlockId(1), BlockId(3)]);
        // A path ending at return includes the final block.
        let ret = PathKey {
            start: BlockId(3),
            edges: vec![EdgeRef::new(BlockId(3), 1)],
        };
        assert_eq!(ret.blocks(&f), vec![BlockId(3), BlockId(4)]);
    }

    #[test]
    fn record_accumulates_and_flows() {
        let f = looped();
        let mut p = FuncPathProfile::new();
        let key = PathKey {
            start: BlockId(3),
            edges: vec![EdgeRef::new(BlockId(3), 0)],
        };
        p.record(&f, key.clone(), 5);
        p.record(&f, key.clone(), 3);
        let s = p.paths[&key];
        assert_eq!(s.freq, 8);
        assert_eq!(s.branches, 1);
        assert_eq!(s.branch_flow(), 8);
        assert_eq!(p.total_branch_flow(), 8);
        assert_eq!(p.total_unit_flow(), 8);
        assert_eq!(p.distinct_paths(), 1);
    }

    #[test]
    fn merge_saturates_and_is_order_independent() {
        let f = looped();
        let key = PathKey {
            start: BlockId(3),
            edges: vec![EdgeRef::new(BlockId(3), 0)],
        };
        let other = PathKey {
            start: BlockId(3),
            edges: vec![EdgeRef::new(BlockId(3), 1)],
        };
        let mut near_max = FuncPathProfile::new();
        near_max.record(&f, key.clone(), u64::MAX - 1);
        let mut small = FuncPathProfile::new();
        small.record(&f, key.clone(), 7);
        small.record(&f, other.clone(), 3);

        // a ⊔ b == b ⊔ a, and the hot path pins at MAX instead of wrapping.
        let mut ab = near_max.clone();
        ab.merge(&small);
        let mut ba = small.clone();
        ba.merge(&near_max);
        assert_eq!(ab, ba);
        assert_eq!(ab.paths[&key].freq, u64::MAX);
        assert_eq!(ab.paths[&other].freq, 3);
        assert!(ab.saturated());
        // Totals over saturated entries stay saturating, not wrapping.
        assert_eq!(ab.total_unit_flow(), u64::MAX);

        let mut mp = ModulePathProfile::with_capacity(1);
        mp.funcs[0] = ab;
        assert_eq!(mp.total_unit_flow(), u64::MAX);
        assert_eq!(mp.total_branch_flow(), u64::MAX);
        let mut other_mp = ModulePathProfile::with_capacity(1);
        other_mp.funcs[0] = small;
        mp.merge(&other_mp);
        assert_eq!(mp.funcs[0].paths[&key].freq, u64::MAX);
    }

    #[test]
    fn module_profile_aggregates() {
        let f = looped();
        let mut mp = ModulePathProfile::with_capacity(2);
        let key = PathKey {
            start: BlockId(0),
            edges: vec![EdgeRef::new(BlockId(0), 1), EdgeRef::new(BlockId(2), 0)],
        };
        mp.func_mut(FuncId(0)).record(&f, key.clone(), 2);
        mp.func_mut(FuncId(1)).record(&f, key, 1);
        assert_eq!(mp.total_unit_flow(), 3);
        assert_eq!(mp.distinct_paths(), 2);
        assert_eq!(mp.iter().count(), 2);
        // One branch each (the entry branch edge).
        assert_eq!(mp.total_branch_flow(), 3);
    }
}
