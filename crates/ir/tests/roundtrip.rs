//! Printer ↔ parser round-trip over randomized modules.
//!
//! Deterministic seed-loop version of what used to be a property test:
//! a small inline SplitMix64 drives the module generator, so the cases
//! are reproducible from the loop index with no external dependencies.

use ppp_ir::{
    parse_module, print_module, verify_module, BinOp, Block, FuncId, Function, Inst, Module,
    ProfOp, Reg, TableDecl, TableId, TableKind, Terminator, UnOp,
};

const REGS: u32 = 6;
const CASES: u64 = 64;

/// SplitMix64, inlined because `ppp-ir` depends on nothing.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn reg(&mut self) -> Reg {
        Reg(self.below(u64::from(REGS)) as u32)
    }

    fn i64(&mut self) -> i64 {
        self.next() as i64
    }

    /// A signed value that fits in 32 bits (mirrors the old `i32` draws).
    fn small(&mut self) -> i64 {
        self.next() as i32 as i64
    }
}

fn random_prof(rng: &mut Rng, tables: u32) -> ProfOp {
    let t = |rng: &mut Rng| TableId(rng.below(u64::from(tables.max(1))) as u32);
    match rng.below(if tables == 0 { 2 } else { 7 }) {
        0 => ProfOp::SetR { value: rng.small() },
        1 => ProfOp::AddR { value: rng.small() },
        2 => ProfOp::CountR { table: t(rng) },
        3 => ProfOp::CountRPlus {
            table: t(rng),
            addend: rng.small(),
        },
        4 => ProfOp::CountConst {
            table: t(rng),
            index: rng.below(1000) as i64,
        },
        5 => ProfOp::CountRChecked { table: t(rng) },
        _ => ProfOp::CountRPlusChecked {
            table: t(rng),
            addend: rng.small(),
        },
    }
}

fn random_inst(rng: &mut Rng, funcs: u32, tables: u32) -> Inst {
    match rng.below(10) {
        0 => Inst::Const {
            dst: rng.reg(),
            value: rng.i64(),
        },
        1 => Inst::Copy {
            dst: rng.reg(),
            src: rng.reg(),
        },
        2 => Inst::Unary {
            dst: rng.reg(),
            op: if rng.below(2) == 0 {
                UnOp::Neg
            } else {
                UnOp::Not
            },
            src: rng.reg(),
        },
        3 => {
            let op = [
                BinOp::Add,
                BinOp::Mul,
                BinOp::Xor,
                BinOp::Lt,
                BinOp::Shr,
                BinOp::Min,
            ][rng.below(6) as usize];
            Inst::Binary {
                dst: rng.reg(),
                op,
                lhs: rng.reg(),
                rhs: rng.reg(),
            }
        }
        4 => Inst::Load {
            dst: rng.reg(),
            addr: rng.reg(),
        },
        5 => Inst::Store {
            addr: rng.reg(),
            src: rng.reg(),
        },
        6 => Inst::Rand {
            dst: rng.reg(),
            bound: rng.reg(),
        },
        7 => Inst::Emit { src: rng.reg() },
        8 => Inst::Call {
            dst: (rng.below(2) == 0).then(|| rng.reg()),
            callee: FuncId(rng.below(u64::from(funcs)) as u32),
            args: vec![], // all generated functions take zero params
        },
        _ => Inst::Prof(random_prof(rng, tables)),
    }
}

fn random_function(rng: &mut Rng, name: String, funcs: u32, tables: u32) -> Function {
    let n = 1 + rng.below(4) as usize;
    let mut f = Function::new(name, 0);
    f.reg_count = REGS;
    f.blocks.clear();
    for i in 0..n {
        let insts: Vec<Inst> = (0..rng.below(5))
            .map(|_| random_inst(rng, funcs, tables))
            .collect();
        let sel = rng.below(256) as u8;
        // Last block returns; others jump or branch forward (valid CFG).
        let term = if i + 1 == n {
            Terminator::Return {
                value: sel.is_multiple_of(2).then_some(Reg(0)),
            }
        } else {
            let fwd = |k: u8| ppp_ir::BlockId(((i + 1) + (k as usize) % (n - i - 1)) as u32);
            match sel % 3 {
                0 => Terminator::Jump { target: fwd(sel) },
                1 => Terminator::Branch {
                    cond: Reg(u32::from(sel) % REGS),
                    then_target: fwd(sel),
                    else_target: fwd(sel.wrapping_add(7)),
                },
                _ => Terminator::Switch {
                    disc: Reg(u32::from(sel) % REGS),
                    targets: vec![fwd(sel), fwd(sel.wrapping_add(3))],
                    default: fwd(sel.wrapping_add(5)),
                },
            }
        };
        f.blocks.push(Block { insts, term });
    }
    f
}

fn random_module(rng: &mut Rng) -> Module {
    let n_funcs = 1 + rng.below(3) as u32;
    let n_tables = rng.below(3) as u32;
    let mut m = Module::new();
    for i in 0..n_funcs {
        m.add_function(random_function(rng, format!("fn_{i}"), n_funcs, n_tables));
    }
    for t in 0..n_tables {
        m.add_table(TableDecl {
            func: FuncId(0),
            kind: if t % 2 == 0 {
                TableKind::Array { size: 16 }
            } else {
                TableKind::Hash {
                    slots: 701,
                    max_probes: 3,
                }
            },
            hot_paths: 8,
        });
    }
    m
}

#[test]
fn print_parse_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng(0xB10C_0000 + case);
        let m = random_module(&mut rng);
        assert_eq!(verify_module(&m), Ok(()), "case {case} failed verification");

        let text = print_module(&m);
        let parsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("case {case}: parse failed: {e}\n{text}"));
        assert_eq!(m, parsed, "case {case}: reparse differs");
        // Idempotence: printing the parse gives identical text.
        assert_eq!(print_module(&parsed), text, "case {case}: print not stable");
    }
}
