//! Property-based printer ↔ parser round-trip over random modules.

use ppp_ir::{
    parse_module, print_module, verify_module, BinOp, Block, Function, FuncId, Inst, Module,
    ProfOp, Reg, TableDecl, TableId, TableKind, Terminator, UnOp,
};
use proptest::prelude::*;

const REGS: u32 = 6;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0..REGS).prop_map(Reg)
}

fn arb_prof(tables: u32) -> impl Strategy<Value = ProfOp> {
    let t = move || (0..tables).prop_map(TableId);
    prop_oneof![
        any::<i32>().prop_map(|v| ProfOp::SetR { value: v.into() }),
        any::<i32>().prop_map(|v| ProfOp::AddR { value: v.into() }),
        t().prop_map(|table| ProfOp::CountR { table }),
        (t(), any::<i32>()).prop_map(|(table, a)| ProfOp::CountRPlus {
            table,
            addend: a.into()
        }),
        (t(), 0..1000i64).prop_map(|(table, index)| ProfOp::CountConst { table, index }),
        t().prop_map(|table| ProfOp::CountRChecked { table }),
        (t(), any::<i32>()).prop_map(|(table, a)| ProfOp::CountRPlusChecked {
            table,
            addend: a.into()
        }),
    ]
}

fn arb_inst(funcs: u32, tables: u32) -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_reg(), any::<i64>()).prop_map(|(dst, value)| Inst::Const { dst, value }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::Copy { dst, src }),
        (arb_reg(), prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)], arb_reg())
            .prop_map(|(dst, op, src)| Inst::Unary { dst, op, src }),
        (
            arb_reg(),
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Mul),
                Just(BinOp::Xor),
                Just(BinOp::Lt),
                Just(BinOp::Shr),
                Just(BinOp::Min),
            ],
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(dst, op, lhs, rhs)| Inst::Binary { dst, op, lhs, rhs }),
        (arb_reg(), arb_reg()).prop_map(|(dst, addr)| Inst::Load { dst, addr }),
        (arb_reg(), arb_reg()).prop_map(|(addr, src)| Inst::Store { addr, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, bound)| Inst::Rand { dst, bound }),
        arb_reg().prop_map(|src| Inst::Emit { src }),
        (proptest::option::of(arb_reg()), 0..funcs).prop_map(move |(dst, callee)| Inst::Call {
            dst,
            callee: FuncId(callee),
            args: vec![], // all generated functions take zero params
        }),
        arb_prof(tables).prop_map(Inst::Prof),
    ]
}

fn arb_function(funcs: u32, tables: u32) -> impl Strategy<Value = (Vec<Vec<Inst>>, Vec<u8>)> {
    // (per-block instruction lists, per-block terminator selector)
    let blocks = 1..5usize;
    blocks.prop_flat_map(move |n| {
        (
            prop::collection::vec(prop::collection::vec(arb_inst(funcs, tables), 0..5), n..=n),
            prop::collection::vec(any::<u8>(), n..=n),
        )
    })
}

fn build_function(name: String, blocks: Vec<Vec<Inst>>, terms: Vec<u8>) -> Function {
    let n = blocks.len();
    let mut f = Function::new(name, 0);
    f.reg_count = REGS;
    f.blocks.clear();
    for (i, (insts, sel)) in blocks.into_iter().zip(terms).enumerate() {
        // Last block returns; others jump or branch forward (valid CFG).
        let term = if i + 1 == n {
            Terminator::Return {
                value: (sel % 2 == 0).then_some(Reg(0)),
            }
        } else {
            let fwd = |k: u8| ppp_ir::BlockId(((i + 1) + (k as usize) % (n - i - 1)) as u32);
            match sel % 3 {
                0 => Terminator::Jump { target: fwd(sel) },
                1 => Terminator::Branch {
                    cond: Reg(u32::from(sel) % REGS),
                    then_target: fwd(sel),
                    else_target: fwd(sel.wrapping_add(7)),
                },
                _ => Terminator::Switch {
                    disc: Reg(u32::from(sel) % REGS),
                    targets: vec![fwd(sel), fwd(sel.wrapping_add(3))],
                    default: fwd(sel.wrapping_add(5)),
                },
            }
        };
        f.blocks.push(Block { insts, term });
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_roundtrip(
        specs in prop::collection::vec(arb_function(3, 2), 1..=3),
        n_tables in 0u32..=2,
    ) {
        let n_funcs = specs.len() as u32;
        let mut m = Module::new();
        for (i, (blocks, terms)) in specs.into_iter().enumerate() {
            // Call targets must exist: clamp callee ids into range by
            // rewriting out-of-range calls to self-less targets.
            let blocks: Vec<Vec<Inst>> = blocks
                .into_iter()
                .map(|insts| {
                    insts
                        .into_iter()
                        .map(|inst| match inst {
                            Inst::Call { dst, callee, args } => Inst::Call {
                                dst,
                                callee: FuncId(callee.0 % n_funcs),
                                args,
                            },
                            Inst::Prof(op) if n_tables == 0 && op.table().is_some() => {
                                // No tables declared: replace with a reg op.
                                Inst::Prof(ProfOp::SetR { value: 0 })
                            }
                            Inst::Prof(op) => {
                                let fixed = match op {
                                    ProfOp::CountR { table } => ProfOp::CountR {
                                        table: TableId(table.0 % n_tables.max(1)),
                                    },
                                    ProfOp::CountRPlus { table, addend } => ProfOp::CountRPlus {
                                        table: TableId(table.0 % n_tables.max(1)),
                                        addend,
                                    },
                                    ProfOp::CountConst { table, index } => ProfOp::CountConst {
                                        table: TableId(table.0 % n_tables.max(1)),
                                        index,
                                    },
                                    ProfOp::CountRChecked { table } => ProfOp::CountRChecked {
                                        table: TableId(table.0 % n_tables.max(1)),
                                    },
                                    ProfOp::CountRPlusChecked { table, addend } => {
                                        ProfOp::CountRPlusChecked {
                                            table: TableId(table.0 % n_tables.max(1)),
                                            addend,
                                        }
                                    }
                                    other => other,
                                };
                                Inst::Prof(fixed)
                            }
                            other => other,
                        })
                        .collect()
                })
                .collect();
            m.add_function(build_function(format!("fn_{i}"), blocks, terms));
        }
        for t in 0..n_tables {
            m.add_table(TableDecl {
                func: FuncId(0),
                kind: if t % 2 == 0 {
                    TableKind::Array { size: 16 }
                } else {
                    TableKind::Hash { slots: 701, max_probes: 3 }
                },
                hot_paths: 8,
            });
        }
        prop_assert_eq!(verify_module(&m), Ok(()));

        let text = print_module(&m);
        let parsed = parse_module(&text)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}\n{text}")))?;
        prop_assert_eq!(&m, &parsed);
        // Idempotence: printing the parse gives identical text.
        prop_assert_eq!(print_module(&parsed), text);
    }
}
