//! Seeded byte-damage fuzz over the profile persist formats.
//!
//! Contract: a loader handed arbitrary damaged bytes returns either a
//! clean parse or a typed [`ppp_ir::ProfileLoadError`] — it never
//! panics. The sweep covers every truncation point of both v2 artifacts
//! plus a seed-loop of multi-byte corruptions (including invalid UTF-8),
//! through all three strictness levels (strict, salvage, stale), and the
//! legacy v1 text loaders.

use ppp_ir::{
    read_edge_profile, read_edge_profile_stale, read_edge_profile_v2, read_path_profile,
    read_path_profile_stale, read_path_profile_v2, salvage_edge_profile, salvage_path_profile,
    write_edge_profile, write_edge_profile_v2, write_path_profile, write_path_profile_v2, BlockId,
    EdgeRef, FuncId, FunctionBuilder, Module, ModuleEdgeProfile, ModulePathProfile, PathKey, Reg,
};

const SEEDS: u64 = 300;

/// SplitMix64, inlined because `ppp-ir` depends on nothing.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A diamond `main`, a single-block `leaf`, and a name with spaces.
fn sample_module() -> Module {
    let mut m = Module::new();
    let mut b = FunctionBuilder::new("main", 1);
    let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
    b.branch(Reg(0), t, e);
    b.switch_to(t);
    b.jump(j);
    b.switch_to(e);
    b.jump(j);
    b.switch_to(j);
    b.ret(None);
    m.add_function(b.finish());
    let mut l = FunctionBuilder::new("leaf helper", 0);
    l.ret(None);
    m.add_function(l.finish());
    m
}

fn sample_edges(m: &Module) -> ModuleEdgeProfile {
    let mut p = ModuleEdgeProfile::zeroed(m);
    let f0 = p.func_mut(FuncId(0));
    f0.set_entries(6);
    f0.set_block(BlockId(0), 6);
    f0.set_edge(EdgeRef::new(BlockId(0), 0), 4);
    f0.set_edge(EdgeRef::new(BlockId(0), 1), 2);
    f0.set_block(BlockId(1), 4);
    f0.set_edge(EdgeRef::new(BlockId(1), 0), 4);
    f0.set_block(BlockId(2), 2);
    f0.set_edge(EdgeRef::new(BlockId(2), 0), 2);
    f0.set_block(BlockId(3), 6);
    let f1 = p.func_mut(FuncId(1));
    f1.set_entries(3);
    f1.set_block(BlockId(0), 3);
    p
}

fn sample_paths(m: &Module) -> ModulePathProfile {
    let mut paths = ModulePathProfile::with_capacity(2);
    let f = m.function(FuncId(0));
    paths.func_mut(FuncId(0)).record(
        f,
        PathKey {
            start: BlockId(0),
            edges: vec![EdgeRef::new(BlockId(0), 0), EdgeRef::new(BlockId(1), 0)],
        },
        4,
    );
    paths.func_mut(FuncId(0)).record(
        f,
        PathKey {
            start: BlockId(0),
            edges: vec![EdgeRef::new(BlockId(0), 1), EdgeRef::new(BlockId(2), 0)],
        },
        2,
    );
    paths.func_mut(FuncId(1)).record(
        m.function(FuncId(1)),
        PathKey {
            start: BlockId(0),
            edges: vec![],
        },
        3,
    );
    paths
}

/// Feeds damaged bytes through every v2 loader; any return is fine,
/// any panic fails the test.
fn exercise_v2(m: &Module, edge_bytes: &[u8], path_bytes: &[u8]) {
    let _ = read_edge_profile_v2(m, edge_bytes);
    let _ = salvage_edge_profile(m, edge_bytes);
    let _ = read_edge_profile_stale(m, edge_bytes);
    let _ = read_path_profile_v2(m, path_bytes);
    let _ = salvage_path_profile(m, path_bytes);
    let _ = read_path_profile_stale(m, path_bytes);
    // Kind confusion: each artifact through the other kind's loaders.
    let _ = read_edge_profile_v2(m, path_bytes);
    let _ = salvage_path_profile(m, edge_bytes);
}

#[test]
fn every_truncation_point_parses_or_errors() {
    let m = sample_module();
    let edge = write_edge_profile_v2(&m, &sample_edges(&m)).into_bytes();
    let path = write_path_profile_v2(&m, &sample_paths(&m)).into_bytes();
    for cut in 0..=edge.len() {
        exercise_v2(&m, &edge[..cut], &path[..path.len().min(cut)]);
    }
    for cut in 0..=path.len() {
        exercise_v2(&m, &edge[..edge.len().min(cut)], &path[..cut]);
    }
}

#[test]
fn seeded_byte_flips_parse_or_error() {
    let m = sample_module();
    let edge = write_edge_profile_v2(&m, &sample_edges(&m)).into_bytes();
    let path = write_path_profile_v2(&m, &sample_paths(&m)).into_bytes();
    for seed in 0..SEEDS {
        let mut rng = Rng(seed);
        let mut e = edge.clone();
        let mut p = path.clone();
        // 1..=8 flips each, to arbitrary byte values (invalid UTF-8
        // included); occasionally also truncate after flipping.
        for _ in 0..=rng.below(8) {
            let at = rng.below(e.len() as u64) as usize;
            e[at] = rng.next() as u8;
            let at = rng.below(p.len() as u64) as usize;
            p[at] = rng.next() as u8;
        }
        if rng.below(4) == 0 {
            e.truncate(rng.below(e.len() as u64 + 1) as usize);
            p.truncate(rng.below(p.len() as u64 + 1) as usize);
        }
        exercise_v2(&m, &e, &p);
    }
}

#[test]
fn salvage_never_half_applies_a_section() {
    // Whatever the damage, a salvaged function either carries its exact
    // original counts or is fully quarantined (zeroed / pathless).
    let m = sample_module();
    let edges = sample_edges(&m);
    let bytes = write_edge_profile_v2(&m, &edges).into_bytes();
    for seed in 0..SEEDS {
        let mut rng = Rng(seed ^ 0xABCD);
        let mut b = bytes.clone();
        let at = rng.below(b.len() as u64) as usize;
        b[at] = rng.next() as u8;
        if let Ok(s) = salvage_edge_profile(&m, &b) {
            for (i, fp) in s.profile.funcs.iter().enumerate() {
                let quarantined = s.quarantined.contains(&FuncId::new(i));
                assert!(
                    if quarantined {
                        fp.is_zero()
                    } else {
                        *fp == *edges.func(FuncId::new(i))
                    },
                    "seed {seed}: function {i} half-applied"
                );
            }
        }
    }
}

#[test]
fn legacy_v1_loaders_survive_the_same_damage() {
    let m = sample_module();
    let edge = write_edge_profile(&m, &sample_edges(&m));
    let path = write_path_profile(&sample_paths(&m));
    for seed in 0..SEEDS {
        let mut rng = Rng(seed ^ 0x1234);
        // v1 is a text format; damage it as text (char-boundary safe) by
        // splicing random ASCII, and also truncate at char boundaries.
        let mangle = |rng: &mut Rng, s: &str| -> String {
            let mut t: Vec<char> = s.chars().collect();
            if t.is_empty() {
                return String::new();
            }
            for _ in 0..=rng.below(6) {
                let at = rng.below(t.len() as u64) as usize;
                t[at] = (rng.below(96) as u8 + 32) as char;
            }
            if rng.below(4) == 0 {
                t.truncate(rng.below(t.len() as u64 + 1) as usize);
            }
            t.into_iter().collect()
        };
        let _ = read_edge_profile(&m, &mangle(&mut rng, &edge));
        let _ = read_path_profile(&m, &mangle(&mut rng, &path));
        let _ = read_edge_profile(&m, &mangle(&mut rng, &path));
        let _ = read_path_profile(&m, &mangle(&mut rng, &edge));
    }
}
