//! The CFG-similarity matcher.
//!
//! Given an old and a new version of a [`Function`], the matcher builds a
//! block correspondence in three phases:
//!
//! 1. **Anchor seeding** — a strong hash that occurs exactly once in each
//!    version is an unambiguous anchor; the pair is matched at full
//!    confidence. The two entry blocks are also seeded (at reduced
//!    confidence when only their weak hashes agree): profiles flow from
//!    the entry, so an entry match is worth a small leap of faith.
//! 2. **Neighborhood propagation** — a worklist floods matches outward
//!    from the seeds. When a matched pair's terminators agree in kind and
//!    arity, the i-th successors are candidate pairs; a unique unmatched
//!    predecessor on both sides is likewise a candidate. Candidates are
//!    accepted if their anchors are compatible (strong, weak, or — for
//!    structure-only matches — branch signature plus equal loop depth and
//!    a matched immediate dominator), with confidence decaying by the
//!    strength of the evidence.
//! 3. **Ambiguity resolution** — strong hashes with several occurrences
//!    are paired only when dominator and loop context single out one
//!    candidate; otherwise the block is reported ambiguous.
//!
//! Leftovers become diagnostics in the PPP4xx band: old blocks with no
//! match are `PPP401` (unanchored) or `PPP402` (ambiguous anchor), new
//! blocks with no pre-image adjacent to the matched region are `PPP403`
//! (split/merged region).

use crate::anchor::{anchor_function, AnchorSet, BlockAnchor};
use ppp_ir::{BlockId, Cfg, EdgeRef, FuncId, Function, Module};
use ppp_lint::{Code, Diagnostic};
use std::collections::HashMap;

/// Confidence floor below which structure-only propagation stops; keeps
/// low-evidence chains from flooding unrelated regions.
const MIN_STRUCTURAL_CONFIDENCE: f64 = 0.30;

/// The typed outcome of matching one old function onto one new one: the
/// block maps in both directions, per-block confidence, and the PPP4xx
/// findings for everything that did not map.
#[derive(Clone, Debug)]
pub struct MatchReport {
    /// For each old block, the new block it maps to.
    pub old_to_new: Vec<Option<BlockId>>,
    /// For each new block, the old block it maps from.
    pub new_to_old: Vec<Option<BlockId>>,
    /// Per-old-block confidence in `[0, 1]`; `0.0` when unmatched.
    pub confidence: Vec<f64>,
    /// PPP401/402/403 findings (func/name refer to the *new* module).
    pub diagnostics: Vec<Diagnostic>,
    /// `true` when the map is the total identity: equal block counts and
    /// every old block matched to the same index. Identity transfers are
    /// lossless by construction.
    pub identity: bool,
}

impl MatchReport {
    /// Number of matched old blocks.
    pub fn matched_blocks(&self) -> usize {
        self.old_to_new.iter().flatten().count()
    }

    /// Maps an old block onto the new CFG.
    pub fn map_block(&self, b: BlockId) -> Option<BlockId> {
        self.old_to_new.get(b.index()).copied().flatten()
    }

    /// Maps an old edge onto the new CFG. The edge survives only when its
    /// source maps, the mapped source still has a successor at the same
    /// index, and the old target (when matched) agrees with the new
    /// target — otherwise the flow would be rerouted, not transferred.
    pub fn map_edge(&self, old_f: &Function, new_f: &Function, e: EdgeRef) -> Option<EdgeRef> {
        let nb = self.map_block(e.from)?;
        let nt = new_f.block(nb).term.successor(e.succ as usize)?;
        let ot = old_f.block(e.from).term.successor(e.succ as usize)?;
        match self.map_block(ot) {
            Some(mapped) if mapped != nt => None,
            _ => Some(EdgeRef::new(nb, e.succ as usize)),
        }
    }

    /// Mean confidence over matched old blocks (0 when nothing matched).
    pub fn mean_confidence(&self) -> f64 {
        let matched = self.matched_blocks();
        if matched == 0 {
            return 0.0;
        }
        self.confidence.iter().sum::<f64>() / matched as f64
    }
}

struct MatchCtx<'a> {
    old_f: &'a Function,
    new_f: &'a Function,
    oa: AnchorSet,
    na: AnchorSet,
    old_cfg: Cfg,
    new_cfg: Cfg,
    old_to_new: Vec<Option<BlockId>>,
    new_to_old: Vec<Option<BlockId>>,
    confidence: Vec<f64>,
}

impl MatchCtx<'_> {
    fn bind(&mut self, o: BlockId, n: BlockId, conf: f64) -> bool {
        if self.old_to_new[o.index()].is_some() || self.new_to_old[n.index()].is_some() {
            return false;
        }
        self.old_to_new[o.index()] = Some(n);
        self.new_to_old[n.index()] = Some(o);
        self.confidence[o.index()] = conf;
        true
    }

    /// Evidence-scaled confidence factor for pairing `o` with `n`, or
    /// `None` when the anchors are incompatible. Structure-only pairings
    /// additionally require equal loop depth and consistent idoms.
    fn compat_factor(&self, o: BlockId, n: BlockId) -> Option<f64> {
        let (ao, an) = (&self.oa.anchors[o.index()], &self.na.anchors[n.index()]);
        if ao.strong == an.strong {
            return Some(0.95);
        }
        if ao.weak == an.weak {
            return Some(0.85);
        }
        if ao.calls != BlockAnchor::NO_CALLS && ao.calls == an.calls {
            return Some(0.80);
        }
        if ao.branch == an.branch
            && self.oa.loop_depth[o.index()] == self.na.loop_depth[n.index()]
            && self.idom_consistent(o, n)
        {
            return Some(0.60);
        }
        None
    }

    /// `true` when the idoms of `o` and `n` do not contradict the match
    /// built so far (either idom unknown/unmatched, or mapped onto each
    /// other).
    fn idom_consistent(&self, o: BlockId, n: BlockId) -> bool {
        match (self.oa.idom[o.index()], self.na.idom[n.index()]) {
            (Some(oi), Some(ni)) => match self.old_to_new[oi.index()] {
                Some(mapped) => mapped == ni,
                None => true,
            },
            _ => true,
        }
    }

    fn propagate(&mut self, seeds: Vec<BlockId>) {
        let mut work = seeds;
        while let Some(o) = work.pop() {
            let Some(n) = self.old_to_new[o.index()] else {
                continue;
            };
            let conf = self.confidence[o.index()];
            let ot = &self.old_f.block(o).term;
            let nt = &self.new_f.block(n).term;
            // Positional successors: same terminator shape on both sides
            // means the i-th out-edges correspond.
            if ot.successor_count() == nt.successor_count() {
                for s in 0..ot.successor_count() {
                    let (Some(os), Some(ns)) = (ot.successor(s), nt.successor(s)) else {
                        continue;
                    };
                    self.try_bind(os, ns, conf, &mut work);
                }
            }
            // Unique unmatched predecessor on both sides.
            let op: Vec<BlockId> = self
                .old_cfg
                .pred_blocks(o)
                .filter(|p| self.old_to_new[p.index()].is_none())
                .collect();
            let np: Vec<BlockId> = self
                .new_cfg
                .pred_blocks(n)
                .filter(|p| self.new_to_old[p.index()].is_none())
                .collect();
            if let ([po], [pn]) = (op.as_slice(), np.as_slice()) {
                self.try_bind(*po, *pn, conf * 0.9, &mut work);
            }
        }
    }

    fn try_bind(&mut self, o: BlockId, n: BlockId, base: f64, work: &mut Vec<BlockId>) {
        if self.old_to_new[o.index()].is_some() || self.new_to_old[n.index()].is_some() {
            return;
        }
        if let Some(factor) = self.compat_factor(o, n) {
            let conf = base * factor;
            if factor < 0.7 && conf < MIN_STRUCTURAL_CONFIDENCE {
                return;
            }
            if self.bind(o, n, conf) {
                work.push(o);
            }
        }
    }
}

/// Matches `old_f` onto `new_f`. `new_fid`/`new_name` identify the new
/// function for diagnostics (they refer to the *new* module).
pub fn match_functions(
    old_module: &Module,
    old_f: &Function,
    new_module: &Module,
    new_f: &Function,
    new_fid: FuncId,
    new_name: &str,
) -> MatchReport {
    let oa = anchor_function(old_module, old_f);
    let na = anchor_function(new_module, new_f);
    let mut ctx = MatchCtx {
        old_f,
        new_f,
        old_cfg: Cfg::new(old_f),
        new_cfg: Cfg::new(new_f),
        old_to_new: vec![None; old_f.blocks.len()],
        new_to_old: vec![None; new_f.blocks.len()],
        confidence: vec![0.0; old_f.blocks.len()],
        oa,
        na,
    };

    // Phase 1: seed on globally-unique strong hashes.
    let mut old_by_strong: HashMap<u64, Vec<BlockId>> = HashMap::new();
    let mut new_by_strong: HashMap<u64, Vec<BlockId>> = HashMap::new();
    for b in old_f.block_ids() {
        old_by_strong
            .entry(ctx.oa.anchors[b.index()].strong)
            .or_default()
            .push(b);
    }
    for b in new_f.block_ids() {
        new_by_strong
            .entry(ctx.na.anchors[b.index()].strong)
            .or_default()
            .push(b);
    }
    let mut seeds = Vec::new();
    let mut keys: Vec<u64> = old_by_strong.keys().copied().collect();
    keys.sort_unstable(); // HashMap order is not deterministic; the match must be
    for h in keys {
        if let ([o], Some([n])) = (
            old_by_strong[&h].as_slice(),
            new_by_strong.get(&h).map(|v| v.as_slice()),
        ) {
            if ctx.bind(*o, *n, 1.0) {
                seeds.push(*o);
            }
        }
    }
    // Entry blocks correspond by definition of "same function".
    let (oe, ne) = (old_f.entry, new_f.entry);
    if ctx.old_to_new[oe.index()].is_none() && ctx.new_to_old[ne.index()].is_none() {
        let conf = match ctx.compat_factor(oe, ne) {
            Some(f) if f >= 0.9 => 1.0,
            Some(_) => 0.7,
            None => 0.5, // weakest: structure changed at the entry itself
        };
        if ctx.bind(oe, ne, conf) {
            seeds.push(oe);
        }
    }

    // Phase 2: flood outward.
    ctx.propagate(seeds);

    // Phase 3: non-unique strong hashes that dominator + loop context can
    // single out. One more propagation round per resolved pair.
    let mut keys: Vec<u64> = old_by_strong.keys().copied().collect();
    keys.sort_unstable();
    for h in keys {
        let olds: Vec<BlockId> = old_by_strong[&h]
            .iter()
            .copied()
            .filter(|o| ctx.old_to_new[o.index()].is_none())
            .collect();
        let Some(news) = new_by_strong.get(&h) else {
            continue;
        };
        for o in olds {
            let cands: Vec<BlockId> = news
                .iter()
                .copied()
                .filter(|n| {
                    ctx.new_to_old[n.index()].is_none()
                        && ctx.oa.loop_depth[o.index()] == ctx.na.loop_depth[n.index()]
                        && ctx.idom_consistent(o, *n)
                })
                .collect();
            if let [n] = cands.as_slice() {
                let n = *n;
                if ctx.bind(o, n, 0.75) {
                    ctx.propagate(vec![o]);
                }
            }
        }
    }

    // Diagnostics for the leftovers.
    let mut diagnostics = Vec::new();
    for o in old_f.block_ids() {
        if ctx.old_to_new[o.index()].is_some() {
            continue;
        }
        let strong = ctx.oa.anchors[o.index()].strong;
        let live_candidates = new_by_strong
            .get(&strong)
            .map(|v| {
                v.iter()
                    .filter(|n| ctx.new_to_old[n.index()].is_none())
                    .count()
            })
            .unwrap_or(0);
        let (code, message) = if live_candidates > 0 {
            (
                Code::AmbiguousAnchor,
                format!(
                    "old block b{} matches {} candidate block(s) in the new version \
                     but structure cannot disambiguate; its profile flow is dropped",
                    o.index(),
                    live_candidates
                ),
            )
        } else {
            (
                Code::UnanchoredBlock,
                format!(
                    "old block b{} has no anchor and no propagated match in the new \
                     version; its profile flow is dropped",
                    o.index()
                ),
            )
        };
        diagnostics.push(Diagnostic {
            code,
            func: new_fid,
            func_name: new_name.to_string(),
            block: None, // the block id is an *old* coordinate; keep it in the message
            message,
        });
    }
    for n in new_f.block_ids() {
        if ctx.new_to_old[n.index()].is_some() {
            continue;
        }
        let matched_preds = ctx
            .new_cfg
            .pred_blocks(n)
            .filter(|p| ctx.new_to_old[p.index()].is_some())
            .count();
        let matched_succs = ctx
            .new_cfg
            .succs(n)
            .iter()
            .filter(|s| ctx.new_to_old[s.index()].is_some())
            .count();
        diagnostics.push(Diagnostic {
            code: Code::SplitMergedRegion,
            func: new_fid,
            func_name: new_name.to_string(),
            block: Some(n),
            message: format!(
                "new block has no old counterpart ({matched_preds} matched pred(s), \
                 {matched_succs} matched succ(s)); transferred flow is renormalized \
                 around it"
            ),
        });
    }

    let identity = old_f.blocks.len() == new_f.blocks.len()
        && ctx
            .old_to_new
            .iter()
            .enumerate()
            .all(|(i, m)| *m == Some(BlockId::new(i)));

    MatchReport {
        old_to_new: ctx.old_to_new,
        new_to_old: ctx.new_to_old,
        confidence: ctx.confidence,
        diagnostics,
        identity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::FunctionBuilder;

    fn diamond(name: &str) -> Function {
        let mut b = FunctionBuilder::new(name, 1);
        let c = b.constant(1);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, t, e);
        b.switch_to(t);
        let x = b.constant(10);
        b.emit(x);
        b.jump(j);
        b.switch_to(e);
        let y = b.constant(20);
        b.emit(y);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn identity_match_is_total_and_exact() {
        let mut m = Module::new();
        m.add_function(diamond("f"));
        let f = m.function(FuncId(0));
        let r = match_functions(&m, f, &m, f, FuncId(0), "f");
        assert!(r.identity);
        assert_eq!(r.matched_blocks(), f.blocks.len());
        assert!(r.diagnostics.is_empty());
        for b in f.block_ids() {
            assert_eq!(r.map_block(b), Some(b));
        }
    }

    #[test]
    fn duplicate_arms_still_identity_via_propagation() {
        // Two byte-identical `jump j` arms are ambiguous by anchor alone;
        // positional successor propagation from the entry resolves them.
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("g", 1);
        let c = b.constant(1);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        m.add_function(b.finish());
        let f = m.function(FuncId(0));
        let r = match_functions(&m, f, &m, f, FuncId(0), "g");
        assert!(r.identity, "map: {:?}", r.old_to_new);
        assert!(r.diagnostics.is_empty());
    }
}
