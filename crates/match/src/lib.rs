//! Stale-profile matching: transferring path profiles across program
//! versions.
//!
//! Production PGO's hardest problem is that profiles are collected on
//! program version *N* and applied to version *N+k*. The persist-v2
//! stale loaders match functions by name and drop whatever no longer
//! fits; this crate adds the static analysis that lets a profile
//! *survive* edits, in the spirit of Ayupov/Panchenko/Pupyrev's stale
//! profile matching (see `PAPERS.md`):
//!
//! * [`anchor`] — hash-based block anchors: opcode/shape fingerprints,
//!   call-site and branch-structure signatures, and a whole-function
//!   anchor identity, all register- and block-number independent;
//! * [`matcher`] — the CFG-similarity matcher: anchor seeding plus
//!   neighborhood propagation over dominator/loop structure, producing a
//!   typed [`MatchReport`] with per-block confidence and stable PPP4xx
//!   diagnostics (PPP401 unanchored, PPP402 ambiguous, PPP403
//!   split/merged region) through the `ppp-lint` machinery;
//! * [`transfer`] — remaps edge and path profiles through a
//!   [`MatchReport`], renormalizing at matched-region boundaries so the
//!   result always passes PPP308 flow conservation (functions that
//!   cannot be repaired are zeroed and flagged PPP404);
//! * [`stale`] — the matched-stale loaders: name- then anchor-identity
//!   function pairing across two module versions, wholesale profile
//!   transfer, and `ppp_stale_*`/`ppp_match_*` observability metrics.
//!
//! The crate is deterministic end to end: hashing is FNV-1a (no
//! `DefaultHasher`), every iteration over a hash map is sorted, and the
//! same inputs always produce the same match, the same transfer, and the
//! same diagnostics.

#![warn(missing_docs)]

pub mod anchor;
pub mod matcher;
pub mod stale;
pub mod transfer;

pub use anchor::{anchor_function, function_fingerprint, AnchorSet, BlockAnchor};
pub use matcher::{match_functions, MatchReport};
pub use stale::{
    match_modules, read_edge_profile_matched, read_path_profile_matched, FuncPair,
    MatchedStaleReport, ModuleMatch, PairMethod,
};
pub use transfer::{transfer_edge_profile, transfer_path_profile, TransferStats};

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::{
        read_edge_profile_stale, write_edge_profile_v2, write_path_profile_v2, BlockId, EdgeRef,
        FuncId, FunctionBuilder, Inst, Module, ModuleEdgeProfile, ModulePathProfile, PathKey, Reg,
        Terminator,
    };
    use ppp_lint::Code;

    /// Two-function module: a diamond `main` calling a leaf `work`.
    fn sample() -> Module {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main", 0);
        let c = b.constant(1);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, t, e);
        b.switch_to(t);
        let x = b.constant(10);
        b.emit(x);
        b.jump(j);
        b.switch_to(e);
        let y = b.constant(20);
        b.emit(y);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        m.add_function(b.finish());
        let mut g = FunctionBuilder::new("work", 1);
        let p = g.param(0);
        g.ret(Some(p));
        m.add_function(g.finish());
        m
    }

    fn sample_edges(m: &Module) -> ModuleEdgeProfile {
        let mut p = ModuleEdgeProfile::zeroed(m);
        let f0 = p.func_mut(FuncId(0));
        f0.set_entries(10);
        f0.set_block(BlockId(0), 10);
        f0.set_edge(EdgeRef::new(BlockId(0), 0), 7);
        f0.set_edge(EdgeRef::new(BlockId(0), 1), 3);
        f0.set_block(BlockId(1), 7);
        f0.set_edge(EdgeRef::new(BlockId(1), 0), 7);
        f0.set_block(BlockId(2), 3);
        f0.set_edge(EdgeRef::new(BlockId(2), 0), 3);
        f0.set_block(BlockId(3), 10);
        p
    }

    #[test]
    fn identity_matched_load_is_lossless_and_byte_identical() {
        let m = sample();
        let edges = sample_edges(&m);
        let bytes = write_edge_profile_v2(&m, &edges);
        let (loaded, report) = read_edge_profile_matched(&m, &m, bytes.as_bytes()).unwrap();
        assert!(report.is_lossless(), "report: {report:?}");
        assert!(report.diagnostics.is_empty());
        // Byte-identical round trip: serialize the transferred profile
        // and compare to the original artifact.
        assert_eq!(write_edge_profile_v2(&m, &loaded), bytes);
    }

    #[test]
    fn identity_matched_path_load_is_lossless() {
        let m = sample();
        let f = m.function(FuncId(0));
        let mut paths = ModulePathProfile::with_capacity(m.functions.len());
        let key = PathKey {
            start: BlockId(0),
            edges: vec![EdgeRef::new(BlockId(0), 0), EdgeRef::new(BlockId(1), 0)],
        };
        paths.func_mut(FuncId(0)).record(f, key, 7);
        let bytes = write_path_profile_v2(&m, &paths);
        let (loaded, report) = read_path_profile_matched(&m, &m, bytes.as_bytes()).unwrap();
        assert!(report.is_lossless());
        assert_eq!(write_path_profile_v2(&m, &loaded), bytes);
    }

    #[test]
    fn renamed_identical_function_is_rescued_by_anchor_identity() {
        // Regression test for the name-only stale loaders: a renamed but
        // otherwise identical function loses its profile under the plain
        // stale loader and keeps it under the matched loader.
        let old = sample();
        let mut new = sample();
        new.functions[1].name = "work_v2".to_string();
        let edges = {
            let mut p = sample_edges(&old);
            let f1 = p.func_mut(FuncId(1));
            f1.set_entries(5);
            f1.set_block(BlockId(0), 5);
            p
        };
        let bytes = write_edge_profile_v2(&old, &edges);

        let (plain, plain_report) = read_edge_profile_stale(&new, bytes.as_bytes()).unwrap();
        assert!(plain.func(FuncId(1)).is_zero(), "name-only load drops it");
        assert_eq!(plain_report.unmatched_sections, vec!["work".to_string()]);

        let (matched, report) = read_edge_profile_matched(&old, &new, bytes.as_bytes()).unwrap();
        assert_eq!(report.anchor_paired, 1);
        assert_eq!(matched.func(FuncId(1)).entries(), 5);
        assert_eq!(matched.func(FuncId(1)).block(BlockId(0)), 5);
        assert!(matched.is_flow_conservative(&new));
    }

    #[test]
    fn ppp401_unanchored_block() {
        // Replace one arm with entirely different code and rewire the
        // branch around it: the old arm has no anchor and no position.
        let old = sample();
        let mut new = sample();
        {
            let f = &mut new.functions[0];
            let r = Reg(f.reg_count);
            f.reg_count += 1;
            let blk = f.block_mut(BlockId(1));
            blk.insts.clear();
            blk.insts.push(Inst::Const { dst: r, value: 42 });
            blk.insts.push(Inst::Store { addr: r, src: r });
            blk.insts.push(Inst::Load { dst: r, addr: r });
            blk.insts.push(Inst::Emit { src: r });
            blk.term = Terminator::Return { value: None };
        }
        let mm = match_modules(&old, &new);
        let report = &mm.pairs[0].report;
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == Code::UnanchoredBlock),
            "diags: {:?}",
            report.diagnostics
        );
    }

    #[test]
    fn ppp402_ambiguous_anchor() {
        // Old: a branch to one `const 7; emit; ret` block. New: a switch
        // (different successor arity, so positional propagation cannot
        // run) fanning out to three byte-identical copies of that block.
        // The old block's anchor matches all three and neither position
        // nor dominators can single one out.
        let mut old = Module::new();
        let mut b = FunctionBuilder::new("f", 0);
        let c = b.constant(3);
        let dup = b.new_block();
        b.branch(c, dup, dup);
        b.switch_to(dup);
        let v = b.constant(7);
        b.emit(v);
        b.ret(None);
        old.add_function(b.finish());

        let mut new = Module::new();
        let mut b = FunctionBuilder::new("f", 0);
        let c = b.constant(3);
        let (d1, d2, d3) = (b.new_block(), b.new_block(), b.new_block());
        b.switch(c, vec![d1, d2], d3);
        for d in [d1, d2, d3] {
            b.switch_to(d);
            let v = b.constant(7);
            b.emit(v);
            b.ret(None);
        }
        new.add_function(b.finish());

        let mm = match_modules(&old, &new);
        let report = &mm.pairs[0].report;
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == Code::AmbiguousAnchor),
            "diags: {:?}",
            report.diagnostics
        );
    }

    #[test]
    fn ppp403_split_region() {
        // New version splits the then-arm in two: the second half has no
        // old counterpart but sits between matched blocks.
        let old = sample();
        let mut new = sample();
        {
            let f = &mut new.functions[0];
            // Split block 1 (then-arm): keep the const in b1, move the
            // emit to a fresh block b4 that jumps on to the join.
            let join = match f.block(BlockId(1)).term {
                Terminator::Jump { target } => target,
                _ => unreachable!(),
            };
            let blk = f.block_mut(BlockId(1));
            let moved = blk.insts.split_off(1);
            let half = ppp_ir::Block {
                insts: moved,
                term: Terminator::Jump { target: join },
            };
            let new_id = f.add_block(half);
            f.block_mut(BlockId(1)).term = Terminator::Jump { target: new_id };
        }
        let mm = match_modules(&old, &new);
        let report = &mm.pairs[0].report;
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == Code::SplitMergedRegion),
            "diags: {:?}",
            report.diagnostics
        );
        // And the transfer around the split must still be conservative.
        let edges = sample_edges(&old);
        let bytes = write_edge_profile_v2(&old, &edges);
        let (loaded, msr) = read_edge_profile_matched(&old, &new, bytes.as_bytes()).unwrap();
        assert!(loaded.is_flow_conservative(&new));
        assert!(msr.diagnostics.has(Code::SplitMergedRegion));
    }

    #[test]
    fn ppp404_non_conservative_transfer_zeroes_function() {
        // Old: entry -> L -> B, B branches back to L or exits. New: L
        // jumps straight to the exit, leaving B (still byte-identical,
        // so it matches by anchor) unreachable. Its transferred flow is
        // stranded — unrepairable — so the function must be zeroed and
        // flagged PPP404.
        let build = |loops: bool| {
            let mut m = Module::new();
            let mut b = FunctionBuilder::new("f", 0);
            let (l, bb, r) = (b.new_block(), b.new_block(), b.new_block());
            b.jump(l);
            b.switch_to(l);
            let v = b.constant(5);
            b.emit(v);
            if loops {
                b.jump(bb);
            } else {
                b.jump(r);
            }
            b.switch_to(bb);
            let c = b.constant(1);
            b.branch(c, l, r);
            b.switch_to(r);
            b.ret(None);
            m.add_function(b.finish());
            m
        };
        let old = build(true);
        let new = build(false);
        let mut edges = ModuleEdgeProfile::zeroed(&old);
        {
            let f0 = edges.func_mut(FuncId(0));
            f0.set_entries(5);
            f0.set_block(BlockId(0), 5);
            f0.set_edge(EdgeRef::new(BlockId(0), 0), 5);
            f0.set_block(BlockId(1), 50);
            f0.set_edge(EdgeRef::new(BlockId(1), 0), 50);
            f0.set_block(BlockId(2), 50);
            f0.set_edge(EdgeRef::new(BlockId(2), 0), 45);
            f0.set_edge(EdgeRef::new(BlockId(2), 1), 5);
            f0.set_block(BlockId(3), 5);
        }
        let bytes = write_edge_profile_v2(&old, &edges);
        let (loaded, report) = read_edge_profile_matched(&old, &new, bytes.as_bytes()).unwrap();
        assert!(
            report.diagnostics.has(Code::NonConservativeTransfer),
            "report: {report:?}"
        );
        assert_eq!(report.zeroed_funcs, vec!["f".to_string()]);
        assert!(loaded.func(FuncId(0)).is_zero());
        assert!(loaded.is_flow_conservative(&new));
    }

    #[test]
    fn transferred_profiles_always_flow_conservative() {
        // Sweep a family of perturbations; every transfer must pass the
        // PPP308 invariant regardless of match quality.
        let old = sample();
        let edges = sample_edges(&old);
        let bytes = write_edge_profile_v2(&old, &edges);
        let mut variants: Vec<Module> = Vec::new();
        // 1: constant tweak in one arm.
        let mut v = sample();
        if let Inst::Const { value, .. } = &mut v.functions[0].block_mut(BlockId(1)).insts[0] {
            *value = 11;
        }
        variants.push(v);
        // 2: extra branch in the join block.
        let mut v = sample();
        {
            let f = &mut v.functions[0];
            let r = Reg(f.reg_count);
            f.reg_count += 1;
            let detour = f.add_block(ppp_ir::Block {
                insts: vec![],
                term: Terminator::Return { value: None },
            });
            let blk = f.block_mut(BlockId(3));
            blk.insts.push(Inst::Const { dst: r, value: 0 });
            blk.term = Terminator::Branch {
                cond: r,
                then_target: detour,
                else_target: detour,
            };
        }
        variants.push(v);
        // 3: renamed + retargeted call-free variant.
        let mut v = sample();
        v.functions[0].name = "main_v2".to_string();
        variants.push(v);
        for (i, new) in variants.iter().enumerate() {
            let (loaded, report) = read_edge_profile_matched(&old, new, bytes.as_bytes()).unwrap();
            assert!(
                loaded.is_flow_conservative(new),
                "variant {i} not conservative: {report:?}"
            );
        }
    }

    #[test]
    fn matched_load_records_obs_metrics() {
        let (ctx, _collect) = ppp_obs::ObsCtx::collecting();
        ppp_obs::install_global(ctx.clone());
        let m = sample();
        let edges = sample_edges(&m);
        let bytes = write_edge_profile_v2(&m, &edges);
        let _ = read_edge_profile_matched(&m, &m, bytes.as_bytes()).unwrap();
        let metrics = ctx.metrics().render_prometheus();
        ppp_obs::install_global(ppp_obs::ObsCtx::noop());
        assert!(metrics.contains("ppp_stale_sections_total"), "{metrics}");
        assert!(metrics.contains("ppp_match_funcs_total"), "{metrics}");
    }

    #[test]
    fn unmatched_old_function_flow_counts_as_dropped() {
        let old = sample();
        let mut new = sample();
        // Remove `work` entirely (and retarget nothing — main has no
        // calls in this fixture).
        new.functions.truncate(1);
        let mut edges = sample_edges(&old);
        edges.func_mut(FuncId(1)).set_entries(9);
        edges.func_mut(FuncId(1)).set_block(BlockId(0), 9);
        let bytes = write_edge_profile_v2(&old, &edges);
        let (_, report) = read_edge_profile_matched(&old, &new, bytes.as_bytes()).unwrap();
        assert_eq!(report.unmatched_old, vec!["work".to_string()]);
        assert!(report.dropped_flow > 0);
        assert!(!report.is_lossless());
    }
}
