//! Profile transfer across a [`MatchReport`], with boundary
//! renormalization.
//!
//! The raw transfer copies entries, matched block frequencies, and
//! matched edge frequencies onto the new CFG. If the result already
//! satisfies Kirchhoff flow conservation (the `PPP308` invariant) — as an
//! identity transfer always does — it is returned untouched, so identity
//! transfers are byte-identical on re-serialization.
//!
//! Otherwise a single reverse-postorder repair pass rebuilds the flow
//! around the matched region:
//!
//! * retreating (loop back) edge weights are *frozen* at their
//!   transferred values — they carry the loop trip counts, the most
//!   valuable part of the old profile;
//! * each block's frequency is recomputed as its inflow (entries for the
//!   entry block, plus all in-edge weights — non-retreating in-edges are
//!   final by RPO order, retreating ones are frozen);
//! * non-retreating out-edges are rescaled to exactly `freq − retreating
//!   out-flow` with a largest-remainder split, so every block balances
//!   exactly.
//!
//! Because every reachable block then has `inflow = freq = outflow`, exit
//! flow telescopes back to the entry count and the repaired profile is
//! conservative in one pass — no fixpoint iteration, no geometric decay
//! on loops. The pass can still fail: flow stranded on blocks that became
//! unreachable, or a frozen retreating out-flow exceeding the block's
//! inflow, cannot be repaired locally. Those functions are zeroed (the
//! zero profile is trivially conservative) and flagged `PPP404`, so the
//! invariant "every transferred profile passes PPP308" holds
//! unconditionally.

use crate::matcher::MatchReport;
use ppp_ir::{Cfg, EdgeRef, FuncEdgeProfile, FuncPathProfile, Function, PathKey};

/// What the transfer did to one function's profile.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Edge records copied onto the new CFG.
    pub transferred_edges: usize,
    /// Edge flow on old edges with no usable image in the new CFG.
    pub dropped_flow: u64,
    /// Total absolute block-frequency adjustment made by renormalization.
    pub moved_flow: u64,
    /// `true` when the raw transfer violated flow conservation and the
    /// repair pass ran.
    pub renormalized: bool,
    /// `true` when repair failed and the function was zeroed (`PPP404`).
    pub zeroed: bool,
}

impl TransferStats {
    /// `true` when the transfer neither dropped, moved, nor zeroed any
    /// flow: the profile came across bit-exact.
    pub fn is_exact(&self) -> bool {
        self.dropped_flow == 0 && !self.renormalized && !self.zeroed
    }
}

/// Transfers an edge profile for one function pair. The result always
/// satisfies `FuncEdgeProfile::flow_violations(new_f).is_empty()`.
pub fn transfer_edge_profile(
    report: &MatchReport,
    old_f: &Function,
    new_f: &Function,
    old_p: &FuncEdgeProfile,
) -> (FuncEdgeProfile, TransferStats) {
    let mut stats = TransferStats::default();
    let mut p = FuncEdgeProfile::zeroed(new_f);
    if old_p.is_zero() {
        return (p, stats);
    }
    p.set_entries(old_p.entries());
    for b in old_f.block_ids() {
        let Some(n) = report.map_block(b) else {
            // Unmatched old block: its out-flow has nowhere to go.
            for s in 0..old_f.block(b).term.successor_count() {
                stats.dropped_flow = stats
                    .dropped_flow
                    .saturating_add(old_p.edge(EdgeRef::new(b, s)));
            }
            continue;
        };
        p.set_block(n, old_p.block(b));
        for s in 0..old_f.block(b).term.successor_count() {
            let e = EdgeRef::new(b, s);
            match report.map_edge(old_f, new_f, e) {
                Some(ne) => {
                    p.set_edge(ne, old_p.edge(e));
                    stats.transferred_edges += 1;
                }
                None => {
                    stats.dropped_flow = stats.dropped_flow.saturating_add(old_p.edge(e));
                }
            }
        }
    }

    if p.flow_violations(new_f).is_empty() {
        return (p, stats);
    }
    stats.renormalized = true;
    match renormalize(new_f, &mut p) {
        Some(moved) => stats.moved_flow = moved,
        None => {
            p.zero();
            stats.zeroed = true;
        }
    }
    (p, stats)
}

/// One-pass RPO flow repair; returns the moved flow, or `None` when the
/// profile cannot be made conservative (caller zeroes it).
fn renormalize(f: &Function, p: &mut FuncEdgeProfile) -> Option<u64> {
    let cfg = Cfg::new(f);
    let rpo: Vec<_> = cfg.reverse_postorder().to_vec();
    let mut moved: u64 = 0;
    for &b in &rpo {
        let mut inflow: u64 = if b == f.entry { p.entries() } else { 0 };
        for &e in cfg.preds(b) {
            inflow = inflow.saturating_add(p.edge(e));
        }
        moved = moved.saturating_add(p.block(b).abs_diff(inflow));
        p.set_block(b, inflow);
        let sc = f.block(b).term.successor_count();
        if sc == 0 {
            continue;
        }
        // Freeze retreating out-edges; budget the rest.
        let mut frozen: u64 = 0;
        let mut scalable: Vec<(EdgeRef, u64)> = Vec::new();
        for s in 0..sc {
            let e = EdgeRef::new(b, s);
            let w = p.edge(e);
            if cfg.is_retreating(b, f.edge_target(e)) {
                frozen = frozen.saturating_add(w);
            } else {
                scalable.push((e, w));
            }
        }
        if frozen > inflow {
            return None; // loop back-flow exceeds what reaches the block
        }
        let budget = inflow - frozen;
        let current: u64 = scalable.iter().map(|(_, w)| w).sum();
        if current == budget {
            continue;
        }
        if scalable.is_empty() {
            return None; // all out-edges retreating, budget unplaceable
        }
        if current == 0 {
            // No signal to scale: send the whole budget down the first
            // non-retreating successor.
            moved = moved.saturating_add(budget);
            p.set_edge(scalable[0].0, budget);
            continue;
        }
        // Largest-remainder proportional split: sums to budget exactly.
        let mut assigned: u64 = 0;
        let mut shares: Vec<(EdgeRef, u64, u128)> = Vec::new();
        for &(e, w) in &scalable {
            let num = u128::from(w) * u128::from(budget);
            let q = (num / u128::from(current)) as u64;
            let r = num % u128::from(current);
            assigned = assigned.saturating_add(q);
            shares.push((e, q, r));
        }
        let mut leftover = budget - assigned;
        // Ties broken by successor index for determinism.
        shares.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.succ.cmp(&b.0.succ)));
        for share in shares.iter_mut() {
            if leftover == 0 {
                break;
            }
            share.1 += 1;
            leftover -= 1;
        }
        for &(e, q, _) in &shares {
            moved = moved.saturating_add(p.edge(e).abs_diff(q));
            p.set_edge(e, q);
        }
    }
    if p.flow_violations(f).is_empty() {
        Some(moved)
    } else {
        None // e.g. flow stranded on blocks unreachable in the new CFG
    }
}

/// Transfers a path profile: each old path is re-chained through the
/// block map and kept only if it still walks a real path in the new CFG.
/// Returns the profile and the total frequency of dropped paths.
pub fn transfer_path_profile(
    report: &MatchReport,
    old_f: &Function,
    new_f: &Function,
    old_p: &FuncPathProfile,
) -> (FuncPathProfile, u64) {
    let mut out = FuncPathProfile::new();
    let mut dropped: u64 = 0;
    let mut keys: Vec<&PathKey> = old_p.paths.keys().collect();
    keys.sort_by_key(|k| (k.start, k.edges.clone()));
    for key in keys {
        let freq = old_p.paths[key].freq;
        match map_path(report, old_f, new_f, key) {
            Some(new_key) => out.record(new_f, new_key, freq),
            None => dropped = dropped.saturating_add(freq),
        }
    }
    (out, dropped)
}

fn map_path(
    report: &MatchReport,
    old_f: &Function,
    new_f: &Function,
    key: &PathKey,
) -> Option<PathKey> {
    let start = report.map_block(key.start)?;
    let mut cur = start;
    let mut edges = Vec::with_capacity(key.edges.len());
    for &e in &key.edges {
        let ne = report.map_edge(old_f, new_f, e)?;
        if ne.from != cur {
            return None; // mapped edges no longer chain
        }
        cur = new_f.edge_target(ne);
        edges.push(ne);
    }
    Some(PathKey { start, edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::match_functions;
    use ppp_ir::{BlockId, FuncId, FunctionBuilder, Module};

    fn diamond(name: &str) -> Function {
        let mut b = FunctionBuilder::new(name, 1);
        let c = b.constant(1);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    fn diamond_profile(f: &Function) -> FuncEdgeProfile {
        let mut p = FuncEdgeProfile::zeroed(f);
        p.set_entries(10);
        p.set_block(BlockId(0), 10);
        p.set_edge(EdgeRef::new(BlockId(0), 0), 7);
        p.set_edge(EdgeRef::new(BlockId(0), 1), 3);
        p.set_block(BlockId(1), 7);
        p.set_edge(EdgeRef::new(BlockId(1), 0), 7);
        p.set_block(BlockId(2), 3);
        p.set_edge(EdgeRef::new(BlockId(2), 0), 3);
        p.set_block(BlockId(3), 10);
        p
    }

    #[test]
    fn identity_transfer_is_bit_exact() {
        let mut m = Module::new();
        m.add_function(diamond("f"));
        let f = m.function(FuncId(0));
        let old = diamond_profile(f);
        let r = match_functions(&m, f, &m, f, FuncId(0), "f");
        let (new, stats) = transfer_edge_profile(&r, f, f, &old);
        assert!(stats.is_exact());
        assert_eq!(new, old);
        assert!(new.flow_violations(f).is_empty());
    }

    #[test]
    fn renormalization_repairs_dropped_arm() {
        // New version changes one arm of the diamond so its flow is
        // dropped; the repair pass must rebuild a conservative profile.
        let mut m = Module::new();
        m.add_function(diamond("f"));
        let mut g = diamond("f");
        // Make block 1 (then-arm) unrecognizable: add instructions.
        let mut fb_block = g.block(BlockId(1)).clone();
        fb_block.insts.push(ppp_ir::Inst::Const {
            dst: ppp_ir::Reg(5),
            value: 99,
        });
        fb_block.insts.push(ppp_ir::Inst::Emit {
            src: ppp_ir::Reg(5),
        });
        *g.block_mut(BlockId(1)) = fb_block;
        g.reg_count = g.reg_count.max(6);
        let mut m2 = Module::new();
        m2.add_function(g);

        let old_f = m.function(FuncId(0));
        let new_f = m2.function(FuncId(0));
        let old = diamond_profile(old_f);
        let r = match_functions(&m, old_f, &m2, new_f, FuncId(0), "f");
        let (new, stats) = transfer_edge_profile(&r, old_f, new_f, &old);
        assert!(new.flow_violations(new_f).is_empty());
        assert_eq!(new.entries(), 10);
        assert!(stats.renormalized || stats.is_exact());
        assert!(!stats.zeroed);
    }
}
