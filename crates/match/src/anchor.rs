//! Hash-based block anchors.
//!
//! An *anchor* is a content fingerprint of a basic block that is stable
//! across the edits a dynamic optimizer (or an ordinary code change)
//! makes to *other* parts of the function: register renumbering, block
//! renumbering, and control-flow rewiring elsewhere. Anchors deliberately
//! exclude register numbers and successor block ids — only opcode shape,
//! immediate constants, callee names, and terminator structure survive
//! into the hash, following the spirit of Ayupov/Panchenko/Pupyrev's
//! stale-profile matching.
//!
//! Each block gets four signatures of decreasing strength:
//!
//! * **strong** — the ordered opcode sequence with constants, operator
//!   mnemonics, callee names, and the terminator kind/arity mixed in. Two
//!   blocks with equal strong hashes are, for matching purposes, the same
//!   code.
//! * **weak** — the order-insensitive opcode multiset plus the terminator
//!   kind/arity. Survives instruction scheduling.
//! * **calls** — the ordered callee-name sequence (the call-site
//!   signature). Calls are rare and near-unique, so this is a high-value
//!   tiebreaker.
//! * **branch** — the terminator kind and successor arity only (the
//!   branch-structure signature), used as a last-resort compatibility
//!   check during structural propagation.
//!
//! A whole-function fingerprint (FNV over the ordered strong hashes) is
//! the *anchor identity* used to re-pair renamed functions at module
//! level.

use ppp_ir::{analyze_loops, Block, BlockId, Function, Inst, Module, Terminator};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a, the only hasher used by the anchor pass (stable
/// across platforms and Rust versions, unlike `DefaultHasher`).
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn word(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn text(&mut self, s: &str) {
        self.bytes(s.as_bytes());
        self.byte(0xff); // delimiter so "ab"+"c" != "a"+"bc"
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Opcode tag for the multiset (weak) hash; register operands are
/// ignored by design.
fn inst_tag(inst: &Inst) -> u8 {
    match inst {
        Inst::Const { .. } => 0,
        Inst::Copy { .. } => 1,
        Inst::Unary { .. } => 2,
        Inst::Binary { .. } => 3,
        Inst::Load { .. } => 4,
        Inst::Store { .. } => 5,
        Inst::Rand { .. } => 6,
        Inst::Call { .. } => 7,
        Inst::Emit { .. } => 8,
        Inst::Prof(_) => 9,
    }
}

const TAG_COUNT: usize = 10;

fn term_tag(term: &Terminator) -> u8 {
    match term {
        Terminator::Jump { .. } => 0,
        Terminator::Branch { .. } => 1,
        Terminator::Switch { .. } => 2,
        Terminator::Return { .. } => 3,
    }
}

/// Mixes one instruction's content (not its registers) into `h`.
fn hash_inst(h: &mut Fnv, module: &Module, inst: &Inst) {
    h.byte(inst_tag(inst));
    match inst {
        Inst::Const { value, .. } => h.word(*value as u64),
        Inst::Unary { op, .. } => h.text(op.mnemonic()),
        Inst::Binary { op, .. } => h.text(op.mnemonic()),
        Inst::Call { dst, callee, args } => {
            h.text(&module.function(*callee).name);
            h.word(args.len() as u64);
            h.byte(u8::from(dst.is_some()));
        }
        _ => {}
    }
}

/// The four per-block signatures; see the module docs for their roles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockAnchor {
    /// Ordered content hash: opcode sequence, constants, operators,
    /// callee names, terminator kind and arity.
    pub strong: u64,
    /// Order-insensitive opcode multiset plus terminator kind/arity.
    pub weak: u64,
    /// Ordered callee-name sequence; [`NO_CALLS`](Self::NO_CALLS) when
    /// the block makes no calls.
    pub calls: u64,
    /// Terminator kind and successor arity only.
    pub branch: u64,
}

impl BlockAnchor {
    /// The `calls` signature of a block without call instructions.
    pub const NO_CALLS: u64 = 0;
}

fn anchor_block(module: &Module, block: &Block) -> BlockAnchor {
    let mut strong = Fnv::new();
    let mut calls = Fnv::new();
    let mut counts = [0u32; TAG_COUNT];
    let mut has_calls = false;
    for inst in &block.insts {
        hash_inst(&mut strong, module, inst);
        counts[inst_tag(inst) as usize] += 1;
        if let Inst::Call { callee, args, .. } = inst {
            calls.text(&module.function(*callee).name);
            calls.word(args.len() as u64);
            has_calls = true;
        }
    }
    let mut branch = Fnv::new();
    branch.byte(term_tag(&block.term));
    branch.word(block.term.successor_count() as u64);
    let branch = branch.finish();

    strong.byte(term_tag(&block.term));
    strong.word(block.term.successor_count() as u64);

    let mut weak = Fnv::new();
    for c in counts {
        weak.word(u64::from(c));
    }
    weak.byte(term_tag(&block.term));
    weak.word(block.term.successor_count() as u64);

    BlockAnchor {
        strong: strong.finish(),
        weak: weak.finish(),
        calls: if has_calls {
            calls.finish()
        } else {
            BlockAnchor::NO_CALLS
        },
        branch,
    }
}

/// All anchors for one function, plus the dominator/loop context the
/// matcher propagates over.
#[derive(Clone, Debug)]
pub struct AnchorSet {
    /// Per-block signatures, indexed by [`BlockId`].
    pub anchors: Vec<BlockAnchor>,
    /// Loop-nesting depth of each block (0 outside any loop).
    pub loop_depth: Vec<u32>,
    /// Immediate dominator of each block (`None` for the entry and
    /// unreachable blocks).
    pub idom: Vec<Option<BlockId>>,
    /// Whole-function anchor identity: FNV over arity, block count, and
    /// the ordered strong hashes.
    pub fingerprint: u64,
}

/// Computes anchors, loop depths, and idoms for every block of `f`.
pub fn anchor_function(module: &Module, f: &Function) -> AnchorSet {
    let (_cfg, dom, loops) = analyze_loops(f);
    let anchors: Vec<BlockAnchor> = f.blocks.iter().map(|b| anchor_block(module, b)).collect();
    let loop_depth: Vec<u32> = f.block_ids().map(|b| loops.depth(b)).collect();
    let idom: Vec<Option<BlockId>> = f.block_ids().map(|b| dom.idom(b)).collect();
    let mut fp = Fnv::new();
    fp.word(u64::from(f.param_count));
    fp.word(f.blocks.len() as u64);
    for a in &anchors {
        fp.word(a.strong);
    }
    AnchorSet {
        anchors,
        loop_depth,
        idom,
        fingerprint: fp.finish(),
    }
}

/// The anchor identity of a whole function: equal fingerprints mean the
/// functions are the same code block-for-block (names and register
/// numbers aside). Used by module-level matching to re-pair renamed
/// functions.
pub fn function_fingerprint(module: &Module, f: &Function) -> u64 {
    anchor_function(module, f).fingerprint
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::FunctionBuilder;

    fn diamond(name: &str, k: i64) -> Function {
        let mut b = FunctionBuilder::new(name, 1);
        let c = b.constant(k);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn identical_functions_identical_anchors() {
        let mut m = Module::new();
        m.add_function(diamond("a", 7));
        m.add_function(diamond("b", 7));
        let a = anchor_function(&m, m.function(ppp_ir::FuncId(0)));
        let b = anchor_function(&m, m.function(ppp_ir::FuncId(1)));
        assert_eq!(a.anchors, b.anchors);
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn constant_change_breaks_strong_keeps_weak() {
        let mut m = Module::new();
        m.add_function(diamond("a", 7));
        m.add_function(diamond("b", 8));
        let a = anchor_function(&m, m.function(ppp_ir::FuncId(0)));
        let b = anchor_function(&m, m.function(ppp_ir::FuncId(1)));
        assert_ne!(a.anchors[0].strong, b.anchors[0].strong);
        assert_eq!(a.anchors[0].weak, b.anchors[0].weak);
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn duplicate_blocks_share_anchors() {
        let m = {
            let mut m = Module::new();
            m.add_function(diamond("a", 7));
            m
        };
        let a = anchor_function(&m, m.function(ppp_ir::FuncId(0)));
        // The two `jump j` arms of the diamond are byte-identical.
        assert_eq!(a.anchors[1].strong, a.anchors[2].strong);
    }
}
