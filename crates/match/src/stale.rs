//! Module-level matching and the matched-stale profile loaders.
//!
//! The persist-v2 stale loaders (PR 3) match sections to functions by
//! *name* and drop everything that no longer fits. The matched-stale mode
//! layered here goes two steps further:
//!
//! 1. functions are paired by name first and by **anchor identity**
//!    second — a renamed-but-identical function (equal whole-function
//!    fingerprint, unique on both sides) keeps its profile instead of
//!    being dropped;
//! 2. each paired function's profile is pushed through the CFG matcher
//!    and [transferred](crate::transfer) onto the new CFG, renormalizing
//!    at matched-region boundaries, so edits *inside* a function no
//!    longer void its profile.
//!
//! Every transferred edge profile satisfies PPP308 flow conservation;
//! an identity transfer (same program) is lossless and byte-identical.
//!
//! Loading emits `ppp_stale_*` / `ppp_match_*` metrics through the
//! ambient [`ppp_obs`] context so silent profile drops are observable.

use crate::anchor::function_fingerprint;
use crate::matcher::{match_functions, MatchReport};
use crate::transfer::{transfer_edge_profile, transfer_path_profile};
use ppp_ir::{
    read_edge_profile_stale, read_path_profile_stale, FuncId, Module, ModuleEdgeProfile,
    ModulePathProfile, ProfileLoadError, StaleReport,
};
use ppp_lint::{Code, Diagnostic, LintReport, Severity};
use std::collections::HashMap;

/// How a function pair was discovered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PairMethod {
    /// Same name in both modules.
    Name,
    /// Renamed, but unique equal anchor fingerprints on both sides.
    Anchor,
}

/// One old→new function pairing with its block-level match.
#[derive(Clone, Debug)]
pub struct FuncPair {
    /// Function id in the old module.
    pub old: FuncId,
    /// Function id in the new module.
    pub new: FuncId,
    /// How the pair was discovered.
    pub method: PairMethod,
    /// The block-level match between the two versions.
    pub report: MatchReport,
}

/// The full old→new module correspondence.
#[derive(Clone, Debug, Default)]
pub struct ModuleMatch {
    /// Matched function pairs, ordered by old function id.
    pub pairs: Vec<FuncPair>,
    /// Old functions with no counterpart (their profiles are dropped).
    pub unmatched_old: Vec<FuncId>,
    /// New functions with no pre-image (they start unprofiled).
    pub unmatched_new: Vec<FuncId>,
}

impl ModuleMatch {
    /// Number of pairs found by anchor identity rather than name.
    pub fn anchor_paired(&self) -> usize {
        self.pairs
            .iter()
            .filter(|p| p.method == PairMethod::Anchor)
            .count()
    }

    /// `true` when every pair is a block-level identity and nothing went
    /// unmatched on either side.
    pub fn is_identity(&self) -> bool {
        self.unmatched_old.is_empty()
            && self.unmatched_new.is_empty()
            && self.pairs.iter().all(|p| p.report.identity)
    }
}

/// Pairs the functions of two module versions (by name, then by unique
/// anchor identity) and matches each pair's CFGs.
pub fn match_modules(old: &Module, new: &Module) -> ModuleMatch {
    let mut paired_new = vec![false; new.functions.len()];
    let mut pairs: Vec<(FuncId, FuncId, PairMethod)> = Vec::new();
    let mut leftovers: Vec<FuncId> = Vec::new();
    for old_id in old.func_ids() {
        match new.function_by_name(&old.function(old_id).name) {
            Some(new_id) => {
                paired_new[new_id.index()] = true;
                pairs.push((old_id, new_id, PairMethod::Name));
            }
            None => leftovers.push(old_id),
        }
    }
    // Anchor-identity fallback: unique fingerprint on both sides.
    let mut new_by_fp: HashMap<u64, Vec<FuncId>> = HashMap::new();
    for new_id in new.func_ids() {
        if !paired_new[new_id.index()] {
            new_by_fp
                .entry(function_fingerprint(new, new.function(new_id)))
                .or_default()
                .push(new_id);
        }
    }
    let mut old_by_fp: HashMap<u64, Vec<FuncId>> = HashMap::new();
    for &old_id in &leftovers {
        old_by_fp
            .entry(function_fingerprint(old, old.function(old_id)))
            .or_default()
            .push(old_id);
    }
    let mut unmatched_old = Vec::new();
    for old_id in leftovers {
        let fp = function_fingerprint(old, old.function(old_id));
        let unique = old_by_fp[&fp].len() == 1;
        match new_by_fp.get(&fp).map(Vec::as_slice) {
            Some([new_id]) if unique && !paired_new[new_id.index()] => {
                paired_new[new_id.index()] = true;
                pairs.push((old_id, *new_id, PairMethod::Anchor));
            }
            _ => unmatched_old.push(old_id),
        }
    }
    pairs.sort_by_key(|(o, _, _)| *o);
    let pairs = pairs
        .into_iter()
        .map(|(o, n, method)| FuncPair {
            old: o,
            new: n,
            method,
            report: match_functions(
                old,
                old.function(o),
                new,
                new.function(n),
                n,
                &new.function(n).name,
            ),
        })
        .collect();
    let unmatched_new = new.func_ids().filter(|n| !paired_new[n.index()]).collect();
    ModuleMatch {
        pairs,
        unmatched_old,
        unmatched_new,
    }
}

/// The outcome of a matched-stale load: the section-level stale report,
/// the module correspondence summary, transfer quality, and the PPP4xx
/// findings.
#[derive(Clone, Debug)]
pub struct MatchedStaleReport {
    /// Section-level outcome from the underlying stale loader.
    pub stale: StaleReport,
    /// Function pairs transferred.
    pub paired_funcs: usize,
    /// Pairs found by anchor identity (renamed functions rescued).
    pub anchor_paired: usize,
    /// Names of old functions whose profiles had no destination.
    pub unmatched_old: Vec<String>,
    /// Names of new functions that start unprofiled.
    pub unmatched_new: Vec<String>,
    /// Old blocks matched onto the new CFG, across all pairs.
    pub matched_blocks: usize,
    /// Total old blocks across all pairs.
    pub total_old_blocks: usize,
    /// Functions whose transfer needed boundary renormalization.
    pub renormalized_funcs: Vec<String>,
    /// Functions zeroed because the transfer could not be made
    /// flow-conservative (each also carries a PPP404 finding).
    pub zeroed_funcs: Vec<String>,
    /// Edge flow (or path frequency) dropped in transfer.
    pub dropped_flow: u64,
    /// All PPP4xx findings, sorted.
    pub diagnostics: LintReport,
    /// `true` when the load was a lossless identity transfer.
    pub lossless: bool,
}

impl MatchedStaleReport {
    /// `true` when nothing was dropped, renormalized, or zeroed anywhere:
    /// the transferred profile is the old profile, bit for bit.
    pub fn is_lossless(&self) -> bool {
        self.lossless
    }
}

fn record_metrics(r: &MatchedStaleReport, kind: &str) {
    let obs = ppp_obs::global();
    let m = obs.metrics();
    let k = [("kind", kind)];
    m.inc_by(
        "ppp_stale_sections_total",
        &[("kind", kind), ("outcome", "matched")],
        r.stale.matched_funcs as u64,
    );
    m.inc_by(
        "ppp_stale_sections_total",
        &[("kind", kind), ("outcome", "unmatched")],
        r.stale.unmatched_sections.len() as u64,
    );
    m.inc_by(
        "ppp_stale_dropped_records_total",
        &k,
        r.stale.dropped_records,
    );
    m.inc_by(
        "ppp_stale_section_faults_total",
        &k,
        r.stale.faults.len() as u64,
    );
    m.inc_by(
        "ppp_match_funcs_total",
        &[("kind", kind), ("method", "name")],
        (r.paired_funcs - r.anchor_paired) as u64,
    );
    m.inc_by(
        "ppp_match_funcs_total",
        &[("kind", kind), ("method", "anchor")],
        r.anchor_paired as u64,
    );
    m.inc_by(
        "ppp_match_funcs_total",
        &[("kind", kind), ("method", "unmatched")],
        r.unmatched_old.len() as u64,
    );
    m.inc_by(
        "ppp_match_blocks_total",
        &[("kind", kind), ("outcome", "matched")],
        r.matched_blocks as u64,
    );
    m.inc_by(
        "ppp_match_blocks_total",
        &[("kind", kind), ("outcome", "unmatched")],
        (r.total_old_blocks - r.matched_blocks) as u64,
    );
    m.inc_by(
        "ppp_match_transfer_funcs_total",
        &[("kind", kind), ("outcome", "renormalized")],
        r.renormalized_funcs.len() as u64,
    );
    m.inc_by(
        "ppp_match_transfer_funcs_total",
        &[("kind", kind), ("outcome", "zeroed")],
        r.zeroed_funcs.len() as u64,
    );
    m.inc_by("ppp_match_dropped_flow_total", &k, r.dropped_flow);
    for code in [
        Code::UnanchoredBlock,
        Code::AmbiguousAnchor,
        Code::SplitMergedRegion,
        Code::NonConservativeTransfer,
    ] {
        let n = r
            .diagnostics
            .diagnostics
            .iter()
            .filter(|d| d.code == code)
            .count();
        if n > 0 {
            m.inc_by(
                "ppp_match_diagnostics_total",
                &[("kind", kind), ("code", code.as_str())],
                n as u64,
            );
        }
    }
}

fn base_report(stale: StaleReport, old: &Module, mm: &ModuleMatch) -> MatchedStaleReport {
    let mut diagnostics = LintReport::new();
    let mut matched_blocks = 0;
    let mut total_old_blocks = 0;
    for pair in &mm.pairs {
        matched_blocks += pair.report.matched_blocks();
        total_old_blocks += old.function(pair.old).blocks.len();
        diagnostics.extend(pair.report.diagnostics.iter().cloned());
    }
    MatchedStaleReport {
        paired_funcs: mm.pairs.len(),
        anchor_paired: mm.anchor_paired(),
        unmatched_old: mm
            .unmatched_old
            .iter()
            .map(|&f| old.function(f).name.clone())
            .collect(),
        unmatched_new: Vec::new(), // filled by caller (needs the new module)
        matched_blocks,
        total_old_blocks,
        renormalized_funcs: Vec::new(),
        zeroed_funcs: Vec::new(),
        dropped_flow: 0,
        diagnostics,
        lossless: false,
        stale,
    }
}

fn finish_report(r: &mut MatchedStaleReport, new: &Module, mm: &ModuleMatch, kind: &str) {
    r.unmatched_new = mm
        .unmatched_new
        .iter()
        .map(|&f| new.function(f).name.clone())
        .collect();
    r.lossless = r.stale.is_exact()
        && mm.is_identity()
        && r.dropped_flow == 0
        && r.renormalized_funcs.is_empty()
        && r.zeroed_funcs.is_empty();
    r.diagnostics.sort();
    debug_assert!(
        r.diagnostics.count(Severity::Error)
            == r.diagnostics
                .diagnostics
                .iter()
                .filter(|d| d.code == Code::NonConservativeTransfer)
                .count()
    );
    record_metrics(r, kind);
}

/// Loads a v2 edge profile written for an *older version* of the program
/// and transfers it onto `new` through the CFG matcher. The artifact is
/// first stale-loaded against `old` (the module it was written for), then
/// each function pair's profile is remapped block-by-block.
///
/// The returned profile always satisfies PPP308 flow conservation for
/// every function. When `old` and `new` are the same program the load is
/// lossless: the profile round-trips byte-identically.
///
/// # Errors
///
/// Only container-level damage is fatal, as with
/// [`read_edge_profile_stale`].
pub fn read_edge_profile_matched(
    old: &Module,
    new: &Module,
    bytes: &[u8],
) -> Result<(ModuleEdgeProfile, MatchedStaleReport), ProfileLoadError> {
    let (old_p, stale) = read_edge_profile_stale(old, bytes)?;
    let mm = match_modules(old, new);
    let mut report = base_report(stale, old, &mm);
    let mut out = ModuleEdgeProfile::zeroed(new);
    for pair in &mm.pairs {
        let (old_f, new_f) = (old.function(pair.old), new.function(pair.new));
        let (p, stats) = transfer_edge_profile(&pair.report, old_f, new_f, old_p.func(pair.old));
        report.dropped_flow = report.dropped_flow.saturating_add(stats.dropped_flow);
        if stats.renormalized && !stats.zeroed {
            report.renormalized_funcs.push(new_f.name.clone());
        }
        if stats.zeroed {
            report.zeroed_funcs.push(new_f.name.clone());
            report.diagnostics.push(Diagnostic {
                code: Code::NonConservativeTransfer,
                func: pair.new,
                func_name: new_f.name.clone(),
                block: None,
                message: "transferred profile could not be renormalized to flow \
                          conservation; function profile zeroed"
                    .to_string(),
            });
        }
        debug_assert!(p.flow_violations(new_f).is_empty());
        *out.func_mut(pair.new) = p;
    }
    for &f in &mm.unmatched_old {
        let p = old_p.func(f);
        report.dropped_flow = report
            .dropped_flow
            .saturating_add(p.total_edge_flow().saturating_add(p.entries()));
    }
    finish_report(&mut report, new, &mm, "edge");
    Ok((out, report))
}

/// Loads a v2 path profile for an older program version and transfers it
/// onto `new`; see [`read_edge_profile_matched`]. Paths that no longer
/// chain through matched blocks are dropped and their frequency counted
/// in `dropped_flow`.
///
/// # Errors
///
/// Only container-level damage is fatal.
pub fn read_path_profile_matched(
    old: &Module,
    new: &Module,
    bytes: &[u8],
) -> Result<(ModulePathProfile, MatchedStaleReport), ProfileLoadError> {
    let (old_p, stale) = read_path_profile_stale(old, bytes)?;
    let mm = match_modules(old, new);
    let mut report = base_report(stale, old, &mm);
    let mut out = ModulePathProfile::with_capacity(new.functions.len());
    for pair in &mm.pairs {
        let (old_f, new_f) = (old.function(pair.old), new.function(pair.new));
        let (p, dropped) = transfer_path_profile(&pair.report, old_f, new_f, old_p.func(pair.old));
        report.dropped_flow = report.dropped_flow.saturating_add(dropped);
        *out.func_mut(pair.new) = p;
    }
    for &f in &mm.unmatched_old {
        report.dropped_flow = report
            .dropped_flow
            .saturating_add(old_p.func(f).total_unit_flow());
    }
    finish_report(&mut report, new, &mm, "path");
    Ok((out, report))
}
