//! Folding an instrumented-module profile back onto the source module.
//!
//! PPP instrumentation only *adds* to a function's CFG: `split_edge`
//! appends fresh mid blocks at the end of the block list and retargets
//! existing edges through them, so every original block keeps its id,
//! its execution count, and its successor arity, and every original edge
//! `(B, k)` still exists (possibly now landing on a mid block). Combined
//! with the VM's determinism guarantee — instrumented and uninstrumented
//! runs of the same seed follow bit-identical control flow (the paper's
//! *self advice* setting, §7.2) — the tracer profile of the instrumented
//! module *contains* the exact profile of the original module as a
//! prefix. [`fold_edge_profile`] extracts it.
//!
//! This is what lets the JIT loop's only workload execution per
//! generation be the instrumented serving run: the aggregator snapshot
//! folds back into precisely the profile a dedicated tracing run of the
//! uninstrumented module would have produced.

use ppp_ir::{EdgeRef, Module, ModuleEdgeProfile};

/// Projects an edge profile collected on the *instrumented* clone of
/// `orig` (same functions, original blocks as a prefix, mid blocks
/// appended) back onto `orig`'s shape. Counts for original blocks and
/// edges are copied bit-exact; mid-block rows are dropped.
///
/// The caller should gate the result with
/// [`ppp_lint::check_profile`](ppp_lint) — on a profile that really came
/// from an instrumented run of `orig`'s clone, the fold is exact and the
/// gate passes.
pub fn fold_edge_profile(orig: &Module, instr_profile: &ModuleEdgeProfile) -> ModuleEdgeProfile {
    let mut out = ModuleEdgeProfile::zeroed(orig);
    for fid in orig.func_ids() {
        let f = orig.function(fid);
        let ip = instr_profile.func(fid);
        let op = out.func_mut(fid);
        op.set_entries(ip.entries());
        for b in f.block_ids() {
            op.set_block(b, ip.block(b));
            for s in 0..f.block(b).term.successor_count() {
                let e = EdgeRef::new(b, s);
                op.set_edge(e, ip.edge(e));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_core::{instrument_module, normalize_module, ProfilerConfig};
    use ppp_ir::write_edge_profile_v2;
    use ppp_vm::{run, RunOptions};
    use ppp_workloads::{generate, spec2000_suite};

    #[test]
    fn folding_the_instrumented_profile_recovers_the_exact_tracer_profile() {
        for entry in spec2000_suite().iter().take(4) {
            let mut m = generate(&entry.spec.clone().scaled(0.05));
            normalize_module(&mut m);
            let seed = 0x5EED;
            let reference = run(&m, "main", &RunOptions::default().with_seed(seed).traced())
                .expect("plain traced run")
                .edge_profile
                .expect("traced");
            let plan = instrument_module(&m, Some(&reference), &ProfilerConfig::ppp());
            let instrumented = run(
                &plan.module,
                "main",
                &RunOptions::default().with_seed(seed).traced(),
            )
            .expect("instrumented traced run")
            .edge_profile
            .expect("traced");
            let folded = fold_edge_profile(&m, &instrumented);
            assert_eq!(
                write_edge_profile_v2(&m, &folded),
                write_edge_profile_v2(&m, &reference),
                "{}: fold-back must be byte-exact",
                entry.spec.name
            );
            assert!(ppp_lint::check_profile(&m, &folded).is_empty());
        }
    }
}
