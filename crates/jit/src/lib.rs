//! # ppp-jit: the closed re-optimization loop PPP was built for
//!
//! The paper's thesis is that practical path profiling is cheap enough
//! to run *inside* a dynamic optimizer. This crate closes that loop over
//! the workspace's existing tiers: it serves a workload under PPP
//! instrumentation in the VM ([`ppp_vm::VmHost`]), streams tracer deltas
//! to a live aggregator (`ppp-agg`), snapshots, folds the snapshot back
//! onto the served module ([`fold_edge_profile`] — exact, because
//! instrumentation only appends to CFGs and the VM replays bit-identical
//! control flow at a fixed seed), re-optimizes the hot functions with
//! the witnessed profile-guided transforms (`ppp-opt`), validates every
//! witness (`ppp-lint`, PPP3xx) and every profile (PPP307/308),
//! transfers the stale profile onto the new module (`ppp-match`) so the
//! next generation's instrumentation starts warm, hot-swaps the
//! re-optimized code into the host, and iterates until the cost-model
//! improvement between generations drops below epsilon.
//!
//! Promotion is conservative — a candidate replaces the served module
//! only if its uninstrumented cost-model cost did not increase — so the
//! served cost is monotone non-increasing across generations by
//! construction, and the loop always terminates (steady state or the
//! generation cap).
//!
//! With `hot_threshold = 0.0` and a warm start, a 1-generation loop is
//! byte-identical to the one-shot `ppp-repro` pipeline front end: the
//! determinism safety net for hot-swapping (`repro jit` exposes the
//! loop; the equivalence property is tested there).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod engine;
mod fold;

pub use engine::{
    run_jit, transfer_guidance, GenerationReport, JitError, JitOptions, JitOutcome, TransferSummary,
};
pub use fold::fold_edge_profile;

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_workloads::{generate, spec2000_suite};

    fn options() -> JitOptions {
        JitOptions {
            generations: 4,
            seed: 701,
            scale: 0.05,
            ..JitOptions::default()
        }
    }

    #[test]
    fn the_loop_reaches_steady_state_with_monotone_costs_and_clean_gates() {
        let entry = &spec2000_suite()[0];
        let module = generate(&entry.spec.clone().scaled(0.05));
        let out = run_jit(&module, &entry.spec.name, &options()).expect("loop completes");
        assert!(out.steady_state, "must converge within the cap");
        assert!(out.monotone_costs());
        assert!(out.witness_clean());
        assert!(out.transfers_conservative());
        assert!(out.final_cost <= out.initial_cost);
        assert!(!out.generations.is_empty());
        // The host performed one swap per post-first generation plus the
        // final re-instrumentation swap.
        assert_eq!(out.swaps, out.generations_run as u64);
        // The serving runs really streamed deltas into the aggregator.
        assert!(out.generations.iter().all(|g| g.deltas_streamed > 0));
    }

    #[test]
    fn cold_start_converges_too_and_ends_at_the_same_module_as_warm() {
        let entry = &spec2000_suite()[1];
        let module = generate(&entry.spec.clone().scaled(0.05));
        let warm = run_jit(&module, &entry.spec.name, &options()).expect("warm loop");
        let cold = run_jit(
            &module,
            &entry.spec.name,
            &JitOptions {
                cold_start: true,
                ..options()
            },
        )
        .expect("cold loop");
        assert!(cold.steady_state);
        assert!(cold.witness_clean());
        // Cold start only changes generation 1's instrumentation
        // guidance; the serving run still yields the exact profile, so
        // both loops optimize identically from there.
        assert_eq!(warm.final_cost, cold.final_cost);
        assert_eq!(
            ppp_ir::write_edge_profile_v2(&warm.final_module, &warm.final_guidance),
            ppp_ir::write_edge_profile_v2(&cold.final_module, &cold.final_guidance),
        );
    }

    #[test]
    fn a_prohibitive_hot_threshold_yields_an_identity_generation() {
        let entry = &spec2000_suite()[2];
        let module = generate(&entry.spec.clone().scaled(0.05));
        let out = run_jit(
            &module,
            &entry.spec.name,
            &JitOptions {
                hot_threshold: 1.1,
                generations: 2,
                seed: 701,
                scale: 0.05,
                ..JitOptions::default()
            },
        )
        .expect("loop completes");
        // Nothing is hot enough to touch: the first generation's
        // candidate is the module itself (cost unchanged), which is
        // immediately steady.
        assert!(out.steady_state);
        assert_eq!(out.generations_run, 1);
        assert_eq!(out.final_cost, out.initial_cost);
        let g = &out.generations[0];
        assert_eq!(g.hot_functions, 0);
        assert_eq!(g.inline.inlined_sites, 0);
        assert!(g.promoted, "an equal-cost candidate still promotes");
    }
}
