//! The generation loop: serve → snapshot → re-optimize → validate →
//! transfer → swap → repeat until steady state.

use crate::fold::fold_edge_profile;
use ppp_agg::{AggClient, AggConfig, AggService, Hello, InProcSink};
use ppp_core::{instrument_module, normalize_module, ProfilerConfig};
use ppp_ir::{Module, ModuleEdgeProfile};
use ppp_lint::LintReport;
use ppp_match::{match_modules, transfer_edge_profile};
use ppp_opt::{
    focus_profile, inline_module_witnessed, optimize_module_witnessed, select_hot_functions,
    unroll_module_witnessed, InlineOptions, InlineReport, UnrollOptions, UnrollReport,
};
use ppp_vm::{run, RunOptions, RunResult, VmError, VmHost};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Typed failures of the re-optimization loop.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JitError {
    /// The benchmark module has no `main` to serve.
    NoMain {
        /// Benchmark name.
        benchmark: String,
        /// Underlying VM error.
        error: VmError,
    },
    /// A traced run came back without profiles (tracing disabled).
    NotTraced {
        /// Benchmark name.
        benchmark: String,
    },
    /// The aggregation tier refused a registration or a frame.
    Agg {
        /// Benchmark name.
        benchmark: String,
        /// Aggregator-side error text.
        detail: String,
    },
}

impl fmt::Display for JitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JitError::NoMain { benchmark, error } => {
                write!(f, "{benchmark}: cannot serve benchmark: {error}")
            }
            JitError::NotTraced { benchmark } => {
                write!(f, "{benchmark}: serving run produced no profiles")
            }
            JitError::Agg { benchmark, detail } => {
                write!(f, "{benchmark}: aggregation: {detail}")
            }
        }
    }
}

impl std::error::Error for JitError {}

/// Tuning knobs of the re-optimization loop.
#[derive(Clone, Copy, Debug)]
pub struct JitOptions {
    /// Generation cap: the loop stops here even without steady state.
    pub generations: usize,
    /// Hot-function threshold (share of module flow in `[0, 1]`) for
    /// [`select_hot_functions`]. `0.0` re-optimizes every function —
    /// and makes a 1-generation loop byte-identical to the one-shot
    /// pipeline.
    pub hot_threshold: f64,
    /// Steady-state criterion: stop when the relative cost-model
    /// improvement of a generation falls below this.
    pub epsilon: f64,
    /// VM seed (fixed across the loop: the paper's *self advice*
    /// setting, §7.2).
    pub seed: u64,
    /// Workload scale factor, carried in each delta stream's `Hello`.
    pub scale: f64,
    /// Start generation 1 from a `ppp-est` static estimate instead of a
    /// traced warmup profile (a cold code cache).
    pub cold_start: bool,
    /// Tracer delta interval for the serving run's stream.
    pub delta_interval: u64,
    /// Deltas per shipped frame batch.
    pub batch: usize,
    /// Aggregator shard threads.
    pub shards: usize,
    /// Inliner tuning.
    pub inline: InlineOptions,
    /// Unroller tuning.
    pub unroll: UnrollOptions,
}

impl Default for JitOptions {
    fn default() -> Self {
        Self {
            generations: 8,
            hot_threshold: 0.0,
            epsilon: 0.01,
            seed: 0x5EED,
            scale: 1.0,
            cold_start: false,
            delta_interval: 2048,
            batch: 4,
            shards: 2,
            inline: InlineOptions::default(),
            unroll: UnrollOptions::default(),
        }
    }
}

/// What carrying the previous generation's profile onto the new module
/// did (the warm-restart step).
#[derive(Clone, Copy, Debug, Default)]
pub struct TransferSummary {
    /// Function pairs matched across the generations.
    pub pairs: usize,
    /// Pairs found by anchor fingerprint rather than name.
    pub anchor_pairs: usize,
    /// Old functions with no counterpart (their flow is dropped).
    pub unmatched_old: usize,
    /// New functions starting unprofiled.
    pub unmatched_new: usize,
    /// Edge records copied onto the new CFGs.
    pub transferred_edges: usize,
    /// Old edge flow with no usable image in the new module.
    pub dropped_flow: u64,
    /// Total block-frequency adjustment made by renormalization.
    pub moved_flow: u64,
    /// Functions whose transfer needed the renormalization repair.
    pub renormalized_funcs: usize,
    /// Functions zeroed because repair failed (`PPP404`).
    pub zeroed_funcs: usize,
    /// Fraction of old edge flow carried across (1.0 = lossless).
    pub coverage: f64,
    /// `true` when every pair was a block-level identity.
    pub identity: bool,
    /// `true` when the transferred guidance passed the PPP308
    /// flow-conservation gate (always expected: transfer repairs or
    /// zeroes).
    pub conservative: bool,
}

/// Everything one generation of the loop did.
#[derive(Clone, Debug)]
pub struct GenerationReport {
    /// Generation number (1-based).
    pub generation: usize,
    /// Host generation counter serving this generation's code.
    pub host_generation: u64,
    /// Instrumented serving-run cost (cost-model units).
    pub serve_cost: u64,
    /// Profiling-only share of the serving cost.
    pub serve_prof_cost: u64,
    /// Serving overhead vs. the uninstrumented cost of the same code.
    pub overhead: f64,
    /// Deltas streamed to the aggregator by the serving run.
    pub deltas_streamed: usize,
    /// Routines the PPP plan instrumented.
    pub instrumented_routines: usize,
    /// Static instrumentation instructions inserted.
    pub static_prof_insts: usize,
    /// Functions selected as hot this generation.
    pub hot_functions: usize,
    /// Total functions in the module.
    pub total_functions: usize,
    /// Inliner report for the candidate.
    pub inline: InlineReport,
    /// Unroller report for the candidate.
    pub unroll: UnrollReport,
    /// Named per-stage lint reports (witness validation PPP3xx, profile
    /// gates PPP307/308), in stage order.
    pub stages: Vec<(String, LintReport)>,
    /// Uninstrumented cost-model cost of the candidate module.
    pub candidate_cost: u64,
    /// Cost of the code the loop serves *after* this generation (the
    /// candidate if promoted, otherwise unchanged) — monotone
    /// non-increasing across generations by construction.
    pub cost_after: u64,
    /// Relative improvement over the previous generation (signed).
    pub improvement: f64,
    /// Cumulative speedup vs. generation 0 (initial cost / cost_after).
    pub speedup_vs_initial: f64,
    /// Whether the candidate replaced the served module.
    pub promoted: bool,
    /// Profile transfer onto the promoted module (None when the
    /// candidate was rejected).
    pub transfer: Option<TransferSummary>,
    /// Wall-clock time of the generation (recorded, never gated).
    pub wall_ms: f64,
}

impl GenerationReport {
    /// `true` when every stage gate of this generation came back clean.
    pub fn witness_clean(&self) -> bool {
        self.stages.iter().all(|(_, r)| r.is_empty())
    }
}

/// The outcome of a full re-optimization loop on one benchmark.
#[derive(Clone, Debug)]
pub struct JitOutcome {
    /// Benchmark name.
    pub bench: String,
    /// Per-generation reports, in order.
    pub generations: Vec<GenerationReport>,
    /// `true` when the steady-state criterion fired (as opposed to the
    /// generation cap).
    pub steady_state: bool,
    /// Generations executed until steady state (or the cap).
    pub generations_run: usize,
    /// Uninstrumented cost of generation 0 (post-bootstrap, pre-loop).
    pub initial_cost: u64,
    /// Uninstrumented cost of the final served module.
    pub final_cost: u64,
    /// `initial_cost / final_cost`.
    pub total_speedup: f64,
    /// Module hot-swaps performed by the host (includes the final
    /// re-instrumentation swap).
    pub swaps: u64,
    /// Lint report of the final re-instrumentation plan.
    pub final_instrument: LintReport,
    /// The steady-state module the host is left serving (uninstrumented
    /// form).
    pub final_module: Module,
    /// The warm guidance profile the final instrumentation used.
    pub final_guidance: ModuleEdgeProfile,
    /// Total wall-clock time of the loop (recorded, never gated).
    pub wall_ms: f64,
}

impl JitOutcome {
    /// `true` when `cost_after` never increases across generations.
    ///
    /// Generation 1 is the initial profile-guided build and sets the
    /// baseline; `initial_cost` (the unoptimized generation 0) is not
    /// part of the monotone chain, mirroring the one-shot pipeline
    /// which ships its PGO build unconditionally.
    pub fn monotone_costs(&self) -> bool {
        let mut prev = u64::MAX;
        self.generations.iter().all(|g| {
            let ok = g.cost_after <= prev;
            prev = g.cost_after;
            ok
        })
    }

    /// `true` when every generation's stage gates are clean and the
    /// final instrumentation plan lints clean.
    pub fn witness_clean(&self) -> bool {
        self.generations.iter().all(GenerationReport::witness_clean)
            && self.final_instrument.is_empty()
    }

    /// `true` when every profile transfer was PPP308-conservative.
    pub fn transfers_conservative(&self) -> bool {
        self.generations
            .iter()
            .filter_map(|g| g.transfer.as_ref())
            .all(|t| t.conservative)
    }
}

fn traced(
    module: &Module,
    seed: u64,
    bench: &str,
) -> Result<(RunResult, ModuleEdgeProfile), JitError> {
    let r = run(
        module,
        "main",
        &RunOptions::default().with_seed(seed).traced(),
    )
    .map_err(|error| JitError::NoMain {
        benchmark: bench.to_owned(),
        error,
    })?;
    let Some(edges) = r.edge_profile.clone() else {
        return Err(JitError::NotTraced {
            benchmark: bench.to_owned(),
        });
    };
    Ok((r, edges))
}

/// Transfers `profile` (collected on `old`) onto `new` via `ppp-match`,
/// pairing functions by name and anchor fingerprint and repairing or
/// zeroing any pair that would violate flow conservation.
pub fn transfer_guidance(
    old: &Module,
    new: &Module,
    profile: &ModuleEdgeProfile,
) -> (ModuleEdgeProfile, TransferSummary) {
    let mm = match_modules(old, new);
    let mut out = ModuleEdgeProfile::zeroed(new);
    let mut s = TransferSummary {
        pairs: mm.pairs.len(),
        anchor_pairs: mm.anchor_paired(),
        unmatched_old: mm.unmatched_old.len(),
        unmatched_new: mm.unmatched_new.len(),
        identity: mm.is_identity(),
        ..TransferSummary::default()
    };
    let total_old_flow: u64 = old
        .func_ids()
        .map(|f| profile.func(f).total_edge_flow())
        .sum();
    for pair in &mm.pairs {
        let (fp, st) = transfer_edge_profile(
            &pair.report,
            old.function(pair.old),
            new.function(pair.new),
            profile.func(pair.old),
        );
        s.transferred_edges += st.transferred_edges;
        s.dropped_flow = s.dropped_flow.saturating_add(st.dropped_flow);
        s.moved_flow = s.moved_flow.saturating_add(st.moved_flow);
        if st.renormalized {
            s.renormalized_funcs += 1;
        }
        if st.zeroed {
            s.zeroed_funcs += 1;
        }
        *out.func_mut(pair.new) = fp;
    }
    for &f in &mm.unmatched_old {
        s.dropped_flow = s
            .dropped_flow
            .saturating_add(profile.func(f).total_edge_flow());
    }
    s.coverage = if total_old_flow == 0 {
        1.0
    } else {
        1.0 - s.dropped_flow as f64 / total_old_flow as f64
    };
    (out, s)
}

/// Runs the closed re-optimization loop on one (freshly generated,
/// unoptimized) module until steady state or the generation cap.
///
/// Generation 0 is bootstrapped exactly like the one-shot pipeline's
/// front end (witnessed scalar optimization, then normalization). Each
/// subsequent generation instruments the served module with PPP,
/// hot-swaps the instrumented code into a [`VmHost`], runs the workload
/// once while streaming tracer deltas to a live aggregator, snapshots,
/// folds the snapshot back onto the served module (exact, see
/// [`fold_edge_profile`]), re-optimizes the hot functions (witnessed
/// inline → re-profile → witnessed unroll → witnessed scalar), evaluates
/// the candidate's uninstrumented cost, and promotes it only if the cost
/// did not increase — transferring the stale profile onto the new module
/// so the next generation's instrumentation starts warm. Every stage is
/// translation-validated and every profile gated for flow conservation.
pub fn run_jit(module: &Module, bench: &str, options: &JitOptions) -> Result<JitOutcome, JitError> {
    let obs = ppp_obs::global();
    let started = Instant::now();
    let mut span = obs.span("jit.loop");
    span.set("bench", bench);

    // Generation 0: the pipeline's bootstrap, witnessed and gated.
    let mut boot_stages: Vec<(String, LintReport)> = Vec::new();
    let mut m = module.clone();
    {
        let _s = span.child("jit.bootstrap");
        let src = m.clone();
        let (_, w) = optimize_module_witnessed(&mut m);
        boot_stages.push(("scalar@gen".into(), ppp_lint::check_transform(&src, &w, &m)));
        normalize_module(&mut m);
    }
    let r0 = run(&m, "main", &RunOptions::default().with_seed(options.seed)).map_err(|error| {
        JitError::NoMain {
            benchmark: bench.to_owned(),
            error,
        }
    })?;
    let initial_cost = r0.cost;
    let mut cost_cur = initial_cost;

    // Generation 1's instrumentation guidance: a traced warmup profile
    // (self advice) or, cold, the ppp-est static estimate.
    let mut guidance: ModuleEdgeProfile = if options.cold_start {
        let (est, _) = ppp_est::estimate_module(&m, &ppp_est::EstOptions::default());
        est
    } else {
        traced(&m, options.seed, bench)?.1
    };
    boot_stages.push((
        "guidance@boot".into(),
        ppp_lint::check_profile(&m, &guidance),
    ));

    let service = AggService::new(AggConfig {
        shards: options.shards.max(1),
        ..AggConfig::default()
    });
    let mut host: Option<VmHost> = None;
    let mut swaps = 0u64;
    let mut generations: Vec<GenerationReport> = Vec::new();
    let mut steady_state = false;

    for g in 1..=options.generations.max(1) {
        let gen_started = Instant::now();
        let mut gspan = obs.span("jit.generation");
        gspan.set("bench", bench);
        gspan.set("generation", g as u64);
        let mut stages: Vec<(String, LintReport)> = std::mem::take(&mut boot_stages);

        // Instrument the served module and hot-swap the plan in.
        let plan = {
            let _s = gspan.child("jit.instrument");
            instrument_module(&m, Some(&guidance), &ProfilerConfig::ppp())
        };
        stages.push(("instrument".into(), ppp_lint::lint_plan(&plan)));
        let instrumented = Arc::new(plan.module.clone());
        let host_generation = match &host {
            None => {
                host = Some(VmHost::new(Arc::clone(&instrumented)));
                0
            }
            Some(h) => {
                let _s = gspan.child("jit.swap");
                swaps += 1;
                obs.metrics()
                    .inc("ppp_jit_swaps_total", &[("bench", bench)]);
                h.swap(Arc::clone(&instrumented))
            }
        };
        let host_ref = host.as_ref().expect("host installed");

        // Serve one workload run under instrumentation, streaming
        // tracer deltas.
        let (checkout, served) = {
            let mut s = gspan.child("jit.serve");
            let (checkout, served) = host_ref
                .run_current(
                    "main",
                    &RunOptions::default()
                        .with_seed(options.seed)
                        .traced()
                        .with_delta_interval(options.delta_interval.max(1)),
                )
                .map_err(|error| JitError::NoMain {
                    benchmark: bench.to_owned(),
                    error,
                })?;
            s.set("cost_units", served.cost);
            s.set("deltas", served.deltas.len() as u64);
            (checkout, served)
        };

        // Stream the deltas to the live aggregator and snapshot.
        let key = format!("{bench}@g{g}");
        let agg_err = |detail: String| JitError::Agg {
            benchmark: bench.to_owned(),
            detail,
        };
        let agg = service.register(&key, &checkout.module).map_err(agg_err)?;
        let hello = Hello {
            bench: key.clone(),
            funcs: checkout.module.functions.len(),
            scale_bits: options.scale.to_bits(),
            worker: g as u64,
        };
        let mut client = AggClient::open(
            Arc::clone(&checkout.module),
            InProcSink::new(Arc::clone(&agg)),
            options.batch.max(1),
            &hello,
        )
        .map_err(agg_err)?;
        client.set_trace_id(
            options
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(g as u64),
        );
        for d in &served.deltas {
            client.push_delta(&d.edges, &d.paths).map_err(agg_err)?;
        }
        client.finish().map_err(agg_err)?;
        let (snap_edges, _snap_paths) = {
            let _s = gspan.child("jit.snapshot");
            agg.snapshot()
        };

        // Serving overhead is measured against the uninstrumented cost
        // of the code that served this generation.
        let serve_baseline = cost_cur;

        // Fold the snapshot back onto the served (uninstrumented)
        // module: exact by construction, gated anyway.
        let profile = fold_edge_profile(&m, &snap_edges);
        stages.push((
            "snapshot@fold".into(),
            ppp_lint::check_profile(&m, &profile),
        ));

        // Re-optimize the hot functions (witnessed at every step).
        let hot = select_hot_functions(&m, &profile, options.hot_threshold);
        let focused = focus_profile(&m, &profile, &hot);
        let mut candidate = m.clone();
        let inline;
        {
            let _s = gspan.child("jit.reoptimize");
            let src = candidate.clone();
            let (rep, w) = inline_module_witnessed(&mut candidate, &focused, &options.inline);
            stages.push((
                "inline".into(),
                ppp_lint::check_transform(&src, &w, &candidate),
            ));
            inline = rep;
        }
        let (_, e1) = traced(&candidate, options.seed, bench)?;
        stages.push((
            "profile@inline".into(),
            ppp_lint::check_profile(&candidate, &e1),
        ));
        let hot1 = select_hot_functions(&candidate, &e1, options.hot_threshold);
        let focused1 = focus_profile(&candidate, &e1, &hot1);
        let unroll;
        {
            let _s = gspan.child("jit.reoptimize");
            let src = candidate.clone();
            let (rep, w) = unroll_module_witnessed(&mut candidate, &focused1, &options.unroll);
            stages.push((
                "unroll".into(),
                ppp_lint::check_transform(&src, &w, &candidate),
            ));
            unroll = rep;
            let src = candidate.clone();
            let (_, w) = optimize_module_witnessed(&mut candidate);
            stages.push((
                "scalar@opt".into(),
                ppp_lint::check_transform(&src, &w, &candidate),
            ));
            normalize_module(&mut candidate);
        }

        // Evaluate the candidate's uninstrumented cost-model cost.
        let (rc, ec) = {
            let _s = gspan.child("jit.evaluate");
            traced(&candidate, options.seed, bench)?
        };
        stages.push((
            "profile@opt".into(),
            ppp_lint::check_profile(&candidate, &ec),
        ));
        let candidate_cost = rc.cost;
        let improvement = (cost_cur as f64 - candidate_cost as f64) / cost_cur.max(1) as f64;
        // Generation 1 is the initial profile-guided build — it always
        // ships, exactly like the one-shot pipeline (the canonical PGO
        // deployment rebuilds with the profile unconditionally). From
        // generation 2 on the loop keeps the champion: a re-optimized
        // candidate only replaces the served module when the cost model
        // says it does not regress, which makes `cost_after` monotone
        // non-increasing across generations by construction.
        let promoted = g == 1 || candidate_cost <= cost_cur;

        // Promote: transfer the stale profile so the next generation's
        // instrumentation starts warm instead of cold.
        let mut transfer = None;
        if promoted {
            let _s = gspan.child("jit.transfer");
            let (warm, mut summary) = transfer_guidance(&m, &candidate, &profile);
            let gate = ppp_lint::check_profile(&candidate, &warm);
            summary.conservative = gate.is_empty();
            obs.metrics().inc_by(
                "ppp_jit_transfer_dropped_flow_total",
                &[("bench", bench)],
                summary.dropped_flow,
            );
            stages.push(("transfer".into(), gate));
            transfer = Some(summary);
            m = candidate;
            cost_cur = candidate_cost;
            guidance = warm;
            obs.metrics()
                .inc("ppp_jit_promotions_total", &[("bench", bench)]);
        } else {
            // Keep serving the old code; its exact profile is the best
            // guidance for the next instrumentation.
            guidance = profile;
        }

        obs.metrics()
            .inc("ppp_jit_generations_total", &[("bench", bench)]);
        obs.metrics()
            .set_gauge("ppp_jit_cost_units", &[("bench", bench)], cost_cur as f64);
        gspan.set("cost_units", cost_cur);
        gspan.set("promoted", promoted);
        gspan.set("hot_functions", hot.len() as u64);

        let overhead = served.cost as f64 / serve_baseline.max(1) as f64 - 1.0;
        generations.push(GenerationReport {
            generation: g,
            host_generation,
            serve_cost: served.cost,
            serve_prof_cost: served.prof_cost,
            overhead,
            deltas_streamed: served.deltas.len(),
            instrumented_routines: plan.instrumented_count(),
            static_prof_insts: plan.static_prof_insts(),
            hot_functions: hot.len(),
            total_functions: m.functions.len(),
            inline,
            unroll,
            stages,
            candidate_cost,
            cost_after: cost_cur,
            improvement,
            speedup_vs_initial: initial_cost as f64 / cost_cur.max(1) as f64,
            promoted,
            transfer,
            wall_ms: gen_started.elapsed().as_secs_f64() * 1e3,
        });

        if improvement < options.epsilon {
            steady_state = true;
            break;
        }
    }

    // Leave the host serving the steady-state code, re-instrumented
    // with the warm guidance.
    let final_plan = instrument_module(&m, Some(&guidance), &ProfilerConfig::ppp());
    let final_instrument = ppp_lint::lint_plan(&final_plan);
    if let Some(h) = &host {
        swaps += 1;
        obs.metrics()
            .inc("ppp_jit_swaps_total", &[("bench", bench)]);
        h.swap(Arc::new(final_plan.module));
    }
    if steady_state {
        obs.metrics()
            .inc("ppp_jit_steady_state_total", &[("bench", bench)]);
    }
    let generations_run = generations.len();
    span.set("generations", generations_run as u64);
    span.set("steady_state", steady_state);
    span.set("final_cost", cost_cur);

    Ok(JitOutcome {
        bench: bench.to_owned(),
        generations,
        steady_state,
        generations_run,
        initial_cost,
        final_cost: cost_cur,
        total_speedup: initial_cost as f64 / cost_cur.max(1) as f64,
        swaps,
        final_instrument,
        final_module: m,
        final_guidance: guidance,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    })
}
