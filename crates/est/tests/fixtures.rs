//! Fixture CFGs tripping each PPP5xx diagnostic code, plus shape
//! checks on the estimates they produce.

use ppp_est::{estimate_module, EstOptions};
use ppp_ir::{BinOp, FuncId, FunctionBuilder, Module, Reg};
use ppp_lint::Code;

fn single(f: ppp_ir::Function) -> Module {
    let mut m = Module::new();
    m.add_function(f);
    m
}

/// `PPP501`: a retreating edge whose target does not dominate its
/// source (a classic two-entry irreducible region).
#[test]
fn irreducible_region_trips_ppp501() {
    let mut b = FunctionBuilder::new("irr", 1);
    let (a, c, exit) = (b.new_block(), b.new_block(), b.new_block());
    b.branch(Reg(0), a, c); // entry reaches both region blocks
    b.switch_to(a);
    b.branch(Reg(0), c, exit);
    b.switch_to(c);
    b.jump(a); // retreating, and `a` does not dominate `c`
    b.switch_to(exit);
    b.ret(None);
    let m = single(b.finish());
    let (p, r) = estimate_module(&m, &EstOptions::default());
    assert!(r.diagnostics.has(Code::IrreducibleRegionCapped), "{r:?}");
    assert!(r.stats.irreducible_edges > 0);
    assert!(p.is_flow_conservative(&m));
    assert!(!p.func(FuncId(0)).is_zero());
}

/// `PPP502`: the call heuristic (avoid the calling arm) and the return
/// heuristic (avoid the returning arm) pull the same branch in opposite
/// directions.
#[test]
fn disagreeing_heuristics_trip_ppp502() {
    let mut m = Module::new();
    let mut leaf = FunctionBuilder::new("leaf", 0);
    leaf.ret(None);
    let leaf_id = m.add_function(leaf.finish());

    let mut b = FunctionBuilder::new("torn", 1);
    let (callside, retside, join) = (b.new_block(), b.new_block(), b.new_block());
    b.branch(Reg(0), callside, retside);
    b.switch_to(callside);
    b.call_void(leaf_id, vec![]);
    b.jump(join);
    b.switch_to(retside);
    b.ret(None);
    b.switch_to(join);
    b.ret(None);
    m.add_function(b.finish());

    let (p, r) = estimate_module(&m, &EstOptions::default());
    assert!(r.diagnostics.has(Code::HeuristicConflict), "{r:?}");
    assert!(r.stats.conflicts > 0);
    assert!(p.is_flow_conservative(&m));
}

/// `PPP503`: two back edges whose combined cyclic probability exceeds
/// the trip cap; the capped real flow is slightly non-conservative and
/// the decomposition must drop the remainder.
#[test]
fn capped_cyclic_probability_trips_ppp503() {
    let mut b = FunctionBuilder::new("spin", 0);
    let (h, latch, side, exit) = (b.new_block(), b.new_block(), b.new_block(), b.new_block());
    b.jump(h);
    b.switch_to(h);
    let stay = b.constant(1); // constant-true: clamped to 63/64
    b.branch(stay, latch, side);
    b.switch_to(latch);
    b.jump(h); // back edge carrying ~63/64
    b.switch_to(side);
    let leave = b.constant(0); // constant-false: exit arm gets 1/64
    b.branch(leave, exit, h); // second back edge: total cp > 63/64
    b.switch_to(exit);
    b.ret(None);
    let m = single(b.finish());
    let (p, r) = estimate_module(&m, &EstOptions::default());
    assert!(r.stats.trip_caps > 0, "cap never hit: {r:?}");
    assert!(r.diagnostics.has(Code::EstimateRepaired), "{r:?}");
    assert!(r.stats.discarded_flow > 0);
    // The repair preserves exact conservation and a hot loop.
    assert!(p.is_flow_conservative(&m));
    let f = p.func(FuncId(0));
    assert!(f.block(h) > f.entries().max(1) * 4, "loop went cold: {f:?}");
}

/// `PPP504`: no return block is reachable; the estimate is zeroed
/// rather than fabricated.
#[test]
fn unreachable_return_trips_ppp504() {
    let mut b = FunctionBuilder::new("forever", 0);
    let spin = b.new_block();
    b.jump(spin);
    b.switch_to(spin);
    b.jump(spin);
    let m = single(b.finish());
    let (p, r) = estimate_module(&m, &EstOptions::default());
    assert!(r.diagnostics.has(Code::EstimateZeroed), "{r:?}");
    assert_eq!(r.stats.zeroed_funcs, 1);
    assert!(p.func(FuncId(0)).is_zero());
    assert!(p.is_flow_conservative(&m));
}

/// The loop-header heuristic (index 2) fires on a branch whose `then`
/// arm jumps straight into a foreign loop's header — a shape the
/// workload generator never emits.
#[test]
fn branch_into_foreign_loop_fires_loop_header_heuristic() {
    let mut b = FunctionBuilder::new("enter", 1);
    let (h, body, skip, exit) = (b.new_block(), b.new_block(), b.new_block(), b.new_block());
    b.branch(Reg(0), h, skip);
    b.switch_to(h);
    b.branch(Reg(0), body, exit);
    b.switch_to(body);
    b.jump(h);
    b.switch_to(skip);
    b.jump(exit);
    b.switch_to(exit);
    b.ret(None);
    let m = single(b.finish());
    let (p, r) = estimate_module(&m, &EstOptions::default());
    assert!(r.stats.heuristic_fires[2] > 0, "loop-header silent: {r:?}");
    assert!(p.is_flow_conservative(&m));
    // Entering the loop is the predicted-likely arm, so the header runs
    // hotter than the skip path.
    let f = p.func(FuncId(0));
    assert!(f.block(h) > f.block(skip), "{f:?}");
}

/// The guard heuristic (index 7) fires on an explicit compare against a
/// literal zero; `x != 0` predicts the `then` arm taken.
#[test]
fn zero_compare_fires_guard_heuristic() {
    let mut b = FunctionBuilder::new("guard", 1);
    let (nonnull, null, exit) = (b.new_block(), b.new_block(), b.new_block());
    let z = b.constant(0);
    let c = b.binary(BinOp::Ne, Reg(0), z);
    b.branch(c, nonnull, null);
    b.switch_to(nonnull);
    b.jump(exit);
    b.switch_to(null);
    b.jump(exit);
    b.switch_to(exit);
    b.ret(None);
    let m = single(b.finish());
    let (p, r) = estimate_module(&m, &EstOptions::default());
    assert!(r.stats.heuristic_fires[7] > 0, "guard silent: {r:?}");
    let f = p.func(FuncId(0));
    assert!(f.block(nonnull) > f.block(null), "{f:?}");
}

/// The PPP5xx codes land in the registry with the documented strings.
#[test]
fn ppp5xx_band_is_registered() {
    for (code, s) in [
        (Code::IrreducibleRegionCapped, "PPP501"),
        (Code::HeuristicConflict, "PPP502"),
        (Code::EstimateRepaired, "PPP503"),
        (Code::EstimateZeroed, "PPP504"),
    ] {
        assert_eq!(code.as_str(), s);
        assert!(Code::ALL.contains(&code));
    }
    // Info/warning severities: estimation findings are advisory — an
    // estimate is always produced — except zeroing, which is suspect.
    use ppp_lint::Severity;
    assert_eq!(Code::IrreducibleRegionCapped.severity(), Severity::Info);
    assert_eq!(Code::EstimateZeroed.severity(), Severity::Warning);
}
