//! Suite-wide property: on every benchmark, in both heuristic and
//! uniform mode, the static estimate is shape-matched, exactly flow
//! conservative (PPP308 by construction), and non-trivial.

use ppp_est::{estimate_module, EstOptions};
use ppp_workloads::spec2000_suite;

#[test]
fn estimates_are_conservative_on_every_benchmark() {
    for entry in spec2000_suite() {
        for salt in [0u64, 0xABCD] {
            let mut spec = entry.spec.clone();
            spec.seed ^= salt;
            let module = ppp_workloads::generate(&spec);
            for uniform in [false, true] {
                let opts = EstOptions {
                    uniform,
                    ..EstOptions::default()
                };
                let (profile, report) = estimate_module(&module, &opts);
                let mode = if uniform { "uniform" } else { "heuristic" };
                assert!(
                    profile.shape_matches(&module),
                    "{} ({mode}, salt {salt:#x}): shape mismatch",
                    spec.name
                );
                assert!(
                    profile.is_flow_conservative(&module),
                    "{} ({mode}, salt {salt:#x}): PPP308 violated",
                    spec.name
                );
                let live = (0..module.functions.len())
                    .filter(|&i| !profile.func(ppp_ir::FuncId::new(i)).is_zero())
                    .count();
                assert!(
                    live > 0,
                    "{} ({mode}, salt {salt:#x}): every function estimated cold",
                    spec.name
                );
                assert_eq!(
                    report.stats.funcs,
                    module.functions.len() as u64,
                    "{}: function count drifted",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn heuristic_mode_actually_fires_heuristics_on_the_suite() {
    let mut fired_any = [false; 8];
    for entry in spec2000_suite() {
        let module = ppp_workloads::generate(&entry.spec);
        let (_, report) = estimate_module(&module, &EstOptions::default());
        for (slot, &n) in fired_any.iter_mut().zip(&report.stats.heuristic_fires) {
            *slot |= n > 0;
        }
    }
    // Every heuristic the generator can express should trigger
    // somewhere across 18 benchmarks; a silent one is a wiring bug, not
    // a property of the suite. The generator never emits latch
    // *branches* (loop-branch), branches straight into a foreign loop
    // header (loop-header), or explicit zero-compares (guard) — those
    // three are covered by hand-built fixtures instead.
    for (h, (name, fired)) in ppp_est::HEURISTIC_NAMES.iter().zip(fired_any).enumerate() {
        if matches!(*name, "loop-branch" | "loop-header" | "guard") {
            continue;
        }
        assert!(fired, "heuristic {h} ({name:?}) never fired on the suite");
    }
}
