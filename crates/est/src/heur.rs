//! Ball–Larus-style syntactic branch heuristics and their
//! Dempster–Shafer combination.
//!
//! Each heuristic inspects one two-way branch and, when its syntactic
//! pattern applies, predicts a probability that the branch is *taken*
//! (successor 0, the `then` arm). Independent predictions for the same
//! branch are combined pairwise with the Dempster–Shafer rule
//! `p = p1·p2 / (p1·p2 + (1−p1)(1−p2))` (Wu & Larus, MICRO-27), so
//! agreeing evidence compounds and disagreeing evidence cancels toward
//! 1/2. The combined probability is clamped to `[1/64, 63/64]` so no
//! branch is ever statically certain.

use ppp_ir::{BinOp, BlockId};
use ppp_ir::{Cfg, Dominators, Function, Inst, LoopForest, Reg, Terminator};

/// Stable heuristic names, in combination order. Indexes into
/// [`FuncPredictions::fired`] and the `ppp_est_branches_total` metric's
/// `heuristic` label.
pub const HEURISTIC_NAMES: [&str; 8] = [
    "loop-branch",
    "loop-exit",
    "loop-header",
    "call",
    "return",
    "store",
    "opcode",
    "guard",
];

/// Probability mass a heuristic can never push a branch past: no branch
/// is statically certain.
pub const PROB_CLAMP: f64 = 1.0 / 64.0;

/// Per-branch taken probabilities predicted for `then` arms:
/// `loop-branch` 0.88, `loop-exit` 0.80 (to the non-exit arm),
/// `loop-header` 0.75, `call` avoided at 0.78, `return` avoided at
/// 0.72, `store` avoided at 0.55, `opcode` (Eq unlikely / Ne likely)
/// 0.84, `guard` (compare against a literal zero) 0.88.
const P_LOOP_BRANCH: f64 = 0.88;
const P_LOOP_EXIT: f64 = 0.80;
const P_LOOP_HEADER: f64 = 0.75;
const P_CALL: f64 = 0.78;
const P_RETURN: f64 = 0.72;
const P_STORE: f64 = 0.55;
const P_OPCODE: f64 = 0.84;
const P_GUARD: f64 = 0.88;

/// Branch-probability predictions for one function.
#[derive(Clone, Debug)]
pub struct FuncPredictions {
    /// `probs[b][s]` = probability of taking successor `s` of block `b`.
    /// Rows sum to 1 for blocks with successors; empty for returns.
    pub probs: Vec<Vec<f64>>,
    /// How many branches each heuristic fired on, indexed like
    /// [`HEURISTIC_NAMES`].
    pub fired: [u64; 8],
    /// Two-way branches predicted (heuristic or default 1/2).
    pub branches: u64,
    /// Blocks where two heuristics disagreed strongly (one ≥ 0.65 taken,
    /// another ≤ 0.35): the combined estimate carries little signal.
    pub conflicts: Vec<BlockId>,
}

/// Dempster–Shafer combination of two independent taken-probabilities.
fn combine(p1: f64, p2: f64) -> f64 {
    let num = p1 * p2;
    let den = num + (1.0 - p1) * (1.0 - p2);
    if den <= f64::EPSILON {
        0.5
    } else {
        num / den
    }
}

/// Scans `block` backwards for the instruction defining `cond`; follows
/// one level of `Copy`.
fn defining_inst(f: &Function, b: BlockId, cond: Reg) -> Option<&Inst> {
    let mut want = cond;
    for inst in f.block(b).insts.iter().rev() {
        if inst.def() == Some(want) {
            if let Inst::Copy { src, .. } = inst {
                want = *src;
                continue;
            }
            return Some(inst);
        }
    }
    None
}

/// `true` when `r` is defined by `Const { value: 0 }` inside `b` (a
/// null/zero guard operand).
fn is_zero_const(f: &Function, b: BlockId, r: Reg) -> bool {
    matches!(defining_inst(f, b, r), Some(Inst::Const { value: 0, .. }))
}

fn has_call(f: &Function, b: BlockId) -> bool {
    f.block(b)
        .insts
        .iter()
        .any(|i| matches!(i, Inst::Call { .. }))
}

fn has_store(f: &Function, b: BlockId) -> bool {
    f.block(b)
        .insts
        .iter()
        .any(|i| matches!(i, Inst::Store { .. }))
}

/// Applies every applicable heuristic to the two-way branch terminating
/// `b` and returns `(taken_probability, fired_mask)` plus whether the
/// individual predictions conflicted.
#[allow(clippy::too_many_arguments)]
fn predict_branch(
    f: &Function,
    cfg: &Cfg,
    dom: &Dominators,
    loops: &LoopForest,
    b: BlockId,
    cond: Reg,
    then_t: BlockId,
    else_t: BlockId,
) -> (f64, [bool; 8], bool) {
    let mut votes: Vec<(usize, f64)> = Vec::new();

    // Loop-branch: a back edge (retreating, header dominates source) is
    // taken — loops iterate.
    let back = |tgt: BlockId| cfg.is_retreating(b, tgt) && dom.dominates(tgt, b);
    match (back(then_t), back(else_t)) {
        (true, false) => votes.push((0, P_LOOP_BRANCH)),
        (false, true) => votes.push((0, 1.0 - P_LOOP_BRANCH)),
        _ => {}
    }

    // Loop-exit: the edge leaving the innermost loop of `b` is avoided.
    if let Some(l) = loops.innermost(b) {
        match (l.contains(then_t), l.contains(else_t)) {
            (true, false) => votes.push((1, P_LOOP_EXIT)),
            (false, true) => votes.push((1, 1.0 - P_LOOP_EXIT)),
            _ => {}
        }
    }

    // Loop-header: an edge into a loop the source is not part of is
    // taken — code usually enters the loops it sits in front of.
    let enters_loop = |tgt: BlockId| {
        loops
            .loops()
            .iter()
            .any(|l| l.header == tgt && !l.contains(b))
    };
    match (enters_loop(then_t), enters_loop(else_t)) {
        (true, false) => votes.push((2, P_LOOP_HEADER)),
        (false, true) => votes.push((2, 1.0 - P_LOOP_HEADER)),
        _ => {}
    }

    // Call / return / store: successors doing those things are avoided
    // (error paths call helpers, bail out, or spill state).
    match (has_call(f, then_t), has_call(f, else_t)) {
        (true, false) => votes.push((3, 1.0 - P_CALL)),
        (false, true) => votes.push((3, P_CALL)),
        _ => {}
    }
    let returns = |t: BlockId| f.block(t).term.is_return();
    match (returns(then_t), returns(else_t)) {
        (true, false) => votes.push((4, 1.0 - P_RETURN)),
        (false, true) => votes.push((4, P_RETURN)),
        _ => {}
    }
    match (has_store(f, then_t), has_store(f, else_t)) {
        (true, false) => votes.push((5, 1.0 - P_STORE)),
        (false, true) => votes.push((5, P_STORE)),
        _ => {}
    }

    // Opcode & guard: trace the condition register to its defining
    // instruction inside the branch block.
    match defining_inst(f, b, cond) {
        Some(Inst::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
            ..
        }) => {
            if is_zero_const(f, b, *lhs) || is_zero_const(f, b, *rhs) {
                // `x == 0`: a null/zero guard, emphatically not taken.
                votes.push((7, 1.0 - P_GUARD));
            } else {
                // Values are rarely equal.
                votes.push((6, 1.0 - P_OPCODE));
            }
        }
        Some(Inst::Binary {
            op: BinOp::Ne,
            lhs,
            rhs,
            ..
        }) => {
            if is_zero_const(f, b, *lhs) || is_zero_const(f, b, *rhs) {
                votes.push((7, P_GUARD));
            } else {
                votes.push((6, P_OPCODE));
            }
        }
        // A constant condition decides the branch outright (subject to
        // the clamp): dead guards stay cold.
        Some(Inst::Const { value, .. }) => {
            votes.push((
                6,
                if *value != 0 {
                    1.0 - PROB_CLAMP
                } else {
                    PROB_CLAMP
                },
            ));
        }
        _ => {}
    }

    let mut fired = [false; 8];
    let mut p = 0.5;
    for &(h, v) in &votes {
        fired[h] = true;
        p = combine(p, v);
    }
    let conflict = votes.iter().any(|&(_, v)| v >= 0.65) && votes.iter().any(|&(_, v)| v <= 0.35);
    (p.clamp(PROB_CLAMP, 1.0 - PROB_CLAMP), fired, conflict)
}

/// Predicts a taken-probability for every branch of `f`.
///
/// `uniform` skips the heuristics and assigns every successor equal
/// probability — the baseline `repro predict` compares against, run
/// through the identical propagation machinery.
pub fn predict_function(
    f: &Function,
    cfg: &Cfg,
    dom: &Dominators,
    loops: &LoopForest,
    uniform: bool,
) -> FuncPredictions {
    let mut out = FuncPredictions {
        probs: vec![Vec::new(); f.blocks.len()],
        fired: [0; 8],
        branches: 0,
        conflicts: Vec::new(),
    };
    for (b, block) in f.iter_blocks() {
        out.probs[b.index()] = match &block.term {
            Terminator::Return { .. } => Vec::new(),
            Terminator::Jump { .. } => vec![1.0],
            Terminator::Branch {
                cond,
                then_target,
                else_target,
            } => {
                out.branches += 1;
                if uniform || then_target == else_target {
                    vec![0.5, 0.5]
                } else {
                    let (p, fired, conflict) =
                        predict_branch(f, cfg, dom, loops, b, *cond, *then_target, *else_target);
                    for (h, &hit) in fired.iter().enumerate() {
                        if hit {
                            out.fired[h] += 1;
                        }
                    }
                    if conflict {
                        out.conflicts.push(b);
                    }
                    vec![p, 1.0 - p]
                }
            }
            Terminator::Switch { targets, .. } => {
                out.branches += 1;
                // Uniform over explicit targets; the default arm gets
                // half a share (it is usually the "none of the above"
                // fallback).
                let n = targets.len();
                let total = n as f64 + 0.5;
                let mut w = vec![1.0 / total; n];
                w.push(0.5 / total);
                if uniform {
                    w = vec![1.0 / (n + 1) as f64; n + 1];
                }
                w
            }
        };
    }
    out
}
