//! `ppp-est` — static branch prediction and frequency propagation.
//!
//! A dynamic optimizer's first generation has no profile: cold-start
//! planning must run on *predicted* flow. This crate produces that
//! prediction as a [`ModuleEdgeProfile`] that is indistinguishable,
//! interface-wise, from a measured profile — shape-matched and exactly
//! Kirchhoff-flow-conservative (PPP308) — so every downstream consumer
//! (the instrumentation planner, the potential-flow estimator, the
//! degradation ladder) takes it without special cases.
//!
//! The pipeline is three classic passes:
//!
//! 1. [`heur`] — Ball–Larus syntactic branch heuristics (loop-branch,
//!    loop-exit, loop-header, call, return, store, opcode, guard)
//!    combined Dempster–Shafer-style into one taken-probability per
//!    branch;
//! 2. [`freq`] — Wu–Larus loop-nest frequency propagation with capped
//!    trip counts and explicit irreducible-region handling;
//! 3. [`flow`] — exact integerization by path/cycle decomposition, so
//!    conservation holds by construction rather than by repair.
//!
//! Findings flow through `ppp-lint` as the stable PPP5xx band:
//! PPP501 irreducible-region-capped, PPP502 heuristic-conflict,
//! PPP503 non-conservative-estimate-repaired, PPP504 estimate-zeroed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod flow;
pub mod freq;
pub mod heur;

pub use heur::{FuncPredictions, HEURISTIC_NAMES, PROB_CLAMP};

use ppp_ir::{
    analyze_loops, BlockId, EdgeRef, FuncEdgeProfile, FuncId, Function, Module, ModuleEdgeProfile,
};
use ppp_lint::{Code, Diagnostic, LintReport};

/// Knobs for the estimator.
#[derive(Clone, Copy, Debug)]
pub struct EstOptions {
    /// Flow units injected at every function's entry block.
    pub entry_flow: u64,
    /// Trip-count cap: no loop amplifies its inflow by more than this.
    pub max_trip: f64,
    /// Replace every heuristic with a uniform split over successors —
    /// the baseline `repro predict` measures the heuristics against.
    pub uniform: bool,
}

impl Default for EstOptions {
    fn default() -> Self {
        Self {
            entry_flow: 1_000_000,
            max_trip: 64.0,
            uniform: false,
        }
    }
}

/// Aggregate statistics for one [`estimate_module`] run.
#[derive(Clone, Debug, Default)]
pub struct EstStats {
    /// Functions estimated.
    pub funcs: u64,
    /// Functions zeroed because no return is reachable (PPP504).
    pub zeroed_funcs: u64,
    /// Multi-way branches predicted.
    pub branches: u64,
    /// Branches each heuristic fired on, indexed like
    /// [`HEURISTIC_NAMES`].
    pub heuristic_fires: [u64; 8],
    /// Branches with strongly disagreeing heuristics (PPP502).
    pub conflicts: u64,
    /// Irreducible retreating edges encountered (PPP501).
    pub irreducible_edges: u64,
    /// Loops whose cyclic probability hit the trip cap.
    pub trip_caps: u64,
    /// Natural loops whose multipliers were computed.
    pub loops: u64,
    /// Block visits across all propagation passes.
    pub propagation_visits: u64,
    /// Entry-to-return path components extracted.
    pub paths: u64,
    /// Cycle components extracted.
    pub cycles: u64,
    /// Flow dropped while repairing non-conservative real flow
    /// (PPP503), in counts.
    pub discarded_flow: u64,
}

/// The outcome of estimating a whole module: statistics plus PPP5xx
/// diagnostics.
#[derive(Clone, Debug, Default)]
pub struct EstReport {
    /// Aggregate statistics.
    pub stats: EstStats,
    /// PPP501–PPP504 findings, sorted.
    pub diagnostics: LintReport,
}

fn diag(code: Code, fid: FuncId, f: &Function, block: Option<BlockId>, msg: String) -> Diagnostic {
    Diagnostic {
        code,
        func: fid,
        func_name: f.name.clone(),
        block,
        message: msg,
    }
}

/// Statically estimates one function's edge profile.
///
/// The returned profile always shape-matches `f` and satisfies flow
/// conservation exactly. Findings and statistics are appended to
/// `report`.
pub fn estimate_function(
    f: &Function,
    fid: FuncId,
    opts: &EstOptions,
    report: &mut EstReport,
) -> FuncEdgeProfile {
    let (cfg, dom, loops) = analyze_loops(f);
    report.stats.funcs += 1;

    let can_exit = freq::reaches_return(f, &cfg);
    if !can_exit[cfg.entry().index()] {
        report.stats.zeroed_funcs += 1;
        report.diagnostics.push(diag(
            Code::EstimateZeroed,
            fid,
            f,
            Some(cfg.entry()),
            "no return block is reachable from entry; static estimate zeroed".into(),
        ));
        return FuncEdgeProfile::zeroed(f);
    }

    let preds = heur::predict_function(f, &cfg, &dom, &loops, opts.uniform);
    report.stats.branches += preds.branches;
    for (i, n) in preds.fired.iter().enumerate() {
        report.stats.heuristic_fires[i] += n;
    }
    report.stats.conflicts += preds.conflicts.len() as u64;
    for &b in &preds.conflicts {
        report.diagnostics.push(diag(
            Code::HeuristicConflict,
            fid,
            f,
            Some(b),
            "branch heuristics strongly disagree; combined estimate is weak".into(),
        ));
    }

    let irreducible = loops.irreducible_edges();
    if !irreducible.is_empty() {
        report.stats.irreducible_edges += irreducible.len() as u64;
        report.diagnostics.push(diag(
            Code::IrreducibleRegionCapped,
            fid,
            f,
            Some(irreducible[0].from),
            format!(
                "{} irreducible retreating edge(s) receive zero trip credit",
                irreducible.len()
            ),
        ));
    }

    let flow = freq::propagate(
        f,
        &cfg,
        &loops,
        &can_exit,
        &preds,
        opts.entry_flow as f64,
        opts.max_trip,
    );
    report.stats.trip_caps += flow.trip_caps;
    report.stats.loops += flow.loops;
    report.stats.propagation_visits += flow.visits;

    let (profile, dstats) = flow::integerize(f, &cfg, &flow, opts.entry_flow as f64);
    report.stats.paths += dstats.paths;
    report.stats.cycles += dstats.cycles;
    report.stats.discarded_flow += dstats.discarded;
    if dstats.discarded > 0 {
        report.diagnostics.push(diag(
            Code::EstimateRepaired,
            fid,
            f,
            None,
            format!(
                "{} counts of non-conservative real flow dropped to restore \
                 exact conservation",
                dstats.discarded
            ),
        ));
    }

    debug_assert!(
        profile.is_flow_conservative(f),
        "{}: static estimate violates flow conservation",
        f.name
    );
    profile
}

/// Statically estimates every function of `module`.
///
/// The returned [`ModuleEdgeProfile`] shape-matches the module and is
/// flow-conservative everywhere; `ppp_est_*` metrics are recorded on
/// the ambient [`ppp_obs`] context.
pub fn estimate_module(module: &Module, opts: &EstOptions) -> (ModuleEdgeProfile, EstReport) {
    let mut report = EstReport::default();
    let mut out = ModuleEdgeProfile::zeroed(module);
    for (i, f) in module.functions.iter().enumerate() {
        let fid = FuncId::new(i);
        *out.func_mut(fid) = estimate_function(f, fid, opts, &mut report);
    }
    report.diagnostics.sort();
    record_metrics(&report, opts);
    (out, report)
}

fn record_metrics(report: &EstReport, opts: &EstOptions) {
    let obs = ppp_obs::global();
    let m = obs.metrics();
    let mode = if opts.uniform { "uniform" } else { "heuristic" };
    let k = [("mode", mode)];
    m.inc_by("ppp_est_funcs_total", &k, report.stats.funcs);
    m.inc_by("ppp_est_zeroed_funcs_total", &k, report.stats.zeroed_funcs);
    for (i, name) in HEURISTIC_NAMES.iter().enumerate() {
        if report.stats.heuristic_fires[i] > 0 {
            m.inc_by(
                "ppp_est_branches_total",
                &[("mode", mode), ("heuristic", name)],
                report.stats.heuristic_fires[i],
            );
        }
    }
    m.inc_by("ppp_est_conflicts_total", &k, report.stats.conflicts);
    m.inc_by(
        "ppp_est_irreducible_edges_total",
        &k,
        report.stats.irreducible_edges,
    );
    m.inc_by("ppp_est_trip_caps_total", &k, report.stats.trip_caps);
    m.inc_by("ppp_est_loops_total", &k, report.stats.loops);
    m.inc_by(
        "ppp_est_propagation_block_visits_total",
        &k,
        report.stats.propagation_visits,
    );
    m.inc_by(
        "ppp_est_components_total",
        &[("mode", mode), ("shape", "path")],
        report.stats.paths,
    );
    m.inc_by(
        "ppp_est_components_total",
        &[("mode", mode), ("shape", "cycle")],
        report.stats.cycles,
    );
    m.inc_by(
        "ppp_est_discarded_flow_total",
        &k,
        report.stats.discarded_flow,
    );
}

/// The statically hottest acyclic entry-to-return path of `f` under
/// `profile` (greedy maximum-flow successor walk) — the static analogue
/// of PPP's hot-path selection, used to seed first-generation path
/// instrumentation.
pub fn hottest_path(f: &Function, profile: &FuncEdgeProfile) -> Vec<BlockId> {
    let cfg = ppp_ir::Cfg::new(f);
    let mut path = vec![cfg.entry()];
    let mut b = cfg.entry();
    let mut seen = vec![false; f.blocks.len()];
    seen[b.index()] = true;
    while !f.block(b).term.is_return() {
        let n = f.block(b).term.successor_count();
        let mut best: Option<(BlockId, u64)> = None;
        for s in 0..n {
            let e = EdgeRef::new(b, s);
            let tgt = f.edge_target(e);
            if seen[tgt.index()] {
                continue;
            }
            let w = profile.edge(e);
            if best.is_none_or(|(_, bw)| w > bw) {
                best = Some((tgt, w));
            }
        }
        let Some((tgt, _)) = best else { break };
        seen[tgt.index()] = true;
        path.push(tgt);
        b = tgt;
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::{FunctionBuilder, Reg};

    fn diamond() -> Module {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main", 1);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(Reg(0), t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn diamond_estimate_is_conservative_and_nonzero() {
        let m = diamond();
        let (p, r) = estimate_module(&m, &EstOptions::default());
        assert!(p.shape_matches(&m));
        assert!(p.is_flow_conservative(&m));
        assert!(!p.func(FuncId(0)).is_zero());
        assert_eq!(r.stats.funcs, 1);
        assert_eq!(r.stats.zeroed_funcs, 0);
        assert!(r.diagnostics.is_clean());
    }

    #[test]
    fn loop_flow_is_amplified() {
        // entry -> header; header -> {body, exit}; body -> header.
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main", 1);
        let (h, body, exit) = (b.new_block(), b.new_block(), b.new_block());
        b.jump(h);
        b.switch_to(h);
        b.branch(Reg(0), body, exit);
        b.switch_to(body);
        b.jump(h);
        b.switch_to(exit);
        b.ret(None);
        m.add_function(b.finish());
        let (p, r) = estimate_module(&m, &EstOptions::default());
        assert!(p.is_flow_conservative(&m));
        let f = p.func(FuncId(0));
        // The loop-branch heuristic must make the header hotter than the
        // entry: the back edge is predicted taken.
        assert!(f.block(h) > f.entries(), "loop not amplified: {f:?}");
        assert_eq!(r.stats.loops, 1);
        // The branch sits at the header: loop-exit fires, not
        // loop-branch (the back edge is the latch's jump).
        assert!(r.stats.heuristic_fires[1] > 0, "loop-exit never fired");
    }

    #[test]
    fn latch_branch_fires_loop_branch_heuristic() {
        // entry -> h; h -> body; body(branch) -> {h, exit}.
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main", 1);
        let (h, body, exit) = (b.new_block(), b.new_block(), b.new_block());
        b.jump(h);
        b.switch_to(h);
        b.jump(body);
        b.switch_to(body);
        b.branch(Reg(0), h, exit);
        b.switch_to(exit);
        b.ret(None);
        m.add_function(b.finish());
        let (p, r) = estimate_module(&m, &EstOptions::default());
        assert!(p.is_flow_conservative(&m));
        assert!(r.stats.heuristic_fires[0] > 0, "loop-branch never fired");
        let f = p.func(FuncId(0));
        // Loop-branch, loop-exit, and return all agree here, so the
        // combined back-edge probability is high; the trip cap bounds
        // the amplification at 64.
        let trips = f.block(h) as f64 / f.entries().max(1) as f64;
        assert!((4.0..=64.0).contains(&trips), "trips: {trips}");
    }

    #[test]
    fn uniform_mode_fires_no_heuristics() {
        let m = diamond();
        let opts = EstOptions {
            uniform: true,
            ..EstOptions::default()
        };
        let (p, r) = estimate_module(&m, &opts);
        assert!(p.is_flow_conservative(&m));
        assert_eq!(r.stats.heuristic_fires, [0; 8]);
        // A uniform diamond splits the entry flow in half.
        let f = p.func(FuncId(0));
        let half = f.edge(EdgeRef::new(BlockId(0), 0)) as i64;
        let other = f.edge(EdgeRef::new(BlockId(0), 1)) as i64;
        assert!((half - other).abs() <= 1, "{half} vs {other}");
    }

    #[test]
    fn hottest_path_walks_entry_to_return() {
        let m = diamond();
        let (p, _) = estimate_module(&m, &EstOptions::default());
        let path = hottest_path(m.function(FuncId(0)), p.func(FuncId(0)));
        assert_eq!(path.first(), Some(&BlockId(0)));
        assert_eq!(path.last(), Some(&BlockId(3)));
    }
}
