//! Exact integerization of real-valued flow by path/cycle
//! decomposition.
//!
//! Rounding each edge independently would break Kirchhoff conservation
//! almost everywhere. Instead the real flow is decomposed into
//! entry-to-return *paths* and *cycles* (the flow-decomposition
//! theorem), each extracted component's weight is rounded once, and the
//! integer profile is re-accumulated component-wise. Every component
//! individually conserves flow at every block it visits, so the sum is
//! conservative *by construction* — PPP308 holds with no repair pass
//! and no failure mode.
//!
//! When the real flow itself is slightly non-conservative (a capped
//! loop), the unextractable remainder is dropped and reported, so the
//! integer profile is still exact.

use crate::freq::FloatFlow;
use ppp_ir::{Cfg, EdgeRef, FuncEdgeProfile, Function};

/// Weights below half a count can never round to a positive integer;
/// they terminate extraction.
const EPS: f64 = 0.5;

/// What the decomposition did, for diagnostics and metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct DecompStats {
    /// Entry-to-return paths extracted.
    pub paths: u64,
    /// Cycles extracted.
    pub cycles: u64,
    /// Real flow that could not be extracted into any component
    /// (non-conservative remainder from capped loops), in counts.
    pub discarded: u64,
}

/// Finds one cycle in the residual support graph (edges with weight
/// ≥ [`EPS`]), by iterative DFS. Returns the cycle's edges in walk
/// order, or `None` when the support is acyclic.
fn find_cycle(f: &Function, resid: &[Vec<f64>]) -> Option<Vec<EdgeRef>> {
    let n = f.blocks.len();
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state = vec![0u8; n];
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        // Stack of (block, next successor index to try).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start] = 1;
        while let Some(&(b, s)) = stack.last() {
            let row = &resid[b];
            let mut advanced = false;
            let mut si = s;
            while si < row.len() {
                let cur = si;
                si += 1;
                if row[cur] < EPS {
                    continue;
                }
                let tgt = f.blocks[b].term.successor(cur).expect("in range").index();
                if state[tgt] == 1 {
                    // Found a cycle: unwind the stack back to `tgt`.
                    // Each lower frame descended through successor
                    // `next - 1` (`next` was bumped before the push).
                    let mut cycle = vec![EdgeRef::new(ppp_ir::BlockId::new(b), cur)];
                    for &(sb, ss) in stack.iter().rev().skip(1) {
                        cycle.push(EdgeRef::new(ppp_ir::BlockId::new(sb), ss - 1));
                        if sb == tgt {
                            break;
                        }
                    }
                    cycle.reverse();
                    return Some(cycle);
                }
                if state[tgt] == 0 {
                    state[tgt] = 1;
                    stack.last_mut().expect("frame").1 = si;
                    stack.push((tgt, 0));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                state[b] = 2;
                stack.pop();
            }
        }
    }
    None
}

/// Decomposes `flow` into integer counts accumulated onto a zeroed
/// [`FuncEdgeProfile`].
pub fn integerize(
    f: &Function,
    cfg: &Cfg,
    flow: &FloatFlow,
    entry_flow: f64,
) -> (FuncEdgeProfile, DecompStats) {
    let mut resid: Vec<Vec<f64>> = flow.efreq.clone();
    let mut profile = FuncEdgeProfile::zeroed(f);
    let mut stats = DecompStats::default();
    let mut discarded = 0.0;
    let mut entries: u64 = 0;

    let add = |profile: &mut FuncEdgeProfile, edges: &[EdgeRef], w: u64| {
        for &e in edges {
            profile.set_edge(e, profile.edge(e).saturating_add(w));
        }
    };

    // Phase 1: cancel every cycle so the residual support is acyclic.
    while let Some(cycle) = find_cycle(f, &resid) {
        let w = cycle
            .iter()
            .map(|e| resid[e.from.index()][e.succ_index()])
            .fold(f64::INFINITY, f64::min);
        for e in &cycle {
            resid[e.from.index()][e.succ_index()] -= w;
        }
        let iw = w.round() as u64;
        if iw > 0 {
            add(&mut profile, &cycle, iw);
            stats.cycles += 1;
        }
    }

    // Phase 2: peel entry-to-return paths off the acyclic residual,
    // hottest successor first. A walk that dead-ends before a return is
    // riding non-conservative remainder; its prefix is discarded.
    let mut remaining = entry_flow;
    while remaining >= EPS {
        let mut path: Vec<EdgeRef> = Vec::new();
        let mut b = cfg.entry();
        let complete = loop {
            if f.block(b).term.is_return() {
                break true;
            }
            let row = &resid[b.index()];
            let mut best: Option<(usize, f64)> = None;
            for (s, &w) in row.iter().enumerate() {
                if w >= EPS && best.is_none_or(|(_, bw)| w > bw) {
                    best = Some((s, w));
                }
            }
            let Some((s, _)) = best else { break false };
            path.push(EdgeRef::new(b, s));
            b = f.edge_target(EdgeRef::new(b, s));
        };
        let w = path
            .iter()
            .map(|e| resid[e.from.index()][e.succ_index()])
            .fold(remaining, f64::min);
        if w < EPS {
            break;
        }
        for e in &path {
            resid[e.from.index()][e.succ_index()] -= w;
        }
        remaining -= w;
        if complete {
            let iw = w.round() as u64;
            if iw > 0 {
                add(&mut profile, &path, iw);
                entries = entries.saturating_add(iw);
                stats.paths += 1;
            }
        } else {
            discarded += w;
            if path.is_empty() {
                break;
            }
        }
    }
    discarded += remaining.max(0.0);

    // Block frequencies follow from the accumulated edges: every
    // component contributed equal in- and out-flow at every block it
    // visited, so inflow is the frequency.
    profile.set_entries(entries);
    for (b, _) in f.iter_blocks() {
        let mut inflow = if b == cfg.entry() { entries } else { 0 };
        for e in cfg.preds(b) {
            inflow = inflow.saturating_add(profile.edge(*e));
        }
        profile.set_block(b, inflow);
    }
    stats.discarded = discarded.round() as u64;
    (profile, stats)
}
