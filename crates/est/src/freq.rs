//! Loop-nest (interval) frequency propagation.
//!
//! Turns per-branch probabilities into real-valued block and edge
//! frequencies, Wu–Larus style: loops are processed innermost-first,
//! each loop's *cyclic probability* (the probability mass that flows
//! from its header back to a back edge) is measured by propagating one
//! unit of mass through the loop body, and the loop's trip multiplier
//! `1 / (1 − cp)` amplifies whatever external flow reaches the header.
//! A final pass over the whole function in reverse postorder assigns
//! absolute frequencies, multiplying at each header.
//!
//! Divergences from Wu–Larus, forced by our exactness requirements:
//!
//! * edges into blocks that cannot reach a return get probability zero
//!   (their siblings are renormalized) — flow parked in a non-exiting
//!   region could never satisfy the Kirchhoff exit equation;
//! * irreducible retreating edges get probability zero and a PPP501
//!   diagnostic — without a dominating header there is no interval to
//!   amplify, so the region is estimated as executing once;
//! * cyclic probabilities are capped at `1 − 1/max_trip` (default 64
//!   trips); the downstream integer decomposition repairs the small
//!   conservation error a cap introduces (PPP503).

use crate::heur::FuncPredictions;
use ppp_ir::{BlockId, Cfg, Function, LoopForest};

/// Real-valued flow, the intermediate between branch probabilities and
/// the integer edge profile.
#[derive(Clone, Debug)]
pub struct FloatFlow {
    /// Per-block frequency.
    pub bfreq: Vec<f64>,
    /// Per-edge frequency, indexed `[block][successor]`.
    pub efreq: Vec<Vec<f64>>,
    /// Post-masking branch probabilities actually propagated.
    pub probs: Vec<Vec<f64>>,
    /// Loops whose cyclic probability hit the trip cap.
    pub trip_caps: u64,
    /// Natural loops processed (multipliers computed).
    pub loops: u64,
    /// Propagation visits performed (cyclic-probability passes plus the
    /// final absolute pass), for the `ppp_est_propagation_block_visits`
    /// metric.
    pub visits: u64,
}

/// Blocks from which some return block is reachable (reverse BFS over
/// the full CFG).
pub fn reaches_return(f: &Function, cfg: &Cfg) -> Vec<bool> {
    let mut ok = vec![false; f.blocks.len()];
    let mut work: Vec<BlockId> = f.return_blocks();
    for &b in &work {
        ok[b.index()] = true;
    }
    while let Some(b) = work.pop() {
        for e in cfg.preds(b) {
            if !ok[e.from.index()] {
                ok[e.from.index()] = true;
                work.push(e.from);
            }
        }
    }
    ok
}

/// Zeroes probabilities on edges that must carry no flow (targets that
/// cannot reach a return; irreducible retreating edges) and renormalizes
/// each row. Rows whose mass vanishes entirely are left at zero — no
/// flow will be routed into them.
fn mask_probs(
    f: &Function,
    loops: &LoopForest,
    can_exit: &[bool],
    preds: &FuncPredictions,
) -> Vec<Vec<f64>> {
    let mut probs = preds.probs.clone();
    for e in loops.irreducible_edges() {
        if let Some(p) = probs[e.from.index()].get_mut(e.succ_index()) {
            *p = 0.0;
        }
    }
    for (b, row) in probs.iter_mut().enumerate() {
        for (s, p) in row.iter_mut().enumerate() {
            let tgt = f.blocks[b].term.successor(s).expect("successor in range");
            if !can_exit[tgt.index()] {
                *p = 0.0;
            }
        }
        let sum: f64 = row.iter().sum();
        if sum > f64::EPSILON {
            for p in row.iter_mut() {
                *p /= sum;
            }
        }
    }
    probs
}

/// Propagates frequencies through `f` given masked branch
/// probabilities. `entry_flow` seeds the entry block; `max_trip` bounds
/// every loop's amplification.
pub fn propagate(
    f: &Function,
    cfg: &Cfg,
    loops: &LoopForest,
    can_exit: &[bool],
    preds: &FuncPredictions,
    entry_flow: f64,
    max_trip: f64,
) -> FloatFlow {
    let n = f.blocks.len();
    let probs = mask_probs(f, loops, can_exit, preds);
    let mut flow = FloatFlow {
        bfreq: vec![0.0; n],
        efreq: probs.iter().map(|row| vec![0.0; row.len()]).collect(),
        probs,
        trip_caps: 0,
        loops: loops.loops().len() as u64,
        visits: 0,
    };

    // Trip multiplier per loop, innermost-first so outer loops see the
    // amplification of the loops they contain.
    let cp_cap = 1.0 - 1.0 / max_trip.max(2.0);
    let mut mult = vec![1.0; loops.loops().len()];
    let mut order: Vec<usize> = (0..loops.loops().len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(loops.loops()[i].depth));
    // Innermost loop each header starts (headers are unique per natural
    // loop after back-edge merging).
    let mut header_of = vec![usize::MAX; n];
    for (i, l) in loops.loops().iter().enumerate() {
        header_of[l.header.index()] = i;
    }

    for &li in &order {
        let l = &loops.loops()[li];
        let mut mass = vec![0.0; n];
        let mut cp = 0.0;
        for &b in cfg.reverse_postorder() {
            if !l.contains(b) {
                continue;
            }
            flow.visits += 1;
            let mut m = if b == l.header {
                1.0
            } else {
                cfg.preds(b)
                    .iter()
                    .filter(|e| l.contains(e.from) && !cfg.is_retreating(e.from, b))
                    .map(|e| mass[e.from.index()] * flow.probs[e.from.index()][e.succ_index()])
                    .sum()
            };
            if b != l.header && header_of[b.index()] != usize::MAX {
                m *= mult[header_of[b.index()]];
            }
            mass[b.index()] = m;
        }
        for e in &l.back_edges {
            cp += mass[e.from.index()] * flow.probs[e.from.index()][e.succ_index()];
        }
        if cp > cp_cap {
            flow.trip_caps += 1;
            cp = cp_cap;
        }
        mult[li] = 1.0 / (1.0 - cp.clamp(0.0, cp_cap));
    }

    // Absolute pass: forward edges feed inflow, headers amplify, back
    // edges receive flow but are never read as inputs (their mass is
    // what the multiplier accounts for).
    for &b in cfg.reverse_postorder() {
        flow.visits += 1;
        let mut inflow = if b == cfg.entry() { entry_flow } else { 0.0 };
        inflow += cfg
            .preds(b)
            .iter()
            .filter(|e| !cfg.is_retreating(e.from, b))
            .map(|e| flow.efreq[e.from.index()][e.succ_index()])
            .sum::<f64>();
        if header_of[b.index()] != usize::MAX {
            inflow *= mult[header_of[b.index()]];
        }
        flow.bfreq[b.index()] = inflow;
        for s in 0..flow.probs[b.index()].len() {
            flow.efreq[b.index()][s] = inflow * flow.probs[b.index()][s];
        }
    }
    flow
}
