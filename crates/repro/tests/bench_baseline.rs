//! Integration tests for the perf-baseline artifact and the
//! observability layer's overhead bound.

use ppp_repro::{
    baseline_from_json, baseline_json, collect_baseline, compare_baselines, run_benchmark,
    PipelineOptions,
};
use ppp_workloads::spec2000_suite;
use std::sync::Mutex;
use std::time::Instant;

/// Tests that swap the process-global observation context must not
/// interleave with each other (the test harness runs them on threads).
static GLOBAL_CTX_LOCK: Mutex<()> = Mutex::new(());

fn tiny() -> PipelineOptions {
    PipelineOptions {
        scale: 0.02,
        ..PipelineOptions::default()
    }
}

/// `repro bench --workers N` changes wall-clock only: every gated
/// quantity — and the artifact bytes once the machine-dependent
/// `wall_ms` is masked — matches the sequential run exactly.
#[test]
fn parallel_baseline_matches_sequential() {
    let sequential = PipelineOptions {
        scale: 0.01,
        workers: 1,
        ..PipelineOptions::default()
    };
    let parallel = PipelineOptions {
        workers: 4,
        ..sequential
    };
    let mut a = collect_baseline(None, &sequential);
    let mut b = collect_baseline(None, &parallel);
    assert_eq!(b.benchmarks.len(), 18);
    assert!(
        compare_baselines(&a, &b, 0.0)
            .expect("comparable")
            .is_empty(),
        "gated quantities must not move under --workers"
    );
    for r in a.benchmarks.iter_mut().chain(b.benchmarks.iter_mut()) {
        r.wall_ms = 0.0;
    }
    assert_eq!(baseline_json(&a), baseline_json(&b));
}

/// `repro bench --format json` output (the artifact `baseline_json`
/// prints verbatim) parses back and covers all 18 benchmarks with the
/// Figure 9–13 quantities.
#[test]
fn bench_json_covers_all_18_benchmarks() {
    let baseline = collect_baseline(None, &tiny());
    let doc = baseline_json(&baseline);
    let back = baseline_from_json(&doc).expect("artifact parses");
    assert_eq!(back.schema_version, ppp_repro::BASELINE_SCHEMA_VERSION);
    assert_eq!(back.benchmarks.len(), 18, "all suite entries covered");
    let suite = spec2000_suite();
    for entry in &suite {
        let rec = back
            .benchmarks
            .iter()
            .find(|b| b.name == entry.spec.name)
            .unwrap_or_else(|| panic!("{} missing from artifact", entry.spec.name));
        assert!(rec.wall_ms > 0.0, "{}: wall-time recorded", rec.name);
        assert!(rec.baseline_cost > 0, "{}: cost units recorded", rec.name);
        assert!(rec.dynamic_paths > 0, "{}: dynamic paths", rec.name);
        let labels: Vec<_> = rec.profilers.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, ["PP", "TPP", "PPP"], "{}", rec.name);
        for p in &rec.profilers {
            assert!(p.overhead >= 0.0, "{}/{}", rec.name, p.label);
            assert!(
                (0.0..=1.0).contains(&p.accuracy),
                "{}/{}",
                rec.name,
                p.label
            );
            assert!(
                (0.0..=1.0).contains(&p.coverage),
                "{}/{}",
                rec.name,
                p.label
            );
        }
    }
}

/// An injected regression makes the comparison non-empty — which is what
/// drives the CLI's non-zero exit code.
#[test]
fn injected_regression_fails_the_gate() {
    let entry_opts = tiny();
    let old = collect_baseline(Some("mcf"), &entry_opts);
    assert_eq!(old.benchmarks.len(), 1);
    // Same config, same seed: a re-run is identical in the gated
    // quantities, so the diff is clean.
    let new = collect_baseline(Some("mcf"), &entry_opts);
    assert!(
        compare_baselines(&old, &new, 0.10)
            .expect("comparable")
            .is_empty(),
        "identical runs must not regress"
    );
    // Now inject a regression beyond the threshold.
    let mut bad = new.clone();
    bad.benchmarks[0].profilers[2].overhead += 0.5;
    let regs = compare_baselines(&old, &bad, 0.10).expect("comparable");
    assert!(!regs.is_empty(), "injected regression must be flagged");
    assert_eq!(regs[0].quantity, "overhead");
}

/// The acceptance bound: with no-op sinks installed, span/metric
/// instrumentation adds <2% wall-time to a pipeline run.
///
/// The pipeline only observes at stage boundaries (never per VM
/// instruction), so the bound is checked by measuring (a) a full
/// benchmark run under a no-op context, (b) the number of observation
/// records that run emits when collected, and (c) the measured per-record
/// cost of the no-op path — asserting `records × per-record < 2% × run`.
#[test]
fn noop_observation_overhead_is_under_two_percent() {
    let _guard = GLOBAL_CTX_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let suite = spec2000_suite();
    let entry = suite.iter().find(|e| e.spec.name == "mcf").unwrap();
    let options = tiny();

    // (b) Count the records one run emits.
    let prev = ppp_obs::global();
    let (ctx, collect) = ppp_obs::ObsCtx::collecting();
    ppp_obs::install_global(ctx);
    run_benchmark(entry, &options).expect("collected run completes");
    let records = collect.len() as u64;

    // (a) Time the same run under a no-op sink (median of 3).
    ppp_obs::install_global(ppp_obs::ObsCtx::noop());
    let mut runs: Vec<u128> = (0..3)
        .map(|_| {
            let t = Instant::now();
            run_benchmark(entry, &options).expect("noop run completes");
            t.elapsed().as_nanos()
        })
        .collect();
    runs.sort();
    let run_ns = runs[1];

    // (c) Per-record cost of the no-op path (span open/set/close is the
    // most expensive record pair the pipeline emits).
    let noop = ppp_obs::ObsCtx::noop();
    let iters = 10_000u64;
    let t = Instant::now();
    for i in 0..iters {
        let mut s = noop.span("bench.probe");
        s.set("i", i);
    }
    let per_record_ns = t.elapsed().as_nanos() / u128::from(iters);
    ppp_obs::install_global(prev);

    let obs_ns = u128::from(records) * per_record_ns;
    assert!(records > 10, "pipeline emits spans ({records})");
    assert!(
        obs_ns * 50 < run_ns,
        "no-op observation cost {obs_ns}ns ({records} records × {per_record_ns}ns) \
         exceeds 2% of the {run_ns}ns run"
    );
}

/// Observation must never perturb results: the gated quantities are
/// identical whether records are dropped or collected.
#[test]
fn observation_sinks_do_not_change_measurements() {
    let _guard = GLOBAL_CTX_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let options = tiny();
    let prev = ppp_obs::global();
    ppp_obs::install_global(ppp_obs::ObsCtx::noop());
    let a = collect_baseline(Some("vpr"), &options);
    let (ctx, _collect) = ppp_obs::ObsCtx::collecting();
    ppp_obs::install_global(ctx);
    let b = collect_baseline(Some("vpr"), &options);
    ppp_obs::install_global(prev);
    assert_eq!(a.benchmarks.len(), b.benchmarks.len());
    let (ra, rb) = (&a.benchmarks[0], &b.benchmarks[0]);
    assert_eq!(ra.baseline_cost, rb.baseline_cost);
    assert_eq!(ra.dynamic_paths, rb.dynamic_paths);
    for (pa, pb) in ra.profilers.iter().zip(&rb.profilers) {
        assert_eq!(pa.label, pb.label);
        assert_eq!(pa.overhead, pb.overhead);
        assert_eq!(pa.accuracy, pb.accuracy);
        assert_eq!(pa.coverage, pb.coverage);
        assert_eq!(pa.lost_paths, pb.lost_paths);
    }
}
