//! End-to-end fixtures for the profile-ingestion degradation ladder:
//! one fixture per rung, a stale-shape remap, counter saturation, and a
//! fixed-seed chaos smoke over a real prepared benchmark. Every salvaged
//! profile must still pass the `ppp-lint` flow-conservation checks
//! (PPP308) on its surviving functions.

use ppp_faults::{FaultPlan, FaultSite};
use ppp_ir::{
    read_edge_profile_stale, salvage_edge_profile, write_edge_profile_v2, EdgeRef, FuncId,
    ModuleEdgeProfile,
};
use ppp_repro::{
    chaos_prepared, ingest_guidance, prepare_benchmark, run_prepared, ChaosVerdict, LadderRung,
    PipelineOptions, PreparedBenchmark,
};
use ppp_workloads::spec2000_suite;

fn prep_mcf() -> (PreparedBenchmark, PipelineOptions) {
    let options = PipelineOptions {
        scale: 0.02,
        ..PipelineOptions::default()
    };
    let suite = spec2000_suite();
    let entry = suite.iter().find(|e| e.spec.name == "mcf").unwrap();
    let prep = prepare_benchmark(entry, &options).expect("pipeline completes");
    (prep, options)
}

/// Damages the first branching function's counts so its flow no longer
/// balances; returns the damaged function's index.
fn break_flow(prep: &mut PreparedBenchmark) -> FuncId {
    let (i, f) = prep
        .module
        .functions
        .iter()
        .enumerate()
        .find(|(_, f)| f.block_ids().any(|b| f.block(b).term.successor_count() > 1))
        .expect("a branching function exists");
    let b = f
        .block_ids()
        .find(|&b| f.block(b).term.successor_count() > 1)
        .unwrap();
    let fid = FuncId::new(i);
    prep.edges.func_mut(fid).bump_edge(EdgeRef::new(b, 0));
    fid
}

fn assert_guidance_sound(prep: &PreparedBenchmark, g: &ModuleEdgeProfile) {
    assert!(g.shape_matches(&prep.module));
    assert!(g.is_flow_conservative(&prep.module));
    let lint = ppp_lint::check_profile(&prep.module, g);
    assert!(lint.is_empty(), "salvaged profile fails PPP308:\n{lint}");
}

#[test]
fn rung1_full_profile_on_clean_ingest() {
    let (prep, _) = prep_mcf();
    let (g, r) = ingest_guidance(&prep.module, Some(prep.edges.clone()), Some(&prep.truth));
    assert_eq!(r.rung(), LadderRung::FullProfile);
    assert!(!r.degraded());
    assert_eq!(g.expect("guidance"), prep.edges);
}

#[test]
fn rung2_salvages_consistent_functions_without_paths() {
    let (mut prep, _) = prep_mcf();
    let damaged = break_flow(&mut prep);
    let (g, r) = ingest_guidance(&prep.module, Some(prep.edges.clone()), None);
    assert_eq!(r.rung(), LadderRung::SalvagedFunctions);
    assert_eq!(
        r.quarantined,
        vec![prep.module.function(damaged).name.clone()]
    );
    let g = g.expect("other functions survive");
    assert!(g.func(damaged).is_zero(), "damaged function quarantined");
    assert_guidance_sound(&prep, &g);
}

#[test]
fn rung3_rebuilds_damaged_functions_from_paths() {
    let (mut prep, _) = prep_mcf();
    let pristine = prep.edges.clone();
    let damaged = break_flow(&mut prep);
    let (g, r) = ingest_guidance(&prep.module, Some(prep.edges.clone()), Some(&prep.truth));
    assert_eq!(r.rung(), LadderRung::PathDerivedEdges);
    assert_eq!(r.rebuilt, vec![prep.module.function(damaged).name.clone()]);
    let g = g.expect("guidance");
    // The rebuild recovers the damaged function's exact original counts.
    assert_eq!(g.func(damaged), pristine.func(damaged));
    assert_guidance_sound(&prep, &g);
}

#[test]
fn rung5_static_estimate_when_nothing_survives() {
    let (prep, _) = prep_mcf();
    let (g, r) = ingest_guidance(&prep.module, None, None);
    assert_eq!(r.rung(), LadderRung::StaticEstimate);
    assert!(r.degraded());
    // The bottom rung is no longer empty-handed: ppp-est synthesizes a
    // shape-matching, flow-conservative, non-zero estimate.
    let g = g.expect("ppp-est estimate");
    assert!(g.shape_matches(&prep.module));
    assert!(g.is_flow_conservative(&prep.module));
    assert!(g.funcs.iter().any(|f| !f.is_zero()));
    assert!(r.events.iter().any(|e| e.detail.contains("ppp-est")));
}

#[test]
fn saturated_counters_are_quarantined_and_rebuilt() {
    let (prep, _) = prep_mcf();
    let mut edges = prep.edges.clone();
    let plan = FaultPlan::new(FaultSite::SaturateCounters, 7);
    let hit = plan.saturate_edge_profile(&mut edges).expect("non-empty");
    let (g, r) = ingest_guidance(&prep.module, Some(edges), Some(&prep.truth));
    assert!(r.events.iter().any(|e| e.cause == "saturated"));
    assert!(r.degraded());
    let g = g.expect("guidance survives");
    assert!(!g.func(FuncId::new(hit)).saturated());
    assert_guidance_sound(&prep, &g);
}

#[test]
fn stale_shape_load_remaps_by_name() {
    let (prep, _) = prep_mcf();
    let bytes = write_edge_profile_v2(&prep.module, &prep.edges).into_bytes();
    let mut stale = prep.module.clone();
    stale.functions.rotate_left(1);
    let (profile, report) = read_edge_profile_stale(&stale, &bytes).expect("loads");
    assert_eq!(report.matched_funcs, stale.functions.len());
    assert!(report.renumbered_funcs > 0, "rotation renumbers functions");
    assert!(report.faults.is_empty());
    // Matched counts land on the right function: every function's profile
    // is still flow conservative against the *new* shape.
    assert!(profile.shape_matches(&stale));
    assert!(profile.is_flow_conservative(&stale));
}

#[test]
fn salvage_loader_feeds_the_ladder_end_to_end() {
    let (prep, options) = prep_mcf();
    let mut bytes = write_edge_profile_v2(&prep.module, &prep.edges).into_bytes();
    // Flip bytes mid-artifact until at least one section is quarantined.
    let plan = FaultPlan::new(FaultSite::CorruptEdgeBytes, 3);
    plan.corrupt_bytes(&mut bytes[40..], 6);
    let s = salvage_edge_profile(&prep.module, &bytes).expect("container intact");
    assert!(!s.is_clean(), "damage must quarantine something");
    let mut damaged_prep = prep.clone();
    damaged_prep.edges = s.profile;
    let run = run_prepared(damaged_prep, &options).expect("pipeline completes");
    assert_eq!(run.profilers.len(), 3);
    // A quarantined section either vanished into zeroes (degradation
    // reported) or was rebuilt from paths — but never trusted silently.
    assert!(run.degradation.rung() <= LadderRung::PathDerivedEdges);
}

#[test]
fn chaos_smoke_fixed_seed() {
    let (prep, options) = prep_mcf();
    let outcomes = chaos_prepared(&prep, 701, &options);
    assert_eq!(outcomes.len(), FaultSite::ALL.len());
    for o in &outcomes {
        assert!(
            o.ok(),
            "{}: silent degradation or dirty lint\n{}",
            o.site,
            o.report
        );
        assert_ne!(o.verdict, ChaosVerdict::Silent);
    }
}
