//! Minimal fixed-width table rendering for the paper-style reports.

/// A simple text table with right-aligned numeric columns.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    separators: Vec<usize>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            separators: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Inserts a horizontal separator before the next row.
    pub fn separator(&mut self) -> &mut Self {
        self.separators.push(self.rows.len());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |out: &mut String| {
            for w in &widths {
                out.push('+');
                out.push_str(&"-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        let mut out = String::new();
        line(&mut out);
        for (i, h) in self.headers.iter().enumerate() {
            out.push_str("| ");
            out.push_str(h);
            out.push_str(&" ".repeat(widths[i] - h.len() + 1));
        }
        out.push_str("|\n");
        line(&mut out);
        for (r, row) in self.rows.iter().enumerate() {
            if self.separators.contains(&r) {
                line(&mut out);
            }
            for i in 0..cols {
                let c = &row[i];
                out.push_str("| ");
                // Right-align numbers, left-align text.
                let numeric = c
                    .chars()
                    .all(|ch| ch.is_ascii_digit() || "+-.%eE".contains(ch))
                    && !c.is_empty();
                if numeric {
                    out.push_str(&" ".repeat(widths[i] - c.len()));
                    out.push_str(c);
                    out.push(' ');
                } else {
                    out.push_str(c);
                    out.push_str(&" ".repeat(widths[i] - c.len() + 1));
                }
            }
            out.push_str("|\n");
        }
        line(&mut out);
        out
    }
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a signed ratio as a percentage (for overheads).
pub fn pct_signed(x: f64) -> String {
    format!("{:+.1}%", 100.0 * x)
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1.00"]);
        t.separator();
        t.row(["longer-name", "123.45"]);
        let s = t.render();
        assert!(s.contains("| name "));
        assert!(s.contains("| alpha "));
        assert!(s.contains("123.45"));
        // All lines same width.
        let lens: Vec<usize> = s.lines().map(str::len).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(pct_signed(-0.03), "-3.0%");
        assert_eq!(pct_signed(0.05), "+5.0%");
        assert_eq!(f2(1.005), "1.00");
    }
}
