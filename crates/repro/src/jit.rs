//! `repro jit`: the closed re-optimization loop over the suite.
//!
//! Runs each benchmark through `ppp-jit`'s generation loop (serve under
//! PPP instrumentation → live snapshot → re-optimize hot functions →
//! validate → transfer the stale profile → hot-swap → iterate) and emits
//! a schema-versioned `ppp-jit/v1` artifact with per-generation
//! cost-model speedup, time-to-steady-state, transfer coverage, and
//! witness/lint verdicts. [`jit_gate`] is the CI contract: every
//! benchmark must reach steady state within the generation cap with
//! monotone non-increasing cost, every generation witness-validated
//! (PPP3xx-clean), and every transferred profile PPP308
//! flow-conservative.

use crate::format::Table;
use crate::pipeline::PipelineOptions;
use ppp_jit::{run_jit, JitError, JitOptions, JitOutcome};
use ppp_obs::json;
use ppp_obs::Value;
use ppp_workloads::{generate, spec2000_suite};
use std::fmt::Write as _;

/// Version of the `ppp-jit` artifact schema.
pub const JIT_SCHEMA_VERSION: u64 = 1;

/// The artifact's `kind` discriminator (`ppp-jit/v1` together with
/// [`JIT_SCHEMA_VERSION`]).
pub const JIT_KIND: &str = "ppp-jit";

/// Builds the engine options for a suite sweep from the shared pipeline
/// options plus the jit-specific knobs.
pub fn jit_options(
    options: &PipelineOptions,
    generations: usize,
    hot_threshold: f64,
) -> JitOptions {
    JitOptions {
        generations: generations.max(1),
        hot_threshold,
        seed: options.seed,
        scale: options.scale,
        ..JitOptions::default()
    }
}

/// Runs the re-optimization loop over the suite.
///
/// `bench` narrows the sweep to one benchmark or a comma-separated
/// list (the CI smoke runs three representative ones). Progress goes
/// to the observation sink. `workers > 1` fans benchmarks over that
/// many threads; each loop is seed-deterministic and results are
/// collected in suite order, so everything except wall-clock fields is
/// byte-identical to a sequential sweep.
pub fn jit_suite(
    bench: Option<&str>,
    jopts: &JitOptions,
    workers: usize,
) -> Result<Vec<JitOutcome>, JitError> {
    let suite = spec2000_suite();
    let entries: Vec<_> = suite
        .iter()
        .filter(|e| bench.is_none_or(|b| b.split(',').any(|x| x == e.spec.name)))
        .collect();
    let outcomes = ppp_agg::run_indexed(workers, entries.len(), |i| {
        let entry = entries[i];
        ppp_obs::global().info(
            "jit.progress",
            &[("bench", Value::from(entry.spec.name.as_str()))],
        );
        let module = generate(&entry.spec.clone().scaled(jopts.scale));
        run_jit(&module, &entry.spec.name, jopts)
    });
    outcomes.into_iter().collect()
}

/// The CI convergence contract over a sweep's outcomes.
///
/// # Errors
///
/// Returns a message naming every benchmark that missed steady state,
/// increased cost across a generation, failed a witness/lint gate, or
/// transferred a non-conservative profile.
pub fn jit_gate(outcomes: &[JitOutcome]) -> Result<(), String> {
    let mut failures = Vec::new();
    for o in outcomes {
        if !o.steady_state {
            failures.push(format!(
                "{}: no steady state within {} generation(s)",
                o.bench, o.generations_run
            ));
        }
        if !o.monotone_costs() {
            failures.push(format!("{}: cost increased across a generation", o.bench));
        }
        if !o.witness_clean() {
            failures.push(format!("{}: a witness/lint gate failed", o.bench));
        }
        if !o.transfers_conservative() {
            failures.push(format!("{}: a transferred profile broke PPP308", o.bench));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// Renders a sweep as the `ppp-jit/v1` JSON artifact.
pub fn jit_json(outcomes: &[JitOutcome], jopts: &JitOptions) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema_version\":{JIT_SCHEMA_VERSION},\"kind\":\"{JIT_KIND}\",\"seed\":{},\
         \"scale\":{},\"hot_threshold\":{},\"epsilon\":{},\"generation_cap\":{},\"benchmarks\":[",
        jopts.seed,
        json::fmt_f64(jopts.scale),
        json::fmt_f64(jopts.hot_threshold),
        json::fmt_f64(jopts.epsilon),
        jopts.generations
    );
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"bench\":\"{}\",\"steady_state\":{},\"generations_to_steady\":{},\
             \"initial_cost\":{},\"final_cost\":{},\"total_speedup\":{},\"swaps\":{},\
             \"monotone\":{},\"witness_clean\":{},\"transfers_conservative\":{},\
             \"wall_ms\":{},\"generations\":[",
            json::escape(&o.bench),
            o.steady_state,
            o.generations_run,
            o.initial_cost,
            o.final_cost,
            json::fmt_f64(o.total_speedup),
            o.swaps,
            o.monotone_costs(),
            o.witness_clean(),
            o.transfers_conservative(),
            json::fmt_f64(o.wall_ms)
        );
        for (j, g) in o.generations.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let transfer = match &g.transfer {
                None => "null".to_owned(),
                Some(t) => format!(
                    "{{\"pairs\":{},\"anchor_pairs\":{},\"unmatched_old\":{},\
                     \"unmatched_new\":{},\"transferred_edges\":{},\"dropped_flow\":{},\
                     \"moved_flow\":{},\"renormalized_funcs\":{},\"zeroed_funcs\":{},\
                     \"coverage\":{},\"identity\":{},\"conservative\":{}}}",
                    t.pairs,
                    t.anchor_pairs,
                    t.unmatched_old,
                    t.unmatched_new,
                    t.transferred_edges,
                    t.dropped_flow,
                    t.moved_flow,
                    t.renormalized_funcs,
                    t.zeroed_funcs,
                    json::fmt_f64(t.coverage),
                    t.identity,
                    t.conservative
                ),
            };
            let _ = write!(
                out,
                "{{\"generation\":{},\"candidate_cost\":{},\"cost_after\":{},\
                 \"improvement\":{},\"speedup_vs_initial\":{},\"promoted\":{},\
                 \"serve_cost\":{},\"serve_prof_cost\":{},\"overhead\":{},\
                 \"deltas_streamed\":{},\"instrumented_routines\":{},\
                 \"static_prof_insts\":{},\"hot_functions\":{},\"total_functions\":{},\
                 \"inlined_sites\":{},\"unrolled_loops\":{},\"witness_clean\":{},\
                 \"transfer\":{transfer},\"wall_ms\":{}}}",
                g.generation,
                g.candidate_cost,
                g.cost_after,
                json::fmt_f64(g.improvement),
                json::fmt_f64(g.speedup_vs_initial),
                g.promoted,
                g.serve_cost,
                g.serve_prof_cost,
                json::fmt_f64(g.overhead),
                g.deltas_streamed,
                g.instrumented_routines,
                g.static_prof_insts,
                g.hot_functions,
                g.total_functions,
                g.inline.inlined_sites,
                g.unroll.counted_unrolled + g.unroll.generic_unrolled,
                g.witness_clean(),
                json::fmt_f64(g.wall_ms)
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Renders a sweep as a human-readable table.
pub fn jit_table(outcomes: &[JitOutcome]) -> String {
    let mut t = Table::new([
        "Benchmark",
        "Gens",
        "Steady",
        "Init cost",
        "Final cost",
        "Speedup",
        "Overhead@1",
        "Transfer cov",
        "Witness",
        "Wall(ms)",
    ]);
    for o in outcomes {
        let coverage = o
            .generations
            .iter()
            .filter_map(|g| g.transfer.as_ref())
            .map(|tr| tr.coverage)
            .fold(f64::NAN, f64::min);
        t.row([
            o.bench.clone(),
            o.generations_run.to_string(),
            if o.steady_state { "yes" } else { "NO" }.to_owned(),
            o.initial_cost.to_string(),
            o.final_cost.to_string(),
            format!("{:.3}x", o.total_speedup),
            o.generations
                .first()
                .map_or_else(String::new, |g| format!("{:+.1}%", 100.0 * g.overhead)),
            if coverage.is_nan() {
                "-".to_owned()
            } else {
                format!("{:.1}%", 100.0 * coverage)
            },
            if o.witness_clean() { "clean" } else { "DIRTY" }.to_owned(),
            format!("{:.0}", o.wall_ms),
        ]);
    }
    let steady = outcomes.iter().filter(|o| o.steady_state).count();
    format!(
        "jit loop: {} benchmark(s), {} steady, {} swaps total\n{}",
        outcomes.len(),
        steady,
        outcomes.iter().map(|o| o.swaps).sum::<u64>(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::prepare_benchmark;
    use ppp_ir::{write_edge_profile_v2, write_path_profile_v2};
    use ppp_vm::{run, RunOptions};

    /// The hot-swap determinism safety net: a 1-generation loop with the
    /// full profile available (warm start, hot_threshold 0) must be
    /// byte-identical to the one-shot pipeline — same optimized module
    /// (compared through its canonical profile serialization), same
    /// ground-truth profiles, same cost — across the whole suite and two
    /// seeds.
    #[test]
    fn one_generation_loop_is_byte_identical_to_the_one_shot_pipeline() {
        for seed in [0x5EEDu64, 701] {
            let options = PipelineOptions {
                scale: 0.02,
                seed,
                ..PipelineOptions::default()
            };
            let suite = spec2000_suite();
            for entry in &suite {
                let name = entry.spec.name.as_str();
                let prep = prepare_benchmark(entry, &options).expect("pipeline completes");
                let jopts = JitOptions {
                    generations: 1,
                    ..jit_options(&options, 1, 0.0)
                };
                let module = generate(&entry.spec.clone().scaled(options.scale));
                let out = run_jit(&module, name, &jopts).expect("loop completes");
                assert_eq!(out.generations_run, 1, "{name}@{seed}");
                let g = &out.generations[0];
                assert!(g.promoted, "{name}@{seed}: generation 1 must promote");
                assert!(g.witness_clean(), "{name}@{seed}");
                assert_eq!(out.final_cost, prep.baseline_cost, "{name}@{seed}: cost");
                assert_eq!(
                    (g.inline.inlined_sites, g.inline.total_sites),
                    (prep.inline.inlined_sites, prep.inline.total_sites),
                    "{name}@{seed}: inline report"
                );
                assert_eq!(
                    (g.unroll.counted_unrolled, g.unroll.generic_unrolled),
                    (prep.unroll.counted_unrolled, prep.unroll.generic_unrolled),
                    "{name}@{seed}: unroll report"
                );
                // The observable that matters for hot-swap: the module
                // the loop ends up serving is the pipeline's optimized
                // module, bit for bit (canonical profile serialization
                // covers every function name, CFG shape, and count).
                let r = run(
                    &out.final_module,
                    "main",
                    &RunOptions::default().with_seed(seed).traced(),
                )
                .expect("final module runs");
                assert_eq!(
                    write_edge_profile_v2(&out.final_module, &r.edge_profile.clone().unwrap()),
                    write_edge_profile_v2(&prep.module, &prep.edges),
                    "{name}@{seed}: edge profile observables"
                );
                assert_eq!(
                    write_path_profile_v2(&out.final_module, &r.path_profile.clone().unwrap()),
                    write_path_profile_v2(&prep.module, &prep.truth),
                    "{name}@{seed}: path profile observables"
                );
                assert_eq!(r.cost, prep.baseline_cost, "{name}@{seed}: traced cost");
            }
        }
    }

    #[test]
    fn the_suite_sweep_converges_and_passes_the_gate() {
        let options = PipelineOptions {
            scale: 0.02,
            seed: 701,
            ..PipelineOptions::default()
        };
        let jopts = jit_options(&options, 6, 0.0);
        let outcomes = jit_suite(None, &jopts, 4).expect("sweep completes");
        assert_eq!(outcomes.len(), spec2000_suite().len());
        jit_gate(&outcomes).expect("convergence contract");
        let json = jit_json(&outcomes, &jopts);
        let v = json::parse(&json).expect("artifact parses");
        assert_eq!(
            v.get("kind").and_then(json::Json::as_str),
            Some(JIT_KIND),
            "artifact kind"
        );
        assert_eq!(
            v.get("schema_version").and_then(json::Json::as_u64),
            Some(JIT_SCHEMA_VERSION)
        );
        let benches = v.get("benchmarks").and_then(json::Json::as_arr).unwrap();
        assert_eq!(benches.len(), outcomes.len());
        let table = jit_table(&outcomes);
        for o in &outcomes {
            assert!(table.contains(&o.bench), "table missing {}", o.bench);
        }
    }

    #[test]
    fn parallel_sweep_matches_sequential_on_every_deterministic_field() {
        let options = PipelineOptions {
            scale: 0.01,
            seed: 42,
            ..PipelineOptions::default()
        };
        let jopts = jit_options(&options, 3, 0.0);
        let a = jit_suite(Some("mcf"), &jopts, 1).expect("sequential");
        let b = jit_suite(Some("mcf"), &jopts, 4).expect("parallel");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.bench, y.bench);
            assert_eq!(x.initial_cost, y.initial_cost);
            assert_eq!(x.final_cost, y.final_cost);
            assert_eq!(x.generations_run, y.generations_run);
            assert_eq!(x.steady_state, y.steady_state);
            assert_eq!(
                write_edge_profile_v2(&x.final_module, &x.final_guidance),
                write_edge_profile_v2(&y.final_module, &y.final_guidance)
            );
        }
    }

    #[test]
    fn the_gate_names_a_non_converged_benchmark() {
        let options = PipelineOptions {
            scale: 0.01,
            seed: 7,
            ..PipelineOptions::default()
        };
        let jopts = jit_options(&options, 3, 0.0);
        let mut outcomes = jit_suite(Some("mcf"), &jopts, 1).expect("sweep");
        outcomes[0].steady_state = false;
        let err = jit_gate(&outcomes).expect_err("gate trips");
        assert!(err.contains("mcf"), "{err}");
        assert!(err.contains("no steady state"), "{err}");
    }
}
