//! `repro top <addr>`: a refreshing text dashboard over the serve
//! tier's live-introspection (`Stats`) wire frame.
//!
//! Each refresh sends one `StatsRequest` to the server and renders the
//! [`ppp_agg::STATS_SCHEMA`] reply: uptime, frames accepted, per-bench
//! shard queue depths, sequence watermarks, checkpoint lag, and the
//! headline `ppp_agg_*` counters from the server's metric registry.
//! The request path never touches the shard queues, so watching a
//! server under load does not disturb ingestion.

use ppp_agg::STATS_SCHEMA;
use ppp_obs::json::{self, Json};
use std::net::SocketAddr;
use std::time::Duration;

/// Dashboard configuration (`repro top` flags).
#[derive(Clone, Copy, Debug)]
pub struct TopOptions {
    /// Delay between refreshes.
    pub interval: Duration,
    /// Render a single page and exit (`--once`) instead of looping.
    pub once: bool,
    /// Per-request connect/read deadline.
    pub timeout: Duration,
}

impl Default for TopOptions {
    fn default() -> Self {
        Self {
            interval: Duration::from_secs(1),
            once: false,
            timeout: Duration::from_secs(2),
        }
    }
}

/// Sum of every registry counter named `name`, across label sets.
fn counter_total(registry: &Json, name: &str) -> u64 {
    registry
        .get("metrics")
        .and_then(Json::as_arr)
        .map(|items| {
            items
                .iter()
                .filter(|m| m.get("name").and_then(Json::as_str) == Some(name))
                .filter_map(|m| m.get("value").and_then(Json::as_u64))
                .sum()
        })
        .unwrap_or(0)
}

/// Renders one Stats document as a dashboard page.
///
/// # Errors
///
/// Returns a message when the document is not parseable
/// [`STATS_SCHEMA`] JSON.
pub fn render_stats(doc: &str) -> Result<String, String> {
    let v = json::parse(doc).map_err(|e| format!("stats document unparseable: {e}"))?;
    let schema = v.get("schema").and_then(Json::as_str).unwrap_or("?");
    if schema != STATS_SCHEMA {
        return Err(format!(
            "unexpected stats schema {schema:?} (want {STATS_SCHEMA:?})"
        ));
    }
    let uptime_ms = v.get("uptime_ms").and_then(Json::as_u64).unwrap_or(0);
    let frames = v.get("frames_accepted").and_then(Json::as_u64).unwrap_or(0);
    let durable = matches!(v.get("durable"), Some(Json::Bool(true)));
    let mut out = format!(
        "ppp-agg: up {:.1} s, {frames} frame(s) accepted{}\n",
        uptime_ms as f64 / 1e3,
        if durable { ", durable" } else { "" },
    );
    let registry = v.get("registry");
    if let Some(reg) = registry {
        out.push_str(&format!(
            "ingested {} frame(s), merged {} delta(s), served {} stats request(s), {} flight dump(s)\n",
            counter_total(reg, "ppp_agg_frames_ingested_total"),
            counter_total(reg, "ppp_agg_deltas_merged_total"),
            counter_total(reg, ppp_obs::names::STATS_SERVED),
            counter_total(reg, ppp_obs::names::FLIGHT_DUMPS),
        ));
    }
    let benches = v.get("benches").and_then(Json::as_arr).unwrap_or(&[]);
    if benches.is_empty() {
        out.push_str("(no benchmarks registered)\n");
        return Ok(out);
    }
    let mut t = crate::format::Table::new([
        "Benchmark",
        "Shards",
        "Queues",
        "Clients",
        "Since-ckpt",
        "Stalls",
    ]);
    for b in benches {
        let depths = b
            .get("queue_depths")
            .and_then(Json::as_arr)
            .map(|d| {
                d.iter()
                    .filter_map(Json::as_u64)
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .unwrap_or_else(|| "?".to_owned());
        t.row([
            b.get("bench")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_owned(),
            b.get("shards")
                .and_then(Json::as_u64)
                .map_or_else(|| "?".to_owned(), |n| n.to_string()),
            depths,
            b.get("watermarks")
                .and_then(Json::as_arr)
                .map_or_else(|| "?".to_owned(), |w| w.len().to_string()),
            b.get("frames_since_checkpoint")
                .and_then(Json::as_u64)
                .map_or_else(|| "?".to_owned(), |n| n.to_string()),
            b.get("backpressure_stalls")
                .and_then(Json::as_u64)
                .map_or_else(|| "?".to_owned(), |n| n.to_string()),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

/// Polls the server at `addr` and prints the dashboard: once
/// (`options.once`) or in a clear-screen refresh loop until the
/// process is interrupted.
///
/// # Errors
///
/// Returns a message on a connect/transport failure or an unparseable
/// reply.
pub fn top(addr: SocketAddr, options: &TopOptions) -> Result<(), String> {
    loop {
        let doc = ppp_agg::fetch_stats(addr, options.timeout)?;
        let page = render_stats(&doc)?;
        if options.once {
            println!("{addr}\n{page}");
            return Ok(());
        }
        // ANSI clear + home, then the refreshed page.
        print!("\x1b[2J\x1b[H{addr}\n{page}");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        std::thread::sleep(options.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drive::serve;

    #[test]
    fn renders_a_live_server_snapshot() {
        let server = serve("127.0.0.1:0", 2, 8, None).expect("server spawns");
        let doc = ppp_agg::fetch_stats(server.addr(), Duration::from_secs(5)).expect("stats frame");
        let page = render_stats(&doc).expect("stats render");
        assert!(page.contains("ppp-agg: up"), "{page}");
        assert!(page.contains("frame(s) accepted"), "{page}");
        assert!(page.contains("no benchmarks registered"), "{page}");
        server.shutdown();
    }

    #[test]
    fn renders_per_bench_rows_from_a_canned_document() {
        let doc = format!(
            "{{\"schema\":\"{STATS_SCHEMA}\",\"uptime_ms\":2500,\"frames_accepted\":7,\
             \"durable\":true,\"benches\":[{{\"bench\":\"mcf\",\"shards\":2,\
             \"queue_depths\":[0,3],\"watermarks\":[{{\"client\":1,\"seq\":9}}],\
             \"frames_since_checkpoint\":4,\"backpressure_stalls\":1}}],\
             \"registry\":{{\"metrics\":[{{\"name\":\"ppp_agg_frames_ingested_total\",\
             \"labels\":{{}},\"type\":\"counter\",\"value\":6}}]}}}}"
        );
        let page = render_stats(&doc).expect("stats render");
        assert!(page.contains("up 2.5 s"), "{page}");
        assert!(page.contains("durable"), "{page}");
        assert!(page.contains("mcf"), "{page}");
        assert!(page.contains("0,3"), "{page}");
        assert!(page.contains("ingested 6 frame(s)"), "{page}");
    }

    #[test]
    fn rejects_a_foreign_schema() {
        let err = render_stats("{\"schema\":\"nope/v9\"}").expect_err("refused");
        assert!(err.contains("nope/v9"), "{err}");
    }
}
