//! The profile-ingestion degradation ladder.
//!
//! A dynamic optimizer cannot refuse service because a profile is bad
//! (§1: profiles *feed* online optimization), and it must never act on
//! damaged guidance silently. This module implements the middle ground:
//! a ladder of progressively weaker guidance, each rung recorded in a
//! structured [`DegradationReport`]:
//!
//! 1. **Full profile** — the edge profile matches the module's shape, no
//!    counter saturated, and every function satisfies Kirchhoff flow
//!    conservation. Used as-is.
//! 2. **Matched stale** — the profile was collected on an older program
//!    version and transferred through the `ppp-match` CFG matcher
//!    ([`ingest_guidance_at`] with a [`LadderRung::MatchedStale`] floor).
//!    The counts are conservative but approximate.
//! 3. **Salvaged functions** — functions whose counts violate flow
//!    conservation (or saturated) are quarantined (zeroed — an all-zero
//!    profile is trivially conservative); the rest keep their counts.
//! 4. **Path-derived edges** — quarantined (or missing) edge counts are
//!    rebuilt from the surviving path profile via
//!    [`ModuleEdgeProfile::from_paths`]; rebuilt functions that still
//!    don't balance are quarantined for good.
//! 5. **Static estimate** — no usable guidance at all: the `ppp-est`
//!    analyzer synthesizes a profile from Ball–Larus branch heuristics
//!    and loop-nest frequency propagation, so cold-start guidance is
//!    real counts, not a `None` the instrumenter must special-case.
//!
//! The returned guidance is always safe to hand to the instrumenter: a
//! shape-matching, flow-conservative profile on every rung. `None` is
//! reserved for the degenerate empty-module case.

use ppp_ir::{FuncId, Module, ModuleEdgeProfile, ModulePathProfile};
use std::fmt;

/// One rung of the degradation ladder, ordered best to worst.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum LadderRung {
    /// The profile is intact; used as-is.
    FullProfile,
    /// The profile was transferred from an older program version through
    /// the CFG matcher; conservative but approximate.
    MatchedStale,
    /// Some functions quarantined, the rest kept.
    SalvagedFunctions,
    /// Some or all edge counts rebuilt from the path profile.
    PathDerivedEdges,
    /// No usable guidance; static estimation only.
    StaticEstimate,
}

impl LadderRung {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            LadderRung::FullProfile => "full-profile",
            LadderRung::MatchedStale => "matched-stale",
            LadderRung::SalvagedFunctions => "salvaged-functions",
            LadderRung::PathDerivedEdges => "path-derived-edges",
            LadderRung::StaticEstimate => "static-estimate",
        }
    }
}

impl fmt::Display for LadderRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded degradation step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DegradationEvent {
    /// Stable cause slug (e.g. `flow-violation`, `saturated`,
    /// `shape-mismatch`, `load-fault`, `rebuilt-from-paths`).
    pub cause: String,
    /// Human-readable detail.
    pub detail: String,
}

/// Structured record of everything the ladder did to one profile.
#[derive(Clone, Debug, Default)]
pub struct DegradationReport {
    /// Rung the ladder settled on (`None` until the ladder runs; read
    /// through [`DegradationReport::rung`]).
    pub final_rung: Option<LadderRung>,
    /// Everything that was wrong and every action taken, in order.
    pub events: Vec<DegradationEvent>,
    /// Functions whose counts were quarantined for good (zeroed).
    pub quarantined: Vec<String>,
    /// Functions whose edge counts were rebuilt from the path profile.
    pub rebuilt: Vec<String>,
    /// Dynamic flow dropped while rebuilding from paths (incomplete
    /// trailing paths).
    pub dropped_flow: u64,
}

impl DegradationReport {
    /// The rung (defaults to [`LadderRung::FullProfile`] when the ladder
    /// recorded nothing).
    pub fn rung(&self) -> LadderRung {
        self.final_rung.unwrap_or(LadderRung::FullProfile)
    }

    /// `true` when the profile did not load clean — something was
    /// quarantined, rebuilt, or reported.
    pub fn degraded(&self) -> bool {
        self.rung() != LadderRung::FullProfile || !self.events.is_empty()
    }

    /// Appends an event.
    pub fn push(&mut self, cause: &str, detail: impl Into<String>) {
        self.events.push(DegradationEvent {
            cause: cause.to_owned(),
            detail: detail.into(),
        });
    }

    /// Renders the report as a JSON object (stable keys; used by
    /// `repro chaos --format json`).
    pub fn to_json(&self) -> String {
        let events = self
            .events
            .iter()
            .map(|e| {
                format!(
                    "{{\"cause\":\"{}\",\"detail\":\"{}\"}}",
                    json_escape(&e.cause),
                    json_escape(&e.detail)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let names = |v: &[String]| {
            v.iter()
                .map(|n| format!("\"{}\"", json_escape(n)))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{{\"rung\":\"{}\",\"degraded\":{},\"quarantined\":[{}],\"rebuilt\":[{}],\
             \"dropped_flow\":{},\"events\":[{events}]}}",
            self.rung(),
            self.degraded(),
            names(&self.quarantined),
            names(&self.rebuilt),
            self.dropped_flow,
        )
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "rung: {}", self.rung())?;
        if !self.quarantined.is_empty() {
            writeln!(f, "quarantined: {}", self.quarantined.join(", "))?;
        }
        if !self.rebuilt.is_empty() {
            writeln!(f, "rebuilt from paths: {}", self.rebuilt.join(", "))?;
        }
        if self.dropped_flow > 0 {
            writeln!(f, "dropped flow: {}", self.dropped_flow)?;
        }
        for e in &self.events {
            writeln!(f, "  [{}] {}", e.cause, e.detail)?;
        }
        Ok(())
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Function indices of `profile` that cannot be trusted: saturated
/// counters or Kirchhoff flow violations. Requires a shape-matching
/// profile.
fn untrusted_funcs(
    module: &Module,
    profile: &ModuleEdgeProfile,
    report: &mut DegradationReport,
) -> Vec<FuncId> {
    let mut bad = Vec::new();
    for (i, f) in module.functions.iter().enumerate() {
        let fid = FuncId::new(i);
        let p = profile.func(fid);
        if p.saturated() {
            report.push(
                "saturated",
                format!("{}: counter pinned at u64::MAX", f.name),
            );
            bad.push(fid);
            continue;
        }
        let violations = p.flow_violations(f);
        if !violations.is_empty() {
            report.push(
                "flow-violation",
                format!(
                    "{}: {} Kirchhoff violation(s), first: {:?}",
                    f.name,
                    violations.len(),
                    violations[0]
                ),
            );
            bad.push(fid);
        }
    }
    bad
}

/// Runs the degradation ladder over an ingested edge profile.
///
/// `edges` is the (possibly damaged, possibly absent) guidance profile;
/// `paths` is the surviving path profile, if any, used to rebuild
/// quarantined functions. Returns the sanitized guidance plus the
/// structured report. When nothing usable survives, rung 5 synthesizes
/// guidance with [`ppp_est::estimate_module`] instead of returning
/// `None`.
///
/// Guarantee: the result always shape-matches `module` and is flow
/// conservative, so downstream consumers need no further checks.
pub fn ingest_guidance(
    module: &Module,
    edges: Option<ModuleEdgeProfile>,
    paths: Option<&ModulePathProfile>,
) -> (Option<ModuleEdgeProfile>, DegradationReport) {
    ingest_guidance_at(module, edges, paths, LadderRung::FullProfile)
}

/// [`ingest_guidance`] with a rung *floor*: the report never lands above
/// `floor` while guidance is in play. Matched-stale loading passes
/// [`LadderRung::MatchedStale`] for non-identity transfers, so a profile
/// that was approximated across program versions is never reported as a
/// pristine full profile — the ladder stays honest about provenance.
///
/// A floor above `FullProfile` also records a `stale-transfer` event, so
/// the report is visibly degraded even when every count survived the
/// transfer checks.
pub fn ingest_guidance_at(
    module: &Module,
    edges: Option<ModuleEdgeProfile>,
    paths: Option<&ModulePathProfile>,
    floor: LadderRung,
) -> (Option<ModuleEdgeProfile>, DegradationReport) {
    let (guidance, mut report) = ingest_guidance_inner(module, edges, paths);
    if floor > LadderRung::FullProfile && guidance.is_some() {
        let rung = report.rung().max(floor);
        if report.rung() < floor {
            report.push(
                "stale-transfer",
                format!(
                    "guidance transferred from an older program version; \
                     floor raised to {rung}"
                ),
            );
        }
        report.final_rung = Some(rung);
    }
    (guidance, report)
}

fn ingest_guidance_inner(
    module: &Module,
    edges: Option<ModuleEdgeProfile>,
    paths: Option<&ModulePathProfile>,
) -> (Option<ModuleEdgeProfile>, DegradationReport) {
    let mut report = DegradationReport::default();

    // Rung 1 entry: do we have a shape-compatible edge profile at all?
    let mut profile = match edges {
        Some(e) if e.shape_matches(module) => Some(e),
        Some(_) => {
            report.push(
                "shape-mismatch",
                "edge profile does not match the module's shape; discarding counts",
            );
            None
        }
        None => {
            report.push("missing-profile", "no edge profile available");
            None
        }
    };

    // Identify quarantine candidates (rung 2), or start from nothing.
    let candidates: Vec<FuncId> = match &profile {
        Some(p) => untrusted_funcs(module, p, &mut report),
        None => (0..module.functions.len()).map(FuncId::new).collect(),
    };

    if profile.is_some() && candidates.is_empty() {
        report.final_rung = Some(LadderRung::FullProfile);
        return (profile, report);
    }

    // Rung 3: rebuild the candidates from the surviving paths.
    let derived = paths.map(|p| ModuleEdgeProfile::from_paths(module, p));
    let mut rung = if profile.is_some() {
        LadderRung::SalvagedFunctions
    } else {
        LadderRung::PathDerivedEdges
    };
    let mut out = profile
        .take()
        .unwrap_or_else(|| ModuleEdgeProfile::zeroed(module));
    for fid in candidates {
        let f = module.function(fid);
        let replacement = derived.as_ref().map(|(d, _)| d.func(fid));
        match replacement {
            Some(d) if !d.is_zero() && !d.saturated() && d.flow_violations(f).is_empty() => {
                *out.func_mut(fid) = d.clone();
                report.rebuilt.push(f.name.clone());
                rung = rung.max(LadderRung::PathDerivedEdges);
            }
            _ => {
                out.func_mut(fid).zero();
                report.quarantined.push(f.name.clone());
            }
        }
    }
    if let Some((_, dropped)) = &derived {
        report.dropped_flow = *dropped;
        if *dropped > 0 {
            report.push(
                "dropped-flow",
                format!("{dropped} dynamic flow lost to incomplete paths"),
            );
        }
    }
    if !report.rebuilt.is_empty() {
        report.push(
            "rebuilt-from-paths",
            format!(
                "{} function(s) rebuilt from the surviving path profile",
                report.rebuilt.len()
            ),
        );
    }

    // Rung 5: nothing usable survived — synthesize guidance statically
    // with ppp-est instead of handing the instrumenter `None`.
    if out.funcs.iter().all(|p| p.is_zero()) {
        let (estimate, est_report) =
            ppp_est::estimate_module(module, &ppp_est::EstOptions::default());
        report.push(
            "no-usable-guidance",
            format!(
                "every function quarantined; guidance synthesized by ppp-est \
                 ({} function(s), {} branch(es) predicted, {} loop(s), \
                 {} diagnostic(s))",
                est_report.stats.funcs,
                est_report.stats.branches,
                est_report.stats.loops,
                est_report.diagnostics.diagnostics.len(),
            ),
        );
        report.final_rung = Some(LadderRung::StaticEstimate);
        debug_assert!(estimate.shape_matches(module) && estimate.is_flow_conservative(module));
        return (Some(estimate), report);
    }

    debug_assert!(out.shape_matches(module) && out.is_flow_conservative(module));
    report.final_rung = Some(rung);
    (Some(out), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::{BlockId, EdgeRef, FuncId, FunctionBuilder, Reg};

    /// Two functions: a diamond `main` and a straight-line `leaf`.
    fn sample() -> Module {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main", 1);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(Reg(0), t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        m.add_function(b.finish());
        let mut l = FunctionBuilder::new("leaf", 0);
        l.ret(None);
        m.add_function(l.finish());
        m
    }

    fn good_edges(m: &Module) -> ModuleEdgeProfile {
        let mut p = ModuleEdgeProfile::zeroed(m);
        let f0 = p.func_mut(FuncId(0));
        f0.set_entries(6);
        f0.set_block(BlockId(0), 6);
        f0.set_edge(EdgeRef::new(BlockId(0), 0), 4);
        f0.set_edge(EdgeRef::new(BlockId(0), 1), 2);
        f0.set_block(BlockId(1), 4);
        f0.set_edge(EdgeRef::new(BlockId(1), 0), 4);
        f0.set_block(BlockId(2), 2);
        f0.set_edge(EdgeRef::new(BlockId(2), 0), 2);
        f0.set_block(BlockId(3), 6);
        let f1 = p.func_mut(FuncId(1));
        f1.set_entries(3);
        f1.set_block(BlockId(0), 3);
        p
    }

    fn good_paths(m: &Module) -> ModulePathProfile {
        let mut paths = ModulePathProfile::with_capacity(2);
        let f = m.function(FuncId(0));
        paths.func_mut(FuncId(0)).record(
            f,
            ppp_ir::PathKey {
                start: BlockId(0),
                edges: vec![EdgeRef::new(BlockId(0), 0), EdgeRef::new(BlockId(1), 0)],
            },
            4,
        );
        paths.func_mut(FuncId(0)).record(
            f,
            ppp_ir::PathKey {
                start: BlockId(0),
                edges: vec![EdgeRef::new(BlockId(0), 1), EdgeRef::new(BlockId(2), 0)],
            },
            2,
        );
        paths.func_mut(FuncId(1)).record(
            m.function(FuncId(1)),
            ppp_ir::PathKey {
                start: BlockId(0),
                edges: vec![],
            },
            3,
        );
        paths
    }

    #[test]
    fn clean_profile_stays_on_rung_one() {
        let m = sample();
        let (g, r) = ingest_guidance(&m, Some(good_edges(&m)), None);
        assert_eq!(r.rung(), LadderRung::FullProfile);
        assert!(!r.degraded());
        assert_eq!(g.expect("guidance"), good_edges(&m));
    }

    #[test]
    fn violating_function_is_quarantined_without_paths() {
        let m = sample();
        let mut e = good_edges(&m);
        e.func_mut(FuncId(0)).bump_edge(EdgeRef::new(BlockId(0), 0));
        let (g, r) = ingest_guidance(&m, Some(e), None);
        assert_eq!(r.rung(), LadderRung::SalvagedFunctions);
        assert_eq!(r.quarantined, vec!["main".to_owned()]);
        let g = g.expect("leaf survives");
        assert!(g.func(FuncId(0)).is_zero());
        assert_eq!(g.func(FuncId(1)).entries(), 3);
        assert!(g.is_flow_conservative(&m));
    }

    #[test]
    fn violating_function_is_rebuilt_from_paths() {
        let m = sample();
        let mut e = good_edges(&m);
        e.func_mut(FuncId(0)).bump_edge(EdgeRef::new(BlockId(0), 0));
        let paths = good_paths(&m);
        let (g, r) = ingest_guidance(&m, Some(e), Some(&paths));
        assert_eq!(r.rung(), LadderRung::PathDerivedEdges);
        assert_eq!(r.rebuilt, vec!["main".to_owned()]);
        assert!(r.quarantined.is_empty());
        let g = g.expect("guidance");
        // The rebuild reproduces the true counts exactly.
        assert_eq!(g, good_edges(&m));
    }

    #[test]
    fn saturated_function_is_detected_and_rebuilt() {
        let m = sample();
        let mut e = good_edges(&m);
        e.func_mut(FuncId(1)).set_entries(u64::MAX);
        let paths = good_paths(&m);
        let (g, r) = ingest_guidance(&m, Some(e), Some(&paths));
        assert!(r.events.iter().any(|ev| ev.cause == "saturated"));
        assert_eq!(r.rebuilt, vec!["leaf".to_owned()]);
        assert_eq!(g.expect("guidance").func(FuncId(1)).entries(), 3);
    }

    #[test]
    fn missing_profile_derives_everything_from_paths() {
        let m = sample();
        let paths = good_paths(&m);
        let (g, r) = ingest_guidance(&m, None, Some(&paths));
        assert_eq!(r.rung(), LadderRung::PathDerivedEdges);
        assert_eq!(g.expect("guidance"), good_edges(&m));
    }

    #[test]
    fn nothing_usable_falls_to_static_estimate() {
        let m = sample();
        let (g, r) = ingest_guidance(&m, None, None);
        assert_eq!(r.rung(), LadderRung::StaticEstimate);
        assert!(r.degraded());
        // Rung 5 is real guidance now: conservative, non-zero, and the
        // report names the estimator.
        let g = g.expect("static estimate");
        assert!(g.shape_matches(&m) && g.is_flow_conservative(&m));
        assert!(!g.func(FuncId(0)).is_zero(), "estimate is all-cold");
        assert!(r
            .events
            .iter()
            .any(|ev| ev.cause == "no-usable-guidance" && ev.detail.contains("ppp-est")));
        // Shape-mismatched profile without paths: same outcome.
        let other = ModuleEdgeProfile::zeroed(&sample());
        let mut small = Module::new();
        let mut b = FunctionBuilder::new("main", 0);
        b.ret(None);
        small.add_function(b.finish());
        let (g, r) = ingest_guidance(&small, Some(other), None);
        assert!(r.events.iter().any(|ev| ev.cause == "shape-mismatch"));
        assert_eq!(r.rung(), LadderRung::StaticEstimate);
        assert!(g.expect("static estimate").is_flow_conservative(&small));
    }

    #[test]
    fn floor_raises_clean_profile_to_matched_stale() {
        let m = sample();
        let (g, r) = ingest_guidance_at(&m, Some(good_edges(&m)), None, LadderRung::MatchedStale);
        assert_eq!(r.rung(), LadderRung::MatchedStale);
        assert!(r.degraded(), "a transferred profile is never pristine");
        assert!(r.events.iter().any(|ev| ev.cause == "stale-transfer"));
        assert_eq!(g.expect("guidance"), good_edges(&m));
        // A worse rung is not masked by the floor.
        let mut e = good_edges(&m);
        e.func_mut(FuncId(0)).bump_edge(EdgeRef::new(BlockId(0), 0));
        let (_, r) = ingest_guidance_at(&m, Some(e), None, LadderRung::MatchedStale);
        assert_eq!(r.rung(), LadderRung::SalvagedFunctions);
        // No guidance at all: the floor is moot, rung 5 stands (with a
        // synthesized estimate, not `None`).
        let (g, r) = ingest_guidance_at(&m, None, None, LadderRung::MatchedStale);
        assert!(g.expect("static estimate").is_flow_conservative(&m));
        assert_eq!(r.rung(), LadderRung::StaticEstimate);
    }

    #[test]
    fn report_json_is_well_formed_ish() {
        let m = sample();
        let mut e = good_edges(&m);
        e.func_mut(FuncId(0)).bump_edge(EdgeRef::new(BlockId(0), 0));
        let (_, r) = ingest_guidance(&m, Some(e), None);
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"rung\":\"salvaged-functions\""));
        assert!(j.contains("\"degraded\":true"));
    }
}
