//! CLI entry: regenerate the paper's tables and figures.

use ppp_repro::{
    all_reports, baseline_from_json, baseline_json, baseline_table, chaos_json, chaos_suite,
    chaos_table, collect_baseline, compare_baselines, drift_json, drift_suite, drift_table, drive,
    drive_json, drive_table, fig10, fig11, fig12, fig13, fig9, inspect_benchmark, jit_gate,
    jit_json, jit_options, jit_suite, jit_table, lint_benchmark, predict_json, predict_suite,
    predict_table, regressions_json, regressions_table, run_suite, serve, table1, table2, top,
    trace_benchmark, trace_benchmark_json, validate_benchmark, wall_trends, wall_trends_table,
};
use ppp_repro::{ArgCursor, DriveOptions, PipelineOptions, TopOptions, Transport};
use std::time::Duration;

fn main() {
    // All diagnostics flow through the observation sink to stderr, so
    // stdout stays pure (JSON when asked) for every subcommand.
    ppp_obs::install_global(ppp_obs::ObsCtx::new(std::sync::Arc::new(
        ppp_obs::TextSink::stderr_verbose(),
    )));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = PipelineOptions {
        ablations: true,
        ..PipelineOptions::default()
    };
    let mut wanted: Vec<String> = Vec::new();
    let mut inspect: Option<String> = None;
    let mut lint: Option<Option<String>> = None;
    let mut validate: Option<Option<String>> = None;
    let mut chaos: Option<Option<String>> = None;
    let mut drift: Option<Option<String>> = None;
    let mut predict: Option<Option<String>> = None;
    let mut bench: Option<Option<String>> = None;
    let mut jit_cmd: Option<Option<String>> = None;
    let mut drive_cmd: Option<Option<String>> = None;
    let mut serve_cmd = false;
    let mut trace: Option<String> = None;
    let mut top_cmd: Option<String> = None;
    let mut once = false;
    let mut interval_ms: u64 = 1000;
    let mut flight_dir = "target/ppp-flight".to_owned();
    let mut addr = "127.0.0.1:7011".to_owned();
    let mut max_conns: usize = 64;
    let mut checkpoint_dir: Option<String> = None;
    let mut checkpoint_every: u64 = 64;
    let mut kill_after: Option<u64> = None;
    let mut shards: usize = 4;
    let mut repeats: usize = 2;
    let mut connect: Option<String> = None;
    let mut tcp = false;
    let mut scale_arg: Option<f64> = None;
    let mut out: Option<String> = None;
    let mut compare: Option<String> = None;
    let mut against: Option<String> = None;
    let mut threshold: f64 = 0.10;
    let mut seed: u64 = 701;
    let mut format = "text".to_owned();
    let mut generations: usize = 8;
    let mut hot_threshold: f64 = 0.0;
    let mut epsilon: f64 = 0.01;
    let mut cold = false;
    let mut cur = ArgCursor::new(args);
    while let Some(tok) = cur.next_token() {
        match tok.as_str() {
            "inspect" => inspect = Some(ok(cur.value("inspect", "a benchmark name"))),
            // Optional trailing benchmark name; default is the suite.
            "lint" => lint = Some(cur.optional_name()),
            "validate" => validate = Some(cur.optional_name()),
            "chaos" => chaos = Some(cur.optional_name()),
            "drift" => drift = Some(cur.optional_name()),
            "predict" => predict = Some(cur.optional_name()),
            "bench" => bench = Some(cur.optional_name()),
            "jit" => jit_cmd = Some(cur.optional_name()),
            "drive" => drive_cmd = Some(cur.optional_name()),
            "serve" => serve_cmd = true,
            "top" => top_cmd = Some(ok(cur.value("top", "host:port"))),
            "--once" => once = true,
            "--interval" => interval_ms = ok(cur.parsed("--interval", "milliseconds")),
            "--flight-dir" => flight_dir = ok(cur.value("--flight-dir", "a directory path")),
            "--addr" => addr = ok(cur.value("--addr", "host:port")),
            "--connect" => connect = Some(ok(cur.value("--connect", "host:port"))),
            "--tcp" => tcp = true,
            "--workers" => options.workers = ok(cur.parsed("--workers", "an integer")),
            "--shards" => shards = ok(cur.positive("--shards")),
            "--repeats" => repeats = ok(cur.positive("--repeats")),
            "--max-conns" => max_conns = ok(cur.parsed("--max-conns", "an integer")),
            "--checkpoint-dir" => {
                checkpoint_dir = Some(ok(cur.value("--checkpoint-dir", "a directory path")));
            }
            "--checkpoint-every" => {
                checkpoint_every = ok(cur.parsed("--checkpoint-every", "an integer"));
            }
            "--kill-after" => kill_after = Some(ok(cur.parsed("--kill-after", "a frame count"))),
            "trace" => trace = Some(ok(cur.value("trace", "a benchmark name"))),
            "--out" => out = Some(ok(cur.value("--out", "a file path"))),
            "--compare" => compare = Some(ok(cur.value("--compare", "a baseline file"))),
            "--against" => against = Some(ok(cur.value("--against", "a baseline file"))),
            "--threshold" => threshold = ok(cur.parsed("--threshold", "a number")),
            "--seed" => seed = ok(cur.parsed("--seed", "an integer")),
            "--format" => {
                format = ok(cur.value("--format", "text or json"));
                if format != "text" && format != "json" {
                    usage(&format!("unknown format {format:?}"));
                }
            }
            "--scale" => scale_arg = Some(ok(cur.parsed("--scale", "a number"))),
            "--generations" => generations = ok(cur.positive("--generations")),
            "--hot-threshold" => hot_threshold = ok(cur.parsed("--hot-threshold", "a number")),
            "--epsilon" => epsilon = ok(cur.parsed("--epsilon", "a number")),
            "--cold" => cold = true,
            "--quick" => scale_arg = Some(0.1),
            "--no-ablations" => options.ablations = false,
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag {other}")),
            report => wanted.push(report.to_owned()),
        }
    }
    if let Some(scale) = scale_arg {
        options.scale = scale;
    }
    let durability = checkpoint_dir
        .as_ref()
        .map(|dir| ppp_agg::DurOptions::new(dir, checkpoint_every));
    // The serve-tier commands fly with a recorder: the last N records
    // plus a metrics snapshot are dumped under --flight-dir on a panic,
    // a wire reject, or an abrupt server kill.
    if serve_cmd || drive_cmd.is_some() || chaos.is_some() {
        ppp_obs::install_flight(&flight_dir, ppp_obs::DEFAULT_FLIGHT_CAPACITY);
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = ppp_obs::flight_dump("panic");
            previous(info);
        }));
    }
    if let Some(target) = top_cmd {
        let target: std::net::SocketAddr = target
            .parse()
            .unwrap_or_else(|_| usage(&format!("top: bad address {target:?}")));
        let top_options = TopOptions {
            interval: Duration::from_millis(interval_ms.max(50)),
            once,
            ..TopOptions::default()
        };
        std::process::exit(match top(target, &top_options) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("error: {e}");
                2
            }
        });
    }
    if serve_cmd {
        std::process::exit(run_serve(&addr, shards, max_conns, durability));
    }
    if let Some(only) = drive_cmd {
        let transport = match (&connect, tcp) {
            (Some(addr), _) => match addr.parse() {
                Ok(a) => Transport::Connect(a),
                Err(_) => usage(&format!("--connect: bad address {addr:?}")),
            },
            (None, true) => Transport::Tcp,
            (None, false) => Transport::InProc,
        };
        let drive_options = DriveOptions {
            workers: options.workers.max(1),
            shards,
            repeats,
            // The driver's sweet spot is lighter than the figure
            // pipeline's: default to a small scale unless asked.
            scale: scale_arg.unwrap_or(DriveOptions::default().scale),
            seed,
            transport,
            checkpoint_dir: checkpoint_dir.as_ref().map(Into::into),
            checkpoint_every,
            kill_after,
            ..DriveOptions::default()
        };
        std::process::exit(run_drive(
            only.as_deref(),
            &format,
            out.as_deref(),
            &drive_options,
        ));
    }
    if let Some(only) = jit_cmd {
        let jit_pipeline = PipelineOptions {
            ablations: false,
            seed,
            ..options
        };
        let mut jopts = jit_options(&jit_pipeline, generations, hot_threshold);
        jopts.epsilon = epsilon;
        jopts.cold_start = cold;
        std::process::exit(run_jit_cmd(
            only.as_deref(),
            &format,
            out.as_deref(),
            &jopts,
            options.workers.max(1),
        ));
    }
    if let Some(only) = bench {
        // Benchmarks run PP/TPP/PPP only (the Figure 9–13 set); the
        // chaos-style `--seed` flag picks the VM seed recorded in the
        // artifact.
        let bench_options = PipelineOptions {
            ablations: false,
            seed,
            ..options
        };
        std::process::exit(run_bench(
            only.as_deref(),
            &format,
            out.as_deref(),
            compare.as_deref(),
            against.as_deref(),
            threshold,
            &bench_options,
        ));
    }
    if let Some(name) = trace {
        let trace_options = PipelineOptions {
            ablations: false,
            seed,
            ..options
        };
        std::process::exit(run_trace(&name, &format, out.as_deref(), &trace_options));
    }
    if let Some(only) = lint {
        std::process::exit(run_lint(only.as_deref(), &format, &options));
    }
    if let Some(only) = validate {
        std::process::exit(run_validate(only.as_deref(), &format, &options));
    }
    if let Some(only) = chaos {
        std::process::exit(run_chaos(only.as_deref(), seed, &format, &options));
    }
    if let Some(only) = drift {
        std::process::exit(run_drift(
            only.as_deref(),
            seed,
            &format,
            out.as_deref(),
            &options,
        ));
    }
    if let Some(only) = predict {
        std::process::exit(run_predict(
            only.as_deref(),
            seed,
            &format,
            out.as_deref(),
            &options,
        ));
    }
    if let Some(name) = inspect {
        let suite = ppp_workloads::spec2000_suite();
        let entry = suite
            .iter()
            .find(|e| e.spec.name == name)
            .unwrap_or_else(|| usage(&format!("unknown benchmark {name:?}")));
        for config in [
            ppp_core::ProfilerConfig::pp(),
            ppp_core::ProfilerConfig::tpp(),
            ppp_core::ProfilerConfig::ppp(),
        ] {
            println!("{}", inspect_benchmark(entry, &config, &options));
        }
        return;
    }
    if wanted.is_empty() {
        wanted.push("all".to_owned());
    }
    const REPORTS: [&str; 8] = [
        "table1", "table2", "fig9", "fig10", "fig11", "fig12", "fig13", "all",
    ];
    for w in &wanted {
        if !REPORTS.contains(&w.as_str()) {
            usage(&format!("unknown report {w}"));
        }
    }
    if !wanted.iter().any(|w| w == "fig13" || w == "all") {
        options.ablations = false; // fig13 is the only consumer
    }

    let runs = run_suite(&options);
    for w in &wanted {
        let out = match w.as_str() {
            "table1" => table1(&runs),
            "table2" => table2(&runs),
            "fig9" => fig9(&runs),
            "fig10" => fig10(&runs),
            "fig11" => fig11(&runs),
            "fig12" => fig12(&runs),
            "fig13" => fig13(&runs),
            "all" => all_reports(&runs),
            other => unreachable!("validated above: {other}"),
        };
        println!("{out}");
    }
}

/// Runs (or diffs) perf baselines; returns the exit code (0 = clean,
/// 1 = regressions found, 2 = bad input).
#[allow(clippy::too_many_arguments)]
fn run_bench(
    only: Option<&str>,
    format: &str,
    out: Option<&str>,
    compare: Option<&str>,
    against: Option<&str>,
    threshold: f64,
    options: &PipelineOptions,
) -> i32 {
    if let Some(name) = only {
        let suite = ppp_workloads::spec2000_suite();
        if !suite.iter().any(|e| e.spec.name == name) {
            usage(&format!("unknown benchmark {name:?}"));
        }
    }
    let load = |path: &str| match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|doc| baseline_from_json(&doc))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        }
    };
    if let Some(old_path) = compare {
        let old = load(old_path);
        let new = match against {
            Some(new_path) => load(new_path),
            None => collect_baseline(only, options),
        };
        let regs = match compare_baselines(&old, &new, threshold) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: baselines incomparable: {e}");
                return 2;
            }
        };
        match format {
            "json" => println!("{}", regressions_json(&regs)),
            _ => {
                println!("{}", regressions_table(&regs));
                // Wall-clock movement is recorded and shown, never
                // gated: the exit code below depends only on the
                // cost-model regressions.
                let trends = wall_trends(&old, &new);
                if !trends.is_empty() {
                    println!("\n{}", wall_trends_table(&trends));
                }
            }
        }
        return i32::from(!regs.is_empty());
    }
    let baseline = collect_baseline(only, options);
    let doc = baseline_json(&baseline);
    if let Some(path) = out {
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("error: cannot write {path}: {e}");
            return 2;
        }
    }
    match format {
        "json" => println!("{doc}"),
        _ => println!("{}", baseline_table(&baseline)),
    }
    0
}

/// Runs the closed re-optimization loop over the suite (or one
/// benchmark); returns the exit code (0 = every benchmark reached
/// steady state with monotone cost, witness-clean generations, and
/// flow-conservative transfers; 1 = the convergence gate tripped; 2 =
/// the loop itself failed).
fn run_jit_cmd(
    only: Option<&str>,
    format: &str,
    out: Option<&str>,
    jopts: &ppp_jit::JitOptions,
    workers: usize,
) -> i32 {
    if let Some(names) = only {
        let suite = ppp_workloads::spec2000_suite();
        for name in names.split(',') {
            if !suite.iter().any(|e| e.spec.name == name) {
                usage(&format!("unknown benchmark {name:?}"));
            }
        }
    }
    let outcomes = match jit_suite(only, jopts, workers) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let doc = jit_json(&outcomes, jopts);
    if let Some(path) = out {
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("error: cannot write {path}: {e}");
            return 2;
        }
    }
    match format {
        "json" => println!("{doc}"),
        _ => println!("{}", jit_table(&outcomes)),
    }
    match jit_gate(&outcomes) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: jit convergence gate: {e}");
            1
        }
    }
}

/// Replays one benchmark with spans on and prints the breakdown — as a
/// text tree or (`--format json`) a schema-versioned span+metric
/// artifact, optionally written to `--out`; returns the exit code.
fn run_trace(name: &str, format: &str, out: Option<&str>, options: &PipelineOptions) -> i32 {
    let suite = ppp_workloads::spec2000_suite();
    let entry = suite
        .iter()
        .find(|e| e.spec.name == name)
        .unwrap_or_else(|| usage(&format!("unknown benchmark {name:?}")));
    let rendered = match format {
        "json" => trace_benchmark_json(entry, options),
        _ => trace_benchmark(entry, options),
    };
    match rendered {
        Ok(text) => {
            if let Some(path) = out {
                if let Err(e) = std::fs::write(path, format!("{text}\n")) {
                    eprintln!("error: cannot write {path}: {e}");
                    return 2;
                }
            }
            println!("{text}");
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

/// Lints every pipeline-produced instrumentation plan; returns the exit
/// code (0 = all clean).
fn run_lint(only: Option<&str>, format: &str, options: &PipelineOptions) -> i32 {
    let suite = ppp_workloads::spec2000_suite();
    let entries: Vec<_> = match only {
        Some(name) => vec![suite
            .iter()
            .find(|e| e.spec.name == name)
            .unwrap_or_else(|| usage(&format!("unknown benchmark {name:?}")))],
        None => suite.iter().collect(),
    };
    let mut dirty = false;
    let mut json_benches = Vec::new();
    for entry in entries {
        let reports = match lint_benchmark(entry, options) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                dirty = true;
                continue;
            }
        };
        let mut json_configs = Vec::new();
        for (label, report) in &reports {
            dirty |= !report.is_clean();
            match format {
                "json" => json_configs.push(format!(
                    "{{\"config\":\"{label}\",\"report\":{}}}",
                    report.to_json()
                )),
                _ => {
                    if report.is_empty() {
                        println!("{}/{label}: clean", entry.spec.name);
                    } else {
                        println!("{}/{label}:\n{report}", entry.spec.name);
                    }
                }
            }
        }
        if format == "json" {
            json_benches.push(format!(
                "{{\"benchmark\":\"{}\",\"configs\":[{}]}}",
                entry.spec.name,
                json_configs.join(",")
            ));
        }
    }
    if format == "json" {
        println!("[{}]", json_benches.join(","));
    }
    i32::from(dirty)
}

/// Translation-validates the witnessed pipeline stages of each benchmark;
/// returns the exit code (0 = every stage clean).
fn run_validate(only: Option<&str>, format: &str, options: &PipelineOptions) -> i32 {
    let suite = ppp_workloads::spec2000_suite();
    let entries: Vec<_> = match only {
        Some(name) => vec![suite
            .iter()
            .find(|e| e.spec.name == name)
            .unwrap_or_else(|| usage(&format!("unknown benchmark {name:?}")))],
        None => suite.iter().collect(),
    };
    let mut dirty = false;
    let mut json_benches = Vec::new();
    for entry in entries {
        let stages = match validate_benchmark(entry, options) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                dirty = true;
                continue;
            }
        };
        let mut json_stages = Vec::new();
        for (stage, report) in &stages {
            dirty |= !report.is_empty();
            match format {
                "json" => json_stages.push(format!(
                    "{{\"stage\":\"{stage}\",\"report\":{}}}",
                    report.to_json()
                )),
                _ => {
                    if report.is_empty() {
                        println!("{}/{stage}: clean", entry.spec.name);
                    } else {
                        println!("{}/{stage}:\n{report}", entry.spec.name);
                    }
                }
            }
        }
        if format == "json" {
            json_benches.push(format!(
                "{{\"benchmark\":\"{}\",\"stages\":[{}]}}",
                entry.spec.name,
                json_stages.join(",")
            ));
        }
    }
    if format == "json" {
        println!("[{}]", json_benches.join(","));
    }
    i32::from(dirty)
}

/// Sweeps every fault site across the suite (or one benchmark); returns
/// the exit code (0 = every scenario completed with no silent
/// degradation and lint-clean surviving guidance).
fn run_chaos(only: Option<&str>, seed: u64, format: &str, options: &PipelineOptions) -> i32 {
    if let Some(name) = only {
        let suite = ppp_workloads::spec2000_suite();
        if !suite.iter().any(|e| e.spec.name == name) {
            usage(&format!("unknown benchmark {name:?}"));
        }
    }
    let outcomes = match chaos_suite(only, seed, options) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    match format {
        "json" => println!("{}", chaos_json(&outcomes)),
        _ => println!("{}", chaos_table(&outcomes)),
    }
    i32::from(outcomes.iter().any(|o| !o.ok()))
}

/// Sweeps every version-drift scenario across the suite (or one
/// benchmark), measuring accuracy/coverage decay of profiles transferred
/// by `ppp-match`; returns the exit code (0 = every transfer
/// flow-conservative and the identity scenario lossless).
fn run_drift(
    only: Option<&str>,
    seed: u64,
    format: &str,
    out: Option<&str>,
    options: &PipelineOptions,
) -> i32 {
    if let Some(name) = only {
        let suite = ppp_workloads::spec2000_suite();
        if !suite.iter().any(|e| e.spec.name == name) {
            usage(&format!("unknown benchmark {name:?}"));
        }
    }
    let outcomes = match drift_suite(only, seed, options) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let doc = drift_json(&outcomes, seed);
    if let Some(path) = out {
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("error: cannot write {path}: {e}");
            return 2;
        }
    }
    match format {
        "json" => println!("{doc}"),
        _ => println!("{}", drift_table(&outcomes)),
    }
    i32::from(outcomes.iter().any(|o| !o.ok()))
}

/// Scores `ppp-est` static estimates against measured profiles across
/// the suite (or one benchmark); returns the exit code (0 = every
/// estimate flow-conservative and the heuristics beat the uniform
/// baseline on enough benchmarks).
fn run_predict(
    only: Option<&str>,
    seed: u64,
    format: &str,
    out: Option<&str>,
    options: &PipelineOptions,
) -> i32 {
    if let Some(name) = only {
        let suite = ppp_workloads::spec2000_suite();
        if !suite.iter().any(|e| e.spec.name == name) {
            usage(&format!("unknown benchmark {name:?}"));
        }
    }
    let predict_options = PipelineOptions { seed, ..*options };
    let outcomes = match predict_suite(only, &predict_options) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let doc = predict_json(&outcomes, seed);
    if let Some(path) = out {
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("error: cannot write {path}: {e}");
            return 2;
        }
    }
    match format {
        "json" => println!("{doc}"),
        _ => println!("{}", predict_table(&outcomes)),
    }
    i32::from(!ppp_repro::predict_gate(&outcomes))
}

/// Hosts a standalone aggregation server until the process is killed;
/// returns the exit code (2 = cannot bind).
fn run_serve(
    addr: &str,
    shards: usize,
    max_conns: usize,
    durability: Option<ppp_agg::DurOptions>,
) -> i32 {
    let durable = durability.is_some();
    let server = match serve(addr, shards, max_conns, durability) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    println!(
        "ppp-agg listening on {} ({shards} shards{})",
        server.addr(),
        if durable { ", durable" } else { "" }
    );
    // Serve until killed; the accept loop runs on its own thread.
    loop {
        std::thread::park();
    }
}

/// Runs the parallel load driver; returns the exit code (0 = every
/// checked snapshot byte-identical and lint-clean, 1 = a check failed,
/// 2 = the drive itself failed).
fn run_drive(only: Option<&str>, format: &str, out: Option<&str>, options: &DriveOptions) -> i32 {
    let report = match drive(only, options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let doc = drive_json(&report);
    if let Some(path) = out {
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("error: cannot write {path}: {e}");
            return 2;
        }
    }
    match format {
        "json" => println!("{doc}"),
        _ => println!("{}", drive_table(&report)),
    }
    i32::from(!report.ok())
}

/// Unwraps a parse result from the shared [`ArgCursor`]; the error
/// message is the usage message.
fn ok<T>(r: Result<T, String>) -> T {
    r.unwrap_or_else(|e| usage(&e))
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: ppp-repro [--scale X] [--quick] [--no-ablations] \
         [table1|table2|fig9|fig10|fig11|fig12|fig13|all] \
         | inspect <benchmark> | lint [benchmark] [--format text|json] \
         | validate [benchmark] [--format text|json] \
         | chaos [benchmark] [--seed S] [--workers N] [--format text|json] \
         | drift [benchmark] [--seed S] [--workers N] [--format text|json] [--out FILE] \
         | predict [benchmark] [--seed S] [--workers N] [--format text|json] [--out FILE] \
         | bench [benchmark] [--format text|json] [--out FILE] \
         [--compare OLD.json [--against NEW.json]] [--threshold X] [--seed S] [--workers N] \
         | jit [bench[,bench...]] [--generations N] [--hot-threshold F] [--epsilon X] [--cold] \
         [--seed S] [--workers N] [--format text|json] [--out FILE] \
         | trace <benchmark> [--seed S] [--format text|json] [--out FILE] \
         | drive [benchmark] [--workers N] [--shards K] [--repeats R] \
         [--tcp | --connect HOST:PORT] [--seed S] [--out FILE] [--format text|json] \
         [--checkpoint-dir DIR] [--checkpoint-every N] [--kill-after FRAMES] \
         [--flight-dir DIR] \
         | serve [--addr HOST:PORT] [--shards K] [--max-conns N] \
         [--checkpoint-dir DIR] [--checkpoint-every N] [--flight-dir DIR] \
         | top HOST:PORT [--once] [--interval MS]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
