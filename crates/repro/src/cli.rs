//! Shared CLI flag parsing for the `ppp-repro` binary.
//!
//! Every subcommand hand-rolled the same three idioms — "take the next
//! token as this flag's value", "parse it or die with a usage message",
//! and "an optional trailing benchmark name is any next token that is
//! not a flag". [`ArgCursor`] owns the token stream and provides each
//! idiom exactly once; errors come back as the human-readable usage
//! message (`"--seed needs an integer"`) so the binary can route every
//! failure through its single `usage()` exit.

use std::str::FromStr;

/// A cursor over the CLI argument list.
#[derive(Debug)]
pub struct ArgCursor {
    args: Vec<String>,
    i: usize,
}

impl ArgCursor {
    /// Wraps an argument list (without the program name).
    #[must_use]
    pub fn new(args: Vec<String>) -> Self {
        Self { args, i: 0 }
    }

    /// Returns the next token and advances, or `None` at the end.
    pub fn next_token(&mut self) -> Option<String> {
        let tok = self.args.get(self.i).cloned();
        if tok.is_some() {
            self.i += 1;
        }
        tok
    }

    /// Consumes the next token as an optional positional name.
    ///
    /// Only a token that does not start with `-` is taken; a flag stays
    /// in the stream for the main loop. This is the `lint [benchmark]`
    /// idiom shared by every suite-sweep subcommand.
    pub fn optional_name(&mut self) -> Option<String> {
        let name = self.args.get(self.i).filter(|a| !a.starts_with('-'));
        let name = name.cloned();
        if name.is_some() {
            self.i += 1;
        }
        name
    }

    /// Consumes the next token as `flag`'s value.
    ///
    /// # Errors
    ///
    /// `"{flag} needs {what}"` when the stream is exhausted.
    pub fn value(&mut self, flag: &str, what: &str) -> Result<String, String> {
        self.next_token()
            .ok_or_else(|| format!("{flag} needs {what}"))
    }

    /// Consumes and parses the next token as `flag`'s value.
    ///
    /// # Errors
    ///
    /// `"{flag} needs {what}"` when the stream is exhausted or the
    /// token does not parse as `T`.
    pub fn parsed<T: FromStr>(&mut self, flag: &str, what: &str) -> Result<T, String> {
        self.value(flag, what)?
            .parse()
            .map_err(|_| format!("{flag} needs {what}"))
    }

    /// Like [`parsed`](Self::parsed)`::<usize>` but additionally
    /// requires the value to be at least 1 (worker/shard/repeat counts).
    ///
    /// # Errors
    ///
    /// `"{flag} needs a positive integer"` on a missing, unparsable, or
    /// zero value.
    pub fn positive(&mut self, flag: &str) -> Result<usize, String> {
        match self.parsed::<usize>(flag, "a positive integer") {
            Ok(0) => Err(format!("{flag} needs a positive integer")),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cursor(tokens: &[&str]) -> ArgCursor {
        ArgCursor::new(tokens.iter().map(|s| (*s).to_owned()).collect())
    }

    #[test]
    fn tokens_stream_in_order_and_end_with_none() {
        let mut c = cursor(&["bench", "--seed", "7"]);
        assert_eq!(c.next_token().as_deref(), Some("bench"));
        assert_eq!(c.next_token().as_deref(), Some("--seed"));
        assert_eq!(c.next_token().as_deref(), Some("7"));
        assert_eq!(c.next_token(), None);
        assert_eq!(c.next_token(), None);
    }

    #[test]
    fn optional_name_takes_a_benchmark_but_leaves_flags_alone() {
        let mut c = cursor(&["mcf", "--seed"]);
        assert_eq!(c.optional_name().as_deref(), Some("mcf"));
        assert_eq!(c.optional_name(), None, "a flag is not a name");
        assert_eq!(c.next_token().as_deref(), Some("--seed"));
        assert_eq!(c.optional_name(), None, "exhausted stream");
    }

    #[test]
    fn value_consumes_or_reports_the_flag_that_wanted_it() {
        let mut c = cursor(&["127.0.0.1:7011"]);
        assert_eq!(
            c.value("--addr", "host:port").as_deref(),
            Ok("127.0.0.1:7011")
        );
        assert_eq!(
            c.value("--addr", "host:port"),
            Err("--addr needs host:port".to_owned())
        );
    }

    #[test]
    fn parsed_rejects_junk_with_the_usage_message() {
        let mut c = cursor(&["42", "banana"]);
        assert_eq!(c.parsed::<u64>("--seed", "an integer"), Ok(42));
        assert_eq!(
            c.parsed::<u64>("--seed", "an integer"),
            Err("--seed needs an integer".to_owned())
        );
        assert_eq!(
            c.parsed::<f64>("--scale", "a number"),
            Err("--scale needs a number".to_owned())
        );
    }

    #[test]
    fn positive_rejects_zero() {
        let mut c = cursor(&["4", "0"]);
        assert_eq!(c.positive("--shards"), Ok(4));
        assert_eq!(
            c.positive("--shards"),
            Err("--shards needs a positive integer".to_owned())
        );
    }
}
