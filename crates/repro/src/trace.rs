//! `repro trace <bench>`: replay one benchmark with spans enabled and
//! print the per-stage time/cost breakdown tree.
//!
//! The pipeline reads its observation context from the process-global
//! slot, so tracing is a matter of temporarily installing a collecting
//! context, replaying the run, and reconstructing the span tree from the
//! captured records. The previous context (and its metrics) is restored
//! afterwards.

use crate::pipeline::{run_benchmark, PipelineError, PipelineOptions};
use ppp_obs::{ObsCtx, SpanTree};
use ppp_workloads::SuiteEntry;

/// Replays `entry` with span collection enabled and renders the
/// per-stage breakdown tree plus the run's metric dump.
///
/// # Errors
///
/// Propagates the pipeline's error when the benchmark cannot run.
pub fn trace_benchmark(
    entry: &SuiteEntry,
    options: &PipelineOptions,
) -> Result<String, PipelineError> {
    let previous = ppp_obs::global();
    let (ctx, collect) = ObsCtx::collecting();
    ppp_obs::install_global(ctx.clone());
    let outcome = run_benchmark(entry, options);
    ppp_obs::install_global(previous);
    let run = outcome?;

    let tree = SpanTree::build(&collect.records());
    let mut out = String::new();
    out.push_str(&format!(
        "trace: {} ({} profilers, degradation rung {})\n\n",
        run.name,
        run.profilers.len(),
        run.degradation.rung().name()
    ));
    out.push_str(&tree.render());
    out.push_str("\nmetrics:\n");
    out.push_str(&ctx.metrics().render_prometheus());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_workloads::spec2000_suite;

    #[test]
    fn trace_renders_stage_tree_and_metrics() {
        let suite = spec2000_suite();
        let entry = suite.iter().find(|e| e.spec.name == "mcf").unwrap();
        let options = PipelineOptions {
            scale: 0.02,
            ..PipelineOptions::default()
        };
        let text = trace_benchmark(entry, &options).expect("trace completes");
        // The breakdown covers both pipeline halves and the VM runs…
        assert!(text.contains("pipeline.prepare"), "{text}");
        assert!(text.contains("stage.profile@opt"), "{text}");
        assert!(text.contains("pipeline.run"), "{text}");
        assert!(text.contains("pipeline.profiler"), "{text}");
        assert!(text.contains("vm.run"), "{text}");
        // …and the metric dump carries the VM observables.
        assert!(text.contains("ppp_vm_cost_units_total"), "{text}");
        assert!(
            text.contains("profiler=\"PPP\""),
            "per-profiler labels present: {text}"
        );
    }
}
