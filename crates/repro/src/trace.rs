//! `repro trace <bench>`: replay one benchmark with spans enabled and
//! print the per-stage time/cost breakdown tree.
//!
//! The pipeline reads its observation context from the process-global
//! slot, so tracing is a matter of temporarily installing a collecting
//! context, replaying the run, and reconstructing the span tree from the
//! captured records. The previous context (and its metrics) is restored
//! afterwards.
//!
//! Besides the figure pipeline, the trace replays the benchmark once
//! more with incremental delta export on and streams the deltas through
//! a sharded aggregator (`agg.replay`), so the `ppp_agg_*` metrics —
//! frames ingested, merge/snapshot timings, batch sizes — show up in
//! the same dump as the VM and pipeline observables. A short
//! `ppp-jit` loop (`jit.replay`) rides along too, putting the
//! `jit.generation` spans and `ppp_jit_*` metrics in the same dump.

use crate::drift::{split_blocks, SplitMix64};
use crate::pipeline::{run_benchmark, PipelineError, PipelineOptions};
use ppp_agg::{AggClient, AggConfig, AggService, DurOptions, Hello, InProcSink};
use ppp_ir::write_edge_profile_v2;
use ppp_match::read_edge_profile_matched;
use ppp_obs::{ObsCtx, SpanTree};
use ppp_vm::RunOptions;
use ppp_workloads::{generate, SuiteEntry};
use std::sync::Arc;

/// Replays the benchmark's delta stream through a 2-shard aggregator
/// under `agg.replay` spans, purely so the aggregation metrics land in
/// the trace dump. Failures are reported as events, never fatal: the
/// trace's job is to show what happened.
fn replay_aggregation(ctx: &ObsCtx, entry: &SuiteEntry, options: &PipelineOptions) {
    let span = ctx.span("agg.replay");
    let module = Arc::new(generate(&entry.spec.clone().scaled(options.scale)));
    let run_options = RunOptions::default()
        .traced()
        .with_seed(options.seed)
        .with_delta_interval(2048);
    let result = match ppp_vm::run(&module, "main", &run_options) {
        Ok(r) => r,
        Err(e) => {
            span.event(
                ppp_obs::Level::Error,
                "agg.replay_failed",
                &[("error", ppp_obs::Value::from(e.to_string()))],
            );
            return;
        }
    };
    // The replay is durable on purpose: deltas append to a WAL under a
    // scratch directory, a checkpoint is cut, and a second service
    // recovers from the artifacts — so the `ppp_wal_*` durability
    // metrics land in the trace dump alongside the rest.
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/ppp-scratch/trace")
        .join(&entry.spec.name);
    let _ = std::fs::remove_dir_all(&dir);
    let config = AggConfig {
        shards: 2,
        ..AggConfig::default()
    };
    let service = AggService::new_durable(config, DurOptions::new(&dir, 8));
    let stream = || -> Result<(), String> {
        let agg = service.register(&entry.spec.name, &module)?;
        let hello = Hello {
            bench: entry.spec.name.clone(),
            funcs: module.functions.len(),
            scale_bits: options.scale.to_bits(),
            worker: 0,
        };
        let mut client = AggClient::open(
            Arc::clone(&module),
            InProcSink::new(Arc::clone(&agg)),
            4,
            &hello,
        )?;
        for d in &result.deltas {
            client.push_delta(&d.edges, &d.paths)?;
        }
        client.finish()?;
        let _ = agg.snapshot();
        service.checkpoint_all()?;
        let recovered = AggService::new_durable(config, DurOptions::new(&dir, 8));
        recovered.register(&entry.spec.name, &module)?;
        Ok(())
    };
    if let Err(e) = stream() {
        span.event(
            ppp_obs::Level::Error,
            "agg.replay_failed",
            &[("error", ppp_obs::Value::from(e))],
        );
    }
}

/// Replays the persisted edge profile through the cross-version matched
/// loader against a block-split variant of the module (`match.replay`),
/// so the `ppp_stale_*`/`ppp_match_*` metrics — sections matched,
/// blocks transferred, flow dropped, PPP40x diagnostics — land in the
/// trace dump alongside the VM and aggregation observables.
fn replay_matched_stale(ctx: &ObsCtx, entry: &SuiteEntry, options: &PipelineOptions) {
    let mut span = ctx.span("match.replay");
    let module = generate(&entry.spec.clone().scaled(options.scale));
    let run_options = RunOptions::default().traced().with_seed(options.seed);
    let result = match ppp_vm::run(&module, "main", &run_options) {
        Ok(r) => r,
        Err(e) => {
            span.event(
                ppp_obs::Level::Error,
                "match.replay_failed",
                &[("error", ppp_obs::Value::from(e.to_string()))],
            );
            return;
        }
    };
    let Some(edges) = result.edge_profile else {
        span.event(ppp_obs::Level::Error, "match.replay_failed", &[]);
        return;
    };
    let bytes = write_edge_profile_v2(&module, &edges);
    let mut newer = module.clone();
    split_blocks(&mut newer, &mut SplitMix64(options.seed ^ 0x7_1ACE));
    match read_edge_profile_matched(&module, &newer, bytes.as_bytes()) {
        Ok((_, msr)) => {
            span.set("lossless", msr.is_lossless());
            span.set("matched_blocks", msr.matched_blocks as u64);
            span.set("dropped_flow", msr.dropped_flow);
        }
        Err(e) => span.event(
            ppp_obs::Level::Error,
            "match.replay_failed",
            &[("error", ppp_obs::Value::from(e.to_string()))],
        ),
    }
}

/// Runs the `ppp-est` static estimator over the benchmark's module
/// (`est.replay`), so the `ppp_est_*` metrics — branches predicted per
/// heuristic, loops, trip caps, decomposition components, PPP50x
/// diagnostics — land in the trace dump alongside the other stages.
fn replay_static_estimate(ctx: &ObsCtx, entry: &SuiteEntry, options: &PipelineOptions) {
    let mut span = ctx.span("est.replay");
    let module = generate(&entry.spec.clone().scaled(options.scale));
    let (estimate, report) = ppp_est::estimate_module(&module, &ppp_est::EstOptions::default());
    span.set("funcs", report.stats.funcs);
    span.set("branches", report.stats.branches);
    span.set("loops", report.stats.loops);
    span.set("diagnostics", report.diagnostics.diagnostics.len() as u64);
    span.set("conservative", estimate.is_flow_conservative(&module));
}

/// Runs a short closed re-optimization loop over the benchmark
/// (`jit.replay`), so the `jit.generation` spans and the `ppp_jit_*`
/// metrics — generations, promotions, swaps, transferred-flow drops,
/// steady states — land in the trace dump alongside the other stages.
fn replay_jit_loop(ctx: &ObsCtx, entry: &SuiteEntry, options: &PipelineOptions) {
    let mut span = ctx.span("jit.replay");
    let module = generate(&entry.spec.clone().scaled(options.scale));
    let jopts = ppp_jit::JitOptions {
        generations: 2,
        seed: options.seed,
        scale: options.scale,
        ..ppp_jit::JitOptions::default()
    };
    match ppp_jit::run_jit(&module, &entry.spec.name, &jopts) {
        Ok(out) => {
            span.set("generations", out.generations_run as u64);
            span.set("steady_state", out.steady_state);
            span.set("swaps", out.swaps);
            span.set("final_cost", out.final_cost);
        }
        Err(e) => span.event(
            ppp_obs::Level::Error,
            "jit.replay_failed",
            &[("error", ppp_obs::Value::from(e.to_string()))],
        ),
    }
}

/// Schema tag of the JSON trace artifact (`repro trace --format json`).
pub const TRACE_SCHEMA: &str = "ppp-trace/v1";

/// Replays `entry` under a collecting context and returns the run, the
/// reconstructed span tree, and the replay's private metric registry.
fn trace_replay(
    entry: &SuiteEntry,
    options: &PipelineOptions,
) -> Result<(crate::pipeline::BenchmarkRun, SpanTree, ObsCtx), PipelineError> {
    let previous = ppp_obs::global();
    let (ctx, collect) = ObsCtx::collecting();
    ppp_obs::install_global(ctx.clone());
    let outcome = run_benchmark(entry, options);
    if outcome.is_ok() {
        replay_aggregation(&ctx, entry, options);
        replay_matched_stale(&ctx, entry, options);
        replay_static_estimate(&ctx, entry, options);
        replay_jit_loop(&ctx, entry, options);
    }
    ppp_obs::install_global(previous);
    let run = outcome?;
    let tree = SpanTree::build(&collect.records());
    Ok((run, tree, ctx))
}

/// Replays `entry` with span collection enabled and renders the
/// per-stage breakdown tree plus the run's metric dump.
///
/// # Errors
///
/// Propagates the pipeline's error when the benchmark cannot run.
pub fn trace_benchmark(
    entry: &SuiteEntry,
    options: &PipelineOptions,
) -> Result<String, PipelineError> {
    let (run, tree, ctx) = trace_replay(entry, options)?;
    let mut out = String::new();
    out.push_str(&format!(
        "trace: {} ({} profilers, degradation rung {})\n\n",
        run.name,
        run.profilers.len(),
        run.degradation.rung().name()
    ));
    out.push_str(&tree.render());
    out.push_str("\nmetrics:\n");
    out.push_str(&ctx.metrics().render_prometheus());
    Ok(out)
}

/// Replays `entry` like [`trace_benchmark`] but renders a
/// machine-readable [`TRACE_SCHEMA`] document: the span tree as nested
/// JSON plus the full metric registry snapshot.
///
/// # Errors
///
/// Propagates the pipeline's error when the benchmark cannot run.
pub fn trace_benchmark_json(
    entry: &SuiteEntry,
    options: &PipelineOptions,
) -> Result<String, PipelineError> {
    let (run, tree, ctx) = trace_replay(entry, options)?;
    Ok(format!(
        "{{\"schema\":\"{}\",\"benchmark\":\"{}\",\"profilers\":{},\"rung\":\"{}\",\
         \"spans\":{},\"metrics\":{}}}",
        TRACE_SCHEMA,
        ppp_obs::json::escape(&run.name),
        run.profilers.len(),
        run.degradation.rung().name(),
        tree.to_json(),
        ctx.metrics().to_json(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_workloads::spec2000_suite;

    #[test]
    fn trace_renders_stage_tree_and_metrics() {
        let _obs = crate::obs_test_lock();
        let suite = spec2000_suite();
        let entry = suite.iter().find(|e| e.spec.name == "mcf").unwrap();
        let options = PipelineOptions {
            scale: 0.02,
            ..PipelineOptions::default()
        };
        let text = trace_benchmark(entry, &options).expect("trace completes");
        // The breakdown covers both pipeline halves and the VM runs…
        assert!(text.contains("pipeline.prepare"), "{text}");
        assert!(text.contains("stage.profile@opt"), "{text}");
        assert!(text.contains("pipeline.run"), "{text}");
        assert!(text.contains("pipeline.profiler"), "{text}");
        assert!(text.contains("vm.run"), "{text}");
        // …and the metric dump carries the VM observables.
        assert!(text.contains("ppp_vm_cost_units_total"), "{text}");
        assert!(
            text.contains("profiler=\"PPP\""),
            "per-profiler labels present: {text}"
        );
        // The aggregation replay contributes its stage and metrics too.
        assert!(text.contains("agg.replay"), "{text}");
        assert!(text.contains("ppp_agg_frames_ingested_total"), "{text}");
        assert!(text.contains("ppp_agg_deltas_merged_total"), "{text}");
        assert!(text.contains("ppp_agg_snapshot_micros"), "{text}");
        // The durable replay leaves WAL/checkpoint/recovery metrics.
        assert!(text.contains("ppp_wal_appends_total"), "{text}");
        assert!(text.contains("ppp_wal_checkpoints_total"), "{text}");
        assert!(text.contains("ppp_wal_recoveries_total"), "{text}");
        // …as does the cross-version matched-stale replay.
        assert!(text.contains("match.replay"), "{text}");
        assert!(text.contains("ppp_stale_sections_total"), "{text}");
        assert!(text.contains("ppp_match_blocks_total"), "{text}");
        assert!(text.contains("ppp_match_funcs_total"), "{text}");
        // …and the static-estimator replay.
        assert!(text.contains("est.replay"), "{text}");
        assert!(text.contains("ppp_est_funcs_total"), "{text}");
        assert!(text.contains("ppp_est_branches_total"), "{text}");
        assert!(text.contains("ppp_est_loops_total"), "{text}");
        // …and the re-optimization loop replay with its generations.
        assert!(text.contains("jit.replay"), "{text}");
        assert!(text.contains("jit.generation"), "{text}");
        assert!(text.contains("jit.serve"), "{text}");
        assert!(text.contains("ppp_jit_generations_total"), "{text}");
        assert!(text.contains("ppp_jit_swaps_total"), "{text}");
        assert!(text.contains("ppp_jit_promotions_total"), "{text}");
    }

    #[test]
    fn trace_json_is_a_parseable_schema_versioned_artifact() {
        use ppp_obs::json::{self, Json};
        let _obs = crate::obs_test_lock();
        let suite = spec2000_suite();
        let entry = suite.iter().find(|e| e.spec.name == "mcf").unwrap();
        let options = PipelineOptions {
            scale: 0.02,
            ..PipelineOptions::default()
        };
        let doc = trace_benchmark_json(entry, &options).expect("trace completes");
        let v = json::parse(&doc).expect("trace JSON parses");
        assert_eq!(v.get("schema").and_then(Json::as_str), Some(TRACE_SCHEMA));
        assert_eq!(v.get("benchmark").and_then(Json::as_str), Some("mcf"));
        let roots = v
            .get("spans")
            .and_then(|s| s.get("roots"))
            .and_then(Json::as_arr)
            .expect("span roots");
        assert!(!roots.is_empty(), "{doc}");
        // The same stages the text renderer shows are in the tree…
        assert!(doc.contains("pipeline.prepare"), "{doc}");
        assert!(doc.contains("agg.replay"), "{doc}");
        // …and the metric snapshot rode along.
        assert!(doc.contains("ppp_vm_cost_units_total"), "{doc}");
    }
}
