//! Paper-style reports: one generator per table and figure of the
//! evaluation section (Tables 1–2, Figures 9–13).
//!
//! Every generator consumes the same `Vec<BenchmarkRun>` (produced once by
//! [`run_suite`]) and renders the rows/series the paper reports, so
//! `ppp-repro all` regenerates the entire evaluation in one pass.

use crate::format::{f2, pct, pct_signed, Table};
use crate::pipeline::{run_benchmark, BenchmarkRun, PipelineOptions};
use ppp_workloads::{spec2000_suite, BenchClass};

/// Runs the whole 18-benchmark suite.
///
/// Progress goes to stderr (runs take seconds each at full scale).
pub fn run_suite(options: &PipelineOptions) -> Vec<BenchmarkRun> {
    let obs = ppp_obs::global();
    let suite = spec2000_suite();
    suite
        .iter()
        .filter_map(|e| {
            obs.info(
                "suite.progress",
                &[("bench", ppp_obs::Value::from(e.spec.name.as_str()))],
            );
            match run_benchmark(e, options) {
                Ok(run) => Some(run),
                Err(err) => {
                    obs.metrics()
                        .inc("ppp_suite_errors_total", &[("bench", &e.spec.name)]);
                    obs.event(
                        ppp_obs::Level::Error,
                        "suite.benchmark_failed",
                        &[
                            ("bench", ppp_obs::Value::from(e.spec.name.as_str())),
                            ("error", ppp_obs::Value::from(err.to_string())),
                        ],
                    );
                    None
                }
            }
        })
        .collect()
}

fn class_rows(runs: &[BenchmarkRun], class: BenchClass) -> impl Iterator<Item = &BenchmarkRun> {
    runs.iter().filter(move |r| r.class == class)
}

fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Table 1: dynamic path characteristics with and without inlining and
/// unrolling.
pub fn table1(runs: &[BenchmarkRun]) -> String {
    let mut t = Table::new([
        "Benchmark",
        "Dyn.paths(K)",
        "Avg branches",
        "Avg instrs",
        "Dyn.paths'(K)",
        "Avg branches'",
        "Avg instrs'",
        "% calls inlined",
        "Avg unroll",
        "Speedup",
    ]);
    let row = |t: &mut Table, r: &BenchmarkRun| {
        t.row([
            r.name.clone(),
            format!("{:.1}", r.orig.dynamic_paths as f64 / 1e3),
            f2(r.orig.avg_branches),
            f2(r.orig.avg_insts),
            format!("{:.1}", r.opt.dynamic_paths as f64 / 1e3),
            f2(r.opt.avg_branches),
            f2(r.opt.avg_insts),
            pct(r.inline.dynamic_fraction()),
            f2(r.unroll.dynamic_avg_factor()),
            f2(r.orig.cost as f64 / r.opt.cost as f64),
        ]);
    };
    let avg_row = |t: &mut Table, label: &str, rs: Vec<&BenchmarkRun>| {
        t.row([
            label.to_owned(),
            format!(
                "{:.1}",
                mean(rs.iter().map(|r| r.orig.dynamic_paths as f64 / 1e3))
            ),
            f2(mean(rs.iter().map(|r| r.orig.avg_branches))),
            f2(mean(rs.iter().map(|r| r.orig.avg_insts))),
            format!(
                "{:.1}",
                mean(rs.iter().map(|r| r.opt.dynamic_paths as f64 / 1e3))
            ),
            f2(mean(rs.iter().map(|r| r.opt.avg_branches))),
            f2(mean(rs.iter().map(|r| r.opt.avg_insts))),
            pct(mean(rs.iter().map(|r| r.inline.dynamic_fraction()))),
            f2(mean(rs.iter().map(|r| r.unroll.dynamic_avg_factor()))),
            f2(mean(
                rs.iter().map(|r| r.orig.cost as f64 / r.opt.cost as f64),
            )),
        ]);
    };
    for r in class_rows(runs, BenchClass::Int) {
        row(&mut t, r);
    }
    t.separator();
    avg_row(
        &mut t,
        "INT Avg",
        class_rows(runs, BenchClass::Int).collect(),
    );
    t.separator();
    for r in class_rows(runs, BenchClass::Fp) {
        row(&mut t, r);
    }
    t.separator();
    avg_row(&mut t, "FP Avg", class_rows(runs, BenchClass::Fp).collect());
    avg_row(&mut t, "Overall Avg", runs.iter().collect());
    format!(
        "Table 1: dynamic path characteristics with and without inlining and unrolling\n\
         (primed columns are after inlining+unrolling; paper: 45% calls inlined,\n\
         avg unroll 2.28, speedup 1.03 overall)\n{}",
        t.render()
    )
}

/// Table 2: hot paths and their share of program flow.
pub fn table2(runs: &[BenchmarkRun]) -> String {
    let mut t = Table::new([
        "Benchmark",
        "Distinct paths",
        "Hot(>=0.125%)",
        "% flow",
        "Hot(>=1%)",
        "% flow ",
    ]);
    let row = |t: &mut Table, r: &BenchmarkRun| {
        t.row([
            r.name.clone(),
            r.hot_paths.distinct_paths.to_string(),
            r.hot_paths.hot_0125.0.to_string(),
            pct(r.hot_paths.hot_0125.1),
            r.hot_paths.hot_1.0.to_string(),
            pct(r.hot_paths.hot_1.1),
        ]);
    };
    for r in class_rows(runs, BenchClass::Int) {
        row(&mut t, r);
    }
    t.separator();
    t.row([
        "INT Avg".to_owned(),
        String::new(),
        String::new(),
        pct(mean(
            class_rows(runs, BenchClass::Int).map(|r| r.hot_paths.hot_0125.1),
        )),
        String::new(),
        pct(mean(
            class_rows(runs, BenchClass::Int).map(|r| r.hot_paths.hot_1.1),
        )),
    ]);
    t.separator();
    for r in class_rows(runs, BenchClass::Fp) {
        row(&mut t, r);
    }
    t.separator();
    t.row([
        "FP Avg".to_owned(),
        String::new(),
        String::new(),
        pct(mean(
            class_rows(runs, BenchClass::Fp).map(|r| r.hot_paths.hot_0125.1),
        )),
        String::new(),
        pct(mean(
            class_rows(runs, BenchClass::Fp).map(|r| r.hot_paths.hot_1.1),
        )),
    ]);
    t.row([
        "Overall Avg".to_owned(),
        String::new(),
        String::new(),
        pct(mean(runs.iter().map(|r| r.hot_paths.hot_0125.1))),
        String::new(),
        pct(mean(runs.iter().map(|r| r.hot_paths.hot_1.1))),
    ]);
    format!(
        "Table 2: hot paths in the (inlined+unrolled) benchmarks\n\
         (paper overall: 92.7% flow at >=0.125%, 74.1% at >=1%)\n{}",
        t.render()
    )
}

fn per_profiler_figure(
    runs: &[BenchmarkRun],
    title: &str,
    note: &str,
    with_edge: bool,
    get: impl Fn(&BenchmarkRun, &str) -> f64,
    get_edge: impl Fn(&BenchmarkRun) -> f64,
    fmt: impl Fn(f64) -> String,
) -> String {
    let mut headers = vec!["Benchmark".to_owned()];
    if with_edge {
        headers.push("Edge".to_owned());
    }
    headers.extend(["PP", "TPP", "PPP"].map(String::from));
    let mut t = Table::new(headers);
    let row = |t: &mut Table, label: String, r: Option<&BenchmarkRun>, rs: Vec<&BenchmarkRun>| {
        let mut cells = vec![label];
        let vals = |f: &dyn Fn(&BenchmarkRun) -> f64| -> f64 {
            match r {
                Some(one) => f(one),
                None => mean(rs.iter().map(|x| f(x))),
            }
        };
        if with_edge {
            cells.push(fmt(vals(&|x| get_edge(x))));
        }
        for p in ["PP", "TPP", "PPP"] {
            cells.push(fmt(vals(&|x| get(x, p))));
        }
        t.row(cells);
    };
    for r in runs.iter() {
        row(&mut t, r.name.clone(), Some(r), vec![]);
    }
    t.separator();
    row(
        &mut t,
        "INT Avg".to_owned(),
        None,
        class_rows(runs, BenchClass::Int).collect(),
    );
    row(
        &mut t,
        "FP Avg".to_owned(),
        None,
        class_rows(runs, BenchClass::Fp).collect(),
    );
    row(
        &mut t,
        "Overall Avg".to_owned(),
        None,
        runs.iter().collect(),
    );
    format!("{title}\n{note}\n{}", t.render())
}

/// Figure 9: accuracy of edge profiling, TPP, and PPP (PP shown as the
/// measurement reference).
pub fn fig9(runs: &[BenchmarkRun]) -> String {
    per_profiler_figure(
        runs,
        "Figure 9: accuracy (fraction of hot path flow predicted)",
        "(paper: edge profiles average 73% and fall to 26%; PPP averages 96%, within 1% of TPP)",
        true,
        |r, p| r.profiler(p).map_or(0.0, |x| x.accuracy),
        |r| r.edge.accuracy,
        pct,
    )
}

/// Figure 10: coverage of edge profiling, TPP, and PPP.
pub fn fig10(runs: &[BenchmarkRun]) -> String {
    per_profiler_figure(
        runs,
        "Figure 10: coverage (fraction of actual path profile measured)",
        "(paper: edge profiles capture about half; TPP slightly above PPP)",
        true,
        |r, p| r.profiler(p).map_or(0.0, |x| x.coverage),
        |r| r.edge.coverage,
        pct,
    )
}

/// Figure 11: fraction of dynamic paths instrumented (hashed portion in
/// parentheses, the paper's stripes).
pub fn fig11(runs: &[BenchmarkRun]) -> String {
    let mut t = Table::new(["Benchmark", "PP", "TPP", "PPP"]);
    let cell = |r: &BenchmarkRun, p: &str| {
        let pr = r.profiler(p).expect("profiler present");
        if pr.fraction.hashed > 0.0005 {
            format!(
                "{} ({} hashed)",
                pct(pr.fraction.measured),
                pct(pr.fraction.hashed)
            )
        } else {
            pct(pr.fraction.measured)
        }
    };
    for r in runs {
        t.row([
            r.name.clone(),
            cell(r, "PP"),
            cell(r, "TPP"),
            cell(r, "PPP"),
        ]);
    }
    t.separator();
    for (label, class) in [
        ("INT Avg", Some(BenchClass::Int)),
        ("FP Avg", Some(BenchClass::Fp)),
        ("Overall Avg", None),
    ] {
        let rs: Vec<&BenchmarkRun> = match class {
            Some(c) => class_rows(runs, c).collect(),
            None => runs.iter().collect(),
        };
        let avg = |p: &str| {
            pct(mean(rs.iter().map(|r| {
                r.profiler(p).map_or(0.0, |x| x.fraction.measured)
            })))
        };
        t.row([label.to_owned(), avg("PP"), avg("TPP"), avg("PPP")]);
    }
    format!(
        "Figure 11: fraction of dynamic paths instrumented (hashed share in parens)\n\
         (paper: TPP and PPP instrument about half of dynamic paths)\n{}",
        t.render()
    )
}

/// Figure 12: runtime overheads of PP, TPP, and PPP.
pub fn fig12(runs: &[BenchmarkRun]) -> String {
    per_profiler_figure(
        runs,
        "Figure 12: runtime overhead of path profiling",
        "(paper averages: PP 31%, TPP 12%, PPP 5%)",
        false,
        |r, p| r.profiler(p).map_or(0.0, |x| x.overhead),
        |_| 0.0,
        pct_signed,
    )
}

/// Figure 13: leave-one-out ablation of PPP's techniques, normalized to
/// TPP's overhead, for benchmarks where PPP improves on TPP by more than
/// 5% (the paper's selection rule).
pub fn fig13(runs: &[BenchmarkRun]) -> String {
    let labels = ["PPP", "PPP-SAC", "PPP-FP", "PPP-Push", "PPP-SPN", "PPP-LC"];
    let mut t = Table::new(
        std::iter::once("Benchmark".to_owned())
            .chain(labels.iter().map(|s| s.to_string()))
            .collect::<Vec<_>>(),
    );
    let mut qualifying = 0;
    for r in runs {
        let (Some(tpp), Some(ppp)) = (r.profiler("TPP"), r.profiler("PPP")) else {
            continue;
        };
        // Selection rule: PPP improves runtime by > 5% over TPP (i.e. the
        // overhead gap exceeds 5 percentage points of runtime... the
        // paper's phrasing "more than 5% over TPP" — use overhead gap).
        if tpp.overhead - ppp.overhead <= 0.005 {
            continue;
        }
        if r.profiler("PPP-FP").is_none() {
            continue; // ablations were not run
        }
        qualifying += 1;
        let mut cells = vec![r.name.clone()];
        for l in labels {
            let v = r.profiler(l).map_or(f64::NAN, |x| x.overhead);
            let norm = if tpp.overhead.abs() < 1e-9 {
                f64::NAN
            } else {
                v / tpp.overhead
            };
            cells.push(if norm.is_nan() {
                "-".to_owned()
            } else {
                f2(norm)
            });
        }
        t.row(cells);
    }
    let body = if qualifying == 0 {
        "(no benchmark met the selection rule at this scale, or ablations were disabled)\n"
            .to_owned()
    } else {
        t.render()
    };

    // One-at-a-time methodology (§8.3): the paper reports it only in
    // prose ("LC and SPN are beneficial, lowering TPP's overhead by 27%
    // and 16%"); we render the full table.
    let oat_labels = [
        "TPPbase",
        "TPPbase+SAC",
        "TPPbase+Push",
        "TPPbase+SPN",
        "TPPbase+LC",
    ];
    let have_oat = runs.iter().any(|r| r.profiler("TPPbase").is_some());
    let oat = if have_oat {
        let mut t2 = Table::new(
            std::iter::once("Benchmark".to_owned())
                .chain(oat_labels.iter().map(|s| s.to_string()))
                .collect::<Vec<_>>(),
        );
        for r in runs {
            let Some(base) = r.profiler("TPPbase") else {
                continue;
            };
            if base.overhead.abs() < 1e-9 {
                continue;
            }
            let mut cells = vec![r.name.clone()];
            for l in oat_labels {
                let v = r.profiler(l).map_or(f64::NAN, |x| x.overhead);
                cells.push(if v.is_nan() {
                    "-".to_owned()
                } else {
                    f2(v / base.overhead)
                });
            }
            t2.row(cells);
        }
        let mut avg = vec!["Avg".to_owned()];
        for l in oat_labels {
            let vals: Vec<f64> = runs
                .iter()
                .filter_map(|r| {
                    let base = r.profiler("TPPbase")?;
                    if base.overhead.abs() < 1e-9 {
                        return None;
                    }
                    Some(r.profiler(l)?.overhead / base.overhead)
                })
                .collect();
            avg.push(f2(mean(vals)));
        }
        t2.separator();
        t2.row(avg);
        format!(
            "\nOne-at-a-time (§8.3): baseline + one technique, normalized to the baseline\n\
             (paper prose: LC and SPN lower the baseline's overhead by 27% and 16%)\n{}",
            t2.render()
        )
    } else {
        String::new()
    };

    format!(
        "Figure 13: PPP leave-one-out overhead, normalized to TPP (1.00 = TPP's overhead)\n\
         (lower is better; paper: FP and SAC matter most, Push next; removing a\n\
         technique sometimes helps on specific benchmarks — performance anomalies)\n{body}{oat}"
    )
}

/// Renders every table and figure.
pub fn all_reports(runs: &[BenchmarkRun]) -> String {
    [
        table1(runs),
        table2(runs),
        fig9(runs),
        fig10(runs),
        fig11(runs),
        fig12(runs),
        fig13(runs),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_runs() -> Vec<BenchmarkRun> {
        let suite = spec2000_suite();
        let opts = PipelineOptions {
            scale: 0.02,
            ablations: true,
            ..PipelineOptions::default()
        };
        // Two benchmarks, one of each class, keep tests fast.
        ["mcf", "mgrid"]
            .iter()
            .map(|n| {
                let e = suite.iter().find(|e| e.spec.name == *n).unwrap();
                run_benchmark(e, &opts).expect("pipeline completes")
            })
            .collect()
    }

    #[test]
    fn reports_render_for_small_suite() {
        let runs = tiny_runs();
        let t1 = table1(&runs);
        assert!(t1.contains("mcf"));
        assert!(t1.contains("INT Avg"));
        let t2 = table2(&runs);
        assert!(t2.contains("Distinct paths"));
        let f9 = fig9(&runs);
        assert!(f9.contains("Edge"));
        assert!(f9.contains("Overall Avg"));
        let f12 = fig12(&runs);
        assert!(f12.contains("PPP"));
        let f11 = fig11(&runs);
        assert!(f11.contains("mgrid"));
        let f13 = fig13(&runs);
        assert!(f13.contains("Figure 13"));
        let all = all_reports(&runs);
        assert!(all.len() > 1000);
    }
}
