//! Version-drift sweep: accuracy decay of transferred vs. fresh profiles.
//!
//! Backs the `repro drift` subcommand. Production PGO applies a profile
//! collected on program version *N* to version *N+k*; this sweep
//! measures what that costs. For each benchmark personality, the
//! prepared (optimized) module is deterministically perturbed by each
//! [`DriftScenario`] — the kinds of edits real program versions drift
//! by — and the old profile is transferred onto the new CFG through the
//! `ppp-match` matched-stale loader. The transferred profile and a fresh
//! profile of the perturbed module then drive the same potential-flow
//! estimator, and both are scored against the perturbed module's exact
//! ground truth with the branch-flow metric, yielding an
//! accuracy/coverage decay figure the paper does not have.
//!
//! Two invariants are checked on every scenario and surfaced in
//! [`DriftOutcome::ok`]:
//!
//! * every transferred profile satisfies PPP308 flow conservation;
//! * the `identity` scenario (zero perturbation) transfers losslessly.
//!
//! Everything is seeded: the same `--seed` yields byte-identical
//! perturbations, transfers, and scores.

use crate::degrade::{ingest_guidance_at, DegradationReport, LadderRung};
use crate::format::Table;
use crate::pipeline::{
    estimate_options, prepare_benchmark, traced, PipelineError, PipelineOptions, PreparedBenchmark,
};
use ppp_core::{accuracy, edge_profile_coverage, edge_profile_estimate, FlowKind};
use ppp_ir::{
    analyze_loops, verify_module, write_edge_profile_v2, Block, FuncId, Inst, Module,
    ModuleEdgeProfile, Reg, Terminator,
};
use ppp_lint::Code;
use ppp_match::read_edge_profile_matched;
use ppp_opt::{inline_module_witnessed, unroll_module_witnessed, InlineOptions, UnrollOptions};
use ppp_workloads::spec2000_suite;
use std::fmt;

/// Deterministic local RNG (SplitMix64). `ppp-faults` keeps its stream
/// private, and drift perturbations must not share a stream with fault
/// injection anyway — the two sweeps are seeded independently.
pub(crate) struct SplitMix64(pub(crate) u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn fnv(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// One deterministic program-version perturbation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DriftScenario {
    /// No change at all; the transfer must be lossless.
    Identity,
    /// Straight-line blocks split in two (instruction scheduling /
    /// code-layout drift).
    SplitBlocks,
    /// A never-taken branch with a detour block added in front of
    /// existing jumps (new feature guarded off).
    AddBranches,
    /// Acyclic-region branches collapsed to their else arm (dead code /
    /// feature removal).
    RemoveBranches,
    /// Call sites retargeted to a different same-arity leaf function
    /// (API migration).
    ChangeCallSites,
    /// Every non-`main` function renamed `*_v2` (symbol churn; exercises
    /// the anchor-identity fallback).
    RenameFunctions,
    /// Another inline + unroll pass over the module (optimizer drift),
    /// via the existing witnessed transforms.
    InlineUnroll,
}

/// All scenarios, in the fixed order `repro drift` runs them.
pub const DRIFT_SCENARIOS: [DriftScenario; 7] = [
    DriftScenario::Identity,
    DriftScenario::SplitBlocks,
    DriftScenario::AddBranches,
    DriftScenario::RemoveBranches,
    DriftScenario::ChangeCallSites,
    DriftScenario::RenameFunctions,
    DriftScenario::InlineUnroll,
];

impl DriftScenario {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DriftScenario::Identity => "identity",
            DriftScenario::SplitBlocks => "split-blocks",
            DriftScenario::AddBranches => "add-branches",
            DriftScenario::RemoveBranches => "remove-branches",
            DriftScenario::ChangeCallSites => "change-call-sites",
            DriftScenario::RenameFunctions => "rename-functions",
            DriftScenario::InlineUnroll => "inline-unroll",
        }
    }
}

impl fmt::Display for DriftScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Splits up to two multi-instruction blocks per function in half; the
/// second half becomes a fresh block (a pure layout change).
pub(crate) fn split_blocks(m: &mut Module, rng: &mut SplitMix64) {
    for f in &mut m.functions {
        let candidates: Vec<usize> = (0..f.blocks.len())
            .filter(|&b| f.blocks[b].insts.len() >= 2)
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let picks = 1 + rng.below(2.min(candidates.len()));
        let start = rng.below(candidates.len());
        for i in 0..picks {
            let b = candidates[(start + i) % candidates.len()];
            let mid = f.blocks[b].insts.len() / 2;
            if mid == 0 {
                continue;
            }
            let tail = f.blocks[b].insts.split_off(mid);
            let term = f.blocks[b].term.clone();
            let nid = f.add_block(Block { insts: tail, term });
            f.blocks[b].term = Terminator::Jump { target: nid };
        }
    }
}

/// Inserts a never-taken guard branch (plus a detour block) in front of
/// one unconditional jump per function: the CFG gains a branch and a
/// block, execution is unchanged.
fn add_branches(m: &mut Module, rng: &mut SplitMix64) {
    for f in &mut m.functions {
        let jumps: Vec<usize> = (0..f.blocks.len())
            .filter(|&b| matches!(f.blocks[b].term, Terminator::Jump { .. }))
            .collect();
        if jumps.is_empty() {
            continue;
        }
        let b = jumps[rng.below(jumps.len())];
        let Terminator::Jump { target } = f.blocks[b].term else {
            unreachable!();
        };
        let guard = Reg(f.reg_count);
        f.reg_count += 1;
        let detour = f.add_block(Block {
            insts: Vec::new(),
            term: Terminator::Jump { target },
        });
        f.blocks[b].insts.push(Inst::Const {
            dst: guard,
            value: 0,
        });
        f.blocks[b].term = Terminator::Branch {
            cond: guard,
            then_target: detour,
            else_target: target,
        };
    }
}

/// Collapses one acyclic-region branch per function to its else arm.
/// Only edges are *removed* and only outside any loop (and only in
/// reducible functions), so no cycle — and no non-termination — can be
/// introduced.
fn remove_branches(m: &mut Module, rng: &mut SplitMix64) {
    for f in &mut m.functions {
        let (_cfg, _dom, loops) = analyze_loops(f);
        if !loops.irreducible_edges().is_empty() {
            continue;
        }
        let candidates: Vec<usize> = (0..f.blocks.len())
            .filter(|&b| match f.blocks[b].term {
                Terminator::Branch {
                    then_target,
                    else_target,
                    ..
                } => {
                    loops.depth(ppp_ir::BlockId::new(b)) == 0
                        && loops.depth(then_target) == 0
                        && loops.depth(else_target) == 0
                }
                _ => false,
            })
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let b = candidates[rng.below(candidates.len())];
        let Terminator::Branch { else_target, .. } = f.blocks[b].term else {
            unreachable!();
        };
        f.blocks[b].term = Terminator::Jump {
            target: else_target,
        };
    }
}

/// Retargets up to two call sites per module to a different leaf
/// function of the same arity (never `main`, never the caller itself —
/// no recursion is introduced).
fn change_call_sites(m: &mut Module, rng: &mut SplitMix64) {
    let leaves: Vec<(FuncId, u32)> = m
        .func_ids()
        .filter(|&fid| {
            let f = m.function(fid);
            f.name != "main"
                && !f
                    .blocks
                    .iter()
                    .any(|b| b.insts.iter().any(|i| matches!(i, Inst::Call { .. })))
        })
        .map(|fid| (fid, m.function(fid).param_count))
        .collect();
    if leaves.is_empty() {
        return;
    }
    let mut retargeted = 0;
    for fi in 0..m.functions.len() {
        if retargeted >= 2 {
            break;
        }
        let caller = FuncId::new(fi);
        for bi in 0..m.functions[fi].blocks.len() {
            if retargeted >= 2 {
                break;
            }
            for ii in 0..m.functions[fi].blocks[bi].insts.len() {
                let Inst::Call { callee, args, .. } = &m.functions[fi].blocks[bi].insts[ii] else {
                    continue;
                };
                let (callee, arity) = (*callee, args.len() as u32);
                let options: Vec<FuncId> = leaves
                    .iter()
                    .filter(|&&(l, pc)| l != caller && l != callee && pc == arity)
                    .map(|&(l, _)| l)
                    .collect();
                if options.is_empty() {
                    continue;
                }
                let new_callee = options[rng.below(options.len())];
                if let Inst::Call { callee, .. } = &mut m.functions[fi].blocks[bi].insts[ii] {
                    *callee = new_callee;
                }
                retargeted += 1;
                break;
            }
        }
    }
}

/// Renames every non-`main` function `*_v2`, defeating name-based
/// section matching (the anchor-identity fallback must carry the load).
fn rename_functions(m: &mut Module) {
    for f in &mut m.functions {
        if f.name != "main" {
            f.name.push_str("_v2");
        }
    }
}

fn apply_scenario(
    scenario: DriftScenario,
    prep: &PreparedBenchmark,
    options: &PipelineOptions,
    rng: &mut SplitMix64,
) -> Result<Module, PipelineError> {
    let mut m = prep.module.clone();
    match scenario {
        DriftScenario::Identity => {}
        DriftScenario::SplitBlocks => split_blocks(&mut m, rng),
        DriftScenario::AddBranches => add_branches(&mut m, rng),
        DriftScenario::RemoveBranches => remove_branches(&mut m, rng),
        DriftScenario::ChangeCallSites => change_call_sites(&mut m, rng),
        DriftScenario::RenameFunctions => rename_functions(&mut m),
        DriftScenario::InlineUnroll => {
            let _ = inline_module_witnessed(&mut m, &prep.edges, &InlineOptions::default());
            let (_, e1, _) = traced(&m, options.seed, &prep.name)?;
            let _ = unroll_module_witnessed(&mut m, &e1, &UnrollOptions::default());
        }
    }
    debug_assert!(
        verify_module(&m).is_ok(),
        "{}: {scenario} produced an invalid module",
        prep.name
    );
    Ok(m)
}

/// Everything measured for one benchmark × scenario cell.
#[derive(Clone, Debug)]
pub struct DriftOutcome {
    /// Benchmark name.
    pub benchmark: String,
    /// The perturbation applied.
    pub scenario: DriftScenario,
    /// `true` when the transfer was lossless (identity must be).
    pub lossless: bool,
    /// `true` when the transferred profile passes PPP308 flow
    /// conservation (must always hold).
    pub conservative: bool,
    /// Old blocks matched onto the new CFG, as a fraction.
    pub matched_ratio: f64,
    /// Function pairs rescued by anchor identity (renames).
    pub anchor_paired: usize,
    /// Dynamic flow dropped in transfer.
    pub dropped_flow: u64,
    /// PPP401..PPP404 finding counts, in code order.
    pub diag_counts: [usize; 4],
    /// What the ingestion ladder did to the transferred guidance.
    pub report: DegradationReport,
    /// Estimator accuracy driven by a fresh profile of the new version.
    pub fresh_accuracy: f64,
    /// Estimator accuracy driven by the transferred profile.
    pub transferred_accuracy: f64,
    /// Coverage with the fresh profile.
    pub fresh_coverage: f64,
    /// Coverage with the transferred profile.
    pub transferred_coverage: f64,
}

impl DriftOutcome {
    /// Accuracy lost by using the transferred profile instead of
    /// re-profiling (can be negative when the transfer happens to score
    /// higher on the hot set).
    pub fn accuracy_decay(&self) -> f64 {
        self.fresh_accuracy - self.transferred_accuracy
    }

    /// Coverage lost by using the transferred profile.
    pub fn coverage_decay(&self) -> f64 {
        self.fresh_coverage - self.transferred_coverage
    }

    /// The sweep's gate: conservation always, losslessness on identity.
    pub fn ok(&self) -> bool {
        self.conservative && (self.scenario != DriftScenario::Identity || self.lossless)
    }

    /// One outcome as a JSON object (stable keys).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"benchmark\":\"{}\",\"scenario\":\"{}\",\"ok\":{},\"lossless\":{},\
             \"conservative\":{},\"rung\":\"{}\",\"matched_ratio\":{:.4},\
             \"anchor_paired\":{},\"dropped_flow\":{},\
             \"diagnostics\":{{\"ppp401\":{},\"ppp402\":{},\"ppp403\":{},\"ppp404\":{}}},\
             \"fresh_accuracy\":{:.4},\"transferred_accuracy\":{:.4},\
             \"accuracy_decay\":{:.4},\"fresh_coverage\":{:.4},\
             \"transferred_coverage\":{:.4},\"coverage_decay\":{:.4}}}",
            self.benchmark,
            self.scenario,
            self.ok(),
            self.lossless,
            self.conservative,
            self.report.rung(),
            self.matched_ratio,
            self.anchor_paired,
            self.dropped_flow,
            self.diag_counts[0],
            self.diag_counts[1],
            self.diag_counts[2],
            self.diag_counts[3],
            self.fresh_accuracy,
            self.transferred_accuracy,
            self.accuracy_decay(),
            self.fresh_coverage,
            self.transferred_coverage,
            self.coverage_decay(),
        )
    }
}

/// Runs every drift scenario for one prepared benchmark.
pub fn drift_prepared(
    prep: &PreparedBenchmark,
    seed: u64,
    options: &PipelineOptions,
) -> Result<Vec<DriftOutcome>, PipelineError> {
    let obs = ppp_obs::global();
    let old_bytes = write_edge_profile_v2(&prep.module, &prep.edges);
    let mut outcomes = Vec::with_capacity(DRIFT_SCENARIOS.len());
    for (si, &scenario) in DRIFT_SCENARIOS.iter().enumerate() {
        let mut span = obs.span("drift.scenario");
        span.set("bench", prep.name.as_str());
        span.set("scenario", scenario.name());
        let mut rng = SplitMix64(seed ^ fnv(&prep.name) ^ ((si as u64) << 32));
        let new_module = apply_scenario(scenario, prep, options, &mut rng)?;

        // Fresh ground truth and fresh guidance on the perturbed module.
        let (_run, fresh_edges, fresh_truth) = traced(&new_module, options.seed, &prep.name)?;
        let est_opts = estimate_options(&fresh_truth, options);

        // Transfer the old profile across versions.
        let (transferred, msr) =
            read_edge_profile_matched(&prep.module, &new_module, old_bytes.as_bytes())
                .expect("self-written artifact has an intact container");
        let conservative = transferred.is_flow_conservative(&new_module);
        let lossless = msr.is_lossless();
        let total_old: usize = msr.total_old_blocks.max(1);
        let diag_counts = [
            Code::UnanchoredBlock,
            Code::AmbiguousAnchor,
            Code::SplitMergedRegion,
            Code::NonConservativeTransfer,
        ]
        .map(|c| {
            msr.diagnostics
                .diagnostics
                .iter()
                .filter(|d| d.code == c)
                .count()
        });

        // Ladder ingestion: a non-lossless transfer lands on (at least)
        // the matched-stale rung, never on full-profile.
        let floor = if lossless {
            LadderRung::FullProfile
        } else {
            LadderRung::MatchedStale
        };
        let (guidance, report) = ingest_guidance_at(&new_module, Some(transferred), None, floor);

        // Score both profiles against the perturbed version's truth.
        let zeroed = ModuleEdgeProfile::zeroed(&new_module);
        let guide_ref = guidance.as_ref().unwrap_or(&zeroed);
        let score = |profile: &ModuleEdgeProfile| {
            let est = edge_profile_estimate(
                &new_module,
                profile,
                FlowKind::Potential,
                options.metric,
                &est_opts,
            );
            let acc = accuracy(&fresh_truth, &est, options.metric, options.hot_ratio);
            let cov =
                edge_profile_coverage(&new_module, profile, &fresh_truth, options.metric).ratio();
            (acc, cov)
        };
        let (fresh_accuracy, fresh_coverage) = score(&fresh_edges);
        let (transferred_accuracy, transferred_coverage) = score(guide_ref);

        let outcome = DriftOutcome {
            benchmark: prep.name.clone(),
            scenario,
            lossless,
            conservative,
            matched_ratio: msr.matched_blocks as f64 / total_old as f64,
            anchor_paired: msr.anchor_paired,
            dropped_flow: msr.dropped_flow,
            diag_counts,
            report,
            fresh_accuracy,
            transferred_accuracy,
            fresh_coverage,
            transferred_coverage,
        };
        span.set("ok", outcome.ok());
        span.set("accuracy_decay", outcome.accuracy_decay());
        outcomes.push(outcome);
    }
    Ok(outcomes)
}

/// Runs the full drift sweep for one suite entry.
pub fn drift_benchmark(
    entry: &ppp_workloads::SuiteEntry,
    seed: u64,
    options: &PipelineOptions,
) -> Result<Vec<DriftOutcome>, PipelineError> {
    let prep = prepare_benchmark(entry, options)?;
    drift_prepared(&prep, seed, options)
}

/// Sweeps every drift scenario across the suite (or one named
/// benchmark). `options.workers > 1` fans benchmarks over threads;
/// results are collected in suite order and every scenario is
/// seed-deterministic, so the output is byte-identical to a sequential
/// sweep.
pub fn drift_suite(
    bench: Option<&str>,
    seed: u64,
    options: &PipelineOptions,
) -> Result<Vec<DriftOutcome>, PipelineError> {
    let suite = spec2000_suite();
    let entries: Vec<_> = suite
        .iter()
        .filter(|e| bench.is_none_or(|b| e.spec.name == b))
        .collect();
    let per_bench = ppp_agg::run_indexed(options.workers, entries.len(), |i| {
        let entry = entries[i];
        ppp_obs::global().info(
            "drift.progress",
            &[("bench", ppp_obs::Value::from(entry.spec.name.as_str()))],
        );
        drift_benchmark(entry, seed, options)
    });
    let mut outcomes = Vec::new();
    for r in per_bench {
        outcomes.extend(r?);
    }
    Ok(outcomes)
}

/// Renders drift outcomes as a text table.
pub fn drift_table(outcomes: &[DriftOutcome]) -> String {
    let mut t = Table::new([
        "Benchmark",
        "Scenario",
        "Match %",
        "Rung",
        "Acc fresh",
        "Acc xfer",
        "Decay",
        "Cov xfer",
        "PPP40x",
    ]);
    for o in outcomes {
        t.row([
            o.benchmark.clone(),
            o.scenario.to_string(),
            format!("{:.1}", o.matched_ratio * 100.0),
            o.report.rung().to_string(),
            format!("{:.3}", o.fresh_accuracy),
            format!("{:.3}", o.transferred_accuracy),
            format!("{:+.3}", o.accuracy_decay()),
            format!("{:.3}", o.transferred_coverage),
            format!(
                "{}/{}/{}/{}",
                o.diag_counts[0], o.diag_counts[1], o.diag_counts[2], o.diag_counts[3]
            ),
        ]);
    }
    let failures = outcomes.iter().filter(|o| !o.ok()).count();
    let mean_decay = if outcomes.is_empty() {
        0.0
    } else {
        outcomes
            .iter()
            .map(DriftOutcome::accuracy_decay)
            .sum::<f64>()
            / outcomes.len() as f64
    };
    format!(
        "Drift sweep: {} scenarios, {} lossless, mean accuracy decay {:+.4}, {} FAILED\n{}",
        outcomes.len(),
        outcomes.iter().filter(|o| o.lossless).count(),
        mean_decay,
        failures,
        t.render()
    )
}

/// Renders drift outcomes as a JSON document (stable keys; consumed by
/// the CI accuracy-decay artifact).
pub fn drift_json(outcomes: &[DriftOutcome], seed: u64) -> String {
    let body = outcomes
        .iter()
        .map(DriftOutcome::to_json)
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"kind\":\"ppp-drift\",\"seed\":{seed},\"scenarios\":{},\"ok\":{},\"outcomes\":[{body}]}}",
        outcomes.len(),
        outcomes.iter().all(DriftOutcome::ok),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PipelineOptions {
        PipelineOptions {
            scale: 0.02,
            ..PipelineOptions::default()
        }
    }

    #[test]
    fn drift_mcf_all_scenarios_hold_invariants() {
        let out = drift_suite(Some("mcf"), 0x0DD5, &tiny()).expect("sweep completes");
        assert_eq!(out.len(), DRIFT_SCENARIOS.len());
        for o in &out {
            assert!(o.ok(), "{} {} failed: {o:?}", o.benchmark, o.scenario);
            assert!(o.conservative, "{}: not conservative", o.scenario);
        }
        let identity = &out[0];
        assert_eq!(identity.scenario, DriftScenario::Identity);
        assert!(identity.lossless);
        assert_eq!(identity.report.rung(), LadderRung::FullProfile);
        assert!((identity.accuracy_decay()).abs() < 1e-9);
        // Rename must be carried by anchor identity, and a non-lossless
        // transfer must land on the matched-stale rung (or below).
        let rename = out
            .iter()
            .find(|o| o.scenario == DriftScenario::RenameFunctions)
            .unwrap();
        assert!(
            rename.anchor_paired > 0,
            "anchor fallback unused: {rename:?}"
        );
        for o in &out {
            if !o.lossless {
                assert!(
                    o.report.rung() >= LadderRung::MatchedStale,
                    "{}: non-lossless transfer reported as {}",
                    o.scenario,
                    o.report.rung()
                );
            }
        }
    }

    #[test]
    fn drift_sweep_is_deterministic() {
        let opts = tiny();
        let a = drift_suite(Some("vpr"), 7, &opts).expect("sweep completes");
        let b = drift_suite(Some("vpr"), 7, &opts).expect("sweep completes");
        assert_eq!(drift_json(&a, 7), drift_json(&b, 7));
        let c = drift_suite(Some("vpr"), 8, &opts).expect("sweep completes");
        // A different seed must still hold the invariants.
        assert!(c.iter().all(DriftOutcome::ok));
    }

    #[test]
    fn perturbations_change_the_cfg() {
        let suite = spec2000_suite();
        let entry = suite.iter().find(|e| e.spec.name == "bzip2").unwrap();
        let prep = prepare_benchmark(entry, &tiny()).expect("prepare");
        let mut rng = SplitMix64(99);
        let mut m = prep.module.clone();
        split_blocks(&mut m, &mut rng);
        let old_blocks: usize = prep.module.functions.iter().map(|f| f.blocks.len()).sum();
        let new_blocks: usize = m.functions.iter().map(|f| f.blocks.len()).sum();
        assert!(new_blocks > old_blocks, "split-blocks was a no-op");
        assert!(verify_module(&m).is_ok());
    }
}
