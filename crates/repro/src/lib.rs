//! # ppp-repro: regenerating the paper's evaluation
//!
//! End-to-end reproduction harness for Bond & McKinley (CGO 2005): runs
//! the 18 synthetic SPEC2000 personalities through the full pipeline
//! (profile → inline+unroll → re-profile → instrument with PP/TPP/PPP →
//! run → evaluate) and renders every table and figure of the paper's
//! evaluation section.
//!
//! Use the `ppp-repro` binary:
//!
//! ```text
//! ppp-repro [--scale X] [--quick] table1|table2|fig9|fig10|fig11|fig12|fig13|all
//! ```
//!
//! Besides the reports, `ppp-repro lint` checks every instrumentation
//! plan the pipeline produces, `ppp-repro validate` replays each
//! optimizer transform's witness through the `ppp-lint` translation
//! validator (`PPP3xx`) and checks every traced edge profile for flow
//! conservation, and `ppp-repro chaos` sweeps every `ppp-faults` fault
//! site across the suite, asserting the ingestion pipeline always
//! completes with a *reported* (never silent) degradation.
//!
//! The pipeline is instrumented with `ppp-obs` spans and metrics:
//! `ppp-repro bench` emits/compares versioned perf-baseline artifacts
//! (`BENCH_*.json`, see [`mod@bench`]), and `ppp-repro trace <bench>`
//! replays one benchmark with span collection on and prints the
//! per-stage time/cost breakdown tree (see [`trace`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bench;
pub mod chaos;
pub mod cli;
pub mod degrade;
pub mod drift;
pub mod drive;
pub mod format;
pub mod inspect;
pub mod jit;
pub mod pipeline;
pub mod predict;
pub mod reports;
pub mod top;
pub mod trace;

pub use bench::{
    baseline_from_json, baseline_json, baseline_table, collect_baseline, compare_baselines,
    regressions_json, regressions_table, wall_trends, wall_trends_json, wall_trends_table,
    BenchBaseline, BenchProfilerRecord, BenchRecord, Regression, WallTrend, BASELINE_KIND,
    BASELINE_SCHEMA_VERSION,
};
pub use chaos::{
    chaos_benchmark, chaos_json, chaos_prepared, chaos_scenario, chaos_suite, chaos_table,
    ChaosOutcome, ChaosVerdict,
};
pub use cli::ArgCursor;
pub use degrade::{
    ingest_guidance, ingest_guidance_at, DegradationEvent, DegradationReport, LadderRung,
};
pub use drift::{
    drift_benchmark, drift_json, drift_suite, drift_table, DriftOutcome, DriftScenario,
    DRIFT_SCENARIOS,
};
pub use drive::{
    drive, drive_json, drive_table, serve, BenchDrive, DriveOptions, DriveReport, Quantiles,
    Transport,
};
pub use inspect::inspect_benchmark;
pub use jit::{
    jit_gate, jit_json, jit_options, jit_suite, jit_table, JIT_KIND, JIT_SCHEMA_VERSION,
};
pub use pipeline::{
    lint_benchmark, pipeline_configs, prepare_benchmark, run_benchmark, run_prepared,
    validate_benchmark, BenchmarkRun, PipelineError, PipelineOptions, PreparedBenchmark,
    ProfilerResult,
};
pub use predict::{
    predict_benchmark, predict_gate, predict_json, predict_prepared, predict_suite, predict_table,
    PredictOutcome, WINS_REQUIRED,
};
pub use reports::{all_reports, fig10, fig11, fig12, fig13, fig9, run_suite, table1, table2};
pub use top::{render_stats, top, TopOptions};
pub use trace::{trace_benchmark, trace_benchmark_json};

/// Serializes tests that touch process-global observation state (the
/// global context, its metrics registry, the flight recorder): one
/// binary runs them on parallel threads, and a swap-install mid-drive
/// would split records across registries.
#[cfg(test)]
pub(crate) fn obs_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
