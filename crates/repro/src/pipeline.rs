//! The end-to-end experiment pipeline (§7): generate → profile →
//! inline+unroll → re-profile → instrument (PP/TPP/PPP and ablations) →
//! run → evaluate.

use ppp_core::{
    accuracy, actual_hot_paths, edge_profile_coverage, edge_profile_estimate, hot_flow_fraction,
    instrument_module, instrumented_fraction, profiler_coverage, profiler_estimate,
    EstimateOptions, FlowKind, FlowMetric, InstrumentedFraction, ModulePlan, ProfilerConfig,
    Technique,
};
use ppp_ir::{Module, ModuleEdgeProfile, ModulePathProfile};
use ppp_opt::{
    inline_module_witnessed, optimize_module_witnessed, unroll_module_witnessed, InlineOptions,
    InlineReport, UnrollOptions, UnrollReport,
};
use ppp_vm::{run, RunOptions, RunResult, VmError};
use ppp_workloads::{generate, BenchClass, SuiteEntry};

use crate::degrade::{ingest_guidance, DegradationReport};
use ppp_obs::Value;
use std::fmt;

/// Typed failures of the experiment pipeline.
///
/// These used to be `expect`/`assert!` panics; as typed errors they feed
/// the degradation ladder (a damaged *profile* degrades, a damaged
/// *workload* is an error the caller sees) instead of aborting the run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PipelineError {
    /// The benchmark module has no `main` to execute.
    NoMain {
        /// Benchmark name.
        benchmark: String,
        /// Underlying VM error.
        error: VmError,
    },
    /// A traced run came back without profiles (tracing disabled).
    NotTraced {
        /// Benchmark name.
        benchmark: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::NoMain { benchmark, error } => {
                write!(f, "{benchmark}: cannot execute benchmark: {error}")
            }
            PipelineError::NotTraced { benchmark } => {
                write!(f, "{benchmark}: traced run produced no profiles")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct PipelineOptions {
    /// Workload scale factor (1.0 = suite default).
    pub scale: f64,
    /// Hot-path threshold as a fraction of total flow (paper: 0.125%).
    pub hot_ratio: f64,
    /// Flow metric for accuracy/coverage (paper: branch flow).
    pub metric: FlowMetric,
    /// Also run the five leave-one-out PPP ablations (Figure 13).
    pub ablations: bool,
    /// VM seed (kept fixed across the whole pipeline: the paper's *self*
    /// advice setting, §7.2).
    pub seed: u64,
    /// Worker threads for suite-level sweeps (`repro chaos --workers`,
    /// `repro bench --workers`). `0` or `1` runs sequentially; any value
    /// produces byte-identical output (results are collected in suite
    /// order and each benchmark's work is seed-deterministic).
    pub workers: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self {
            scale: 1.0,
            hot_ratio: 0.00125,
            metric: FlowMetric::Branch,
            ablations: false,
            seed: 0x5EED,
            workers: 1,
        }
    }
}

/// Dynamic path statistics of one program phase (Table 1 rows).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseStats {
    /// Total dynamic paths (unit flow).
    pub dynamic_paths: u64,
    /// Average branches per dynamic path.
    pub avg_branches: f64,
    /// Average (non-instrumentation) instructions per dynamic path.
    pub avg_insts: f64,
    /// Uninstrumented execution cost (cost-model units).
    pub cost: u64,
    /// Distinct paths observed.
    pub distinct_paths: usize,
}

fn phase_stats(result: &RunResult, truth: &ModulePathProfile) -> PhaseStats {
    let paths = truth.total_unit_flow().max(1);
    PhaseStats {
        dynamic_paths: truth.total_unit_flow(),
        avg_branches: truth.total_branch_flow() as f64 / paths as f64,
        avg_insts: result.steps as f64 / paths as f64,
        cost: result.cost,
        distinct_paths: truth.distinct_paths(),
    }
}

/// Evaluation of one profiler on one benchmark.
#[derive(Clone, Debug)]
pub struct ProfilerResult {
    /// Display label ("PP", "TPP", "PPP", "PPP-FP", ...).
    pub label: String,
    /// Runtime overhead vs. the uninstrumented baseline (0.05 = 5%).
    pub overhead: f64,
    /// Accuracy (§6.1) of the estimated profile.
    pub accuracy: f64,
    /// Coverage (§6.2).
    pub coverage: f64,
    /// Fraction of dynamic paths measured / hashed (Figure 11).
    pub fraction: InstrumentedFraction,
    /// Routines instrumented.
    pub instrumented_routines: usize,
    /// Routines using hash tables.
    pub hashed_routines: usize,
    /// Static instrumentation instructions inserted.
    pub static_prof_insts: usize,
    /// Paths lost to hash-probe exhaustion.
    pub lost_paths: u64,
}

/// Accuracy/coverage of plain edge profiling (its overhead is negligible,
/// §2).
#[derive(Clone, Copy, Debug, Default)]
pub struct EdgeResult {
    /// Accuracy via potential-flow reconstruction.
    pub accuracy: f64,
    /// Coverage (attribution of definite flow).
    pub coverage: f64,
}

/// Table 2 data: hot-path structure of the exact profile.
#[derive(Clone, Copy, Debug, Default)]
pub struct HotPathSummary {
    /// Distinct dynamic paths.
    pub distinct_paths: usize,
    /// Hot paths at the 0.125% threshold and their flow share.
    pub hot_0125: (usize, f64),
    /// Hot paths at the 1% threshold and their flow share.
    pub hot_1: (usize, f64),
}

/// Everything measured for one benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkRun {
    /// Benchmark name.
    pub name: String,
    /// INT or FP.
    pub class: BenchClass,
    /// Stats before inlining/unrolling.
    pub orig: PhaseStats,
    /// Stats after inlining/unrolling (all profiling runs use this code).
    pub opt: PhaseStats,
    /// Inliner report.
    pub inline: InlineReport,
    /// Unroller report.
    pub unroll: UnrollReport,
    /// Edge-profiling estimator quality.
    pub edge: EdgeResult,
    /// PP, TPP, PPP (and ablations when enabled), in that order.
    pub profilers: Vec<ProfilerResult>,
    /// Table 2 summary of the optimized code's exact profile.
    pub hot_paths: HotPathSummary,
    /// What the ingestion ladder did to the guidance profile (rung
    /// `full-profile` with no events in a healthy run).
    pub degradation: DegradationReport,
}

impl BenchmarkRun {
    /// Finds a profiler result by label.
    pub fn profiler(&self, label: &str) -> Option<&ProfilerResult> {
        self.profilers.iter().find(|p| p.label == label)
    }
}

pub(crate) fn traced(
    module: &Module,
    seed: u64,
    benchmark: &str,
) -> Result<(RunResult, ModuleEdgeProfile, ModulePathProfile), PipelineError> {
    let r = run(
        module,
        "main",
        &RunOptions::default().with_seed(seed).traced(),
    )
    .map_err(|error| PipelineError::NoMain {
        benchmark: benchmark.to_owned(),
        error,
    })?;
    let (Some(edges), Some(paths)) = (r.edge_profile.clone(), r.path_profile.clone()) else {
        return Err(PipelineError::NotTraced {
            benchmark: benchmark.to_owned(),
        });
    };
    Ok((r, edges, paths))
}

/// The profiling-ready artifact of the pipeline front half: the workload
/// after scalar optimization, inlining, and unrolling, together with the
/// evaluation profiles of the optimized code.
#[derive(Clone, Debug)]
pub struct PreparedBenchmark {
    /// Benchmark name.
    pub name: String,
    /// INT or FP.
    pub class: BenchClass,
    /// The optimized module every profiler instruments.
    pub module: Module,
    /// Edge profile of the optimized code (instrumentation guidance).
    pub edges: ModuleEdgeProfile,
    /// Exact path profile of the optimized code (ground truth).
    pub truth: ModulePathProfile,
    /// Stats before inlining/unrolling.
    pub orig: PhaseStats,
    /// Stats after inlining/unrolling.
    pub opt: PhaseStats,
    /// Inliner report.
    pub inline: InlineReport,
    /// Unroller report.
    pub unroll: UnrollReport,
    /// Uninstrumented execution cost of the optimized code.
    pub baseline_cost: u64,
}

/// Runs the pipeline front half with every transform emitting a
/// [`ppp_ir::TransformWitness`] that is immediately replayed and checked
/// (translation validation), and every traced profile checked for shape
/// agreement and flow conservation. Returns the artifact plus the named
/// per-stage lint reports, in pipeline order.
fn prepare_validated(
    entry: &SuiteEntry,
    options: &PipelineOptions,
) -> Result<(PreparedBenchmark, Vec<(String, ppp_lint::LintReport)>), PipelineError> {
    let obs = ppp_obs::global();
    let spec = entry.spec.clone().scaled(options.scale);
    let mut span = obs.span("pipeline.prepare");
    span.set("bench", spec.name.as_str());
    let mut module0 = generate(&spec);
    let mut stages: Vec<(String, ppp_lint::LintReport)> = Vec::new();
    // "We perform standard scalar optimizations" on the original code
    // (§7.3) before measuring its path characteristics.
    {
        let _s = span.child("stage.scalar@gen");
        let src = module0.clone();
        let (_, w) = optimize_module_witnessed(&mut module0);
        stages.push((
            "scalar@gen".into(),
            ppp_lint::check_transform(&src, &w, &module0),
        ));
        ppp_core::normalize_module(&mut module0);
    }

    // Phase 1: profile the original code.
    let orig;
    let edges0;
    {
        let mut s = span.child("stage.profile@orig");
        let (r0, e0, truth0) = traced(&module0, options.seed, &spec.name)?;
        stages.push((
            "profile@orig".into(),
            ppp_lint::check_profile(&module0, &e0),
        ));
        orig = phase_stats(&r0, &truth0);
        s.set("cost_units", r0.cost);
        s.set("dynamic_paths", orig.dynamic_paths);
        edges0 = e0;
    }

    // Phase 2: inline and unroll, re-profiling between stages (§7.3), and
    // the same scalar optimizations on the expanded code.
    let mut module = module0;
    let inline;
    {
        let _s = span.child("stage.inline");
        let src = module.clone();
        let (rep, w) = inline_module_witnessed(&mut module, &edges0, &InlineOptions::default());
        stages.push((
            "inline".into(),
            ppp_lint::check_transform(&src, &w, &module),
        ));
        inline = rep;
    }
    let edges1;
    {
        let _s = span.child("stage.profile@inline");
        let (_r1, e1, _t1) = traced(&module, options.seed, &spec.name)?;
        stages.push((
            "profile@inline".into(),
            ppp_lint::check_profile(&module, &e1),
        ));
        edges1 = e1;
    }
    let unroll;
    {
        let _s = span.child("stage.unroll");
        let src = module.clone();
        let (rep, w) = unroll_module_witnessed(&mut module, &edges1, &UnrollOptions::default());
        stages.push((
            "unroll".into(),
            ppp_lint::check_transform(&src, &w, &module),
        ));
        unroll = rep;
    }
    {
        let _s = span.child("stage.scalar@opt");
        let src = module.clone();
        let (_, w) = optimize_module_witnessed(&mut module);
        stages.push((
            "scalar@opt".into(),
            ppp_lint::check_transform(&src, &w, &module),
        ));
        ppp_core::normalize_module(&mut module);
    }

    // Phase 3: the evaluation profile of the optimized code.
    let (opt, edges, truth, baseline_cost);
    {
        let mut s = span.child("stage.profile@opt");
        let (r2, e2, t2) = traced(&module, options.seed, &spec.name)?;
        stages.push(("profile@opt".into(), ppp_lint::check_profile(&module, &e2)));
        opt = phase_stats(&r2, &t2);
        baseline_cost = r2.cost;
        s.set("cost_units", r2.cost);
        s.set("dynamic_paths", opt.dynamic_paths);
        let stats = e2.stats();
        s.set("profiled_functions", stats.functions);
        s.set("zero_functions", stats.zero_functions);
        edges = e2;
        truth = t2;
    }
    span.set("baseline_cost", baseline_cost);

    let prep = PreparedBenchmark {
        name: spec.name,
        class: entry.class,
        module,
        edges,
        truth,
        orig,
        opt,
        inline,
        unroll,
        baseline_cost,
    };
    Ok((prep, stages))
}

/// Runs the pipeline front half for one suite entry: generate → optimize
/// → profile → inline+unroll (re-profiling between stages, §7.3) →
/// optimize → profile. Every transform is translation-validated as it
/// runs; a failed stage is reported loudly on stderr but does not abort,
/// so experiments still complete while the defect is investigated. The
/// result is what every profiler configuration (and `repro lint`)
/// consumes.
pub fn prepare_benchmark(
    entry: &SuiteEntry,
    options: &PipelineOptions,
) -> Result<PreparedBenchmark, PipelineError> {
    let (prep, stages) = prepare_validated(entry, options)?;
    let obs = ppp_obs::global();
    for (stage, report) in &stages {
        if !report.is_empty() {
            obs.metrics().inc(
                "ppp_pipeline_validation_failures_total",
                &[("bench", prep.name.as_str()), ("stage", stage.as_str())],
            );
            obs.warn(
                "pipeline.validation_failed",
                &[
                    ("bench", Value::from(prep.name.as_str())),
                    ("stage", Value::from(stage.as_str())),
                    ("report", Value::from(report.to_string())),
                ],
            );
        }
    }
    Ok(prep)
}

/// Runs the witnessed pipeline front half for one suite entry and returns
/// the per-stage translation-validation and profile-consistency reports
/// in pipeline order (backs the `repro validate` subcommand). Stage names
/// are `scalar@gen`, `profile@orig`, `inline`, `profile@inline`,
/// `unroll`, `scalar@opt`, and `profile@opt`.
pub fn validate_benchmark(
    entry: &SuiteEntry,
    options: &PipelineOptions,
) -> Result<Vec<(String, ppp_lint::LintReport)>, PipelineError> {
    Ok(prepare_validated(entry, options)?.1)
}

/// The profiler configurations the pipeline evaluates: PP, TPP, PPP, plus
/// the ablations when enabled.
pub fn pipeline_configs(options: &PipelineOptions) -> Vec<ProfilerConfig> {
    let mut configs = vec![
        ProfilerConfig::pp(),
        ProfilerConfig::tpp(),
        ProfilerConfig::ppp(),
    ];
    if options.ablations {
        configs.extend(Technique::ALL.map(ProfilerConfig::ppp_without));
        // One-at-a-time methodology (§8.3): baseline plus each technique.
        configs.push(ProfilerConfig::ppp_baseline());
        configs.extend(
            Technique::ALL
                .iter()
                .filter_map(|&t| ProfilerConfig::one_at_a_time(t)),
        );
    }
    configs
}

/// Runs the full pipeline for one suite entry.
///
/// The guidance profile passes through the degradation ladder
/// ([`ingest_guidance`]) before any profiler consumes it: a damaged
/// profile downgrades the guidance and is recorded in
/// [`BenchmarkRun::degradation`] instead of panicking.
///
/// # Errors
///
/// Returns a [`PipelineError`] when the workload itself cannot be
/// executed (no `main`) — profile damage is not an error.
pub fn run_benchmark(
    entry: &SuiteEntry,
    options: &PipelineOptions,
) -> Result<BenchmarkRun, PipelineError> {
    let prep = prepare_benchmark(entry, options)?;
    run_prepared(prep, options)
}

/// Back half of [`run_benchmark`], starting from a prepared artifact
/// (chaos scenarios call this with deliberately damaged preparations).
pub fn run_prepared(
    prep: PreparedBenchmark,
    options: &PipelineOptions,
) -> Result<BenchmarkRun, PipelineError> {
    let obs = ppp_obs::global();
    let mut span = obs.span("pipeline.run");
    span.set("bench", prep.name.as_str());
    // Degradation ladder: sanitize the guidance before anything trusts it.
    let (guidance, degradation) = {
        let mut s = span.child("pipeline.ingest_guidance");
        let (g, d) = ingest_guidance(&prep.module, Some(prep.edges.clone()), Some(&prep.truth));
        s.set("rung", d.rung().name());
        s.set("events", d.events.len());
        (g, d)
    };
    obs.metrics().inc(
        "ppp_degrade_rung_total",
        &[
            ("bench", prep.name.as_str()),
            ("rung", degradation.rung().name()),
        ],
    );
    if degradation.degraded() {
        span.event(
            ppp_obs::Level::Warn,
            "degrade.rung",
            &[
                ("bench", Value::from(prep.name.as_str())),
                ("rung", Value::from(degradation.rung().name())),
                ("detail", Value::from(degradation.to_string())),
            ],
        );
    }
    let zeroed = ModuleEdgeProfile::zeroed(&prep.module);
    let guide_ref = guidance.as_ref().unwrap_or(&zeroed);

    // Edge-profiling estimator (accuracy from potential flow, §6.1;
    // coverage = attribution of definite flow, §6.2).
    let est_opts = estimate_options(&prep.truth, options);
    let edge = {
        let mut s = span.child("pipeline.edge_estimate");
        let edge_est = edge_profile_estimate(
            &prep.module,
            guide_ref,
            FlowKind::Potential,
            options.metric,
            &est_opts,
        );
        let edge = EdgeResult {
            accuracy: accuracy(&prep.truth, &edge_est, options.metric, options.hot_ratio),
            coverage: edge_profile_coverage(&prep.module, guide_ref, &prep.truth, options.metric)
                .ratio(),
        };
        s.set("accuracy", edge.accuracy);
        s.set("coverage", edge.coverage);
        edge
    };

    let profilers = pipeline_configs(options)
        .iter()
        .map(|c| run_profiler(&prep, guidance.as_ref(), c, options, &est_opts, &span))
        .collect();

    let _s = span.child("pipeline.summarize");
    // Table 2 summary.
    let hot_paths = HotPathSummary {
        distinct_paths: prep.truth.distinct_paths(),
        hot_0125: (
            actual_hot_paths(&prep.truth, options.metric, 0.00125).len(),
            hot_flow_fraction(&prep.truth, options.metric, 0.00125),
        ),
        hot_1: (
            actual_hot_paths(&prep.truth, options.metric, 0.01).len(),
            hot_flow_fraction(&prep.truth, options.metric, 0.01),
        ),
    };

    Ok(BenchmarkRun {
        name: prep.name,
        class: prep.class,
        orig: prep.orig,
        opt: prep.opt,
        inline: prep.inline,
        unroll: prep.unroll,
        edge,
        profilers,
        hot_paths,
        degradation,
    })
}

/// Instruments a prepared suite entry under every pipeline configuration
/// and lints each plan (backs the `repro lint` subcommand).
pub fn lint_benchmark(
    entry: &SuiteEntry,
    options: &PipelineOptions,
) -> Result<Vec<(String, ppp_lint::LintReport)>, PipelineError> {
    let prep = prepare_benchmark(entry, options)?;
    Ok(pipeline_configs(options)
        .iter()
        .map(|c| {
            let plan = instrument_module(&prep.module, Some(&prep.edges), c);
            (c.label(), ppp_lint::lint_plan(&plan))
        })
        .collect())
}

pub(crate) fn estimate_options(
    truth: &ModulePathProfile,
    options: &PipelineOptions,
) -> EstimateOptions {
    // Potential-flow reconstruction needs a cutoff to avoid exponential
    // enumeration; half the hot threshold keeps every candidate that
    // could enter the hot set while pruning the tail.
    let total = truth
        .iter()
        .map(|(_, _, s)| options.metric.flow(s.freq, s.branches))
        .sum::<u64>();
    EstimateOptions {
        potential_cutoff: ((options.hot_ratio * 0.5) * total as f64) as u64,
        max_paths_per_func: 50_000,
    }
}

fn run_profiler(
    prep: &PreparedBenchmark,
    guidance: Option<&ModuleEdgeProfile>,
    config: &ProfilerConfig,
    options: &PipelineOptions,
    est_opts: &EstimateOptions,
    parent: &ppp_obs::Span,
) -> ProfilerResult {
    let obs = ppp_obs::global();
    let mut span = parent.child("pipeline.profiler");
    span.set("profiler", config.label());
    let (module, truth) = (&prep.module, &prep.truth);
    // A guidance profile that violates Kirchhoff's law would silently
    // misdirect instrumentation placement. The degradation ladder
    // (`ingest_guidance`) guarantees `guidance` is shape-matching and
    // flow conservative on every rung — rung 5 hands back a ppp-est
    // static estimate, not `None`.
    debug_assert!(
        guidance.is_none_or(|g| g.shape_matches(module) && g.is_flow_conservative(module)),
        "{}: {} handed unsanitized guidance",
        prep.name,
        config.label(),
    );
    let zeroed;
    let edges = match guidance {
        Some(g) => g,
        None => {
            zeroed = ModuleEdgeProfile::zeroed(module);
            &zeroed
        }
    };
    let label = config.label();
    let plan = {
        let _s = span.child("pipeline.instrument");
        instrument_module(module, guidance, config)
    };
    // Soundness gate: a plan that fails the lint would silently corrupt
    // the measured profile, so surface it loudly before running.
    let lint = ppp_lint::lint_plan(&plan);
    if !lint.is_clean() {
        obs.metrics().inc(
            "ppp_plan_lint_failures_total",
            &[("bench", prep.name.as_str()), ("profiler", label.as_str())],
        );
        span.event(
            ppp_obs::Level::Warn,
            "pipeline.lint_failed",
            &[
                ("bench", Value::from(prep.name.as_str())),
                ("profiler", Value::from(label.as_str())),
                ("report", Value::from(lint.to_string())),
            ],
        );
    }
    let r = {
        let mut s = span.child("vm.run");
        let r = run(
            &plan.module,
            "main",
            &RunOptions::default().with_seed(options.seed),
        )
        .expect("instrumented module runs");
        s.set("steps", r.steps);
        s.set("cost_units", r.cost);
        s.set("prof_cost_units", r.prof_cost);
        s.set("paths_lost", r.store.total_lost());
        s.set("hash_collisions", r.store.total_collisions());
        r
    };
    // VM observables are read post-run from counters the interpreter
    // already keeps; nothing here perturbed the measured execution.
    r.record_metrics(
        obs.metrics(),
        &[("bench", prep.name.as_str()), ("profiler", label.as_str())],
    );
    let (acc, cov, fraction) = {
        let _s = span.child("pipeline.estimate");
        let est = profiler_estimate(module, &plan, edges, &r.store, options.metric, est_opts);
        let acc = accuracy(truth, &est, options.metric, options.hot_ratio);
        let cov = profiler_coverage(module, &plan, &r.store, truth, options.metric, est_opts);
        let fraction = instrumented_fraction(module, &plan, &r.store, truth);
        (acc, cov, fraction)
    };
    let overhead = match r.overhead_vs(prep.baseline_cost) {
        Some(oh) => oh,
        None => {
            // A benchmark whose baseline retired zero cost units cannot
            // express overhead as a ratio; report 0 and leave a metric
            // trail instead of panicking (see `RunResult::overhead_vs`).
            obs.metrics().inc(
                "ppp_degenerate_baseline_total",
                &[("bench", prep.name.as_str()), ("profiler", label.as_str())],
            );
            span.event(
                ppp_obs::Level::Warn,
                "pipeline.degenerate_baseline",
                &[
                    ("bench", Value::from(prep.name.as_str())),
                    ("profiler", Value::from(label.as_str())),
                ],
            );
            0.0
        }
    };
    span.set("overhead", overhead);
    span.set("accuracy", acc);
    ProfilerResult {
        label,
        overhead,
        accuracy: acc,
        coverage: cov.ratio(),
        fraction,
        instrumented_routines: plan.instrumented_count(),
        hashed_routines: plan.funcs.iter().filter(|f| f.uses_hash).count(),
        static_prof_insts: plan.static_prof_insts(),
        lost_paths: r.store.total_lost(),
    }
}

/// Convenience wrapper: plan + instrumented run for one config (used by
/// examples and benches that need the raw artifacts).
pub fn instrument_and_run(
    module: &Module,
    edges: &ModuleEdgeProfile,
    config: &ProfilerConfig,
    seed: u64,
) -> (ModulePlan, RunResult) {
    let plan = instrument_module(module, Some(edges), config);
    let r = run(&plan.module, "main", &RunOptions::default().with_seed(seed))
        .expect("instrumented module runs");
    (plan, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_workloads::spec2000_suite;

    fn tiny() -> PipelineOptions {
        PipelineOptions {
            scale: 0.02,
            ..PipelineOptions::default()
        }
    }

    #[test]
    fn pipeline_runs_one_int_benchmark() {
        let suite = spec2000_suite();
        let entry = suite.iter().find(|e| e.spec.name == "mcf").unwrap();
        let run = run_benchmark(entry, &tiny()).expect("pipeline completes");
        assert_eq!(run.name, "mcf");
        assert!(!run.degradation.degraded(), "healthy run stays on rung 1");
        assert_eq!(run.profilers.len(), 3);
        for p in &run.profilers {
            assert!(p.overhead >= 0.0, "{}: overhead {}", p.label, p.overhead);
            assert!(
                (0.0..=1.0).contains(&p.accuracy),
                "{}: accuracy {}",
                p.label,
                p.accuracy
            );
            assert!((0.0..=1.0).contains(&p.coverage));
        }
        // PP measures everything; TPP/PPP should be cheaper than PP.
        let pp = run.profiler("PP").unwrap();
        let ppp = run.profiler("PPP").unwrap();
        assert!((pp.fraction.measured - 1.0).abs() < 0.02 || pp.lost_paths > 0);
        assert!(ppp.overhead <= pp.overhead + 1e-9);
    }

    #[test]
    fn pipeline_runs_one_fp_benchmark_with_ablations() {
        let suite = spec2000_suite();
        let entry = suite.iter().find(|e| e.spec.name == "swim").unwrap();
        let opts = PipelineOptions {
            ablations: true,
            ..tiny()
        };
        let run = run_benchmark(entry, &opts).expect("pipeline completes");
        // PP, TPP, PPP + 5 leave-one-out + baseline + 4 one-at-a-time.
        assert_eq!(run.profilers.len(), 13);
        assert!(run.profiler("PPP-FP").is_some());
        assert!(run.profiler("TPPbase").is_some());
        assert!(run.profiler("TPPbase+LC").is_some());
        // FP code: unrolling should have kicked in.
        assert!(run.unroll.dynamic_avg_factor() > 1.0, "swim unrolls");
    }

    #[test]
    fn witnessed_pipeline_validates_clean() {
        let suite = spec2000_suite();
        let entry = suite.iter().find(|e| e.spec.name == "bzip2").unwrap();
        let stages = validate_benchmark(entry, &tiny()).expect("pipeline completes");
        let names: Vec<_> = stages.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(
            names,
            [
                "scalar@gen",
                "profile@orig",
                "inline",
                "profile@inline",
                "unroll",
                "scalar@opt",
                "profile@opt"
            ]
        );
        for (stage, report) in &stages {
            assert!(report.is_empty(), "gzip {stage} dirty:\n{report}");
        }
    }

    #[test]
    fn inconsistent_profile_degrades_instead_of_panicking() {
        let suite = spec2000_suite();
        let entry = suite.iter().find(|e| e.spec.name == "mcf").unwrap();
        let options = tiny();
        let mut prep = prepare_benchmark(entry, &options).expect("pipeline completes");
        let f0 = &prep.module.functions[0];
        let b = f0
            .block_ids()
            .find(|&b| f0.block(b).term.successor_count() > 0)
            .expect("mcf main has a branch");
        prep.edges
            .func_mut(ppp_ir::FuncId(0))
            .bump_edge(ppp_ir::EdgeRef::new(b, 0));
        // The damaged guidance must not panic: the ladder quarantines or
        // rebuilds the inconsistent function and the run completes with a
        // structured report.
        let run = run_prepared(prep, &options).expect("pipeline completes despite damage");
        assert!(run.degradation.degraded());
        assert!(run
            .degradation
            .events
            .iter()
            .any(|e| e.cause == "flow-violation"));
        assert_eq!(run.profilers.len(), 3);
    }

    #[test]
    fn optimization_lengthens_paths() {
        let suite = spec2000_suite();
        let entry = suite.iter().find(|e| e.spec.name == "mgrid").unwrap();
        let run = run_benchmark(entry, &tiny()).expect("pipeline completes");
        assert!(
            run.opt.avg_insts > run.orig.avg_insts,
            "unrolling should lengthen paths: {} -> {}",
            run.orig.avg_insts,
            run.opt.avg_insts
        );
    }
}
