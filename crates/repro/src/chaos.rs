//! Chaos sweep: deterministic fault injection over the full pipeline.
//!
//! Backs the `repro chaos` subcommand. For each benchmark, every
//! [`FaultSite`] is injected with a seeded [`FaultPlan`] and the damaged
//! artifact is pushed through the ingestion degradation ladder
//! ([`ingest_guidance`]). The sweep asserts the robustness contract:
//!
//! 1. the pipeline always completes — no fault site may panic;
//! 2. damage is never silent — every effective injection produces a
//!    structured [`DegradationReport`] entry (a fault that happens to be
//!    byte-benign, e.g. truncating only a trailing newline, is recorded
//!    as [`ChaosVerdict::Harmless`]);
//! 3. whatever guidance survives still passes the `ppp-lint` profile
//!    checks (shape + Kirchhoff flow conservation, PPP308).

use crate::degrade::{ingest_guidance, ingest_guidance_at, DegradationReport, LadderRung};
use crate::format::Table;
use crate::pipeline::{
    instrument_and_run, prepare_benchmark, PipelineError, PipelineOptions, PreparedBenchmark,
};
use ppp_agg::{AggConfig, Aggregator, DurOptions, Hello, IngestOutcome, ReadError};
use ppp_core::ProfilerConfig;
use ppp_faults::{FaultPlan, FaultSite};
use ppp_ir::{
    encode_frame, encode_seq_payload, salvage_edge_profile, salvage_path_profile,
    write_edge_profile_v2, write_path_profile_v2, Frame, FrameKind, Module, ModuleEdgeProfile,
    SectionFault, WireError,
};
use ppp_match::read_edge_profile_matched;
use ppp_vm::{run, HaltReason, RunOptions};
use ppp_workloads::spec2000_suite;
use std::fmt;
use std::sync::Arc;

/// How one injected fault played out.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaosVerdict {
    /// The injection turned out byte-benign (e.g. the truncation cut only
    /// a trailing newline, or the run finished inside the kill budget);
    /// the pipeline correctly stayed healthy.
    Harmless,
    /// The damage took effect and the pipeline completed with a reported
    /// degradation. This is the contract holding.
    Reported,
    /// The damage took effect but nothing was reported — a gate failure.
    Silent,
}

impl ChaosVerdict {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ChaosVerdict::Harmless => "harmless",
            ChaosVerdict::Reported => "reported",
            ChaosVerdict::Silent => "silent",
        }
    }
}

impl fmt::Display for ChaosVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one `(benchmark, fault site)` scenario.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Benchmark name.
    pub benchmark: String,
    /// Injected fault site.
    pub site: FaultSite,
    /// Injection seed.
    pub seed: u64,
    /// What the injection did, human-readable.
    pub detail: String,
    /// What the ingestion ladder reported.
    pub report: DegradationReport,
    /// Whether the surviving guidance passed `ppp_lint::check_profile`.
    pub lint_clean: bool,
    /// Whether the static-estimate rung, if reached, supplied live
    /// guidance: non-zero, PPP308-conservative, and a report event
    /// naming the `ppp-est` estimator. Vacuously `true` on other rungs.
    pub estimator_ok: bool,
    /// The gate verdict.
    pub verdict: ChaosVerdict,
    /// Flight-recorder dump written for this scenario, when the site is
    /// a serve-tier fault ([`FaultSite::dumps_flight_recorder`]) and a
    /// recorder is installed (`ppp_obs::install_flight`). Deliberately
    /// not serialized: the dump is a side artifact, and its ring
    /// content is timing-dependent while [`ChaosOutcome::to_json`] must
    /// stay byte-identical between sequential and parallel sweeps.
    pub flight_dump: Option<std::path::PathBuf>,
}

impl ChaosOutcome {
    /// `true` when this scenario upholds the robustness contract.
    pub fn ok(&self) -> bool {
        self.verdict != ChaosVerdict::Silent && self.lint_clean && self.estimator_ok
    }

    /// Renders the outcome as a JSON object (stable keys).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"benchmark\":\"{}\",\"site\":\"{}\",\"seed\":{},\"verdict\":\"{}\",\
             \"lint_clean\":{},\"estimator_ok\":{},\"detail\":\"{}\",\"degradation\":{}}}",
            json_escape(&self.benchmark),
            self.site,
            self.seed,
            self.verdict,
            self.lint_clean,
            self.estimator_ok,
            json_escape(&self.detail),
            self.report.to_json(),
        )
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn record_faults(report: &mut DegradationReport, faults: &[SectionFault]) {
    for f in faults {
        report.push(
            "load-fault",
            format!("section {} ({}): {}", f.func, f.name, f.error),
        );
    }
}

fn lint_ok(module: &Module, guidance: Option<&ModuleEdgeProfile>) -> bool {
    guidance.is_none_or(|g| ppp_lint::check_profile(module, g).is_empty())
}

/// The rung-5 contract: a scenario that bottoms out on the
/// static-estimate rung must still hand back *live* guidance — non-zero
/// somewhere, flow conservative — and its report must name the
/// estimator, so cold starts are never silent `None`s. Vacuously true
/// on every other rung.
fn static_rung_ok(
    module: &Module,
    guidance: Option<&ModuleEdgeProfile>,
    report: &DegradationReport,
) -> bool {
    if report.rung() != LadderRung::StaticEstimate {
        return true;
    }
    let Some(g) = guidance else { return false };
    g.shape_matches(module)
        && g.is_flow_conservative(module)
        && g.funcs.iter().any(|f| !f.is_zero())
        && report.events.iter().any(|e| e.detail.contains("ppp-est"))
}

fn damage_bytes(plan: &FaultPlan, bytes: &mut Vec<u8>) -> String {
    match plan.site {
        FaultSite::TruncateEdgeBytes | FaultSite::TruncatePathBytes => {
            let full = bytes.len();
            let cut = plan.truncate_bytes(bytes);
            format!("truncated artifact at byte {cut} of {full}")
        }
        _ => {
            let hits = plan.corrupt_bytes(bytes, 4);
            format!("flipped bytes at offsets {hits:?}")
        }
    }
}

/// Encodes the frame stream one healthy worker would send for `prep`:
/// `Hello`, one edge delta, one path delta, `Done`.
fn worker_frames(prep: &PreparedBenchmark) -> Vec<Vec<u8>> {
    let hello = Hello {
        bench: prep.name.clone(),
        funcs: prep.module.functions.len(),
        scale_bits: 0,
        worker: 0,
    };
    vec![
        encode_frame(FrameKind::Hello, &hello.encode()),
        encode_frame(
            FrameKind::EdgeDelta,
            write_edge_profile_v2(&prep.module, &prep.edges).as_bytes(),
        ),
        encode_frame(
            FrameKind::PathDelta,
            write_path_profile_v2(&prep.module, &prep.truth).as_bytes(),
        ),
        encode_frame(FrameKind::Done, b""),
    ]
}

/// The sequenced (durable-protocol) frame stream one worker would
/// send: `Hello`, a seq edge delta, a seq path delta, `Done`.
fn seq_worker_frames(prep: &PreparedBenchmark) -> Vec<Frame> {
    let hello = Hello {
        bench: prep.name.clone(),
        funcs: prep.module.functions.len(),
        scale_bits: 0,
        worker: 0,
    };
    vec![
        Frame::new(FrameKind::Hello, hello.encode()),
        Frame::new(
            FrameKind::SeqEdgeDelta,
            encode_seq_payload(
                0,
                1,
                write_edge_profile_v2(&prep.module, &prep.edges).as_bytes(),
            ),
        ),
        Frame::new(
            FrameKind::SeqPathDelta,
            encode_seq_payload(
                0,
                2,
                write_path_profile_v2(&prep.module, &prep.truth).as_bytes(),
            ),
        ),
        Frame::new(FrameKind::Done, b"".to_vec()),
    ]
}

/// A reader that yields a fixed prefix of bytes, then times out — the
/// in-memory model of a slowloris peer whose socket deadline fires.
struct StallReader<'a> {
    data: &'a [u8],
    at: usize,
}

impl std::io::Read for StallReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.at >= self.data.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "stalled peer",
            ));
        }
        let n = buf.len().min(self.data.len() - self.at);
        buf[..n].copy_from_slice(&self.data[self.at..self.at + n]);
        self.at += n;
        Ok(n)
    }
}

/// Scratch directory (inside `target/`) for one durable chaos
/// scenario, wiped before use.
fn chaos_scratch(prep: &PreparedBenchmark, site: FaultSite, seed: u64) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/ppp-scratch/chaos")
        .join(format!("{}-{}-{seed}", prep.name, site.name()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the merged snapshot of `agg` through the ingestion ladder with
/// `extra` report entries attached.
fn ladder_from_aggregator(
    prep: &PreparedBenchmark,
    detail: String,
    agg: &Aggregator,
    extra: Vec<(&str, String)>,
    harmless: bool,
    force_fail: bool,
) -> (String, DegradationReport, bool, bool, bool) {
    let module = &prep.module;
    let (snap_edges, snap_paths) = agg.snapshot();
    let have_edges = snap_edges.funcs.iter().any(|f| !f.is_zero());
    let have_paths = snap_paths.funcs.iter().any(|fp| !fp.paths.is_empty());
    let (g, mut report) = ingest_guidance(
        module,
        have_edges.then_some(snap_edges),
        if have_paths { Some(&snap_paths) } else { None },
    );
    for (kind, d) in extra {
        report.push(kind, d);
    }
    let lint = !force_fail && lint_ok(module, g.as_ref());
    let est = static_rung_ok(module, g.as_ref(), &report);
    (detail, report, harmless, lint, est)
}

/// Feeds a (possibly damaged) frame stream through a real 2-shard
/// aggregator, then runs whatever survived the merge through the
/// ingestion ladder. Wire-level damage, refused frames, and a missing
/// `Done` each land as structured report entries.
fn wire_fault_scenario(
    prep: &PreparedBenchmark,
    detail: String,
    stream: &[u8],
) -> (String, DegradationReport, bool, bool, bool) {
    let module = &prep.module;
    let agg = Aggregator::new(
        &prep.name,
        Arc::new(module.clone()),
        AggConfig {
            shards: 2,
            queue_cap: 8,
        },
    );
    let sr = agg.ingest_stream(stream);
    let (snap_edges, snap_paths) = agg.snapshot();
    // The contract under damage: whatever *did* merge is still a valid
    // saturating sum of intact deltas, so it can seed the ladder.
    let harmless = sr.clean() && snap_edges == prep.edges;
    let have_edges = snap_edges.funcs.iter().any(|f| !f.is_zero());
    let have_paths = snap_paths.funcs.iter().any(|fp| !fp.paths.is_empty());
    let (g, mut report) = ingest_guidance(
        module,
        have_edges.then_some(snap_edges),
        if have_paths { Some(&snap_paths) } else { None },
    );
    if let Some((off, e)) = &sr.wire_error {
        report.push(
            "wire-damage",
            format!("stream undecodable at byte {off}: {e}"),
        );
    }
    for (idx, e) in &sr.rejected {
        report.push("frame-rejected", format!("frame #{idx} refused: {e}"));
    }
    if !sr.saw_done {
        report.push(
            "connection-lost",
            format!(
                "stream ended after {} accepted frame(s) without Done",
                sr.frames_accepted()
            ),
        );
    }
    let lint = lint_ok(module, g.as_ref());
    let est_ok = static_rung_ok(module, g.as_ref(), &report);
    (detail, report, harmless, lint, est_ok)
}

/// Runs one fault scenario against a prepared benchmark.
///
/// Never panics: every outcome — including container-level load errors —
/// lands on a ladder rung with a structured report.
pub fn chaos_scenario(
    prep: &PreparedBenchmark,
    site: FaultSite,
    seed: u64,
    options: &PipelineOptions,
) -> ChaosOutcome {
    let plan = FaultPlan::new(site, seed);
    let module = &prep.module;
    // Each arm yields: what the injection did, the surviving guidance,
    // the ladder's report, whether the damage was byte-benign, and
    // whether the static-estimate rung (if hit) held its contract.
    let (detail, report, harmless, lint_clean, estimator_ok) = match site {
        FaultSite::TruncateEdgeBytes | FaultSite::CorruptEdgeBytes => {
            let mut bytes = write_edge_profile_v2(module, &prep.edges).into_bytes();
            let detail = damage_bytes(&plan, &mut bytes);
            match salvage_edge_profile(module, &bytes) {
                Ok(s) => {
                    let harmless = s.is_clean() && s.profile == prep.edges;
                    let (g, mut report) =
                        ingest_guidance(module, Some(s.profile), Some(&prep.truth));
                    record_faults(&mut report, &s.faults);
                    let lint = lint_ok(module, g.as_ref());
                    let est = static_rung_ok(module, g.as_ref(), &report);
                    (detail, report, harmless, lint, est)
                }
                Err(e) => {
                    // Container-level damage: the whole artifact is
                    // untrusted; rebuild everything from paths.
                    let (g, mut report) = ingest_guidance(module, None, Some(&prep.truth));
                    report.push("load-error", e.to_string());
                    let lint = lint_ok(module, g.as_ref());
                    let est = static_rung_ok(module, g.as_ref(), &report);
                    (detail, report, false, lint, est)
                }
            }
        }
        FaultSite::TruncatePathBytes | FaultSite::CorruptPathBytes => {
            // Model a crashed node that persisted only its path profile:
            // the damaged path artifact is the sole guidance source.
            let mut bytes = write_path_profile_v2(module, &prep.truth).into_bytes();
            let detail = damage_bytes(&plan, &mut bytes);
            match salvage_path_profile(module, &bytes) {
                Ok(s) => {
                    let harmless = s.is_clean();
                    let (g, mut report) = ingest_guidance(module, None, Some(&s.profile));
                    record_faults(&mut report, &s.faults);
                    let lint = lint_ok(module, g.as_ref());
                    let est = static_rung_ok(module, g.as_ref(), &report);
                    (detail, report, harmless, lint, est)
                }
                Err(e) => {
                    let (g, mut report) = ingest_guidance(module, None, None);
                    report.push("load-error", e.to_string());
                    let lint = lint_ok(module, g.as_ref());
                    let est = static_rung_ok(module, g.as_ref(), &report);
                    (detail, report, false, lint, est)
                }
            }
        }
        FaultSite::SaturateCounters => {
            let mut edges = prep.edges.clone();
            let hit = plan.saturate_edge_profile(&mut edges);
            let detail = match hit {
                Some(i) => format!("pinned counters of function #{i} at u64::MAX"),
                None => "empty profile; nothing to saturate".to_owned(),
            };
            let (g, report) = ingest_guidance(module, Some(edges), Some(&prep.truth));
            let lint = lint_ok(module, g.as_ref());
            let est = static_rung_ok(module, g.as_ref(), &report);
            (detail, report, hit.is_none(), lint, est)
        }
        FaultSite::HashOverflow => {
            // Shrink the paper's 701×3 table to 7×3 and force hashing
            // everywhere; probe exhaustion must be *counted*, not silent.
            let mut config = ProfilerConfig::ppp();
            config.params.hash_threshold = 0;
            config.params.hash_slots = 7;
            let (_, r) = instrument_and_run(module, &prep.edges, &config, options.seed);
            let lost = r.store.total_lost();
            let mut report = DegradationReport::default();
            if lost > 0 {
                report.final_rung = Some(LadderRung::SalvagedFunctions);
                report.push(
                    "hash-overflow",
                    format!("{lost} dynamic paths lost to probe exhaustion in a 7x3 table"),
                );
            }
            let detail = "ran PPP with a 7-slot hash table (hash threshold 0)".to_owned();
            (detail, report, lost == 0, true, true)
        }
        FaultSite::DropTraceEvents => {
            let tf = plan.trace_faults();
            let opts = RunOptions::default()
                .with_seed(options.seed)
                .traced()
                .with_trace_faults(tf);
            let detail = format!(
                "dropped every {}th edge event and {}th path completion",
                tf.drop_edge_every, tf.drop_path_every
            );
            match run(module, "main", &opts) {
                Ok(r) => {
                    let (de, dp) = r.trace_events_dropped;
                    let (g, mut report) =
                        ingest_guidance(module, r.edge_profile, r.path_profile.as_ref());
                    if de + dp > 0 {
                        report.push(
                            "trace-drops",
                            format!("VM dropped {de} edge event(s), {dp} path completion(s)"),
                        );
                    }
                    let lint = lint_ok(module, g.as_ref());
                    let est = static_rung_ok(module, g.as_ref(), &report);
                    (detail, report, de + dp == 0, lint, est)
                }
                Err(e) => {
                    let (g, mut report) = ingest_guidance(module, None, None);
                    report.push("vm-error", e.to_string());
                    let est = static_rung_ok(module, g.as_ref(), &report);
                    (detail, report, false, true, est)
                }
            }
        }
        FaultSite::KillMidRun => {
            // Budget well inside the run's expected step count, so the
            // profile is cut off with paths still in flight.
            let est = (prep.opt.avg_insts * prep.opt.dynamic_paths.max(1) as f64) as u64;
            let budget = plan.kill_step_budget().min((est / 3).max(50));
            let opts = RunOptions {
                max_steps: budget,
                ..RunOptions::default().with_seed(options.seed).traced()
            };
            let detail = format!("killed the profiled run after {budget} steps");
            match run(module, "main", &opts) {
                Ok(r) => {
                    let killed = r.halt == HaltReason::StepLimit;
                    let (g, mut report) =
                        ingest_guidance(module, r.edge_profile, r.path_profile.as_ref());
                    if killed {
                        report.push(
                            "killed-mid-run",
                            format!("run halted after {budget} steps with paths in flight"),
                        );
                    }
                    let lint = lint_ok(module, g.as_ref());
                    let est = static_rung_ok(module, g.as_ref(), &report);
                    (detail, report, !killed, lint, est)
                }
                Err(e) => {
                    let (g, mut report) = ingest_guidance(module, None, None);
                    report.push("vm-error", e.to_string());
                    let est = static_rung_ok(module, g.as_ref(), &report);
                    (detail, report, false, true, est)
                }
            }
        }
        FaultSite::TruncateFrame => {
            // A worker dying mid-send: the frame stream is cut at a
            // seed-chosen byte, possibly mid-header or mid-payload.
            let mut stream: Vec<u8> = worker_frames(prep).concat();
            let full = stream.len();
            let cut = plan.truncate_bytes(&mut stream);
            let detail = format!("truncated the frame stream at byte {cut} of {full}");
            wire_fault_scenario(prep, detail, &stream)
        }
        FaultSite::CorruptFrame => {
            // Bit rot on the wire: the per-frame CRC (or the header
            // magic/kind/length checks) must refuse the damaged frame.
            let mut stream: Vec<u8> = worker_frames(prep).concat();
            let hits = plan.corrupt_bytes(&mut stream, 4);
            let detail = format!("flipped frame-stream bytes at offsets {hits:?}");
            wire_fault_scenario(prep, detail, &stream)
        }
        FaultSite::KillConnection => {
            // The connection drops between frames: a seed-chosen prefix
            // of whole frames arrives, and `Done` never does.
            let frames = worker_frames(prep);
            let delivered = plan.frames_delivered(frames.len());
            let stream: Vec<u8> = frames[..delivered].concat();
            let detail = format!(
                "killed the worker connection after {delivered} of {} frames",
                frames.len()
            );
            wire_fault_scenario(prep, detail, &stream)
        }
        FaultSite::CrashRestart => {
            // Crash the durable aggregator after a seed-chosen prefix of
            // sequenced frames — no drain, no final checkpoint — then
            // recover from checkpoint + WAL and let the client replay
            // its *entire* stream, as a resuming client would. Exactly
            // the uncrashed snapshot must come out: nothing lost,
            // nothing double-counted.
            let dir = chaos_scratch(prep, site, seed);
            let dur = DurOptions::new(&dir, 1);
            let config = AggConfig {
                shards: 2,
                queue_cap: 8,
            };
            let module_arc = Arc::new(module.clone());
            let frames = seq_worker_frames(prep);
            let delivered = plan.frames_delivered(frames.len());
            let mut entries: Vec<(&str, String)> = Vec::new();
            let mut force_fail = false;
            let crash_recover = || -> Result<(Aggregator, String), String> {
                let (agg, _) =
                    Aggregator::recover(&prep.name, Arc::clone(&module_arc), config, dur.clone())?;
                for f in &frames[..delivered] {
                    agg.ingest_frame(f).map_err(|e| e.to_string())?;
                }
                drop(agg); // the crash: WAL handle gone, no shutdown checkpoint
                let (agg, rec) =
                    Aggregator::recover(&prep.name, Arc::clone(&module_arc), config, dur)?;
                for f in &frames {
                    agg.ingest_frame(f).map_err(|e| e.to_string())?;
                }
                Ok((agg, rec.summary()))
            };
            match crash_recover() {
                Ok((agg, recovery)) => {
                    let (snap_edges, snap_paths) = agg.snapshot();
                    let identical = write_edge_profile_v2(module, &snap_edges)
                        == write_edge_profile_v2(module, &prep.edges)
                        && write_path_profile_v2(module, &snap_paths)
                            == write_path_profile_v2(module, &prep.truth);
                    entries.push((
                        "crash-restart",
                        format!(
                            "crashed after {delivered} of {} frames; recovery: {recovery}",
                            frames.len()
                        ),
                    ));
                    if !identical {
                        entries.push((
                            "recovery-mismatch",
                            "recovered+replayed snapshot differs from the uncrashed one".to_owned(),
                        ));
                        force_fail = true;
                    }
                    let detail = format!(
                        "crashed the durable aggregator after {delivered} of {} frames, recovered, replayed",
                        frames.len()
                    );
                    ladder_from_aggregator(prep, detail, &agg, entries, false, force_fail)
                }
                Err(e) => {
                    // Recovery itself failing is a contract failure.
                    let (g, mut report) = ingest_guidance(module, None, None);
                    report.push("recovery-error", e);
                    let est = static_rung_ok(module, g.as_ref(), &report);
                    let detail = "crash + recovery failed".to_owned();
                    (detail, report, false, false, est)
                }
            }
        }
        FaultSite::StallConnection => {
            // A slowloris peer: the byte stream stalls mid-frame. The
            // frame reader must surface the typed `timed-out` error —
            // never block forever, never mistake the stall for damage.
            let stream: Vec<u8> = seq_worker_frames(prep)
                .iter()
                .flat_map(Frame::encode)
                .collect();
            let cut = plan.stall_offset(stream.len());
            let mut reader = StallReader {
                data: &stream[..cut],
                at: 0,
            };
            let agg = Aggregator::new(
                &prep.name,
                Arc::new(module.clone()),
                AggConfig {
                    shards: 2,
                    queue_cap: 8,
                },
            );
            let mut accepted = 0usize;
            let stall_error = loop {
                match ppp_agg::read_frame(&mut reader) {
                    Ok(Some(f)) => {
                        if agg.ingest_frame(&f).is_ok() {
                            accepted += 1;
                        }
                    }
                    Ok(None) => break None,
                    Err(e) => break Some(e),
                }
            };
            let typed = matches!(stall_error, Some(ReadError::Wire(WireError::TimedOut)));
            let mut entries: Vec<(&str, String)> = Vec::new();
            let force_fail = !typed;
            match &stall_error {
                Some(e) => entries.push((
                    "stalled-connection",
                    format!(
                        "peer stalled at byte {cut} of {}; read surfaced class {:?}: {e}",
                        stream.len(),
                        e.class()
                    ),
                )),
                None => entries.push((
                    "stalled-connection",
                    format!("stall at byte {cut} landed on a frame boundary and read as EOF"),
                )),
            }
            let detail = format!(
                "stalled the connection at byte {cut} of {} ({accepted} whole frame(s) arrived)",
                stream.len()
            );
            ladder_from_aggregator(prep, detail, &agg, entries, false, force_fail)
        }
        FaultSite::ShedOverload => {
            // An overloaded server sheds seed-chosen delta frames with
            // `overloaded` rejections; the client retries each one. The
            // resend after an ambiguous failure is also modeled: every
            // shed frame is delivered *twice* once the server accepts
            // it, and the sequence-watermark dedup must count it once.
            let agg = Aggregator::new(
                &prep.name,
                Arc::new(module.clone()),
                AggConfig {
                    shards: 2,
                    queue_cap: 8,
                },
            );
            let frames = seq_worker_frames(prep);
            let mask = plan.shed_mask(frames.len());
            let mut shed = 0u64;
            let mut duplicates = 0u64;
            let mut error = None;
            for (i, f) in frames.iter().enumerate() {
                let retried =
                    mask[i] && matches!(f.kind, FrameKind::SeqEdgeDelta | FrameKind::SeqPathDelta);
                // First delivery (post-shed retry) applies; the
                // ambiguous resend must dedup.
                let deliveries = if retried {
                    shed += 1;
                    2
                } else {
                    1
                };
                for _ in 0..deliveries {
                    match agg.ingest_frame(f) {
                        Ok(IngestOutcome::Applied) => {}
                        Ok(IngestOutcome::Duplicate) => duplicates += 1,
                        Err(e) => error = Some(e.to_string()),
                    }
                }
            }
            let (snap_edges, _) = agg.snapshot();
            let identical = write_edge_profile_v2(module, &snap_edges)
                == write_edge_profile_v2(module, &prep.edges);
            let mut entries: Vec<(&str, String)> = Vec::new();
            let mut force_fail = false;
            if shed > 0 {
                entries.push((
                    "shed-overload",
                    format!(
                        "{shed} frame(s) shed with overloaded rejections and resent; \
                         {duplicates} ambiguous resend(s) dropped as duplicates"
                    ),
                ));
            }
            if let Some(e) = error {
                entries.push(("shed-error", e));
                force_fail = true;
            }
            if !identical || duplicates != shed {
                entries.push((
                    "shed-mismatch",
                    format!(
                        "snapshot identical={identical}, duplicates={duplicates} of {shed} resends — \
                         a shed or resent delta was lost or double-counted"
                    ),
                ));
                force_fail = true;
            }
            let harmless = shed == 0 && !force_fail;
            let detail = format!(
                "shed {shed} of {} frames under overload, retried each, resent each once more",
                frames.len()
            );
            ladder_from_aggregator(prep, detail, &agg, entries, harmless, force_fail)
        }
        FaultSite::StaleShape => {
            // Load the old artifact against a "newer build": the function
            // order rotated AND blocks were split, so naive name/shape
            // matching cannot place the counters. The matched-stale
            // loader (`ppp-match`) transfers them across the CFG change,
            // and the ladder must land on (at least) the matched-stale
            // rung — never silently on full-profile.
            let bytes = write_edge_profile_v2(module, &prep.edges).into_bytes();
            let mut stale = module.clone();
            stale.functions.rotate_left(1);
            let mut rng = crate::drift::SplitMix64(seed ^ 0x57A1_E5AA);
            crate::drift::split_blocks(&mut stale, &mut rng);
            let detail = format!(
                "rotated and block-split the {}-function module under a persisted profile",
                stale.functions.len()
            );
            match read_edge_profile_matched(module, &stale, &bytes) {
                Ok((p, msr)) => {
                    let harmless = msr.is_lossless();
                    let floor = if harmless {
                        LadderRung::FullProfile
                    } else {
                        LadderRung::MatchedStale
                    };
                    let (g, mut report) = ingest_guidance_at(&stale, Some(p), None, floor);
                    if !harmless {
                        report.push(
                            "stale-shape",
                            format!(
                                "transferred {} of {} blocks across versions ({} funcs renormalized, {} zeroed, {} flow dropped)",
                                msr.matched_blocks,
                                msr.total_old_blocks,
                                msr.renormalized_funcs.len(),
                                msr.zeroed_funcs.len(),
                                msr.dropped_flow
                            ),
                        );
                    }
                    record_faults(&mut report, &msr.stale.faults);
                    let lint = lint_ok(&stale, g.as_ref());
                    let est = static_rung_ok(&stale, g.as_ref(), &report);
                    (detail, report, harmless, lint, est)
                }
                Err(e) => {
                    let (g, mut report) = ingest_guidance(&stale, None, None);
                    report.push("load-error", e.to_string());
                    let lint = lint_ok(&stale, g.as_ref());
                    let est = static_rung_ok(&stale, g.as_ref(), &report);
                    (detail, report, false, lint, est)
                }
            }
        }
        FaultSite::StaleSnapshotMidReopt => {
            // The JIT loop re-optimizes off an aggregator snapshot taken
            // while the serving run was still streaming deltas: replay
            // the workload with delta streaming, deliver only a
            // seed-chosen prefix of the stream, and snapshot. The
            // snapshot is a truthful prefix — but an arbitrary delta
            // boundary need not be flow-conservative, so the ladder must
            // repair or degrade it, never consume it silently.
            let r = run(
                module,
                "main",
                &RunOptions::default()
                    .with_seed(options.seed)
                    .traced()
                    .with_delta_interval(128),
            );
            match r {
                Ok(r) => {
                    let agg = Arc::new(Aggregator::new(
                        &prep.name,
                        Arc::new(module.clone()),
                        AggConfig {
                            shards: 2,
                            queue_cap: 8,
                        },
                    ));
                    let hello = Hello {
                        bench: prep.name.clone(),
                        funcs: module.functions.len(),
                        scale_bits: 0,
                        worker: 0,
                    };
                    let total = r.deltas.len();
                    let delivered = plan.frames_delivered(total);
                    let mut entries: Vec<(&str, String)> = Vec::new();
                    let mut force_fail = false;
                    match ppp_agg::AggClient::open(
                        Arc::new(module.clone()),
                        ppp_agg::InProcSink::new(Arc::clone(&agg)),
                        4,
                        &hello,
                    ) {
                        Ok(mut client) => {
                            for d in r.deltas.iter().take(delivered) {
                                if let Err(e) = client.push_delta(&d.edges, &d.paths) {
                                    entries.push(("stream-error", e));
                                    force_fail = true;
                                    break;
                                }
                            }
                            if let Err(e) = client.finish() {
                                entries.push(("stream-error", e));
                                force_fail = true;
                            }
                        }
                        Err(e) => {
                            entries.push(("stream-error", e));
                            force_fail = true;
                        }
                    }
                    let harmless = delivered == total && !force_fail;
                    if !harmless {
                        entries.push((
                            "stale-snapshot",
                            format!(
                                "re-optimization consumed a snapshot at delta {delivered} of \
                                 {total}; the serving run was still streaming"
                            ),
                        ));
                    }
                    let detail = format!(
                        "snapshotted mid-serve at delta {delivered} of {total} before re-optimizing"
                    );
                    ladder_from_aggregator(prep, detail, &agg, entries, harmless, force_fail)
                }
                Err(e) => {
                    let (g, mut report) = ingest_guidance(module, None, None);
                    report.push("run-error", e.to_string());
                    let lint = lint_ok(module, g.as_ref());
                    let est = static_rung_ok(module, g.as_ref(), &report);
                    ("serving run failed".to_owned(), report, false, lint, est)
                }
            }
        }
        FaultSite::SwapDuringRun => {
            // The host hot-swaps a re-optimized generation while a
            // workload run is in flight: the run completes on the old
            // code (its checkout pins the old Arc), so its profile
            // arrives against the *new* module's shape and must cross
            // generations via ppp-match before it can guide anything.
            let host = ppp_vm::VmHost::new(Arc::new(module.clone()));
            let checkout = host.checkout();
            let mut next_gen = module.clone();
            let (inline_rep, _) = ppp_opt::inline_module_witnessed(
                &mut next_gen,
                &prep.edges,
                &ppp_opt::InlineOptions::default(),
            );
            ppp_core::normalize_module(&mut next_gen);
            host.swap(Arc::new(next_gen.clone()));
            let detail = format!(
                "swapped generation {} in while a generation-{} run was in flight \
                 ({} call sites inlined)",
                host.generation(),
                checkout.generation,
                inline_rep.inlined_sites
            );
            match run(
                &checkout.module,
                "main",
                &RunOptions::default().with_seed(options.seed).traced(),
            ) {
                Ok(r) => {
                    let old_edges = r.edge_profile.unwrap_or_else(|| prep.edges.clone());
                    let (warm, summary) =
                        ppp_jit::transfer_guidance(&checkout.module, &next_gen, &old_edges);
                    let harmless = summary.identity && summary.dropped_flow == 0;
                    let floor = if harmless {
                        LadderRung::FullProfile
                    } else {
                        LadderRung::MatchedStale
                    };
                    let (g, mut report) = ingest_guidance_at(&next_gen, Some(warm), None, floor);
                    if !harmless {
                        report.push(
                            "swap-during-run",
                            format!(
                                "in-flight run finished on stale code after the swap; \
                                 transferred {} pairs ({} renormalized, {} zeroed, {} flow dropped)",
                                summary.pairs,
                                summary.renormalized_funcs,
                                summary.zeroed_funcs,
                                summary.dropped_flow
                            ),
                        );
                    }
                    let lint = lint_ok(&next_gen, g.as_ref());
                    let est = static_rung_ok(&next_gen, g.as_ref(), &report);
                    (detail, report, harmless, lint, est)
                }
                Err(e) => {
                    let (g, mut report) = ingest_guidance(&next_gen, None, None);
                    report.push("run-error", e.to_string());
                    let lint = lint_ok(&next_gen, g.as_ref());
                    let est = static_rung_ok(&next_gen, g.as_ref(), &report);
                    (detail, report, false, lint, est)
                }
            }
        }
    };
    let verdict = if harmless {
        ChaosVerdict::Harmless
    } else if report.degraded() {
        ChaosVerdict::Reported
    } else {
        ChaosVerdict::Silent
    };
    // Serve-tier faults leave a post-mortem: the scenario-keyed reason
    // makes the filename deterministic, so parallel and sequential
    // sweeps produce the same artifact set.
    let flight_dump = site
        .dumps_flight_recorder()
        .then(|| ppp_obs::flight_dump(&format!("chaos-{}-{}-{seed}", prep.name, site.name())))
        .flatten();
    ChaosOutcome {
        benchmark: prep.name.clone(),
        site,
        seed,
        detail,
        report,
        lint_clean,
        estimator_ok,
        verdict,
        flight_dump,
    }
}

/// Sweeps every fault site over one prepared benchmark.
pub fn chaos_prepared(
    prep: &PreparedBenchmark,
    seed: u64,
    options: &PipelineOptions,
) -> Vec<ChaosOutcome> {
    FaultSite::ALL
        .iter()
        .map(|&site| chaos_scenario(prep, site, seed, options))
        .collect()
}

/// Prepares one suite benchmark and sweeps every fault site over it.
pub fn chaos_benchmark(
    entry: &ppp_workloads::SuiteEntry,
    seed: u64,
    options: &PipelineOptions,
) -> Result<Vec<ChaosOutcome>, PipelineError> {
    let prep = prepare_benchmark(entry, options)?;
    Ok(chaos_prepared(&prep, seed, options))
}

/// Sweeps every fault site across the suite (or one named benchmark).
///
/// Progress goes to stderr. Returns every scenario outcome in suite ×
/// site order. `options.workers > 1` fans the benchmarks over that many
/// threads; every scenario is seed-deterministic and results are
/// collected in suite order, so the output is byte-identical to a
/// sequential sweep.
pub fn chaos_suite(
    bench: Option<&str>,
    seed: u64,
    options: &PipelineOptions,
) -> Result<Vec<ChaosOutcome>, PipelineError> {
    let suite = spec2000_suite();
    let entries: Vec<_> = suite
        .iter()
        .filter(|e| bench.is_none_or(|b| e.spec.name == b))
        .collect();
    let per_bench = ppp_agg::run_indexed(options.workers, entries.len(), |i| {
        let entry = entries[i];
        ppp_obs::global().info(
            "chaos.progress",
            &[("bench", ppp_obs::Value::from(entry.spec.name.as_str()))],
        );
        chaos_benchmark(entry, seed, options)
    });
    let mut outcomes = Vec::new();
    for r in per_bench {
        outcomes.extend(r?);
    }
    Ok(outcomes)
}

/// Renders chaos outcomes as a text table.
pub fn chaos_table(outcomes: &[ChaosOutcome]) -> String {
    let mut t = Table::new([
        "Benchmark",
        "Fault site",
        "Verdict",
        "Rung",
        "Lint",
        "Detail",
    ]);
    for o in outcomes {
        t.row([
            o.benchmark.clone(),
            o.site.to_string(),
            o.verdict.to_string(),
            o.report.rung().to_string(),
            if o.lint_clean { "clean" } else { "DIRTY" }.to_owned(),
            o.detail.clone(),
        ]);
    }
    let failures = outcomes.iter().filter(|o| !o.ok()).count();
    format!(
        "Chaos sweep: {} scenarios, {} reported, {} harmless, {} FAILED\n{}",
        outcomes.len(),
        outcomes
            .iter()
            .filter(|o| o.verdict == ChaosVerdict::Reported)
            .count(),
        outcomes
            .iter()
            .filter(|o| o.verdict == ChaosVerdict::Harmless)
            .count(),
        failures,
        t.render()
    )
}

/// Renders chaos outcomes as a JSON array.
pub fn chaos_json(outcomes: &[ChaosOutcome]) -> String {
    let body = outcomes
        .iter()
        .map(ChaosOutcome::to_json)
        .collect::<Vec<_>>()
        .join(",");
    format!("[{body}]")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PipelineOptions {
        PipelineOptions {
            scale: 0.02,
            ..PipelineOptions::default()
        }
    }

    #[test]
    fn chaos_sweep_upholds_the_contract_on_one_benchmark() {
        let suite = spec2000_suite();
        let entry = suite.iter().find(|e| e.spec.name == "mcf").unwrap();
        let options = tiny();
        let prep = prepare_benchmark(entry, &options).expect("pipeline completes");
        let outcomes = chaos_prepared(&prep, 701, &options);
        assert_eq!(outcomes.len(), FaultSite::ALL.len());
        for o in &outcomes {
            assert!(
                o.ok(),
                "{} {}: silent or lint-dirty\n{}",
                o.benchmark,
                o.site,
                o.report
            );
        }
        // The sweep must actually bite: most sites take effect.
        let reported = outcomes
            .iter()
            .filter(|o| o.verdict == ChaosVerdict::Reported)
            .count();
        assert!(reported >= 5, "only {reported} scenarios took effect");
        // The stale-shape site routes through the cross-version matcher:
        // the CFG drift is real, so the ladder must report (at least)
        // the matched-stale rung — never a silent full-profile claim.
        let stale = outcomes
            .iter()
            .find(|o| o.site == FaultSite::StaleShape)
            .unwrap();
        assert_ne!(stale.verdict, ChaosVerdict::Silent);
        assert!(
            stale.report.rung() >= LadderRung::MatchedStale,
            "stale-shape landed on {}",
            stale.report.rung()
        );
    }

    #[test]
    fn static_estimate_rung_supplies_live_guidance() {
        // Force total guidance loss, the way a load-error scenario does,
        // and check the contract the sweep gates on: rung 5 yields a
        // non-zero conservative estimate and names the estimator.
        let suite = spec2000_suite();
        let entry = suite.iter().find(|e| e.spec.name == "mcf").unwrap();
        let prep = prepare_benchmark(entry, &tiny()).expect("pipeline completes");
        let (g, report) = ingest_guidance(&prep.module, None, None);
        assert_eq!(report.rung(), LadderRung::StaticEstimate);
        assert!(static_rung_ok(&prep.module, g.as_ref(), &report));
        assert!(lint_ok(&prep.module, g.as_ref()));
        // Dropping the guidance or the estimator event must fail it.
        assert!(!static_rung_ok(&prep.module, None, &report));
        let mut scrubbed = report.clone();
        scrubbed.events.retain(|e| !e.detail.contains("ppp-est"));
        assert!(!static_rung_ok(&prep.module, g.as_ref(), &scrubbed));
    }

    #[test]
    fn serve_tier_faults_leave_flight_recorder_dumps() {
        use ppp_obs::json::{self, Json};
        let _obs = crate::obs_test_lock();
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/ppp-scratch/chaos-flight");
        let _ = std::fs::remove_dir_all(&dir);
        ppp_obs::install_flight(&dir, 128);
        let suite = spec2000_suite();
        let entry = suite.iter().find(|e| e.spec.name == "mcf").unwrap();
        let options = tiny();
        let prep = prepare_benchmark(entry, &options).expect("pipeline completes");
        for site in FaultSite::ALL
            .into_iter()
            .filter(|s| s.dumps_flight_recorder())
        {
            let o = chaos_scenario(&prep, site, 701, &options);
            assert_ne!(o.verdict, ChaosVerdict::Silent, "{site}");
            let path = o
                .flight_dump
                .unwrap_or_else(|| panic!("{site}: no dump artifact"));
            let doc = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{site}: unreadable dump {path:?}: {e}"));
            let v = json::parse(&doc).expect("dump parses");
            assert_eq!(
                v.get("schema").and_then(Json::as_str),
                Some(ppp_obs::FLIGHT_SCHEMA)
            );
            assert_eq!(
                v.get("reason").and_then(Json::as_str),
                Some(format!("chaos-mcf-{}-701", site.name()).as_str())
            );
        }
        // Sites outside the serve tier never write dumps.
        let o = chaos_scenario(&prep, FaultSite::SaturateCounters, 701, &options);
        assert_eq!(o.flight_dump, None);
    }

    #[test]
    fn chaos_is_deterministic() {
        let suite = spec2000_suite();
        let entry = suite.iter().find(|e| e.spec.name == "mcf").unwrap();
        let options = tiny();
        let prep = prepare_benchmark(entry, &options).expect("pipeline completes");
        let a = chaos_prepared(&prep, 42, &options);
        let b = chaos_prepared(&prep, 42, &options);
        assert_eq!(chaos_json(&a), chaos_json(&b));
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_sequential() {
        // The --workers contract: fan-out changes wall-clock only.
        let sequential = PipelineOptions {
            scale: 0.01,
            workers: 1,
            ..PipelineOptions::default()
        };
        let parallel = PipelineOptions {
            workers: 4,
            ..sequential
        };
        let a = chaos_suite(None, 701, &sequential).expect("sequential sweep");
        let b = chaos_suite(None, 701, &parallel).expect("parallel sweep");
        assert_eq!(a.len(), FaultSite::ALL.len() * spec2000_suite().len());
        assert_eq!(chaos_json(&a), chaos_json(&b));
        assert_eq!(chaos_table(&a), chaos_table(&b));
    }

    #[test]
    fn renderers_cover_every_scenario() {
        let suite = spec2000_suite();
        let entry = suite.iter().find(|e| e.spec.name == "mcf").unwrap();
        let options = tiny();
        let prep = prepare_benchmark(entry, &options).expect("pipeline completes");
        let outcomes = chaos_prepared(&prep, 7, &options);
        let table = chaos_table(&outcomes);
        let json = chaos_json(&outcomes);
        for site in FaultSite::ALL {
            assert!(table.contains(site.name()), "table missing {site}");
            assert!(json.contains(site.name()), "json missing {site}");
        }
        assert!(json.starts_with('[') && json.ends_with(']'));
    }
}
