//! Per-routine inspection of an instrumentation plan: which techniques
//! fired where, and what each routine's instrumentation looks like.

use crate::format::{pct, Table};
use crate::pipeline::PipelineOptions;
use ppp_core::{instrument_module, ProfilerConfig, SkipReason};
use ppp_vm::{run, RunOptions};
use ppp_workloads::{generate, SuiteEntry};

/// Renders a per-routine breakdown of `profiler`'s plan for `entry`'s
/// benchmark (after the usual optimize → profile pipeline phases).
pub fn inspect_benchmark(
    entry: &SuiteEntry,
    profiler: &ProfilerConfig,
    options: &PipelineOptions,
) -> String {
    let spec = entry.spec.clone().scaled(options.scale);
    let mut module = generate(&spec);
    ppp_opt::optimize_module(&mut module);
    ppp_core::normalize_module(&mut module);
    let traced = run(
        &module,
        "main",
        &RunOptions::default().with_seed(options.seed).traced(),
    )
    .expect("benchmark runs");
    let edges = traced.edge_profile.expect("traced");
    let plan = instrument_module(&module, Some(&edges), profiler);

    let mut t = Table::new([
        "Routine",
        "Blocks",
        "Paths(N)",
        "Cold edges",
        "Table",
        "SAC iters",
        "Disc.loops",
        "LC cov",
        "Status",
    ]);
    for fp in &plan.funcs {
        let f = module.function(fp.func);
        let status = match (&fp.skip_reason, fp.instrumented) {
            (Some(SkipReason::NeverExecuted), _) => "skip: never ran".to_owned(),
            (Some(SkipReason::HighCoverage(c)), _) => format!("skip: LC ({})", pct(*c)),
            (Some(SkipReason::AllObvious), _) => "skip: all obvious".to_owned(),
            (Some(SkipReason::NoCountedPaths), _) => "skip: all cold".to_owned(),
            (None, true) => "instrumented".to_owned(),
            (None, false) => "-".to_owned(),
        };
        let table = if !fp.instrumented {
            "-".to_owned()
        } else if fp.uses_hash {
            "hash 701x3".to_owned()
        } else {
            "array".to_owned()
        };
        t.row([
            f.name.clone(),
            f.blocks.len().to_string(),
            fp.n_paths.to_string(),
            format!(
                "{}/{}",
                fp.cold.iter().filter(|&&c| c).count(),
                fp.cold.len()
            ),
            table,
            fp.sac_iterations.to_string(),
            fp.disconnected_loops.to_string(),
            pct(fp.lc_coverage),
            status,
        ]);
    }
    format!(
        "{} plan for {} (scale {}): {} of {} routines instrumented, {} static prof insts\n{}",
        profiler.label(),
        spec.name,
        options.scale,
        plan.instrumented_count(),
        plan.funcs.len(),
        plan.static_prof_insts(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_workloads::spec2000_suite;

    #[test]
    fn inspect_renders_for_each_profiler() {
        let suite = spec2000_suite();
        let entry = suite.iter().find(|e| e.spec.name == "mcf").unwrap();
        let opts = PipelineOptions {
            scale: 0.02,
            ..PipelineOptions::default()
        };
        for config in [
            ProfilerConfig::pp(),
            ProfilerConfig::tpp(),
            ProfilerConfig::ppp(),
        ] {
            let out = inspect_benchmark(entry, &config, &opts);
            assert!(out.contains("main"));
            assert!(out.contains("Routine"));
            assert!(out.contains(&config.label()));
        }
    }
}
