//! Static-estimate quality sweep: `ppp-est` vs. measured profiles.
//!
//! Backs the `repro predict` subcommand. Rung 5 of the degradation
//! ladder guides instrumentation with a profile synthesized by
//! `ppp-est` (Ball–Larus branch heuristics + loop-nest frequency
//! propagation). This sweep measures how much that synthesis is worth:
//! for every benchmark, the heuristic estimate and a *uniform* baseline
//! (equal branch probabilities pushed through the identical propagation
//! machinery) each drive the potential-flow path estimator, and both are
//! scored against the benchmark's exact measured ground truth with the
//! branch-flow metric.
//!
//! Two gates are checked and surfaced in [`PredictOutcome::ok`] /
//! [`predict_json`]:
//!
//! * every estimate satisfies PPP308 flow conservation (by
//!   construction — a violation here is a `ppp-est` bug);
//! * across the suite, the heuristics must strictly beat the uniform
//!   baseline on at least 14 of the 18 benchmarks ([`WINS_REQUIRED`]).
//!
//! Everything is deterministic: the workloads and the estimator have no
//! randomness, and `--seed` only selects the measured truth run.

use crate::format::Table;
use crate::pipeline::{
    estimate_options, prepare_benchmark, PipelineError, PipelineOptions, PreparedBenchmark,
};
use ppp_core::{accuracy, edge_profile_coverage, edge_profile_estimate, FlowKind};
use ppp_est::{estimate_module, EstOptions};
use ppp_ir::ModuleEdgeProfile;
use ppp_lint::Code;
use ppp_workloads::spec2000_suite;

/// Suite-level gate: of 18 benchmarks, the heuristic estimate must
/// strictly beat the uniform baseline on at least 14. Scaled
/// proportionally when the sweep runs on a subset.
pub const WINS_REQUIRED: (usize, usize) = (14, 18);

/// How many wins a sweep over `n` benchmarks needs to pass the gate.
pub fn wins_required(n: usize) -> usize {
    (n * WINS_REQUIRED.0)
        .div_ceil(WINS_REQUIRED.1)
        .max(1)
        .min(n)
}

/// Everything measured for one benchmark.
#[derive(Clone, Debug)]
pub struct PredictOutcome {
    /// Benchmark name.
    pub benchmark: String,
    /// The heuristic estimate passes PPP308 flow conservation (must
    /// always hold; checked, not assumed).
    pub conservative: bool,
    /// Two-way branches predicted.
    pub branches: u64,
    /// Natural loops whose trip multiplier was computed.
    pub loops: u64,
    /// Functions zeroed for lack of a reachable return (PPP504).
    pub zeroed_funcs: u64,
    /// PPP501..PPP504 finding counts, in code order.
    pub diag_counts: [usize; 4],
    /// Estimator accuracy driven by the heuristic static estimate.
    pub est_accuracy: f64,
    /// Estimator accuracy driven by the uniform baseline.
    pub uniform_accuracy: f64,
    /// Coverage with the heuristic estimate.
    pub est_coverage: f64,
    /// Coverage with the uniform baseline.
    pub uniform_coverage: f64,
}

impl PredictOutcome {
    /// Accuracy the heuristics add over flat 50/50 branch weights.
    pub fn lift(&self) -> f64 {
        self.est_accuracy - self.uniform_accuracy
    }

    /// `true` when the heuristics strictly beat the uniform baseline on
    /// this benchmark.
    pub fn beats_uniform(&self) -> bool {
        self.est_accuracy > self.uniform_accuracy
    }

    /// The per-benchmark gate: conservation. (The win ratio is a
    /// suite-level gate; a single lost benchmark is not a failure.)
    pub fn ok(&self) -> bool {
        self.conservative
    }

    /// One outcome as a JSON object (stable keys).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"benchmark\":\"{}\",\"ok\":{},\"conservative\":{},\
             \"beats_uniform\":{},\"branches\":{},\"loops\":{},\
             \"zeroed_funcs\":{},\
             \"diagnostics\":{{\"ppp501\":{},\"ppp502\":{},\"ppp503\":{},\"ppp504\":{}}},\
             \"est_accuracy\":{:.4},\"uniform_accuracy\":{:.4},\"lift\":{:.4},\
             \"est_coverage\":{:.4},\"uniform_coverage\":{:.4}}}",
            self.benchmark,
            self.ok(),
            self.conservative,
            self.beats_uniform(),
            self.branches,
            self.loops,
            self.zeroed_funcs,
            self.diag_counts[0],
            self.diag_counts[1],
            self.diag_counts[2],
            self.diag_counts[3],
            self.est_accuracy,
            self.uniform_accuracy,
            self.lift(),
            self.est_coverage,
            self.uniform_coverage,
        )
    }
}

/// Scores the static estimates for one prepared benchmark.
pub fn predict_prepared(prep: &PreparedBenchmark, options: &PipelineOptions) -> PredictOutcome {
    let obs = ppp_obs::global();
    let mut span = obs.span("predict.bench");
    span.set("bench", prep.name.as_str());
    let module = &prep.module;
    let est_opts = estimate_options(&prep.truth, options);

    let (est, report) = estimate_module(module, &EstOptions::default());
    let (uniform, _) = estimate_module(
        module,
        &EstOptions {
            uniform: true,
            ..EstOptions::default()
        },
    );
    let conservative = est.is_flow_conservative(module) && est.shape_matches(module);
    let diag_counts = [
        Code::IrreducibleRegionCapped,
        Code::HeuristicConflict,
        Code::EstimateRepaired,
        Code::EstimateZeroed,
    ]
    .map(|c| {
        report
            .diagnostics
            .diagnostics
            .iter()
            .filter(|d| d.code == c)
            .count()
    });

    // Both profiles drive the same potential-flow path estimator and are
    // scored against the measured truth with the branch-flow metric.
    let score = |profile: &ModuleEdgeProfile| {
        let path_est = edge_profile_estimate(
            module,
            profile,
            FlowKind::Potential,
            options.metric,
            &est_opts,
        );
        let acc = accuracy(&prep.truth, &path_est, options.metric, options.hot_ratio);
        let cov = edge_profile_coverage(module, profile, &prep.truth, options.metric).ratio();
        (acc, cov)
    };
    let (est_accuracy, est_coverage) = score(&est);
    let (uniform_accuracy, uniform_coverage) = score(&uniform);

    let outcome = PredictOutcome {
        benchmark: prep.name.clone(),
        conservative,
        branches: report.stats.branches,
        loops: report.stats.loops,
        zeroed_funcs: report.stats.zeroed_funcs,
        diag_counts,
        est_accuracy,
        uniform_accuracy,
        est_coverage,
        uniform_coverage,
    };
    span.set("accuracy", outcome.est_accuracy);
    span.set("lift", outcome.lift());
    span.set("beats_uniform", outcome.beats_uniform());
    outcome
}

/// Prepares one suite benchmark and scores its static estimates.
pub fn predict_benchmark(
    entry: &ppp_workloads::SuiteEntry,
    options: &PipelineOptions,
) -> Result<PredictOutcome, PipelineError> {
    let prep = prepare_benchmark(entry, options)?;
    Ok(predict_prepared(&prep, options))
}

/// Scores static-estimate quality across the suite (or one named
/// benchmark). `options.workers > 1` fans benchmarks over threads;
/// results are collected in suite order, so the output is byte-identical
/// to a sequential sweep.
pub fn predict_suite(
    bench: Option<&str>,
    options: &PipelineOptions,
) -> Result<Vec<PredictOutcome>, PipelineError> {
    let suite = spec2000_suite();
    let entries: Vec<_> = suite
        .iter()
        .filter(|e| bench.is_none_or(|b| e.spec.name == b))
        .collect();
    let per_bench = ppp_agg::run_indexed(options.workers, entries.len(), |i| {
        let entry = entries[i];
        ppp_obs::global().info(
            "predict.progress",
            &[("bench", ppp_obs::Value::from(entry.spec.name.as_str()))],
        );
        predict_benchmark(entry, options)
    });
    per_bench.into_iter().collect()
}

/// The suite-level verdict: every estimate conservative and enough
/// benchmarks where the heuristics beat the baseline.
pub fn predict_gate(outcomes: &[PredictOutcome]) -> bool {
    let wins = outcomes.iter().filter(|o| o.beats_uniform()).count();
    outcomes.iter().all(PredictOutcome::ok) && wins >= wins_required(outcomes.len())
}

/// Renders predict outcomes as a text table.
pub fn predict_table(outcomes: &[PredictOutcome]) -> String {
    let mut t = Table::new([
        "Benchmark",
        "Acc est",
        "Acc uniform",
        "Lift",
        "Cov est",
        "Branches",
        "Loops",
        "PPP50x",
    ]);
    for o in outcomes {
        t.row([
            o.benchmark.clone(),
            format!("{:.3}", o.est_accuracy),
            format!("{:.3}", o.uniform_accuracy),
            format!("{:+.3}", o.lift()),
            format!("{:.3}", o.est_coverage),
            o.branches.to_string(),
            o.loops.to_string(),
            format!(
                "{}/{}/{}/{}",
                o.diag_counts[0], o.diag_counts[1], o.diag_counts[2], o.diag_counts[3]
            ),
        ]);
    }
    let wins = outcomes.iter().filter(|o| o.beats_uniform()).count();
    let mean_lift = if outcomes.is_empty() {
        0.0
    } else {
        outcomes.iter().map(PredictOutcome::lift).sum::<f64>() / outcomes.len() as f64
    };
    format!(
        "Predict sweep: {} benchmarks, heuristics beat uniform on {} (need {}), \
         mean lift {:+.4}, gate {}\n{}",
        outcomes.len(),
        wins,
        wins_required(outcomes.len()),
        mean_lift,
        if predict_gate(outcomes) {
            "PASS"
        } else {
            "FAIL"
        },
        t.render()
    )
}

/// Renders predict outcomes as a JSON document (stable keys; consumed by
/// the CI estimate-quality artifact `PREDICT_ci.json`).
pub fn predict_json(outcomes: &[PredictOutcome], seed: u64) -> String {
    let body = outcomes
        .iter()
        .map(PredictOutcome::to_json)
        .collect::<Vec<_>>()
        .join(",");
    let wins = outcomes.iter().filter(|o| o.beats_uniform()).count();
    format!(
        "{{\"kind\":\"ppp-predict\",\"seed\":{seed},\"benchmarks\":{},\
         \"wins\":{wins},\"wins_required\":{},\"ok\":{},\"outcomes\":[{body}]}}",
        outcomes.len(),
        wins_required(outcomes.len()),
        predict_gate(outcomes),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PipelineOptions {
        PipelineOptions {
            scale: 0.02,
            ..PipelineOptions::default()
        }
    }

    #[test]
    fn predict_mcf_holds_invariants() {
        let out = predict_suite(Some("mcf"), &tiny()).expect("sweep completes");
        assert_eq!(out.len(), 1);
        let o = &out[0];
        assert!(o.ok(), "not conservative: {o:?}");
        assert!(o.branches > 0 && o.loops > 0, "estimator saw no CFG: {o:?}");
        // Accuracies are probabilities of hot-set agreement.
        for a in [
            o.est_accuracy,
            o.uniform_accuracy,
            o.est_coverage,
            o.uniform_coverage,
        ] {
            assert!((0.0..=1.0).contains(&a), "score out of range: {o:?}");
        }
    }

    #[test]
    fn predict_is_deterministic() {
        let opts = tiny();
        let a = predict_suite(Some("vpr"), &opts).expect("sweep completes");
        let b = predict_suite(Some("vpr"), &opts).expect("sweep completes");
        assert_eq!(predict_json(&a, 701), predict_json(&b, 701));
    }

    #[test]
    fn win_threshold_scales_with_subset_size() {
        assert_eq!(wins_required(18), 14);
        assert_eq!(wins_required(1), 1);
        assert_eq!(wins_required(2), 2);
        assert_eq!(wins_required(9), 7);
        assert_eq!(wins_required(0), 0);
    }

    #[test]
    fn heuristics_beat_uniform_on_most_of_the_suite() {
        // The headline gate, at test scale: ≥14/18 benchmarks where the
        // heuristic estimate scores strictly above the uniform baseline.
        let opts = PipelineOptions {
            scale: 0.01,
            ..PipelineOptions::default()
        };
        let out = predict_suite(None, &opts).expect("sweep completes");
        assert_eq!(out.len(), spec2000_suite().len());
        assert!(predict_gate(&out), "gate failed:\n{}", predict_table(&out));
    }
}
