//! Versioned perf-baseline artifacts (`repro bench`).
//!
//! One run of the 18-benchmark suite produces a [`BenchBaseline`]: the
//! Figure 9–13 quantities (overhead, accuracy, coverage,
//! instrumented-path fractions) plus wall-time and cost units, per
//! benchmark and per profiler, serialized as JSON with an explicit
//! `schema_version`. Baselines are committed to the repo
//! (`BENCH_seed.json`) and diffed in CI: [`compare_baselines`] flags any
//! regression beyond a threshold in the *deterministic* quantities
//! (overhead is measured in cost-model units, and accuracy/coverage are
//! seed-determined, so the gate is machine-independent); wall-time is
//! recorded for trend-watching but never gated.

use crate::pipeline::{run_benchmark, BenchmarkRun, PipelineOptions};
use ppp_obs::json::{self, Json};
use ppp_obs::Value;
use ppp_workloads::{spec2000_suite, BenchClass};
use std::fmt::Write as _;
use std::time::Instant;

/// Version of the baseline artifact schema. Bump when a field changes
/// meaning; `compare_baselines` refuses to diff across versions.
pub const BASELINE_SCHEMA_VERSION: u64 = 1;

/// The artifact's `kind` discriminator.
pub const BASELINE_KIND: &str = "ppp-bench-baseline";

/// One profiler's measurements on one benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchProfilerRecord {
    /// Profiler label ("PP", "TPP", "PPP").
    pub label: String,
    /// Runtime overhead vs. the uninstrumented baseline (0.05 = 5%).
    pub overhead: f64,
    /// Accuracy (§6.1).
    pub accuracy: f64,
    /// Coverage (§6.2).
    pub coverage: f64,
    /// Fraction of dynamic paths measured.
    pub measured: f64,
    /// Fraction of dynamic paths hash-counted.
    pub hashed: f64,
    /// Paths lost to hash-probe exhaustion.
    pub lost_paths: u64,
}

/// One benchmark's row of the baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name.
    pub name: String,
    /// "INT" or "FP".
    pub class: String,
    /// Wall-clock time of the full pipeline run, milliseconds
    /// (machine-dependent; recorded, never gated).
    pub wall_ms: f64,
    /// Uninstrumented cost units of the optimized code (deterministic).
    pub baseline_cost: u64,
    /// Total dynamic paths of the optimized code.
    pub dynamic_paths: u64,
    /// Distinct paths observed.
    pub distinct_paths: u64,
    /// Degradation-ladder rung the guidance profile settled on.
    pub degradation_rung: String,
    /// Per-profiler measurements, in pipeline order.
    pub profilers: Vec<BenchProfilerRecord>,
}

/// A full perf baseline: suite configuration plus per-benchmark records.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchBaseline {
    /// Schema version ([`BASELINE_SCHEMA_VERSION`] when freshly built).
    pub schema_version: u64,
    /// VM seed the suite ran with.
    pub seed: u64,
    /// Workload scale factor.
    pub scale: f64,
    /// Hot-path threshold.
    pub hot_ratio: f64,
    /// One record per benchmark that completed.
    pub benchmarks: Vec<BenchRecord>,
}

impl BenchBaseline {
    /// Suite-total wall time in milliseconds (machine-dependent;
    /// recorded in the artifact as a derived convenience column,
    /// compared as a trend, never gated).
    pub fn total_wall_ms(&self) -> f64 {
        self.benchmarks.iter().map(|r| r.wall_ms).sum()
    }
}

fn class_name(c: BenchClass) -> &'static str {
    match c {
        BenchClass::Int => "INT",
        BenchClass::Fp => "FP",
    }
}

fn record_from_run(run: &BenchmarkRun, wall_ms: f64) -> BenchRecord {
    BenchRecord {
        name: run.name.clone(),
        class: class_name(run.class).to_owned(),
        wall_ms,
        baseline_cost: run.opt.cost,
        dynamic_paths: run.opt.dynamic_paths,
        distinct_paths: run.opt.distinct_paths as u64,
        degradation_rung: run.degradation.rung().name().to_owned(),
        profilers: run
            .profilers
            .iter()
            .map(|p| BenchProfilerRecord {
                label: p.label.clone(),
                overhead: p.overhead,
                accuracy: p.accuracy,
                coverage: p.coverage,
                measured: p.fraction.measured,
                hashed: p.fraction.hashed,
                lost_paths: p.lost_paths,
            })
            .collect(),
    }
}

/// Runs the suite (or one benchmark) and builds a baseline artifact.
///
/// Per-benchmark wall-time is measured here, around the whole pipeline
/// run; everything else comes from the run itself. Failed benchmarks are
/// reported through the observation sink and skipped, matching
/// [`crate::run_suite`]. `options.workers > 1` fans the benchmarks over
/// that many threads; every gated quantity is seed-deterministic and
/// records are collected in suite order, so only `wall_ms` (recorded,
/// never gated) can differ from a sequential run.
pub fn collect_baseline(only: Option<&str>, options: &PipelineOptions) -> BenchBaseline {
    let suite = spec2000_suite();
    let entries: Vec<_> = suite
        .iter()
        .filter(|e| only.is_none_or(|b| e.spec.name == b))
        .collect();
    let records = ppp_agg::run_indexed(options.workers, entries.len(), |i| {
        let entry = entries[i];
        let obs = ppp_obs::global();
        obs.info(
            "bench.progress",
            &[("bench", Value::from(entry.spec.name.as_str()))],
        );
        let started = Instant::now();
        match run_benchmark(entry, options) {
            Ok(run) => {
                let wall_ms = started.elapsed().as_secs_f64() * 1e3;
                obs.metrics().observe(
                    "ppp_bench_wall_ms",
                    &[("bench", &entry.spec.name)],
                    wall_ms as u64,
                );
                Some(record_from_run(&run, wall_ms))
            }
            Err(err) => {
                obs.event(
                    ppp_obs::Level::Error,
                    "bench.benchmark_failed",
                    &[
                        ("bench", Value::from(entry.spec.name.as_str())),
                        ("error", Value::from(err.to_string())),
                    ],
                );
                None
            }
        }
    });
    let benchmarks = records.into_iter().flatten().collect();
    BenchBaseline {
        schema_version: BASELINE_SCHEMA_VERSION,
        seed: options.seed,
        scale: options.scale,
        hot_ratio: options.hot_ratio,
        benchmarks,
    }
}

/// Serializes a baseline as its canonical JSON artifact.
pub fn baseline_json(b: &BenchBaseline) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema_version\":{},\"kind\":\"{BASELINE_KIND}\",\"seed\":{},\"scale\":{},\"hot_ratio\":{},\"total_wall_ms\":{},\"benchmarks\":[",
        b.schema_version,
        b.seed,
        json::fmt_f64(b.scale),
        json::fmt_f64(b.hot_ratio),
        json::fmt_f64(b.total_wall_ms())
    );
    for (i, r) in b.benchmarks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"class\":\"{}\",\"wall_ms\":{},\"baseline_cost\":{},\"dynamic_paths\":{},\"distinct_paths\":{},\"degradation_rung\":\"{}\",\"profilers\":[",
            json::escape(&r.name),
            json::escape(&r.class),
            json::fmt_f64(r.wall_ms),
            r.baseline_cost,
            r.dynamic_paths,
            r.distinct_paths,
            json::escape(&r.degradation_rung)
        );
        for (j, p) in r.profilers.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":\"{}\",\"overhead\":{},\"accuracy\":{},\"coverage\":{},\"measured\":{},\"hashed\":{},\"lost_paths\":{}}}",
                json::escape(&p.label),
                json::fmt_f64(p.overhead),
                json::fmt_f64(p.accuracy),
                json::fmt_f64(p.coverage),
                json::fmt_f64(p.measured),
                json::fmt_f64(p.hashed),
                p.lost_paths
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn need_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number {key:?}"))
}

fn need_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer {key:?}"))
}

fn need_str(v: &Json, key: &str) -> Result<String, String> {
    Ok(v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string {key:?}"))?
        .to_owned())
}

/// Parses a baseline artifact back from its JSON form.
///
/// # Errors
///
/// Returns a message for malformed documents or a wrong `kind`; an
/// unknown `schema_version` parses (so CI can print a useful diff error)
/// but [`compare_baselines`] will refuse it.
pub fn baseline_from_json(doc: &str) -> Result<BenchBaseline, String> {
    let v = json::parse(doc).map_err(|e| e.to_string())?;
    let kind = need_str(&v, "kind")?;
    if kind != BASELINE_KIND {
        return Err(format!("not a {BASELINE_KIND} artifact (kind={kind:?})"));
    }
    let mut benchmarks = Vec::new();
    for r in v
        .get("benchmarks")
        .and_then(Json::as_arr)
        .ok_or("missing \"benchmarks\" array")?
    {
        let mut profilers = Vec::new();
        for p in r
            .get("profilers")
            .and_then(Json::as_arr)
            .ok_or("missing \"profilers\" array")?
        {
            profilers.push(BenchProfilerRecord {
                label: need_str(p, "label")?,
                overhead: need_f64(p, "overhead")?,
                accuracy: need_f64(p, "accuracy")?,
                coverage: need_f64(p, "coverage")?,
                measured: need_f64(p, "measured")?,
                hashed: need_f64(p, "hashed")?,
                lost_paths: need_u64(p, "lost_paths")?,
            });
        }
        benchmarks.push(BenchRecord {
            name: need_str(r, "name")?,
            class: need_str(r, "class")?,
            wall_ms: need_f64(r, "wall_ms")?,
            baseline_cost: need_u64(r, "baseline_cost")?,
            dynamic_paths: need_u64(r, "dynamic_paths")?,
            distinct_paths: need_u64(r, "distinct_paths")?,
            degradation_rung: need_str(r, "degradation_rung")?,
            profilers,
        });
    }
    Ok(BenchBaseline {
        schema_version: need_u64(&v, "schema_version")?,
        seed: need_u64(&v, "seed")?,
        scale: need_f64(&v, "scale")?,
        hot_ratio: need_f64(&v, "hot_ratio")?,
        benchmarks,
    })
}

/// Renders a baseline as a human-readable table.
pub fn baseline_table(b: &BenchBaseline) -> String {
    let mut t = crate::format::Table::new([
        "Benchmark",
        "Class",
        "Wall(ms)",
        "Dyn.paths",
        "Rung",
        "Profiler",
        "Overhead",
        "Accuracy",
        "Coverage",
    ]);
    for r in &b.benchmarks {
        for (i, p) in r.profilers.iter().enumerate() {
            t.row([
                if i == 0 {
                    r.name.clone()
                } else {
                    String::new()
                },
                if i == 0 {
                    r.class.clone()
                } else {
                    String::new()
                },
                if i == 0 {
                    format!("{:.0}", r.wall_ms)
                } else {
                    String::new()
                },
                if i == 0 {
                    r.dynamic_paths.to_string()
                } else {
                    String::new()
                },
                if i == 0 {
                    r.degradation_rung.clone()
                } else {
                    String::new()
                },
                p.label.clone(),
                format!("{:+.1}%", 100.0 * p.overhead),
                format!("{:.1}%", 100.0 * p.accuracy),
                format!("{:.1}%", 100.0 * p.coverage),
            ]);
        }
    }
    format!(
        "perf baseline: schema v{}, seed {}, scale {}, {} benchmarks\n{}",
        b.schema_version,
        b.seed,
        b.scale,
        b.benchmarks.len(),
        t.render()
    )
}

/// One flagged difference between two baselines.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Benchmark name.
    pub bench: String,
    /// Profiler label, or "-" for benchmark-level findings.
    pub profiler: String,
    /// Quantity that regressed (`overhead`, `accuracy`, `coverage`,
    /// `missing-benchmark`, `missing-profiler`).
    pub quantity: String,
    /// Old value.
    pub old: f64,
    /// New value.
    pub new: f64,
}

impl Regression {
    fn new(bench: &str, profiler: &str, quantity: &str, old: f64, new: f64) -> Self {
        Self {
            bench: bench.to_owned(),
            profiler: profiler.to_owned(),
            quantity: quantity.to_owned(),
            old,
            new,
        }
    }
}

/// Diffs `new` against `old` and returns every regression beyond
/// `threshold` (an absolute delta on ratio-valued quantities: overhead
/// up, accuracy down, or coverage down by more than `threshold`).
/// Benchmarks or profilers present in `old` but absent from `new` are
/// regressions; extra entries in `new` are not.
///
/// # Errors
///
/// Returns a message when the artifacts are incomparable: different
/// schema versions, seeds, scales, or hot ratios.
pub fn compare_baselines(
    old: &BenchBaseline,
    new: &BenchBaseline,
    threshold: f64,
) -> Result<Vec<Regression>, String> {
    if old.schema_version != new.schema_version || old.schema_version != BASELINE_SCHEMA_VERSION {
        return Err(format!(
            "schema mismatch: old v{}, new v{}, tool v{BASELINE_SCHEMA_VERSION}",
            old.schema_version, new.schema_version
        ));
    }
    if old.seed != new.seed || old.scale != new.scale || old.hot_ratio != new.hot_ratio {
        return Err(format!(
            "config mismatch: old (seed {}, scale {}, hot {}) vs new (seed {}, scale {}, hot {})",
            old.seed, old.scale, old.hot_ratio, new.seed, new.scale, new.hot_ratio
        ));
    }
    let mut regs = Vec::new();
    for o in &old.benchmarks {
        let Some(n) = new.benchmarks.iter().find(|n| n.name == o.name) else {
            regs.push(Regression::new(&o.name, "-", "missing-benchmark", 1.0, 0.0));
            continue;
        };
        for op in &o.profilers {
            let Some(np) = n.profilers.iter().find(|np| np.label == op.label) else {
                regs.push(Regression::new(
                    &o.name,
                    &op.label,
                    "missing-profiler",
                    1.0,
                    0.0,
                ));
                continue;
            };
            if np.overhead > op.overhead + threshold {
                regs.push(Regression::new(
                    &o.name,
                    &op.label,
                    "overhead",
                    op.overhead,
                    np.overhead,
                ));
            }
            if np.accuracy < op.accuracy - threshold {
                regs.push(Regression::new(
                    &o.name,
                    &op.label,
                    "accuracy",
                    op.accuracy,
                    np.accuracy,
                ));
            }
            if np.coverage < op.coverage - threshold {
                regs.push(Regression::new(
                    &o.name,
                    &op.label,
                    "coverage",
                    op.coverage,
                    np.coverage,
                ));
            }
        }
    }
    Ok(regs)
}

/// Renders a comparison outcome as text (regressions, or a clean bill).
pub fn regressions_table(regs: &[Regression]) -> String {
    if regs.is_empty() {
        return "no regressions".to_owned();
    }
    let mut t = crate::format::Table::new(["Benchmark", "Profiler", "Quantity", "Old", "New"]);
    for r in regs {
        t.row([
            r.bench.clone(),
            r.profiler.clone(),
            r.quantity.clone(),
            format!("{:.4}", r.old),
            format!("{:.4}", r.new),
        ]);
    }
    format!("{} regression(s):\n{}", regs.len(), t.render())
}

/// One benchmark's wall-time movement between two baselines. Purely
/// informational: wall time is machine-dependent, so it is recorded and
/// trended but never part of the regression gate.
#[derive(Clone, Debug, PartialEq)]
pub struct WallTrend {
    /// Benchmark name, or "TOTAL" for the suite row.
    pub bench: String,
    /// Wall time in the old baseline, milliseconds.
    pub old_ms: f64,
    /// Wall time in the new baseline, milliseconds.
    pub new_ms: f64,
    /// `new_ms / old_ms` (1.0 = unchanged; guarded against zero).
    pub ratio: f64,
}

/// Computes the ungated wall-time trend between two baselines: one row
/// per benchmark present in both, plus a suite "TOTAL" row. Benchmarks
/// missing from either side are skipped (the gated comparison already
/// flags those).
pub fn wall_trends(old: &BenchBaseline, new: &BenchBaseline) -> Vec<WallTrend> {
    let ratio = |o: f64, n: f64| if o > 0.0 { n / o } else { 1.0 };
    let mut trends: Vec<WallTrend> = old
        .benchmarks
        .iter()
        .filter_map(|o| {
            let n = new.benchmarks.iter().find(|n| n.name == o.name)?;
            Some(WallTrend {
                bench: o.name.clone(),
                old_ms: o.wall_ms,
                new_ms: n.wall_ms,
                ratio: ratio(o.wall_ms, n.wall_ms),
            })
        })
        .collect();
    let (old_total, new_total) = (old.total_wall_ms(), new.total_wall_ms());
    trends.push(WallTrend {
        bench: "TOTAL".to_owned(),
        old_ms: old_total,
        new_ms: new_total,
        ratio: ratio(old_total, new_total),
    });
    trends
}

/// Renders the wall-time trend as text (always prefaced as ungated).
pub fn wall_trends_table(trends: &[WallTrend]) -> String {
    let mut t = crate::format::Table::new(["Benchmark", "Old(ms)", "New(ms)", "Trend"]);
    for w in trends {
        t.row([
            w.bench.clone(),
            format!("{:.0}", w.old_ms),
            format!("{:.0}", w.new_ms),
            format!("{:+.1}%", 100.0 * (w.ratio - 1.0)),
        ]);
    }
    format!("wall-time trend (recorded, never gated):\n{}", t.render())
}

/// Renders the wall-time trend as JSON.
pub fn wall_trends_json(trends: &[WallTrend]) -> String {
    let items = trends
        .iter()
        .map(|w| {
            format!(
                "{{\"bench\":\"{}\",\"old_ms\":{},\"new_ms\":{},\"ratio\":{}}}",
                json::escape(&w.bench),
                json::fmt_f64(w.old_ms),
                json::fmt_f64(w.new_ms),
                json::fmt_f64(w.ratio)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"wall_trends\":[{items}]}}")
}

/// Renders a comparison outcome as JSON.
pub fn regressions_json(regs: &[Regression]) -> String {
    let items = regs
        .iter()
        .map(|r| {
            format!(
                "{{\"bench\":\"{}\",\"profiler\":\"{}\",\"quantity\":\"{}\",\"old\":{},\"new\":{}}}",
                json::escape(&r.bench),
                json::escape(&r.profiler),
                json::escape(&r.quantity),
                json::fmt_f64(r.old),
                json::fmt_f64(r.new)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"regressions\":[{items}],\"count\":{}}}", regs.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchBaseline {
        BenchBaseline {
            schema_version: BASELINE_SCHEMA_VERSION,
            seed: 701,
            scale: 0.1,
            hot_ratio: 0.00125,
            benchmarks: vec![BenchRecord {
                name: "mcf".into(),
                class: "INT".into(),
                wall_ms: 123.5,
                baseline_cost: 1_000_000,
                dynamic_paths: 42_000,
                distinct_paths: 120,
                degradation_rung: "full-profile".into(),
                profilers: vec![
                    BenchProfilerRecord {
                        label: "PP".into(),
                        overhead: 0.30,
                        accuracy: 0.95,
                        coverage: 0.99,
                        measured: 1.0,
                        hashed: 0.4,
                        lost_paths: 0,
                    },
                    BenchProfilerRecord {
                        label: "PPP".into(),
                        overhead: 0.05,
                        accuracy: 0.90,
                        coverage: 0.95,
                        measured: 0.97,
                        hashed: 0.0,
                        lost_paths: 3,
                    },
                ],
            }],
        }
    }

    #[test]
    fn baseline_json_round_trips() {
        let b = sample();
        let doc = baseline_json(&b);
        let back = baseline_from_json(&doc).expect("parses");
        assert_eq!(b, back);
        assert_eq!(doc, baseline_json(&back));
    }

    #[test]
    fn from_json_rejects_wrong_kind() {
        assert!(baseline_from_json("{\"kind\":\"other\"}").is_err());
        assert!(baseline_from_json("not json").is_err());
    }

    #[test]
    fn identical_baselines_compare_clean() {
        let b = sample();
        assert_eq!(compare_baselines(&b, &b, 0.10).unwrap(), vec![]);
    }

    #[test]
    fn injected_overhead_regression_is_flagged() {
        let old = sample();
        let mut new = sample();
        new.benchmarks[0].profilers[1].overhead += 0.25; // PPP slows down
        let regs = compare_baselines(&old, &new, 0.10).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].quantity, "overhead");
        assert_eq!(regs[0].profiler, "PPP");
        // Within the generous threshold: not flagged.
        let mut small = sample();
        small.benchmarks[0].profilers[1].overhead += 0.05;
        assert!(compare_baselines(&old, &small, 0.10).unwrap().is_empty());
    }

    #[test]
    fn accuracy_drop_and_missing_entries_are_flagged() {
        let old = sample();
        let mut new = sample();
        new.benchmarks[0].profilers[0].accuracy -= 0.2;
        new.benchmarks[0].profilers.remove(1); // PPP gone
        let regs = compare_baselines(&old, &new, 0.10).unwrap();
        let quantities: Vec<_> = regs.iter().map(|r| r.quantity.as_str()).collect();
        assert!(quantities.contains(&"accuracy"));
        assert!(quantities.contains(&"missing-profiler"));

        let empty = BenchBaseline {
            benchmarks: vec![],
            ..sample()
        };
        let regs = compare_baselines(&old, &empty, 0.10).unwrap();
        assert_eq!(regs[0].quantity, "missing-benchmark");
    }

    #[test]
    fn incomparable_configs_error_out() {
        let a = sample();
        let mut b = sample();
        b.scale = 1.0;
        assert!(compare_baselines(&a, &b, 0.10).is_err());
        let mut c = sample();
        c.schema_version = 999;
        assert!(compare_baselines(&a, &c, 0.10).is_err());
    }

    #[test]
    fn wall_time_is_never_gated() {
        let old = sample();
        let mut new = sample();
        new.benchmarks[0].wall_ms *= 100.0;
        assert!(compare_baselines(&old, &new, 0.10).unwrap().is_empty());
    }

    #[test]
    fn wall_trends_track_the_movement_without_gating() {
        let old = sample();
        let mut new = sample();
        new.benchmarks[0].wall_ms *= 2.0;
        let trends = wall_trends(&old, &new);
        // One row per common benchmark plus the suite TOTAL row.
        assert_eq!(trends.len(), 2);
        assert_eq!(trends[0].bench, "mcf");
        assert!((trends[0].ratio - 2.0).abs() < 1e-9);
        assert_eq!(trends[1].bench, "TOTAL");
        assert!((trends[1].ratio - 2.0).abs() < 1e-9);
        // Rendered, but still not a regression.
        assert!(wall_trends_table(&trends).contains("never gated"));
        assert!(wall_trends_json(&trends).contains("\"bench\":\"TOTAL\""));
        assert!(compare_baselines(&old, &new, 0.10).unwrap().is_empty());
    }

    #[test]
    fn the_artifact_carries_the_derived_total_wall_column() {
        let b = sample();
        let doc = baseline_json(&b);
        assert!(doc.contains("\"total_wall_ms\":"));
        let v = json::parse(&doc).expect("parses");
        let total = v.get("total_wall_ms").and_then(Json::as_f64).unwrap();
        assert!((total - b.total_wall_ms()).abs() < 1e-9);
        // Derived on write: round-tripping reproduces it byte-exact.
        let back = baseline_from_json(&doc).expect("parses");
        assert_eq!(doc, baseline_json(&back));
    }
}
