//! `repro drive`: a parallel load generator for the aggregation service.
//!
//! N worker threads each run traced benchmarks with incremental delta
//! export enabled and stream the deltas — through the real wire encoder
//! — into a K-way sharded [`Aggregator`](ppp_agg::Aggregator). Three
//! transports share one code path: in-process frame delivery (the
//! default), a self-hosted localhost TCP server (`--tcp`), and an
//! external server started with `repro serve` (`--connect ADDR`).
//!
//! Besides generating load, the driver *checks* the aggregation
//! contract on every run: each benchmark's merged snapshot must be
//! byte-identical (persist_v2 serialization) to the saturating merge of
//! the same runs' single-shot profiles, and must pass the PPP308
//! flow-conservation lint. Throughput is reported as sustained VM
//! events (dynamic steps) per second across all workers.

use crate::format::Table;
use ppp_agg::{
    run_indexed, AggClient, AggConfig, AggService, DurOptions, FrameSink, Hello, InProcSink,
    ResilientSink, RetryPolicy, ServeOptions, Server, TcpSink,
};
use ppp_ir::{
    write_edge_profile_v2, write_path_profile_v2, Module, ModuleEdgeProfile, ModulePathProfile,
};
use ppp_obs::{json, names, Histogram};
use ppp_vm::{run, RunOptions};
use ppp_workloads::{generate, spec2000_suite};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How driver workers reach the aggregation service.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transport {
    /// Frames are encoded and decoded in process (no socket). The wire
    /// path — framing, CRC, persist_v2 payloads — is still exercised.
    InProc,
    /// The driver hosts its own server on `127.0.0.1:0` and every
    /// worker connects over real TCP.
    Tcp,
    /// Workers connect to an external `repro serve` instance. The
    /// driver cannot snapshot a remote aggregator, so the determinism
    /// and lint verdicts are skipped.
    Connect(SocketAddr),
}

/// Load-driver configuration (`repro drive` flags).
#[derive(Clone, Debug)]
pub struct DriveOptions {
    /// Parallel VM workers streaming deltas.
    pub workers: usize,
    /// Aggregator shards (in-proc and self-hosted TCP modes).
    pub shards: usize,
    /// Traced runs per benchmark; repeat `r` uses seed `seed + r`.
    pub repeats: usize,
    /// Workload scale factor.
    pub scale: f64,
    /// Base VM seed.
    pub seed: u64,
    /// Trace events per delta cut ([`RunOptions::delta_interval`]).
    pub delta_interval: u64,
    /// Deltas merged per shipped batch ([`AggClient`]).
    pub batch: usize,
    /// How frames reach the service.
    pub transport: Transport,
    /// Durability directory (`--checkpoint-dir`): the service
    /// checkpoints and WALs under it, and recovers from it.
    pub checkpoint_dir: Option<PathBuf>,
    /// Deltas between automatic checkpoints (`--checkpoint-every`;
    /// 0 = only explicit/shutdown checkpoints).
    pub checkpoint_every: u64,
    /// Kill the self-hosted TCP server abruptly after it accepts this
    /// many frames, restart it over the same durability directory, and
    /// let the resilient clients reconnect and resume. Requires
    /// `--tcp` and `--checkpoint-dir`.
    pub kill_after: Option<u64>,
}

impl Default for DriveOptions {
    fn default() -> Self {
        Self {
            workers: 4,
            shards: 4,
            repeats: 2,
            scale: 0.05,
            seed: 0x5EED,
            delta_interval: 2048,
            batch: 4,
            transport: Transport::InProc,
            checkpoint_dir: None,
            checkpoint_every: 64,
            kill_after: None,
        }
    }
}

impl DriveOptions {
    fn durability(&self) -> Option<DurOptions> {
        self.checkpoint_dir
            .as_ref()
            .map(|dir| DurOptions::new(dir, self.checkpoint_every))
    }
}

/// One benchmark's aggregate outcome across all its repeats.
#[derive(Clone, Debug)]
pub struct BenchDrive {
    /// Benchmark name.
    pub bench: String,
    /// Completed runs.
    pub runs: usize,
    /// Wire frames shipped by this benchmark's clients.
    pub frames: u64,
    /// Wire payload bytes shipped.
    pub bytes: u64,
    /// Profile deltas cut and streamed.
    pub deltas: u64,
    /// Dynamic VM steps executed across the runs.
    pub events: u64,
    /// Snapshot byte-identical to the local reference merge
    /// (`None` under `--connect`: no local snapshot to compare).
    pub deterministic: Option<bool>,
    /// Snapshot passed the PPP308 flow-conservation lint.
    pub lint_clean: Option<bool>,
}

/// Full outcome of one `repro drive` invocation.
#[derive(Clone, Debug)]
pub struct DriveReport {
    /// Per-benchmark outcomes, in suite order.
    pub benches: Vec<BenchDrive>,
    /// Configuration echo: worker threads.
    pub workers: usize,
    /// Configuration echo: shards.
    pub shards: usize,
    /// Configuration echo: repeats per benchmark.
    pub repeats: usize,
    /// Transport label ("in-proc", "tcp", or the connect address).
    pub transport: String,
    /// Wall-clock time of the whole drive, milliseconds.
    pub wall_ms: f64,
    /// Sustained VM events per second across all workers
    /// (machine-dependent; reported, never gated).
    pub events_per_sec: f64,
    /// Mid-run server kills injected (`--kill-after`) that actually
    /// fired. The determinism verdicts still have to hold across them.
    pub kills: u64,
    /// Per-frame ingest latency quantiles (`ppp_agg_ingest_micros`)
    /// over the drive window; `None` when nothing was observed.
    pub ingest_latency: Option<Quantiles>,
    /// Shard queue-wait quantiles (`ppp_agg_queue_wait_micros`).
    pub queue_wait: Option<Quantiles>,
    /// WAL fsync quantiles (`ppp_wal_fsync_micros`); `None` without
    /// `--checkpoint-dir`.
    pub wal_fsync: Option<Quantiles>,
}

impl DriveReport {
    /// Total frames shipped.
    pub fn frames(&self) -> u64 {
        self.benches.iter().map(|b| b.frames).sum()
    }

    /// Total wire payload bytes shipped.
    pub fn bytes(&self) -> u64 {
        self.benches.iter().map(|b| b.bytes).sum()
    }

    /// `true` when every checked benchmark was byte-identical and
    /// lint-clean (vacuously true under `--connect`).
    pub fn ok(&self) -> bool {
        self.benches
            .iter()
            .all(|b| b.deterministic.unwrap_or(true) && b.lint_clean.unwrap_or(true))
    }
}

/// Conservative tail-latency quantiles for one latency histogram, in
/// microseconds: the log2-bucket upper bound holding the rank, so p50
/// /p95/p99 never underestimate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Quantiles {
    /// Observations inside the drive window.
    pub count: u64,
    /// Median, microseconds (bucket upper bound).
    pub p50: u64,
    /// 95th percentile, microseconds.
    pub p95: u64,
    /// 99th percentile, microseconds.
    pub p99: u64,
}

/// The latency histograms surfaced in the drive report, in field order
/// (ingest, queue-wait, WAL fsync).
const LATENCY_METRICS: [&str; 3] = [
    names::INGEST_MICROS,
    names::QUEUE_WAIT_MICROS,
    names::WAL_FSYNC_MICROS,
];

impl Quantiles {
    fn from_histogram(h: &Histogram) -> Self {
        Self {
            count: h.count,
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
        }
    }
}

/// Diffs a merged histogram across the drive window: `after` minus the
/// pre-drive `before` snapshot, so a long-lived process (or a test
/// harness running many drives) reports only this drive's
/// observations. `None` when nothing was observed in the window.
fn histogram_delta(before: Option<&Histogram>, after: Option<Histogram>) -> Option<Quantiles> {
    let mut h = after?;
    if let Some(b) = before {
        for (x, y) in h.buckets.iter_mut().zip(&b.buckets) {
            *x = x.saturating_sub(*y);
        }
        h.count = h.count.saturating_sub(b.count);
        h.sum = h.sum.saturating_sub(b.sum);
    }
    (h.count > 0).then(|| Quantiles::from_histogram(&h))
}

/// One transport-agnostic frame sink handed to a worker's [`AggClient`].
enum DriveSink {
    InProc(InProcSink),
    Tcp(TcpSink),
    Resilient(ResilientSink),
}

impl FrameSink for DriveSink {
    fn send_frame(&mut self, bytes: &[u8]) -> Result<(), String> {
        match self {
            DriveSink::InProc(s) => s.send_frame(bytes),
            DriveSink::Tcp(s) => s.send_frame(bytes),
            DriveSink::Resilient(s) => s.send_frame(bytes),
        }
    }
}

/// Per-work-unit stats rolled up into [`BenchDrive`] records.
struct UnitStats {
    bench: usize,
    frames: u64,
    bytes: u64,
    deltas: u64,
    events: u64,
}

/// The local reference merge a benchmark's snapshot is checked against.
type Reference = Mutex<Option<(ModuleEdgeProfile, ModulePathProfile)>>;

/// Runs the load driver over the suite (or one named benchmark).
///
/// # Errors
///
/// Returns a message when a benchmark name is unknown, a connection or
/// stream fails, or a server cannot be spawned. A failed determinism or
/// lint check is *not* an error — it lands in the report (and flips
/// [`DriveReport::ok`]), so the CLI can exit nonzero with the full
/// picture printed.
pub fn drive(only: Option<&str>, options: &DriveOptions) -> Result<DriveReport, String> {
    let suite = spec2000_suite();
    let entries: Vec<_> = suite
        .iter()
        .filter(|e| only.is_none_or(|b| e.spec.name == b))
        .collect();
    if entries.is_empty() {
        return Err(format!("unknown benchmark {:?}", only.unwrap_or("")));
    }
    let modules: Vec<(String, Arc<Module>)> = entries
        .iter()
        .map(|e| {
            let spec = e.spec.clone().scaled(options.scale);
            (spec.name.clone(), Arc::new(generate(&spec)))
        })
        .collect();

    if options.kill_after.is_some() {
        if options.transport != Transport::Tcp {
            return Err("--kill-after needs the self-hosted --tcp transport".to_owned());
        }
        if options.checkpoint_dir.is_none() {
            return Err(
                "--kill-after needs --checkpoint-dir so the restarted server can recover"
                    .to_owned(),
            );
        }
    }

    // Local service + optional self-hosted server. Both live in slots
    // so the kill monitor can replace them mid-run.
    let config = AggConfig {
        shards: options.shards,
        ..AggConfig::default()
    };
    let durability = options.durability();
    let make_service = {
        let durability = durability.clone();
        move || match &durability {
            Some(dur) => AggService::new_durable(config, dur.clone()),
            None => AggService::new(config),
        }
    };
    let service_slot: Arc<Mutex<Arc<AggService>>> = Arc::new(Mutex::new(make_service()));
    let resolver: Arc<ppp_agg::ModuleResolver> = {
        let resolve_map: Vec<(String, Arc<Module>)> = modules.clone();
        Arc::new(move |hello: &Hello| {
            resolve_map
                .iter()
                .find(|(name, _)| *name == hello.bench)
                .map(|(_, m)| Arc::clone(m))
        })
    };
    let spawn_server = {
        let resolver = Arc::clone(&resolver);
        move |service: &Arc<AggService>| -> Result<Server, String> {
            let listener = TcpListener::bind(("127.0.0.1", 0))
                .map_err(|e| format!("cannot bind loopback listener: {e}"))?;
            Server::spawn(
                listener,
                Arc::clone(service),
                Arc::clone(&resolver),
                ServeOptions::default(),
            )
            .map_err(|e| format!("cannot spawn server: {e}"))
        }
    };
    let server_slot: Arc<Mutex<Option<Server>>> = Arc::new(Mutex::new(None));
    let addr_slot: Arc<Mutex<SocketAddr>> =
        Arc::new(Mutex::new("127.0.0.1:0".parse().expect("literal addr")));
    if options.transport == Transport::Tcp {
        let server = spawn_server(&service_slot.lock().expect("service slot"))?;
        *addr_slot.lock().expect("addr slot") = server.addr();
        *server_slot.lock().expect("server slot") = Some(server);
    }

    // The kill monitor: once the server has accepted `kill_after`
    // frames, kill it abruptly (no drain, no acks, no final
    // checkpoint), stand up a fresh service that recovers from the
    // checkpoint + WAL, and repoint the shared address so the
    // resilient clients reconnect and resume.
    let drive_done = Arc::new(AtomicBool::new(false));
    let mut kills = 0u64;
    let monitor = options.kill_after.map(|kill_after| {
        let server_slot = Arc::clone(&server_slot);
        let service_slot = Arc::clone(&service_slot);
        let addr_slot = Arc::clone(&addr_slot);
        let drive_done = Arc::clone(&drive_done);
        let make_service = make_service.clone();
        let spawn_server = spawn_server.clone();
        std::thread::spawn(move || -> Result<u64, String> {
            while !drive_done.load(Ordering::SeqCst) {
                let accepted = server_slot
                    .lock()
                    .expect("server slot")
                    .as_ref()
                    .map_or(0, Server::frames_accepted);
                if accepted < kill_after {
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
                let server = server_slot.lock().expect("server slot").take();
                if let Some(server) = server {
                    server.kill();
                }
                let fresh = make_service();
                let server = spawn_server(&fresh)?;
                *addr_slot.lock().expect("addr slot") = server.addr();
                *service_slot.lock().expect("service slot") = fresh;
                *server_slot.lock().expect("server slot") = Some(server);
                ppp_obs::global().info(
                    "drive.server_killed",
                    &[("after_frames", ppp_obs::Value::from(accepted))],
                );
                return Ok(1);
            }
            Ok(0)
        })
    });
    let references: Vec<Reference> = modules.iter().map(|_| Mutex::new(None)).collect();

    // Latency histograms accumulate in the process-global registry;
    // snapshot them up front so the report covers only this drive.
    let obs = ppp_obs::global();
    let lat_before: Vec<Option<Histogram>> = LATENCY_METRICS
        .iter()
        .map(|n| obs.metrics().merged_histogram(n))
        .collect();

    // Fan the work units over the workers. Unit `u` is repeat `u / B`
    // of benchmark `u % B`, so every benchmark gets traffic early.
    let nbench = modules.len();
    let units = nbench * options.repeats.max(1);
    let started = Instant::now();
    let stats = run_indexed(options.workers, units, |u| -> Result<UnitStats, String> {
        let bench = u % nbench;
        let repeat = u / nbench;
        let (name, module) = &modules[bench];
        let run_options = RunOptions::default()
            .traced()
            .with_seed(options.seed.wrapping_add(repeat as u64))
            .with_delta_interval(options.delta_interval.max(1));
        let result = run(module, "main", &run_options).map_err(|e| format!("{name}: {e}"))?;
        let edges = result.edge_profile.as_ref().expect("traced run");
        let paths = result.path_profile.as_ref().expect("traced run");

        // Fold this run into the benchmark's local reference merge
        // (pointless under --connect: there is no snapshot to compare).
        if !matches!(options.transport, Transport::Connect(_)) {
            let mut r = references[bench].lock().expect("reference lock");
            match r.as_mut() {
                Some((re, rp)) => {
                    re.merge(edges);
                    rp.merge(paths);
                }
                None => *r = Some((edges.clone(), paths.clone())),
            }
        }

        // Stream the deltas through the configured transport. Under
        // --kill-after the sink must survive the server dying, so it
        // is the retrying, resuming kind.
        let sink = match options.transport {
            Transport::InProc => {
                let service = Arc::clone(&*service_slot.lock().expect("service slot"));
                let agg = service.register(name, module)?;
                DriveSink::InProc(InProcSink::new(agg))
            }
            Transport::Tcp if options.kill_after.is_some() => {
                DriveSink::Resilient(ResilientSink::new(
                    Arc::clone(&addr_slot),
                    RetryPolicy {
                        attempts: 12,
                        base: Duration::from_millis(10),
                        cap: Duration::from_millis(200),
                    },
                    Duration::from_secs(5),
                ))
            }
            Transport::Tcp => {
                let addr = *addr_slot.lock().expect("addr slot");
                DriveSink::Tcp(TcpSink::connect(addr).map_err(|e| format!("{name}: connect: {e}"))?)
            }
            Transport::Connect(addr) => DriveSink::Tcp(
                TcpSink::connect(addr).map_err(|e| format!("{name}: connect {addr}: {e}"))?,
            ),
        };
        let hello = Hello {
            bench: name.clone(),
            funcs: module.functions.len(),
            scale_bits: options.scale.to_bits(),
            worker: u as u64,
        };
        let mut client = AggClient::open(Arc::clone(module), sink, options.batch.max(1), &hello)
            .map_err(|e| format!("{name}: hello: {e}"))?;
        // Every worker's stream is trace-propagated: the send span's
        // context rides inside the sequenced frames, so the server's
        // apply spans stitch under it from either side's sink.
        client.set_trace_id(
            options
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u as u64 + 1),
        );
        for d in &result.deltas {
            client
                .push_delta(&d.edges, &d.paths)
                .map_err(|e| format!("{name}: stream: {e}"))?;
        }
        client
            .finish()
            .map_err(|e| format!("{name}: finish: {e}"))?;
        let (frames, bytes) = client.sent();
        match client.into_sink() {
            // The resilient sink verified the server's final watermark
            // inside finish(); nothing more to wait for.
            DriveSink::Tcp(mut s) => s.wait_ack().map_err(|e| format!("{name}: ack: {e}"))?,
            DriveSink::InProc(_) | DriveSink::Resilient(_) => {}
        }
        Ok(UnitStats {
            bench,
            frames,
            bytes,
            deltas: result.deltas.len() as u64,
            events: result.steps,
        })
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    drive_done.store(true, Ordering::SeqCst);
    if let Some(monitor) = monitor {
        kills = monitor
            .join()
            .map_err(|_| "kill monitor panicked".to_owned())??;
    }

    // Roll up per benchmark, then verify each snapshot where we can.
    let mut benches: Vec<BenchDrive> = modules
        .iter()
        .map(|(name, _)| BenchDrive {
            bench: name.clone(),
            runs: 0,
            frames: 0,
            bytes: 0,
            deltas: 0,
            events: 0,
            deterministic: None,
            lint_clean: None,
        })
        .collect();
    for s in stats {
        let s = s?;
        let b = &mut benches[s.bench];
        b.runs += 1;
        b.frames += s.frames;
        b.bytes += s.bytes;
        b.deltas += s.deltas;
        b.events += s.events;
    }
    if !matches!(options.transport, Transport::Connect(_)) {
        let service = Arc::clone(&*service_slot.lock().expect("service slot"));
        for (i, (name, module)) in modules.iter().enumerate() {
            // After a mid-run kill the final service may never have
            // seen a bench whose clients finished before the crash;
            // registering a durable service recovers it from disk.
            let agg = if durability.is_some() {
                service.register(name, module)?
            } else {
                service
                    .get(name)
                    .ok_or_else(|| format!("{name}: never registered"))?
            };
            let (snap_edges, snap_paths) = agg.snapshot();
            let guard = references[i].lock().expect("reference lock");
            let (re, rp) = guard.as_ref().expect("at least one run per benchmark");
            let identical = write_edge_profile_v2(module, &snap_edges)
                == write_edge_profile_v2(module, re)
                && write_path_profile_v2(module, &snap_paths) == write_path_profile_v2(module, rp);
            benches[i].deterministic = Some(identical);
            benches[i].lint_clean = Some(ppp_lint::check_profile(module, &snap_edges).is_empty());
        }
    }
    if let Some(server) = server_slot.lock().expect("server slot").take() {
        server.shutdown();
    }

    let events: u64 = benches.iter().map(|b| b.events).sum();
    let events_per_sec = if wall_ms > 0.0 {
        events as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };
    ppp_obs::global().metrics().set_gauge(
        "ppp_drive_events_per_sec",
        &[("transport", transport_label(&options.transport).as_str())],
        events_per_sec,
    );
    let quantiles = |i: usize| {
        histogram_delta(
            lat_before[i].as_ref(),
            obs.metrics().merged_histogram(LATENCY_METRICS[i]),
        )
    };
    Ok(DriveReport {
        benches,
        workers: options.workers.max(1),
        shards: options.shards.max(1),
        repeats: options.repeats.max(1),
        transport: transport_label(&options.transport),
        wall_ms,
        events_per_sec,
        kills,
        ingest_latency: quantiles(0),
        queue_wait: quantiles(1),
        wal_fsync: quantiles(2),
    })
}

fn transport_label(t: &Transport) -> String {
    match t {
        Transport::InProc => "in-proc".to_owned(),
        Transport::Tcp => "tcp".to_owned(),
        Transport::Connect(addr) => addr.to_string(),
    }
}

/// Renders a drive report as a text table plus a throughput summary.
pub fn drive_table(r: &DriveReport) -> String {
    let mut t = Table::new([
        "Benchmark",
        "Runs",
        "Deltas",
        "Frames",
        "Bytes",
        "Events",
        "Identical",
        "Lint",
    ]);
    let verdict = |v: Option<bool>, yes: &str, no: &str| match v {
        Some(true) => yes.to_owned(),
        Some(false) => no.to_owned(),
        None => "-".to_owned(),
    };
    for b in &r.benches {
        t.row([
            b.bench.clone(),
            b.runs.to_string(),
            b.deltas.to_string(),
            b.frames.to_string(),
            b.bytes.to_string(),
            b.events.to_string(),
            verdict(b.deterministic, "yes", "NO"),
            verdict(b.lint_clean, "clean", "DIRTY"),
        ]);
    }
    let kills = if r.kills > 0 {
        format!(" ({} mid-run server kill(s) recovered)", r.kills)
    } else {
        String::new()
    };
    let lat = |label: &str, q: &Option<Quantiles>| match q {
        Some(q) => format!(
            "{label} us p50/p95/p99: {}/{}/{} (n={})",
            q.p50, q.p95, q.p99, q.count
        ),
        None => format!("{label} us p50/p95/p99: -"),
    };
    format!(
        "drive: {} worker(s) x {} repeat(s) over {} benchmark(s), {} shard(s), {} transport{}\n\
         {} frames, {} bytes in {:.0} ms -> {:.0} events/sec\n\
         {}; {}; {}\n{}",
        r.workers,
        r.repeats,
        r.benches.len(),
        r.shards,
        r.transport,
        kills,
        r.frames(),
        r.bytes(),
        r.wall_ms,
        r.events_per_sec,
        lat("ingest", &r.ingest_latency),
        lat("queue-wait", &r.queue_wait),
        lat("wal-fsync", &r.wal_fsync),
        t.render()
    )
}

/// Renders a drive report as JSON (stable keys).
pub fn drive_json(r: &DriveReport) -> String {
    let verdict = |v: Option<bool>| match v {
        Some(b) => b.to_string(),
        None => "null".to_owned(),
    };
    let benches = r
        .benches
        .iter()
        .map(|b| {
            format!(
                "{{\"bench\":\"{}\",\"runs\":{},\"deltas\":{},\"frames\":{},\"bytes\":{},\
                 \"events\":{},\"deterministic\":{},\"lint_clean\":{}}}",
                json::escape(&b.bench),
                b.runs,
                b.deltas,
                b.frames,
                b.bytes,
                b.events,
                verdict(b.deterministic),
                verdict(b.lint_clean),
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let quant = |q: &Option<Quantiles>| match q {
        Some(q) => format!(
            "{{\"count\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            q.count, q.p50, q.p95, q.p99
        ),
        None => "null".to_owned(),
    };
    format!(
        "{{\"workers\":{},\"shards\":{},\"repeats\":{},\"transport\":\"{}\",\
         \"wall_ms\":{},\"events_per_sec\":{},\"frames\":{},\"bytes\":{},\"kills\":{},\"ok\":{},\
         \"latency\":{{\"ingest\":{},\"queue_wait\":{},\"wal_fsync\":{}}},\
         \"benchmarks\":[{benches}]}}",
        r.workers,
        r.shards,
        r.repeats,
        json::escape(&r.transport),
        json::fmt_f64(r.wall_ms),
        json::fmt_f64(r.events_per_sec),
        r.frames(),
        r.bytes(),
        r.kills,
        r.ok(),
        quant(&r.ingest_latency),
        quant(&r.queue_wait),
        quant(&r.wal_fsync),
    )
}

/// Hosts a standalone aggregation server (`repro serve`).
///
/// The resolver regenerates workload modules on demand from the
/// benchmark name and the scale carried in each client's `Hello`, so
/// any `repro drive --connect` at a matching scale can stream to it.
/// With `durability` set the service checkpoints and WALs under the
/// given directory — and *recovers from it on startup*, so restarting
/// a crashed `repro serve` over the same directory loses nothing that
/// was acked.
///
/// # Errors
///
/// Returns a message when the listener cannot bind.
pub fn serve(
    addr: &str,
    shards: usize,
    max_conns: usize,
    durability: Option<DurOptions>,
) -> Result<Server, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let config = AggConfig {
        shards,
        ..AggConfig::default()
    };
    let service = match durability {
        Some(dur) => AggService::new_durable(config, dur),
        None => AggService::new(config),
    };
    let resolver: Arc<ppp_agg::ModuleResolver> = Arc::new(|hello: &Hello| {
        let suite = spec2000_suite();
        let entry = suite.iter().find(|e| e.spec.name == hello.bench)?;
        let scale = f64::from_bits(hello.scale_bits);
        let spec = if scale > 0.0 && scale.is_finite() {
            entry.spec.clone().scaled(scale)
        } else {
            entry.spec.clone()
        };
        Some(Arc::new(generate(&spec)))
    });
    Server::spawn(
        listener,
        service,
        resolver,
        ServeOptions {
            max_conns,
            ..ServeOptions::default()
        },
    )
    .map_err(|e| format!("cannot spawn server: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(transport: Transport) -> DriveOptions {
        DriveOptions {
            workers: 2,
            shards: 2,
            repeats: 2,
            scale: 0.02,
            delta_interval: 1024,
            transport,
            ..DriveOptions::default()
        }
    }

    #[test]
    fn in_proc_drive_is_deterministic_and_lint_clean() {
        let _obs = crate::obs_test_lock();
        let r = drive(Some("mcf"), &tiny(Transport::InProc)).expect("drive completes");
        assert!(r.ok(), "{}", drive_table(&r));
        assert_eq!(r.benches.len(), 1);
        let b = &r.benches[0];
        assert_eq!(b.runs, 2);
        assert!(b.frames > 0 && b.bytes > 0 && b.deltas > 0 && b.events > 0);
        assert_eq!(b.deterministic, Some(true));
        assert_eq!(b.lint_clean, Some(true));
        // Tail-latency accounting: the ingest and queue-wait quantiles
        // cover the drive window (WAL fsync needs --checkpoint-dir).
        let ingest = r.ingest_latency.expect("ingest histogram observed");
        assert!(ingest.count > 0, "{ingest:?}");
        assert!(ingest.p50 <= ingest.p95 && ingest.p95 <= ingest.p99);
        assert!(r.queue_wait.expect("queue-wait observed").count > 0);
        assert_eq!(r.wal_fsync, None, "no durability configured");
    }

    #[test]
    fn self_hosted_tcp_drive_matches_the_reference() {
        let r = drive(Some("vpr"), &tiny(Transport::Tcp)).expect("drive completes");
        assert!(r.ok(), "{}", drive_table(&r));
        assert_eq!(r.benches[0].deterministic, Some(true));
        assert!(r.transport == "tcp");
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/ppp-scratch/drive-unit")
            .join(tag);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn kill_after_recovers_byte_identically_with_no_double_counts() {
        let _obs = crate::obs_test_lock();
        let mut options = tiny(Transport::Tcp);
        options.checkpoint_dir = Some(scratch("kill-after"));
        options.checkpoint_every = 4;
        options.kill_after = Some(3);
        let r = drive(Some("mcf"), &options).expect("drive completes");
        assert_eq!(r.kills, 1, "the kill fired");
        // The whole point: a mid-run crash + restart must still yield
        // a snapshot byte-identical to the local reference merge (no
        // lost deltas, no double counts from client resends).
        assert_eq!(
            r.benches[0].deterministic,
            Some(true),
            "{}",
            drive_table(&r)
        );
        assert_eq!(r.benches[0].lint_clean, Some(true));
        // The durable transport observed WAL fsync latency too.
        assert!(r.wal_fsync.expect("wal fsync observed").count > 0);
    }

    #[test]
    fn killed_server_leaves_a_parseable_flight_recorder_dump() {
        use ppp_obs::json::{self, Json};
        let _obs = crate::obs_test_lock();
        let dump_dir = scratch("flight-kill");
        ppp_obs::install_flight(&dump_dir, 256);
        let mut options = tiny(Transport::Tcp);
        options.checkpoint_dir = Some(scratch("flight-kill-wal"));
        options.checkpoint_every = 4;
        options.kill_after = Some(3);
        let r = drive(Some("mcf"), &options).expect("drive completes");
        assert_eq!(r.kills, 1, "the kill fired");
        let path = dump_dir.join("flight-server-kill.json");
        let doc = std::fs::read_to_string(&path).expect("kill dump written");
        let v = json::parse(&doc).expect("dump parses");
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some(ppp_obs::FLIGHT_SCHEMA)
        );
        assert_eq!(v.get("reason").and_then(Json::as_str), Some("server-kill"));
        // The ring retained the pre-kill telemetry: the server's own
        // kill event (frames accepted so far) made it into the dump.
        let records = v.get("records").and_then(Json::as_arr).expect("records");
        assert!(
            records
                .iter()
                .any(|r| r.get("name").and_then(Json::as_str) == Some("server.kill")),
            "dump carries the server.kill event: {doc}"
        );
        // …and the registry snapshot rode along.
        assert!(v.get("registry").is_some());
    }

    #[test]
    fn kill_after_without_durability_is_refused() {
        let mut options = tiny(Transport::Tcp);
        options.kill_after = Some(1);
        let err = drive(Some("mcf"), &options).expect_err("refused");
        assert!(err.contains("--checkpoint-dir"), "{err}");
    }

    #[test]
    fn connect_mode_streams_to_an_external_server() {
        let server = serve("127.0.0.1:0", 2, 8, None).expect("server spawns");
        let addr = server.addr();
        let r = drive(Some("mcf"), &tiny(Transport::Connect(addr))).expect("drive completes");
        // No local snapshot: verdicts are skipped, traffic still flows.
        assert_eq!(r.benches[0].deterministic, None);
        assert!(r.benches[0].frames > 0);
        assert!(r.ok());
        server.shutdown();
    }

    #[test]
    fn renderers_are_stable() {
        let r = drive(Some("mcf"), &tiny(Transport::InProc)).expect("drive completes");
        let table = drive_table(&r);
        assert!(table.contains("mcf") && table.contains("events/sec"));
        let json_doc = drive_json(&r);
        assert!(json_doc.contains("\"ok\":true"));
        assert!(json_doc.contains("\"bench\":\"mcf\""));
    }
}
