//! Canonical names for the cross-crate metric families.
//!
//! Metric names are free-form strings at the registry level; the
//! families that more than one crate reads or writes (the durability
//! and resilience counters of `ppp-agg`, surfaced by `repro trace` and
//! the chaos/drive gates) are declared here once so producers and
//! consumers cannot drift apart on spelling.

/// WAL records appended (label: `bench`).
pub const WAL_APPENDS: &str = "ppp_wal_appends_total";
/// WAL bytes appended (label: `bench`).
pub const WAL_BYTES: &str = "ppp_wal_bytes_total";
/// Checkpoints written (label: `bench`).
pub const WAL_CHECKPOINTS: &str = "ppp_wal_checkpoints_total";
/// Checkpoint bytes written (label: `bench`).
pub const WAL_CHECKPOINT_BYTES: &str = "ppp_wal_checkpoint_bytes_total";
/// Frames replayed from the WAL during recovery (label: `bench`).
pub const WAL_REPLAYED: &str = "ppp_wal_replayed_frames_total";
/// Bytes cut from a torn WAL tail during recovery (label: `bench`).
pub const WAL_TORN_BYTES: &str = "ppp_wal_torn_tail_bytes_total";
/// Recoveries performed (label: `bench`).
pub const WAL_RECOVERIES: &str = "ppp_wal_recoveries_total";
/// Checkpoint or WAL I/O failures (labels: `bench`, `op`).
pub const WAL_ERRORS: &str = "ppp_wal_errors_total";

/// Client reconnect attempts (resilient sink).
pub const RETRY_RECONNECTS: &str = "ppp_retry_reconnects_total";
/// Backoff sleeps taken before a retry.
pub const RETRY_BACKOFFS: &str = "ppp_retry_backoffs_total";
/// Frames resent from the unacked window after a reconnect.
pub const RETRY_RESENT: &str = "ppp_retry_resent_frames_total";
/// Server rejections observed by the client (label: `class`).
pub const RETRY_REJECTS: &str = "ppp_retry_rejects_total";

/// Frames or connections shed by the server (label: `reason`).
pub const SHED_TOTAL: &str = "ppp_shed_total";
/// Duplicate sequenced frames dropped by the watermark (label:
/// `bench`).
pub const AGG_DUPLICATES: &str = "ppp_agg_frames_duplicate_total";

/// Per-frame ingest latency histogram, microseconds (label: `bench`).
pub const INGEST_MICROS: &str = "ppp_agg_ingest_micros";
/// Shard-queue wait latency histogram, microseconds (label: `bench`).
pub const QUEUE_WAIT_MICROS: &str = "ppp_agg_queue_wait_micros";
/// WAL append+flush latency histogram, microseconds (label: `bench`).
pub const WAL_FSYNC_MICROS: &str = "ppp_wal_fsync_micros";
/// Flight-recorder dump artifacts written (no labels).
pub const FLIGHT_DUMPS: &str = "ppp_flight_dumps_total";
/// Stats frames served by the TCP tier (no labels).
pub const STATS_SERVED: &str = "ppp_stats_served_total";

#[cfg(test)]
mod tests {
    #[test]
    fn families_are_prefixed_and_distinct() {
        let all = [
            super::WAL_APPENDS,
            super::WAL_BYTES,
            super::WAL_CHECKPOINTS,
            super::WAL_CHECKPOINT_BYTES,
            super::WAL_REPLAYED,
            super::WAL_TORN_BYTES,
            super::WAL_RECOVERIES,
            super::WAL_ERRORS,
            super::RETRY_RECONNECTS,
            super::RETRY_BACKOFFS,
            super::RETRY_RESENT,
            super::RETRY_REJECTS,
            super::SHED_TOTAL,
            super::AGG_DUPLICATES,
            super::INGEST_MICROS,
            super::QUEUE_WAIT_MICROS,
            super::WAL_FSYNC_MICROS,
            super::FLIGHT_DUMPS,
            super::STATS_SERVED,
        ];
        for name in all {
            assert!(name.starts_with("ppp_"), "{name}");
        }
        let mut unique = all.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), all.len(), "names must be distinct");
    }
}
