//! The flight recorder: a fixed-capacity ring of recent observation
//! records, dumped to a schema-versioned JSON artifact when something
//! goes wrong.
//!
//! The serve tier's whole value is surviving crashes — but a crash also
//! discards every in-memory span and metric, which is exactly when they
//! are most needed. The [`FlightRecorder`] is an [`Obs`] sink holding
//! the last N records in a preallocated ring (fixed capacity, no
//! growth, overwrite-oldest), teed alongside whatever sink is already
//! installed. On a panic, an injected fault, a wire `Reject`, or an
//! abrupt `Server::kill`, [`flight_dump`] writes the ring plus a full
//! metrics-registry snapshot as a [`FLIGHT_SCHEMA`] JSON document — the
//! post-mortem a restarted process can no longer produce.
//!
//! Recording is one mutex lock and one slot overwrite per record; the
//! interpreter hot loop still makes zero obs calls, so the <2% no-op
//! overhead bound is untouched.

use crate::json;
use crate::metrics::Registry;
use crate::sink::{Obs, Record};
use crate::span::{global, install_global};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

/// Schema tag written into every dump artifact.
pub const FLIGHT_SCHEMA: &str = "ppp-flight-recorder/v1";

/// Default ring capacity (records retained).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 512;

/// A fixed-capacity ring-buffer sink retaining the most recent records.
///
/// The ring is preallocated at construction and never grows; once full,
/// each new record overwrites the oldest slot.
pub struct FlightRecorder {
    ring: Mutex<Ring>,
}

struct Ring {
    slots: Vec<Option<Record>>,
    /// Next write position.
    head: usize,
    /// Total records ever seen (≥ retained count).
    seen: u64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Mutex::new(Ring {
                slots: vec![None; capacity.max(1)],
                head: 0,
                seen: 0,
            }),
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<Record> {
        let r = self.ring.lock().expect("flight ring lock");
        let cap = r.slots.len();
        (0..cap)
            .filter_map(|i| r.slots[(r.head + i) % cap].clone())
            .collect()
    }

    /// Total records seen over the recorder's lifetime.
    pub fn seen(&self) -> u64 {
        self.ring.lock().expect("flight ring lock").seen
    }

    /// Renders the post-mortem document: the retained records plus a
    /// snapshot of `registry`, under the [`FLIGHT_SCHEMA`] tag.
    pub fn dump_json(&self, reason: &str, registry: &Registry) -> String {
        let records = self.records();
        let body = records
            .iter()
            .map(Record::to_json_line)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"schema\":\"{}\",\"reason\":\"{}\",\"records_seen\":{},\
             \"records\":[{body}],\"registry\":{}}}",
            FLIGHT_SCHEMA,
            json::escape(reason),
            self.seen(),
            registry.to_json(),
        )
    }
}

impl Obs for FlightRecorder {
    fn record(&self, rec: &Record) {
        if let Ok(mut r) = self.ring.lock() {
            let cap = r.slots.len();
            let head = r.head;
            r.slots[head] = Some(rec.clone());
            r.head = (head + 1) % cap;
            r.seen += 1;
        }
    }
}

/// Fans each record out to every sink; enabled when any sink is.
pub struct TeeSink {
    sinks: Vec<Arc<dyn Obs>>,
}

impl TeeSink {
    /// Tees across `sinks`.
    pub fn new(sinks: Vec<Arc<dyn Obs>>) -> Self {
        Self { sinks }
    }
}

impl Obs for TeeSink {
    fn record(&self, rec: &Record) {
        for s in &self.sinks {
            s.record(rec);
        }
    }

    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }
}

struct FlightState {
    recorder: Arc<FlightRecorder>,
    dir: PathBuf,
    /// The sink the global context had before the tee was spliced in,
    /// so a re-install replaces the old tee instead of chaining it.
    base: Arc<dyn Obs>,
    tee: Arc<dyn Obs>,
}

fn flight_cell() -> &'static Mutex<Option<FlightState>> {
    static FLIGHT: OnceLock<Mutex<Option<FlightState>>> = OnceLock::new();
    FLIGHT.get_or_init(|| Mutex::new(None))
}

/// Installs a process-global flight recorder: the current global
/// context's sink is replaced by a tee feeding both it and a fresh
/// [`FlightRecorder`]; dumps land under `dir`. Re-installing replaces
/// the previous recorder (the tee is re-spliced, never chained).
/// Returns the recorder.
pub fn install_flight(dir: impl Into<PathBuf>, capacity: usize) -> Arc<FlightRecorder> {
    let mut st = flight_cell().lock().expect("flight state lock");
    let recorder = Arc::new(FlightRecorder::new(capacity));
    let cur = global();
    let cur_sink = cur.sink();
    let base = match st.take() {
        // If the global sink is still our tee, splice from the original
        // base; if someone installed a fresh context since, honor it.
        Some(prev) if Arc::ptr_eq(&cur_sink, &prev.tee) => prev.base,
        _ => cur_sink,
    };
    let tee: Arc<dyn Obs> = Arc::new(TeeSink::new(vec![
        Arc::clone(&base),
        Arc::clone(&recorder) as Arc<dyn Obs>,
    ]));
    install_global(cur.with_sink(Arc::clone(&tee)));
    *st = Some(FlightState {
        recorder: Arc::clone(&recorder),
        dir: dir.into(),
        base,
        tee,
    });
    recorder
}

/// The installed recorder, if any.
pub fn flight_recorder() -> Option<Arc<FlightRecorder>> {
    flight_cell()
        .lock()
        .expect("flight state lock")
        .as_ref()
        .map(|s| Arc::clone(&s.recorder))
}

/// Writes a post-mortem dump named after `reason` (sanitized) into the
/// installed recorder's directory and returns its path. `None` when no
/// recorder is installed; write failures are swallowed (telemetry must
/// never take down the pipeline it observes).
pub fn flight_dump(reason: &str) -> Option<PathBuf> {
    let st = flight_cell().lock().expect("flight state lock");
    let s = st.as_ref()?;
    let ctx = global();
    let doc = s.recorder.dump_json(reason, ctx.metrics());
    let stem: String = reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let path = s.dir.join(format!("flight-{stem}.json"));
    std::fs::create_dir_all(&s.dir).ok()?;
    std::fs::write(&path, doc).ok()?;
    ctx.metrics().inc(crate::names::FLIGHT_DUMPS, &[]);
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::sink::{Level, RecordKind, Value};

    fn rec(i: u64) -> Record {
        Record {
            kind: RecordKind::Event,
            level: Level::Info,
            span: 0,
            parent: 0,
            name: format!("ev.{i}"),
            at_us: i,
            elapsed_us: None,
            fields: vec![("i".into(), Value::U64(i))],
        }
    }

    #[test]
    fn ring_retains_the_last_n_records() {
        let fr = FlightRecorder::new(4);
        for i in 0..10 {
            fr.record(&rec(i));
        }
        let got = fr.records();
        assert_eq!(fr.seen(), 10);
        assert_eq!(got.len(), 4);
        let names: Vec<_> = got.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["ev.6", "ev.7", "ev.8", "ev.9"], "oldest first");
    }

    #[test]
    fn partial_ring_keeps_insertion_order() {
        let fr = FlightRecorder::new(8);
        for i in 0..3 {
            fr.record(&rec(i));
        }
        let names: Vec<_> = fr.records().iter().map(|r| r.name.clone()).collect();
        assert_eq!(names, ["ev.0", "ev.1", "ev.2"]);
    }

    #[test]
    fn dump_document_parses_and_carries_schema_records_and_registry() {
        let fr = FlightRecorder::new(16);
        for i in 0..5 {
            fr.record(&rec(i));
        }
        let reg = Registry::new();
        reg.inc_by("ppp_agg_frames_ingested_total", &[("bench", "mcf")], 42);
        let doc = fr.dump_json("server-kill", &reg);
        let v = json::parse(&doc).expect("dump is valid JSON");
        assert_eq!(v.get("schema").and_then(Json::as_str), Some(FLIGHT_SCHEMA));
        assert_eq!(v.get("reason").and_then(Json::as_str), Some("server-kill"));
        assert_eq!(v.get("records_seen").and_then(Json::as_u64), Some(5));
        let records = v.get("records").and_then(Json::as_arr).expect("records");
        assert_eq!(records.len(), 5);
        assert_eq!(records[0].get("name").and_then(Json::as_str), Some("ev.0"));
        let metrics = v
            .get("registry")
            .and_then(|r| r.get("metrics"))
            .and_then(Json::as_arr)
            .expect("registry snapshot");
        assert_eq!(metrics.len(), 1);
    }

    #[test]
    fn tee_fans_out_and_reports_enabled() {
        let collect = crate::CollectSink::new();
        let fr = Arc::new(FlightRecorder::new(4));
        let tee = TeeSink::new(vec![
            Arc::new(collect.clone()) as Arc<dyn Obs>,
            Arc::clone(&fr) as Arc<dyn Obs>,
        ]);
        assert!(tee.enabled());
        tee.record(&rec(1));
        assert_eq!(collect.len(), 1);
        assert_eq!(fr.seen(), 1);
        let noop_tee = TeeSink::new(vec![Arc::new(crate::NoopSink) as Arc<dyn Obs>]);
        assert!(!noop_tee.enabled());
    }
}
