//! Observation sinks: where span and event records go.
//!
//! A [`Record`] is one observation — a span opening, a span closing, or a
//! point event — with a small bag of typed fields. Sinks are deliberately
//! dumb: they receive finished records and write them somewhere. All
//! aggregation lives in the metrics registry, and all structure (span
//! parentage, timing) is carried *in* the record so a sink never needs
//! per-span state.
//!
//! Provided sinks:
//!
//! - [`NoopSink`] — drops everything; the production default when no one
//!   is watching. Observation cost with this sink installed is the cost
//!   of building the record, which the pipeline only does at stage
//!   boundaries (never per instruction).
//! - [`JsonLinesSink`] — one JSON object per line to any `Write`
//!   (typically stderr, keeping stdout pure for `--format json`).
//! - [`TextSink`] — human-oriented one-line diagnostics, also typically
//!   stderr; replaces the ad-hoc `eprintln!` warnings.
//! - [`CollectSink`] — buffers records in memory for tests and for
//!   `repro trace`'s breakdown tree.

use crate::json;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// What kind of observation a [`Record`] is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecordKind {
    /// A span opened.
    SpanStart,
    /// A span closed; `elapsed_us` is populated.
    SpanEnd,
    /// A point-in-time event (diagnostic, warning, milestone).
    Event,
}

impl RecordKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordKind::SpanStart => "span_start",
            RecordKind::SpanEnd => "span_end",
            RecordKind::Event => "event",
        }
    }
}

/// Severity attached to events (spans are always `Info`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Level {
    /// Fine-grained progress.
    Debug,
    /// Normal milestones.
    Info,
    /// Something degraded but the pipeline continues.
    Warn,
    /// Something failed.
    Error,
}

impl Level {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// A typed field value on a record.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// Unsigned integer (counts, cost units).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (ratios, percentages).
    F64(f64),
    /// Text.
    Str(String),
    /// Flag.
    Bool(bool),
}

impl Value {
    pub(crate) fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => json::fmt_f64(*v),
            Value::Str(s) => format!("\"{}\"", json::escape(s)),
            Value::Bool(b) => b.to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// One observation record.
#[derive(Clone, PartialEq, Debug)]
pub struct Record {
    /// What this record is.
    pub kind: RecordKind,
    /// Severity (meaningful for events; `Info` for spans).
    pub level: Level,
    /// Span id (0 for events outside any span).
    pub span: u64,
    /// Parent span id (0 for roots).
    pub parent: u64,
    /// Span or event name, dotted taxonomy (`pipeline.instrument`,
    /// `vm.run`, `degrade.rung`).
    pub name: String,
    /// Microseconds since the context epoch.
    pub at_us: u64,
    /// For `SpanEnd`: wall-time the span covered, in microseconds.
    pub elapsed_us: Option<u64>,
    /// Typed payload fields, in insertion order.
    pub fields: Vec<(String, Value)>,
}

impl Record {
    /// Fetches a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Renders the record as a single JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"kind\":\"{}\",\"level\":\"{}\",\"span\":{},\"parent\":{},\"name\":\"{}\",\"at_us\":{}",
            self.kind.as_str(),
            self.level.as_str(),
            self.span,
            self.parent,
            json::escape(&self.name),
            self.at_us
        );
        if let Some(e) = self.elapsed_us {
            out.push_str(&format!(",\"elapsed_us\":{e}"));
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", json::escape(k), v.to_json()));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// An observation sink. Implementations must be cheap to call and must
/// never panic — they are invoked from library code that owes its caller
/// a result regardless of telemetry health.
pub trait Obs: Send + Sync {
    /// Consumes one record.
    fn record(&self, rec: &Record);

    /// True when records would be discarded unseen. Callers may use this
    /// to skip building expensive field payloads.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards everything.
#[derive(Default, Clone, Copy, Debug)]
pub struct NoopSink;

impl Obs for NoopSink {
    fn record(&self, _rec: &Record) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Writes one JSON object per record to a shared writer.
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    /// Wraps any writer (commonly `std::io::stderr()`).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        Self {
            out: Mutex::new(out),
        }
    }

    /// A sink writing to stderr.
    pub fn stderr() -> Self {
        Self::new(Box::new(std::io::stderr()))
    }
}

impl Obs for JsonLinesSink {
    fn record(&self, rec: &Record) {
        if let Ok(mut w) = self.out.lock() {
            // Telemetry write failures are not the pipeline's problem.
            let _ = writeln!(w, "{}", rec.to_json_line());
        }
    }
}

/// Human-oriented one-line diagnostics. Only events at `Info` and above
/// are printed; span records are suppressed so interactive runs stay
/// quiet. This is the default sink, replacing the old scattered
/// `eprintln!` calls.
pub struct TextSink {
    out: Mutex<Box<dyn Write + Send>>,
    min_level: Level,
}

impl TextSink {
    /// Wraps a writer with a minimum event level.
    pub fn new(out: Box<dyn Write + Send>, min_level: Level) -> Self {
        Self {
            out: Mutex::new(out),
            min_level,
        }
    }

    /// The standard diagnostic sink: events at `Warn`+ to stderr.
    pub fn stderr() -> Self {
        Self::new(Box::new(std::io::stderr()), Level::Warn)
    }

    /// A stderr sink that also shows `Info` progress events.
    pub fn stderr_verbose() -> Self {
        Self::new(Box::new(std::io::stderr()), Level::Info)
    }
}

impl Obs for TextSink {
    fn record(&self, rec: &Record) {
        if rec.kind != RecordKind::Event || rec.level < self.min_level {
            return;
        }
        if let Ok(mut w) = self.out.lock() {
            let mut line = format!("[{}] {}", rec.level.as_str(), rec.name);
            for (k, v) in &rec.fields {
                line.push_str(&format!(" {k}={v}"));
            }
            let _ = writeln!(w, "{line}");
        }
    }
}

/// Buffers records in memory; for tests and `repro trace`.
#[derive(Default, Clone)]
pub struct CollectSink {
    records: Arc<Mutex<Vec<Record>>>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of everything recorded so far.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().expect("collect lock").clone()
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.records.lock().expect("collect lock").len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Obs for CollectSink {
    fn record(&self, rec: &Record) {
        self.records.lock().expect("collect lock").push(rec.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> Record {
        Record {
            kind: RecordKind::Event,
            level: Level::Warn,
            span: 3,
            parent: 1,
            name: "degrade.rung".into(),
            at_us: 42,
            elapsed_us: None,
            fields: vec![
                ("rung".into(), Value::Str("salvaged-functions".into())),
                ("lost".into(), Value::U64(7)),
                ("ok".into(), Value::Bool(true)),
            ],
        }
    }

    #[test]
    fn record_json_line_parses_back() {
        let line = rec().to_json_line();
        let v = crate::json::parse(&line).expect("valid JSON");
        assert_eq!(v.get("kind").unwrap().as_str(), Some("event"));
        assert_eq!(v.get("span").unwrap().as_u64(), Some(3));
        let fields = v.get("fields").unwrap();
        assert_eq!(
            fields.get("rung").unwrap().as_str(),
            Some("salvaged-functions")
        );
        assert_eq!(fields.get("lost").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn span_end_carries_elapsed() {
        let mut r = rec();
        r.kind = RecordKind::SpanEnd;
        r.elapsed_us = Some(99);
        let v = crate::json::parse(&r.to_json_line()).unwrap();
        assert_eq!(v.get("elapsed_us").unwrap().as_u64(), Some(99));
    }

    #[test]
    fn noop_reports_disabled() {
        assert!(!NoopSink.enabled());
        NoopSink.record(&rec()); // must not panic
    }

    #[test]
    fn collect_sink_buffers_in_order() {
        let c = CollectSink::new();
        let mut a = rec();
        a.name = "first".into();
        let mut b = rec();
        b.name = "second".into();
        c.record(&a);
        c.record(&b);
        let got = c.records();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].name, "first");
        assert_eq!(got[1].name, "second");
    }

    #[test]
    fn json_lines_sink_writes_lines() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::default();
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonLinesSink::new(Box::new(Shared(buf.clone())));
        sink.record(&rec());
        sink.record(&rec());
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::json::parse(line).expect("each line is standalone JSON");
        }
    }

    #[test]
    fn text_sink_filters_below_min_level() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::default();
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = TextSink::new(Box::new(Shared(buf.clone())), Level::Warn);
        let mut info = rec();
        info.level = Level::Info;
        sink.record(&info); // filtered
        sink.record(&rec()); // warn: kept
        let mut span = rec();
        span.kind = RecordKind::SpanStart;
        sink.record(&span); // spans never printed
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("[warn] degrade.rung"));
        assert!(text.contains("rung=salvaged-functions"));
    }
}
