//! A minimal JSON value model, parser, and escaper.
//!
//! The workspace is hermetic (no registry access), so the observability
//! layer carries its own JSON support: enough to emit span records and
//! metric dumps, and to *parse back* persisted perf-baseline artifacts
//! for `repro bench --compare`. Integers are kept out of `f64` so
//! saturated `u64::MAX` counters survive a round trip exactly.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent (exact up to `i128`).
    Int(i128),
    /// Any other number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved is not needed, keys sort.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// A JSON parse failure: byte offset plus message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !fractional {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates (from emitters that split non-BMP
                            // chars) are replaced; we never emit them.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }
}

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` so it parses back as JSON (no NaN/inf; those become
/// `null`-safe sentinels the reader treats as absent).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // Enough digits to round-trip; trim the noise for common values.
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -42 ").unwrap(), Json::Int(-42));
        assert_eq!(parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn u64_max_survives() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":"c"},null],"d":{"e":2.5}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("d").unwrap().get("e").unwrap().as_f64(), Some(2.5));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode\u{e9}";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), Json::Str(nasty.to_owned()));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
        assert_eq!(parse(r#""\u00e9""#).unwrap(), Json::Str("é".into()));
    }
}
