//! A typed metrics registry: counters, gauges, and histograms with fixed
//! log2 buckets, exposed as Prometheus-style text and as JSON.
//!
//! Metrics are keyed by `(name, sorted labels)`. The registry is
//! internally synchronized (a single mutex — the pipeline records metrics
//! at stage boundaries, not per instruction, so contention is nil) and
//! cheap to clone-share via [`std::sync::Arc`].
//!
//! Semantics follow the Prometheus data model:
//!
//! - **counter** — monotonically non-decreasing `u64`, saturating;
//! - **gauge** — last-write-wins `f64`;
//! - **histogram** — `u64` observations in buckets `[2^(i-1), 2^i)`
//!   (bucket 0 holds zeros), plus exact `sum` and `count`.
//!
//! A name registered as one type and used as another is a programming
//! error; the mismatched write is dropped and counted in the registry's
//! own `ppp_obs_type_conflicts_total` counter — observability must never
//! panic the pipeline it observes.

use crate::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Number of log2 histogram buckets: bucket 0 holds zeros, bucket `i`
/// (1..=64) holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A metric key: name plus sorted label pairs.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct MetricKey {
    /// Metric name (Prometheus conventions: `snake_case`, unit-suffixed).
    pub name: String,
    /// Label pairs, kept sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        Self {
            name: name.to_owned(),
            labels,
        }
    }

    fn prom_suffix(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let body = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
            .collect::<Vec<_>>()
            .join(",");
        format!("{{{body}}}")
    }
}

/// Escapes a Prometheus label value (backslash, quote, newline).
pub fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// One metric's current value.
#[derive(Clone, PartialEq, Debug)]
pub enum MetricValue {
    /// Saturating monotonic counter.
    Counter(u64),
    /// Last-write-wins gauge.
    Gauge(f64),
    /// Log2-bucketed histogram of `u64` observations.
    Histogram(Histogram),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// Histogram state: fixed log2 buckets plus exact sum/count.
#[derive(Clone, PartialEq, Debug)]
pub struct Histogram {
    /// `buckets[0]` counts zero observations; `buckets[i]` counts values
    /// in `[2^(i-1), 2^i)`.
    pub buckets: Vec<u64>,
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Bucket index of `v`: 0 for 0, else `bit_length(v)`.
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Inclusive upper bound of bucket `i` (`None` for the zero bucket's
    /// exact bound, which is 0).
    pub fn upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) as the inclusive upper
    /// bound of the bucket holding the rank-`⌈q·count⌉` observation —
    /// a conservative (never-underestimating) tail-latency figure.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Folds `other` into `self` (bucket-wise add, saturating sum).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, c) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.saturating_add(*c);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// Maximum distinct values accepted per `(metric name, label key)`
/// pair; later values collapse into [`LABEL_OTHER`] so unbounded
/// identifier spaces (client ids, worker ids) cannot grow the registry
/// without bound.
pub const MAX_LABEL_CARDINALITY: usize = 32;

/// The collapse bucket label value for over-cardinality writes.
pub const LABEL_OTHER: &str = "other";

/// The metrics registry.
#[derive(Default, Debug)]
pub struct Registry {
    inner: Mutex<BTreeMap<MetricKey, MetricValue>>,
    conflicts: Mutex<u64>,
    /// Distinct values seen per `(metric name, label key)`, capped at
    /// [`MAX_LABEL_CARDINALITY`]. A short linear-scanned list: the set
    /// of metric/label-key combinations is small and fixed, so lookups
    /// stay allocation-free on the hot path.
    cardinality: Mutex<Vec<(String, String, Vec<String>)>>,
    collapsed: Mutex<u64>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps label cardinality: a value past the per-key limit is
    /// rewritten to [`LABEL_OTHER`] before keying the metric.
    fn bounded<'a>(&self, name: &str, labels: &[(&'a str, &'a str)]) -> Vec<(&'a str, &'a str)> {
        let mut card = self.cardinality.lock().expect("cardinality lock");
        labels
            .iter()
            .map(|&(k, v)| {
                if v == LABEL_OTHER {
                    return (k, v);
                }
                let i = match card.iter().position(|(n, lk, _)| n == name && lk == k) {
                    Some(i) => i,
                    None => {
                        card.push((name.to_owned(), k.to_owned(), Vec::new()));
                        card.len() - 1
                    }
                };
                let values = &mut card[i].2;
                if values.iter().any(|x| x == v) {
                    (k, v)
                } else if values.len() < MAX_LABEL_CARDINALITY {
                    values.push(v.to_owned());
                    (k, v)
                } else {
                    *self.collapsed.lock().expect("collapsed lock") += 1;
                    (k, LABEL_OTHER)
                }
            })
            .collect()
    }

    /// Adds `by` to the counter `name{labels}` (created at zero).
    pub fn inc_by(&self, name: &str, labels: &[(&str, &str)], by: u64) {
        let labels = self.bounded(name, labels);
        let key = MetricKey::new(name, &labels);
        let mut m = self.inner.lock().expect("registry lock");
        match m.entry(key).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(c) => *c = c.saturating_add(by),
            _ => self.conflict(),
        }
    }

    /// Increments the counter `name{labels}` by one.
    pub fn inc(&self, name: &str, labels: &[(&str, &str)]) {
        self.inc_by(name, labels, 1);
    }

    /// Sets the gauge `name{labels}`.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let labels = self.bounded(name, labels);
        let key = MetricKey::new(name, &labels);
        let mut m = self.inner.lock().expect("registry lock");
        match m.entry(key).or_insert(MetricValue::Gauge(0.0)) {
            MetricValue::Gauge(g) => *g = v,
            _ => self.conflict(),
        }
    }

    /// Records `v` into the histogram `name{labels}`.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        let labels = self.bounded(name, labels);
        let key = MetricKey::new(name, &labels);
        let mut m = self.inner.lock().expect("registry lock");
        match m
            .entry(key)
            .or_insert_with(|| MetricValue::Histogram(Histogram::default()))
        {
            MetricValue::Histogram(h) => h.observe(v),
            _ => self.conflict(),
        }
    }

    fn conflict(&self) {
        *self.conflicts.lock().expect("conflict lock") += 1;
    }

    /// How many writes were dropped due to a type conflict.
    pub fn type_conflicts(&self) -> u64 {
        *self.conflicts.lock().expect("conflict lock")
    }

    /// How many label values were collapsed into [`LABEL_OTHER`]
    /// because their `(metric, label key)` hit the cardinality cap.
    pub fn labels_collapsed(&self) -> u64 {
        *self.collapsed.lock().expect("collapsed lock")
    }

    /// Current value of a counter (0 when absent).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self
            .inner
            .lock()
            .expect("registry lock")
            .get(&MetricKey::new(name, labels))
        {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Current value of a gauge (`None` when absent).
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self
            .inner
            .lock()
            .expect("registry lock")
            .get(&MetricKey::new(name, labels))
        {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Snapshot of every metric, sorted by key.
    pub fn snapshot(&self) -> Vec<(MetricKey, MetricValue)> {
        self.inner
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Merge of a histogram across all label sets sharing `name`
    /// (`None` when no histogram by that name exists).
    pub fn merged_histogram(&self, name: &str) -> Option<Histogram> {
        let m = self.inner.lock().expect("registry lock");
        let mut merged: Option<Histogram> = None;
        for (k, v) in m.iter() {
            if k.name == name {
                if let MetricValue::Histogram(h) = v {
                    merged.get_or_insert_with(Histogram::default).merge(h);
                }
            }
        }
        merged
    }

    /// Sum of a counter across all label sets sharing `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("registry lock")
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| match v {
                MetricValue::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// Renders every metric in the Prometheus text exposition format.
    ///
    /// Histograms render cumulative `_bucket{le="..."}` series (only the
    /// buckets in use, plus `+Inf`), `_sum`, and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = String::new();
        for (key, value) in self.snapshot() {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE {} {}", key.name, value.type_name());
                last_name = key.name.clone();
            }
            match value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", key.name, key.prom_suffix(), c);
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", key.name, key.prom_suffix(), g);
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    let highest = h.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
                    for i in 0..=highest {
                        cumulative += h.buckets[i];
                        let mut labels = key.labels.clone();
                        labels.push(("le".into(), Histogram::upper_bound(i).to_string()));
                        labels.sort();
                        let suffix = MetricKey {
                            name: String::new(),
                            labels,
                        }
                        .prom_suffix();
                        let _ = writeln!(out, "{}_bucket{} {}", key.name, suffix, cumulative);
                    }
                    let mut labels = key.labels.clone();
                    labels.push(("le".into(), "+Inf".into()));
                    labels.sort();
                    let suffix = MetricKey {
                        name: String::new(),
                        labels,
                    }
                    .prom_suffix();
                    let _ = writeln!(out, "{}_bucket{} {}", key.name, suffix, h.count);
                    let _ = writeln!(out, "{}_sum{} {}", key.name, key.prom_suffix(), h.sum);
                    let _ = writeln!(out, "{}_count{} {}", key.name, key.prom_suffix(), h.count);
                }
            }
        }
        out
    }

    /// Renders every metric as a JSON document (stable order, exact
    /// integers). [`Registry::from_json`] parses it back losslessly.
    pub fn to_json(&self) -> String {
        let mut items = Vec::new();
        for (key, value) in self.snapshot() {
            let labels = key
                .labels
                .iter()
                .map(|(k, v)| format!("\"{}\":\"{}\"", json::escape(k), json::escape(v)))
                .collect::<Vec<_>>()
                .join(",");
            let body = match value {
                MetricValue::Counter(c) => format!("\"type\":\"counter\",\"value\":{c}"),
                MetricValue::Gauge(g) => {
                    format!("\"type\":\"gauge\",\"value\":{}", json::fmt_f64(g))
                }
                MetricValue::Histogram(h) => {
                    // Sparse buckets: [index, count] pairs.
                    let buckets = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| format!("[{i},{c}]"))
                        .collect::<Vec<_>>()
                        .join(",");
                    format!(
                        "\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[{buckets}]",
                        h.count, h.sum
                    )
                }
            };
            items.push(format!(
                "{{\"name\":\"{}\",\"labels\":{{{labels}}},{body}}}",
                json::escape(&key.name)
            ));
        }
        format!("{{\"metrics\":[{}]}}", items.join(","))
    }

    /// Parses a [`Registry::to_json`] document back into a registry.
    ///
    /// # Errors
    ///
    /// Returns a message when the document is not valid metrics JSON.
    pub fn from_json(doc: &str) -> Result<Self, String> {
        let v = json::parse(doc).map_err(|e| e.to_string())?;
        let items = v
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or("missing \"metrics\" array")?;
        let reg = Registry::new();
        let mut map = reg.inner.lock().expect("registry lock");
        for item in items {
            let name = item
                .get("name")
                .and_then(Json::as_str)
                .ok_or("metric missing name")?;
            let mut labels: Vec<(String, String)> = Vec::new();
            if let Some(obj) = item.get("labels").and_then(Json::as_obj) {
                for (k, val) in obj {
                    labels.push((
                        k.clone(),
                        val.as_str().ok_or("non-string label value")?.to_owned(),
                    ));
                }
            }
            labels.sort();
            let key = MetricKey {
                name: name.to_owned(),
                labels,
            };
            let ty = item
                .get("type")
                .and_then(Json::as_str)
                .ok_or("metric missing type")?;
            let value = match ty {
                "counter" => MetricValue::Counter(
                    item.get("value")
                        .and_then(Json::as_u64)
                        .ok_or("counter missing integer value")?,
                ),
                "gauge" => MetricValue::Gauge(
                    item.get("value")
                        .and_then(Json::as_f64)
                        .ok_or("gauge missing value")?,
                ),
                "histogram" => {
                    let mut h = Histogram {
                        count: item
                            .get("count")
                            .and_then(Json::as_u64)
                            .ok_or("histogram missing count")?,
                        sum: item
                            .get("sum")
                            .and_then(Json::as_u64)
                            .ok_or("histogram missing sum")?,
                        ..Histogram::default()
                    };
                    for pair in item
                        .get("buckets")
                        .and_then(Json::as_arr)
                        .ok_or("histogram missing buckets")?
                    {
                        let pair = pair.as_arr().ok_or("bucket entry not a pair")?;
                        let (i, c) = match pair {
                            [i, c] => (
                                i.as_u64().ok_or("bucket index")? as usize,
                                c.as_u64().ok_or("bucket count")?,
                            ),
                            _ => return Err("bucket entry not a pair".into()),
                        };
                        if i >= HISTOGRAM_BUCKETS {
                            return Err(format!("bucket index {i} out of range"));
                        }
                        h.buckets[i] = c;
                    }
                    MetricValue::Histogram(h)
                }
                other => return Err(format!("unknown metric type {other:?}")),
            };
            map.insert(key, value);
        }
        drop(map);
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_semantics() {
        let r = Registry::new();
        r.inc("hits_total", &[]);
        r.inc_by("hits_total", &[], 4);
        r.inc("hits_total", &[("kind", "a")]);
        assert_eq!(r.counter_value("hits_total", &[]), 5);
        assert_eq!(r.counter_value("hits_total", &[("kind", "a")]), 1);
        assert_eq!(r.counter_total("hits_total"), 6);
        // Saturating, never wrapping.
        r.inc_by("hits_total", &[], u64::MAX);
        assert_eq!(r.counter_value("hits_total", &[]), u64::MAX);
    }

    #[test]
    fn gauge_last_write_wins() {
        let r = Registry::new();
        r.set_gauge("depth", &[], 2.0);
        r.set_gauge("depth", &[], -1.5);
        assert_eq!(r.gauge_value("depth", &[]), Some(-1.5));
        assert_eq!(r.gauge_value("missing", &[]), None);
    }

    #[test]
    fn label_order_is_canonical() {
        let r = Registry::new();
        r.inc("x_total", &[("b", "2"), ("a", "1")]);
        r.inc("x_total", &[("a", "1"), ("b", "2")]);
        assert_eq!(r.counter_value("x_total", &[("b", "2"), ("a", "1")]), 2);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn histogram_log2_buckets() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);

        let r = Registry::new();
        for v in [0, 1, 3, 3, 900] {
            r.observe("lat_us", &[], v);
        }
        let snap = r.snapshot();
        let MetricValue::Histogram(h) = &snap[0].1 else {
            panic!("not a histogram")
        };
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 907);
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // the two 3s
        assert_eq!(h.buckets[10], 1); // 900 in [512,1024)
    }

    #[test]
    fn type_conflicts_are_dropped_not_panicking() {
        let r = Registry::new();
        r.inc("m", &[]);
        r.set_gauge("m", &[], 1.0);
        r.observe("m", &[], 7);
        assert_eq!(r.counter_value("m", &[]), 1);
        assert_eq!(r.type_conflicts(), 2);
    }

    #[test]
    fn prometheus_text_escapes_label_values() {
        let r = Registry::new();
        r.inc("odd_total", &[("path", "a\"b\\c\nd")]);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE odd_total counter"));
        assert!(
            text.contains(r#"odd_total{path="a\"b\\c\nd"} 1"#),
            "bad escaping in: {text}"
        );
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let r = Registry::new();
        for v in [1, 1, 2, 8] {
            r.observe("h", &[("stage", "run")], v);
        }
        let text = r.render_prometheus();
        assert!(text.contains(r#"h_bucket{le="1",stage="run"} 2"#), "{text}");
        assert!(text.contains(r#"h_bucket{le="3",stage="run"} 3"#), "{text}");
        assert!(
            text.contains(r#"h_bucket{le="15",stage="run"} 4"#),
            "{text}"
        );
        assert!(
            text.contains(r#"h_bucket{le="+Inf",stage="run"} 4"#),
            "{text}"
        );
        assert!(text.contains(r#"h_sum{stage="run"} 12"#), "{text}");
        assert!(text.contains(r#"h_count{stage="run"} 4"#), "{text}");
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = Registry::new();
        r.inc_by("c_total", &[("k", "v with \"quotes\"")], u64::MAX);
        r.set_gauge("g", &[], 0.125);
        for v in [0, 5, 1 << 40] {
            r.observe("h_units", &[("b", "mcf")], v);
        }
        let doc = r.to_json();
        let back = Registry::from_json(&doc).expect("parses");
        assert_eq!(r.snapshot(), back.snapshot());
        // And the round-tripped document is identical, too.
        assert_eq!(doc, back.to_json());
    }

    #[test]
    fn quantiles_walk_the_cumulative_buckets() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");

        let r = Registry::new();
        // 90 fast observations (≤ 15µs), 9 medium, 1 slow.
        for _ in 0..90 {
            r.observe("lat", &[], 9);
        }
        for _ in 0..9 {
            r.observe("lat", &[], 100);
        }
        r.observe("lat", &[], 5000);
        let h = r.merged_histogram("lat").expect("histogram exists");
        assert_eq!(h.quantile(0.5), 15); // bucket [8,16)
        assert_eq!(h.quantile(0.95), 127); // bucket [64,128)
        assert_eq!(h.quantile(0.99), 127);
        assert_eq!(h.quantile(1.0), 8191); // bucket [4096,8192)
        assert_eq!(h.quantile(0.0), 15, "q=0 clamps to the first rank");
    }

    #[test]
    fn merged_histogram_spans_label_sets() {
        let r = Registry::new();
        r.observe("lat", &[("bench", "mcf")], 4);
        r.observe("lat", &[("bench", "vpr")], 4);
        r.inc("lat_total", &[]); // different name, different type
        let h = r.merged_histogram("lat").expect("merged");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 8);
        assert!(r.merged_histogram("missing").is_none());
        assert!(r.merged_histogram("lat_total").is_none());
    }

    /// The cardinality regression test: 10k distinct clients must not
    /// grow the registry past the per-key cap plus the `other` bucket.
    #[test]
    fn label_cardinality_is_bounded_under_10k_clients() {
        let r = Registry::new();
        for client in 0..10_000u64 {
            let id = client.to_string();
            r.inc("ppp_retry_resent_frames_total", &[("client", id.as_str())]);
            r.observe("ppp_agg_ingest_micros", &[("client", id.as_str())], client);
        }
        let snap = r.snapshot();
        let counters = snap
            .iter()
            .filter(|(k, _)| k.name == "ppp_retry_resent_frames_total")
            .count();
        assert_eq!(counters, MAX_LABEL_CARDINALITY + 1, "cap + other bucket");
        let hists = snap
            .iter()
            .filter(|(k, _)| k.name == "ppp_agg_ingest_micros")
            .count();
        assert_eq!(hists, MAX_LABEL_CARDINALITY + 1);
        // Nothing was dropped: the overflow landed in `other`.
        assert_eq!(r.counter_total("ppp_retry_resent_frames_total"), 10_000);
        assert_eq!(
            r.counter_value("ppp_retry_resent_frames_total", &[("client", LABEL_OTHER)]),
            10_000 - MAX_LABEL_CARDINALITY as u64
        );
        let h = r.merged_histogram("ppp_agg_ingest_micros").expect("merged");
        assert_eq!(h.count, 10_000);
        assert_eq!(
            r.labels_collapsed(),
            2 * (10_000 - MAX_LABEL_CARDINALITY as u64)
        );
        // Values inside the cap keep their identity.
        assert_eq!(
            r.counter_value("ppp_retry_resent_frames_total", &[("client", "0")]),
            1
        );
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(Registry::from_json("{}").is_err());
        assert!(Registry::from_json(r#"{"metrics":[{"name":"x"}]}"#).is_err());
        assert!(
            Registry::from_json(r#"{"metrics":[{"name":"x","type":"alien","value":1}]}"#).is_err()
        );
    }
}
