//! # ppp-obs — structured observability for the PPP pipeline
//!
//! Zero-dependency tracing (spans + events), a typed metrics registry,
//! and helpers for perf-baseline telemetry. The paper this repo
//! reproduces is *about* an overhead/accuracy trade-off, so the
//! infrastructure that measures overhead is itself a first-class
//! subsystem: every pipeline stage runs under a [`Span`], every
//! interesting count lands in the [`Registry`], and `repro bench`
//! persists the Figure 9–13 quantities as versioned JSON artifacts.
//!
//! Design rules:
//!
//! - **No per-instruction observation.** VM metrics are extracted from
//!   [`RunResult`]-style counters after the run; the interpreter hot
//!   loop has zero obs calls, so the no-op-sink overhead bound (<2%)
//!   holds by construction.
//! - **Sinks never panic and never touch stdout.** Diagnostics go to
//!   stderr (text or JSON-lines), keeping `--format json` stdout pure.
//! - **Metrics survive round trips.** Counters are exact `u64` end to
//!   end — including `u64::MAX` saturation values — via the built-in
//!   integer-preserving JSON parser.
//!
//! ## Quick tour
//!
//! ```
//! use ppp_obs::{ObsCtx, Level, Value};
//!
//! let (ctx, collect) = ppp_obs::ObsCtx::collecting();
//! {
//!     let mut stage = ctx.span("pipeline.instrument");
//!     stage.set("bench", "mcf");
//!     let inner = stage.child("vm.run");
//!     drop(inner);
//!     stage.event(Level::Warn, "degrade.rung", &[("rung", Value::from("full-profile"))]);
//! }
//! ctx.metrics().inc_by("ppp_vm_cost_units_total", &[("bench", "mcf")], 1234);
//!
//! let tree = ppp_obs::SpanTree::build(&collect.records());
//! assert_eq!(tree.roots.len(), 1);
//! assert!(ctx.metrics().render_prometheus().contains("ppp_vm_cost_units_total"));
//! ```
//!
//! [`RunResult`]: https://docs.rs/ppp-vm

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod json;
pub mod metrics;
pub mod names;
pub mod sink;
pub mod span;

pub use flight::{
    flight_dump, flight_recorder, install_flight, FlightRecorder, TeeSink, DEFAULT_FLIGHT_CAPACITY,
    FLIGHT_SCHEMA,
};
pub use metrics::{
    Histogram, MetricKey, MetricValue, Registry, HISTOGRAM_BUCKETS, LABEL_OTHER,
    MAX_LABEL_CARDINALITY,
};
pub use sink::{
    CollectSink, JsonLinesSink, Level, NoopSink, Obs, Record, RecordKind, TextSink, Value,
};
pub use span::{global, install_global, ObsCtx, Span};

/// One node of a reconstructed span tree.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Span id.
    pub id: u64,
    /// Wall-time covered, microseconds (0 when the span never closed).
    pub elapsed_us: u64,
    /// Fields from the closing record.
    pub fields: Vec<(String, Value)>,
    /// Events attributed to this span, in order.
    pub events: Vec<Record>,
    /// Child spans, in start order.
    pub children: Vec<SpanNode>,
}

/// A forest of spans reconstructed from a flat record stream.
#[derive(Clone, Debug, Default)]
pub struct SpanTree {
    /// Root spans, in start order.
    pub roots: Vec<SpanNode>,
    /// Events that happened outside any span.
    pub orphan_events: Vec<Record>,
}

impl SpanTree {
    /// Rebuilds the tree from records (as captured by a
    /// [`CollectSink`] or parsed back from a JSON-lines stream).
    pub fn build(records: &[Record]) -> Self {
        use std::collections::BTreeMap;
        let mut nodes: BTreeMap<u64, SpanNode> = BTreeMap::new();
        let mut parent_of: BTreeMap<u64, u64> = BTreeMap::new();
        let mut order: Vec<u64> = Vec::new();
        let mut orphan_events = Vec::new();
        for rec in records {
            match rec.kind {
                RecordKind::SpanStart => {
                    nodes.insert(
                        rec.span,
                        SpanNode {
                            name: rec.name.clone(),
                            id: rec.span,
                            elapsed_us: 0,
                            fields: Vec::new(),
                            events: Vec::new(),
                            children: Vec::new(),
                        },
                    );
                    parent_of.insert(rec.span, rec.parent);
                    order.push(rec.span);
                }
                RecordKind::SpanEnd => {
                    if let Some(n) = nodes.get_mut(&rec.span) {
                        n.elapsed_us = rec.elapsed_us.unwrap_or(0);
                        n.fields = rec.fields.clone();
                    }
                }
                RecordKind::Event => {
                    if let Some(n) = nodes.get_mut(&rec.span) {
                        n.events.push(rec.clone());
                    } else {
                        orphan_events.push(rec.clone());
                    }
                }
            }
        }
        // Attach children to parents, deepest-started last. Walk the
        // start order in reverse so a child is complete before it is
        // moved into its parent.
        let mut tree = SpanTree {
            roots: Vec::new(),
            orphan_events,
        };
        for id in order.iter().rev() {
            let parent = parent_of.get(id).copied().unwrap_or(0);
            let Some(node) = nodes.remove(id) else {
                continue;
            };
            if parent == 0 {
                tree.roots.insert(0, node);
            } else if let Some(p) = nodes.get_mut(&parent) {
                p.children.insert(0, node);
            } else {
                // Parent never recorded (truncated stream): promote.
                tree.roots.insert(0, node);
            }
        }
        tree
    }

    /// Stitches a cross-process trace: `remote` records (typically the
    /// server side) are grafted into `local` records (the client side).
    ///
    /// Remote span/parent ids are offset past the local id range so the
    /// two processes' independent allocators cannot collide; a remote
    /// root span carrying a `remote_parent` field (see
    /// [`ObsCtx::span_remote`]) whose value names a local span is
    /// re-parented under it, reconstructing the client→server causality
    /// from either side's sink.
    pub fn stitch(local: &[Record], remote: &[Record]) -> Self {
        let local_max = local
            .iter()
            .flat_map(|r| [r.span, r.parent])
            .max()
            .unwrap_or(0);
        let local_spans: std::collections::BTreeSet<u64> = local
            .iter()
            .filter(|r| r.kind == RecordKind::SpanStart)
            .map(|r| r.span)
            .collect();
        let mut combined: Vec<Record> = local.to_vec();
        for rec in remote {
            let mut rec = rec.clone();
            if rec.span != 0 {
                rec.span += local_max;
            }
            if rec.parent != 0 {
                rec.parent += local_max;
            } else if matches!(rec.kind, RecordKind::SpanStart | RecordKind::SpanEnd) {
                let rp = match rec.field("remote_parent") {
                    Some(Value::U64(rp)) => Some(*rp),
                    _ => None,
                };
                if let Some(rp) = rp {
                    if local_spans.contains(&rp) {
                        rec.parent = rp;
                    }
                }
            }
            combined.push(rec);
        }
        Self::build(&combined)
    }

    /// Renders the tree as a JSON document (`roots` + `orphan_events`),
    /// for `repro trace --format json` and machine consumers.
    pub fn to_json(&self) -> String {
        let roots = self
            .roots
            .iter()
            .map(Self::node_to_json)
            .collect::<Vec<_>>()
            .join(",");
        let orphans = self
            .orphan_events
            .iter()
            .map(Record::to_json_line)
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"roots\":[{roots}],\"orphan_events\":[{orphans}]}}")
    }

    fn node_to_json(node: &SpanNode) -> String {
        let fields = node
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json::escape(k), v.to_json()))
            .collect::<Vec<_>>()
            .join(",");
        let events = node
            .events
            .iter()
            .map(Record::to_json_line)
            .collect::<Vec<_>>()
            .join(",");
        let children = node
            .children
            .iter()
            .map(Self::node_to_json)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"name\":\"{}\",\"id\":{},\"elapsed_us\":{},\"fields\":{{{fields}}},\
             \"events\":[{events}],\"children\":[{children}]}}",
            json::escape(&node.name),
            node.id,
            node.elapsed_us,
        )
    }

    /// Renders the tree as an indented per-stage breakdown. Each line
    /// shows the span name, elapsed wall-time, its share of the parent's
    /// time, and any fields.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for root in &self.roots {
            Self::render_node(root, root.elapsed_us.max(1), 0, &mut out);
        }
        for ev in &self.orphan_events {
            out.push_str(&format!("* [{}] {}\n", ev.level.as_str(), ev.name));
        }
        out
    }

    fn render_node(node: &SpanNode, parent_us: u64, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        let pct = 100.0 * node.elapsed_us as f64 / parent_us.max(1) as f64;
        out.push_str(&format!(
            "{indent}{}  {:.3} ms  ({pct:.1}%)",
            node.name,
            node.elapsed_us as f64 / 1000.0
        ));
        for (k, v) in &node.fields {
            out.push_str(&format!("  {k}={v}"));
        }
        out.push('\n');
        for ev in &node.events {
            let mut line = format!("{indent}  ! [{}] {}", ev.level.as_str(), ev.name);
            for (k, v) in &ev.fields {
                line.push_str(&format!(" {k}={v}"));
            }
            out.push_str(&line);
            out.push('\n');
        }
        for child in &node.children {
            Self::render_node(child, node.elapsed_us.max(1), depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_rebuilds_nesting_from_flat_records() {
        let (ctx, collect) = ObsCtx::collecting();
        {
            let root = ctx.span("pipeline.run");
            {
                let inner = root.child("vm.run");
                inner.event(Level::Warn, "vm.saturated", &[("n", Value::U64(2))]);
            }
            let _r = root.child("report.render");
        }
        let tree = SpanTree::build(&collect.records());
        assert_eq!(tree.roots.len(), 1);
        let root = &tree.roots[0];
        assert_eq!(root.name, "pipeline.run");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "vm.run");
        assert_eq!(root.children[1].name, "report.render");
        assert_eq!(root.children[0].events.len(), 1);
        assert!(tree.orphan_events.is_empty());

        let text = tree.render();
        assert!(text.contains("pipeline.run"));
        assert!(text.contains("  vm.run"));
        assert!(text.contains("! [warn] vm.saturated n=2"));
    }

    #[test]
    fn tree_promotes_children_of_missing_parents() {
        // A truncated stream: only the child's records survive.
        let recs = vec![
            Record {
                kind: RecordKind::SpanStart,
                level: Level::Info,
                span: 9,
                parent: 4, // never seen
                name: "vm.run".into(),
                at_us: 0,
                elapsed_us: None,
                fields: Vec::new(),
            },
            Record {
                kind: RecordKind::SpanEnd,
                level: Level::Info,
                span: 9,
                parent: 4,
                name: "vm.run".into(),
                at_us: 10,
                elapsed_us: Some(10),
                fields: Vec::new(),
            },
        ];
        let tree = SpanTree::build(&recs);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].name, "vm.run");
    }

    #[test]
    fn stitch_grafts_remote_spans_under_the_local_sender() {
        // Two independent contexts with overlapping span-id ranges —
        // exactly what two processes produce.
        let (client, client_sink) = ObsCtx::collecting();
        let (server, server_sink) = ObsCtx::collecting();
        let trace_id = 0xDEAD_BEEF_u64;
        let send_id;
        {
            let send = client.span("client.send");
            send_id = send.id();
            // Server handles the frame carrying (trace_id, send_id).
            let apply = server.span_remote("shard.apply", trace_id, send_id);
            let _child = apply.child("shard.decode");
        }
        let local = client_sink.records();
        let remote = server_sink.records();
        // Both allocators started at 1, so ids overlap before stitching.
        assert!(remote.iter().any(|r| r.span == local[0].span));

        let tree = SpanTree::stitch(&local, &remote);
        assert_eq!(tree.roots.len(), 1, "one stitched trace");
        let root = &tree.roots[0];
        assert_eq!(root.name, "client.send");
        assert_eq!(root.children.len(), 1);
        let apply = &root.children[0];
        assert_eq!(apply.name, "shard.apply");
        assert_eq!(
            apply.fields.iter().find(|(k, _)| k == "trace_id"),
            Some(&("trace_id".to_owned(), Value::U64(trace_id)))
        );
        assert_eq!(apply.children.len(), 1);
        assert_eq!(apply.children[0].name, "shard.decode");
    }

    #[test]
    fn stitch_keeps_unmatched_remote_roots_as_roots() {
        let (client, client_sink) = ObsCtx::collecting();
        let (server, server_sink) = ObsCtx::collecting();
        drop(client.span("client.send"));
        // Remote parent id 999 never appears locally.
        drop(server.span_remote("shard.apply", 7, 999));
        let tree = SpanTree::stitch(&client_sink.records(), &server_sink.records());
        assert_eq!(tree.roots.len(), 2);
    }

    #[test]
    fn span_tree_json_round_trips_through_the_parser() {
        let (ctx, collect) = ObsCtx::collecting();
        {
            let mut root = ctx.span("pipeline.run");
            root.set("bench", "mcf");
            let inner = root.child("vm.run");
            inner.event(Level::Warn, "vm.saturated", &[("n", Value::U64(2))]);
        }
        ctx.info("loose.event", &[]);
        let tree = SpanTree::build(&collect.records());
        let doc = tree.to_json();
        let v = json::parse(&doc).expect("tree JSON parses");
        let roots = v.get("roots").and_then(json::Json::as_arr).unwrap();
        assert_eq!(roots.len(), 1);
        assert_eq!(
            roots[0].get("name").and_then(json::Json::as_str),
            Some("pipeline.run")
        );
        let children = roots[0]
            .get("children")
            .and_then(json::Json::as_arr)
            .unwrap();
        assert_eq!(children.len(), 1);
        assert_eq!(
            children[0]
                .get("events")
                .and_then(json::Json::as_arr)
                .map(<[json::Json]>::len),
            Some(1)
        );
        assert_eq!(
            v.get("orphan_events")
                .and_then(json::Json::as_arr)
                .map(<[json::Json]>::len),
            Some(1)
        );
    }
}
