//! Observation contexts and spans.
//!
//! An [`ObsCtx`] bundles a sink, a metrics [`Registry`], a span-id
//! allocator, and a shared epoch. It is cheap to clone (three `Arc`s) and
//! is threaded through the pipeline explicitly; a process-global default
//! (installed by the CLI, text-to-stderr otherwise) keeps existing
//! public APIs signature-stable.
//!
//! A [`Span`] covers one pipeline stage. Dropping it emits the
//! `span_end` record with wall-time, so normal `?`-style early returns
//! still close their spans.

use crate::metrics::Registry;
use crate::sink::{CollectSink, Level, NoopSink, Obs, Record, RecordKind, TextSink, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// A shared observation context.
#[derive(Clone)]
pub struct ObsCtx {
    sink: Arc<dyn Obs>,
    registry: Arc<Registry>,
    next_id: Arc<AtomicU64>,
    epoch: Instant,
}

impl ObsCtx {
    /// A context over an arbitrary sink.
    pub fn new(sink: Arc<dyn Obs>) -> Self {
        Self {
            sink,
            registry: Arc::new(Registry::new()),
            next_id: Arc::new(AtomicU64::new(1)),
            epoch: Instant::now(),
        }
    }

    /// A context that drops every record (metrics still accumulate).
    pub fn noop() -> Self {
        Self::new(Arc::new(NoopSink))
    }

    /// A context buffering records in the returned collector.
    pub fn collecting() -> (Self, CollectSink) {
        let sink = CollectSink::new();
        (Self::new(Arc::new(sink.clone())), sink)
    }

    /// A context sharing this one's registry, span-id allocator, and
    /// epoch, but writing records to `sink` — how the flight recorder
    /// tees into an already-installed context without resetting state.
    pub fn with_sink(&self, sink: Arc<dyn Obs>) -> Self {
        Self {
            sink,
            registry: Arc::clone(&self.registry),
            next_id: Arc::clone(&self.next_id),
            epoch: self.epoch,
        }
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.registry
    }

    /// The underlying sink (shared).
    pub(crate) fn sink(&self) -> Arc<dyn Obs> {
        Arc::clone(&self.sink)
    }

    /// True when the sink would actually look at records.
    pub fn enabled(&self) -> bool {
        self.sink.enabled()
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Opens a root span.
    pub fn span(&self, name: &str) -> Span {
        self.span_with_parent(name, 0)
    }

    /// Opens a root span carrying a cross-process trace context: the
    /// remote sender's trace id and in-flight span id land as
    /// `trace_id` / `remote_parent` fields on both the opening and
    /// closing records, so a stitched tree
    /// ([`crate::SpanTree::stitch`]) can re-attach this span under the
    /// sender's.
    pub fn span_remote(&self, name: &str, trace_id: u64, remote_parent: u64) -> Span {
        self.span_with_fields(
            name,
            0,
            vec![
                ("trace_id".to_owned(), Value::U64(trace_id)),
                ("remote_parent".to_owned(), Value::U64(remote_parent)),
            ],
        )
    }

    fn span_with_parent(&self, name: &str, parent: u64) -> Span {
        self.span_with_fields(name, parent, Vec::new())
    }

    fn span_with_fields(&self, name: &str, parent: u64, fields: Vec<(String, Value)>) -> Span {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if self.sink.enabled() {
            self.sink.record(&Record {
                kind: RecordKind::SpanStart,
                level: Level::Info,
                span: id,
                parent,
                name: name.to_owned(),
                at_us: self.now_us(),
                elapsed_us: None,
                fields: fields.clone(),
            });
        }
        Span {
            ctx: self.clone(),
            id,
            parent,
            name: name.to_owned(),
            started: Instant::now(),
            fields,
        }
    }

    /// Emits a free-standing event (outside any span).
    pub fn event(&self, level: Level, name: &str, fields: &[(&str, Value)]) {
        self.emit_event(level, name, 0, fields);
    }

    /// Shorthand for a `Warn` event.
    pub fn warn(&self, name: &str, fields: &[(&str, Value)]) {
        self.event(Level::Warn, name, fields);
    }

    /// Shorthand for an `Info` event.
    pub fn info(&self, name: &str, fields: &[(&str, Value)]) {
        self.event(Level::Info, name, fields);
    }

    fn emit_event(&self, level: Level, name: &str, span: u64, fields: &[(&str, Value)]) {
        if !self.sink.enabled() {
            return;
        }
        self.sink.record(&Record {
            kind: RecordKind::Event,
            level,
            span,
            parent: 0,
            name: name.to_owned(),
            at_us: self.now_us(),
            elapsed_us: None,
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        });
    }
}

impl Default for ObsCtx {
    /// The default context: warnings to stderr, fresh registry.
    fn default() -> Self {
        Self::new(Arc::new(TextSink::stderr()))
    }
}

impl std::fmt::Debug for ObsCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsCtx")
            .field("enabled", &self.enabled())
            .finish_non_exhaustive()
    }
}

/// An open span; emits `span_end` (with accumulated fields and elapsed
/// wall-time) when dropped.
pub struct Span {
    ctx: ObsCtx,
    id: u64,
    parent: u64,
    name: String,
    started: Instant,
    fields: Vec<(String, Value)>,
}

impl Span {
    /// This span's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Opens a child span.
    pub fn child(&self, name: &str) -> Span {
        self.ctx.span_with_parent(name, self.id)
    }

    /// Attaches a field, emitted with the closing record.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) {
        if !self.ctx.sink.enabled() {
            return;
        }
        let value = value.into();
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.fields.push((key.to_owned(), value));
        }
    }

    /// Emits an event attributed to this span.
    pub fn event(&self, level: Level, name: &str, fields: &[(&str, Value)]) {
        self.ctx.emit_event(level, name, self.id, fields);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.ctx.sink.enabled() {
            return;
        }
        self.ctx.sink.record(&Record {
            kind: RecordKind::SpanEnd,
            level: Level::Info,
            span: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            at_us: self.ctx.now_us(),
            elapsed_us: Some(self.started.elapsed().as_micros() as u64),
            fields: std::mem::take(&mut self.fields),
        });
    }
}

static GLOBAL: OnceLock<RwLock<ObsCtx>> = OnceLock::new();

fn global_cell() -> &'static RwLock<ObsCtx> {
    GLOBAL.get_or_init(|| RwLock::new(ObsCtx::default()))
}

/// The process-global context (clone; contexts share state via `Arc`).
pub fn global() -> ObsCtx {
    global_cell().read().expect("obs global lock").clone()
}

/// Replaces the process-global context (typically once, at CLI startup).
pub fn install_global(ctx: ObsCtx) {
    *global_cell().write().expect("obs global lock") = ctx;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_nesting_and_ordering_in_records() {
        let (ctx, collect) = ObsCtx::collecting();
        {
            let mut root = ctx.span("pipeline.run");
            root.set("bench", "mcf");
            {
                let mut child = root.child("vm.run");
                child.set("steps", 100u64);
                child.event(Level::Info, "vm.milestone", &[("at", Value::U64(50))]);
            }
            let _second = root.child("report.render");
        }
        let recs = collect.records();
        let kinds: Vec<_> = recs.iter().map(|r| (r.kind, r.name.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                (RecordKind::SpanStart, "pipeline.run"),
                (RecordKind::SpanStart, "vm.run"),
                (RecordKind::Event, "vm.milestone"),
                (RecordKind::SpanEnd, "vm.run"),
                (RecordKind::SpanStart, "report.render"),
                (RecordKind::SpanEnd, "report.render"),
                (RecordKind::SpanEnd, "pipeline.run"),
            ]
        );
        // Parentage: children point at the root span's id.
        let root_id = recs[0].span;
        assert_eq!(recs[1].parent, root_id);
        assert_eq!(recs[4].parent, root_id);
        assert_eq!(recs[0].parent, 0);
        // The event is attributed to the child span.
        assert_eq!(recs[2].span, recs[1].span);
        // Fields land on the closing record.
        assert_eq!(recs[3].field("steps"), Some(&Value::U64(100)));
        assert_eq!(recs[6].field("bench"), Some(&Value::Str("mcf".into())));
        // Close times carry elapsed wall-time.
        assert!(recs[3].elapsed_us.is_some());
    }

    #[test]
    fn noop_ctx_skips_record_construction_but_keeps_metrics() {
        let ctx = ObsCtx::noop();
        assert!(!ctx.enabled());
        let mut s = ctx.span("x");
        s.set("k", 1u64);
        drop(s);
        ctx.warn("w", &[]);
        ctx.metrics().inc("ppp_test_total", &[]);
        assert_eq!(ctx.metrics().counter_value("ppp_test_total", &[]), 1);
    }

    #[test]
    fn global_can_be_installed_and_shares_registry() {
        // Note: global state is shared across tests in this module only
        // via this single test to avoid ordering dependencies.
        let (ctx, collect) = ObsCtx::collecting();
        install_global(ctx);
        let g = global();
        g.info("hello", &[]);
        g.metrics().inc("ppp_global_total", &[]);
        assert_eq!(collect.records().len(), 1);
        assert_eq!(global().metrics().counter_value("ppp_global_total", &[]), 1);
        install_global(ObsCtx::noop());
    }

    #[test]
    fn set_overwrites_existing_field() {
        let (ctx, collect) = ObsCtx::collecting();
        {
            let mut s = ctx.span("s");
            s.set("n", 1u64);
            s.set("n", 2u64);
        }
        let recs = collect.records();
        let end = recs.iter().find(|r| r.kind == RecordKind::SpanEnd).unwrap();
        assert_eq!(end.fields.len(), 1);
        assert_eq!(end.field("n"), Some(&Value::U64(2)));
    }
}
