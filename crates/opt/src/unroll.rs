//! Edge-profile-guided loop unrolling (§7.3).
//!
//! Scale unrolls hot inner loops by a factor of four, skipping loops with
//! average trip counts under eight or bodies that would exceed 256 IR
//! statements, and "unrolls less or not at all" otherwise. Two modes are
//! implemented:
//!
//! - **counted unrolling** for canonical counted loops (`br i, body,
//!   exit` with a straight-line body decrementing `i` by one): the body
//!   is replicated `factor` times with the intermediate tests *elided*,
//!   guarded by an `i < factor` check, with the original loop as the
//!   remainder — this lengthens paths without multiplying branches,
//!   matching the paper's FP benchmarks;
//! - **generic unrolling** for other loops: the body is replicated with
//!   exit tests retained (factor 2), which lengthens paths *and* adds
//!   branches — the paper's integer-benchmark behaviour, where most
//!   while-loops "unroll less or not at all".

use ppp_ir::{
    analyze_loops, BinOp, Block, BlockId, FuncId, Function, Inst, Module, ModuleEdgeProfile, Reg,
    Terminator, TransformWitness, UnrollMode, UnrollWitness, UnrolledLoop,
};

/// Unroller thresholds (§7.3 defaults).
#[derive(Clone, Copy, Debug)]
pub struct UnrollOptions {
    /// Replication factor for counted loops (paper: 4).
    pub factor: u32,
    /// Replication factor for generic (test-retained) unrolling.
    pub generic_factor: u32,
    /// Minimum average trip count (paper: 8).
    pub min_trip: f64,
    /// Maximum unrolled body size in IR statements (paper: 256).
    pub max_body: usize,
}

impl Default for UnrollOptions {
    fn default() -> Self {
        Self {
            factor: 4,
            generic_factor: 2,
            min_trip: 8.0,
            max_body: 256,
        }
    }
}

/// What the unroller did.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnrollReport {
    /// Innermost loops examined.
    pub candidates: usize,
    /// Loops unrolled in counted (test-elided) mode.
    pub counted_unrolled: usize,
    /// Loops unrolled in generic (test-retained) mode.
    pub generic_unrolled: usize,
    /// Σ factor × iterations, for the dynamic average factor.
    pub weighted_factor: u64,
    /// Σ iterations over all candidate loops.
    pub total_iterations: u64,
}

impl UnrollReport {
    /// Average unroll factor over dynamic loop iterations (Table 1).
    pub fn dynamic_avg_factor(&self) -> f64 {
        if self.total_iterations == 0 {
            1.0
        } else {
            self.weighted_factor as f64 / self.total_iterations as f64
        }
    }
}

/// Unrolls hot innermost loops of every function in `module`.
///
/// `profile` must describe `module`'s current shape.
pub fn unroll_module(
    module: &mut Module,
    profile: &ModuleEdgeProfile,
    options: &UnrollOptions,
) -> UnrollReport {
    unroll_module_witnessed(module, profile, options).0
}

/// Like [`unroll_module`], additionally emitting a [`TransformWitness`]
/// recording every replicated loop for translation validation.
pub fn unroll_module_witnessed(
    module: &mut Module,
    profile: &ModuleEdgeProfile,
    options: &UnrollOptions,
) -> (UnrollReport, TransformWitness) {
    debug_assert!(
        profile.shape_matches(module),
        "edge profile shape does not match the module being unrolled"
    );
    debug_assert!(
        profile.is_flow_conservative(module),
        "edge profile violates flow conservation; re-profile this exact module"
    );
    let mut report = UnrollReport::default();
    let mut loops = Vec::new();
    for fid in module.func_ids().collect::<Vec<_>>() {
        let f = module.function_mut(fid);
        let fp = profile.func(fid);
        unroll_function(f, fid, fp, options, &mut report, &mut loops);
    }
    (report, TransformWitness::Unroll(UnrollWitness { loops }))
}

struct LoopInfo {
    header: BlockId,
    body: Vec<BlockId>,
    back_edges: Vec<ppp_ir::EdgeRef>,
    iterations: u64,
    trip: f64,
}

fn unroll_function(
    f: &mut Function,
    fid: FuncId,
    profile: &ppp_ir::FuncEdgeProfile,
    options: &UnrollOptions,
    report: &mut UnrollReport,
    witness: &mut Vec<UnrolledLoop>,
) {
    // Collect innermost loops up front; transforms append blocks, so the
    // collected ids stay valid as long as each loop is disjoint. Nested
    // or shared-header situations are excluded by the innermost filter.
    let loops: Vec<LoopInfo> = {
        let (cfg, _dom, forest) = analyze_loops(f);
        forest
            .loops()
            .iter()
            .enumerate()
            .filter(|(i, _)| forest.is_innermost_loop(*i))
            .filter_map(|(_, l)| {
                let entries = l.entry_edges(&cfg);
                let trip = profile.loop_trip_count(&l.back_edges, &entries)?;
                let iterations: u64 = l.back_edges.iter().map(|&e| profile.edge(e)).sum();
                Some(LoopInfo {
                    header: l.header,
                    body: l.body.clone(),
                    back_edges: l.back_edges.clone(),
                    iterations,
                    trip,
                })
            })
            .collect()
    };

    for info in loops {
        report.candidates += 1;
        report.total_iterations += info.iterations;
        let body_size: usize = info.body.iter().map(|&b| f.block(b).len_with_term()).sum();
        if info.trip < options.min_trip {
            report.weighted_factor += info.iterations;
            continue;
        }
        if let Some(counted) = recognize_counted(f, &info) {
            if body_size * options.factor as usize <= options.max_body {
                witness.push(unroll_counted(f, fid, &info, &counted, options.factor));
                report.counted_unrolled += 1;
                report.weighted_factor += info.iterations * u64::from(options.factor);
                continue;
            }
        }
        if body_size * options.generic_factor as usize <= options.max_body
            && options.generic_factor >= 2
            && info.back_edges.len() == 1
        {
            witness.push(unroll_generic(f, fid, &info, options.generic_factor));
            report.generic_unrolled += 1;
            report.weighted_factor += info.iterations * u64::from(options.generic_factor);
        } else {
            report.weighted_factor += info.iterations;
        }
    }
}

/// A recognized canonical counted loop.
struct CountedLoop {
    /// The induction register tested by the header.
    induction: Reg,
    /// Header's in-loop successor index (the body side).
    body_succ: usize,
    /// Header's exit successor index.
    exit_succ: usize,
}

/// Recognizes `header: br i, body, exit` with a straight-line body chain
/// back to the header that decrements `i` exactly once by a constant 1
/// and never otherwise writes `i` (and contains no calls, whose callees
/// could not alias `i` but keep recognition conservative anyway).
fn recognize_counted(f: &Function, info: &LoopInfo) -> Option<CountedLoop> {
    if info.back_edges.len() != 1 {
        return None;
    }
    let header = f.block(info.header);
    if !header.insts.is_empty() {
        return None;
    }
    let Terminator::Branch {
        cond,
        then_target,
        else_target,
    } = header.term
    else {
        return None;
    };
    let in_body = |b: BlockId| info.body.binary_search(&b).is_ok();
    // The elided-test unrolling assumes "non-zero means keep looping", so
    // only the then-successor may be the body: an inverted loop
    // (continue-on-zero) decrements past zero in the wide body.
    let (body_succ, exit_succ, first) = if in_body(then_target) && !in_body(else_target) {
        (0usize, 1usize, then_target)
    } else {
        return None;
    };
    // Walk the straight-line chain from `first` back to the header,
    // tracking which registers *currently* hold the constant 1 (a later
    // redefinition revokes the certificate — otherwise a body like
    // `one = const 1; one = add one, one; i = sub i, one` would pass as a
    // decrement-by-1).
    let mut decrements = 0usize;
    let mut cur = first;
    let mut ones: Vec<Reg> = Vec::new();
    for _ in 0..info.body.len() + 1 {
        let b = f.block(cur);
        for inst in &b.insts {
            if let Inst::Binary {
                dst,
                op: BinOp::Sub,
                lhs,
                rhs,
            } = inst
            {
                if *dst == cond && *lhs == cond {
                    if !ones.contains(rhs) {
                        return None;
                    }
                    decrements += 1;
                    continue;
                }
            }
            if matches!(inst, Inst::Call { .. }) {
                return None;
            }
            if inst.def() == Some(cond) {
                return None; // other writes to the induction reg
            }
            if let Some(d) = inst.def() {
                ones.retain(|&r| r != d); // redefinition revokes const-1
                if matches!(inst, Inst::Const { value: 1, .. }) {
                    ones.push(d);
                }
            }
        }
        match b.term {
            Terminator::Jump { target } if target == info.header => break,
            Terminator::Jump { target } if in_body(target) => cur = target,
            _ => return None,
        }
    }
    (decrements == 1).then_some(CountedLoop {
        induction: cond,
        body_succ,
        exit_succ,
    })
}

/// Clones the loop body blocks, remapping in-body targets through `map`.
/// Back-edge targets (the header) are redirected to `back_to`.
fn clone_body(
    f: &mut Function,
    info: &LoopInfo,
    skip_header: bool,
    back_to: BlockId,
) -> std::collections::HashMap<BlockId, BlockId> {
    let mut map = std::collections::HashMap::new();
    for &b in &info.body {
        if skip_header && b == info.header {
            continue;
        }
        let copy = f.add_block(f.block(b).clone());
        map.insert(b, copy);
    }
    let targets: Vec<BlockId> = map.values().copied().collect();
    for &copy in &targets {
        let term = &mut f.block_mut(copy).term;
        for s in 0..term.successor_count() {
            let tgt = term.successor(s).expect("in-range");
            if tgt == info.header {
                term.set_successor(s, back_to);
            } else if let Some(&m) = map.get(&tgt) {
                term.set_successor(s, m);
            }
        }
    }
    map
}

/// Counted unrolling: `while (i >= factor) { body × factor }` then the
/// original loop as remainder. Intermediate tests are elided.
fn unroll_counted(
    f: &mut Function,
    fid: FuncId,
    info: &LoopInfo,
    counted: &CountedLoop,
    factor: u32,
) -> UnrolledLoop {
    let header = info.header;
    let body_first = f
        .block(header)
        .term
        .successor(counted.body_succ)
        .expect("body successor");
    let exit_target = f
        .block(header)
        .term
        .successor(counted.exit_succ)
        .expect("exit successor");

    // New main header: t = i < factor ? remainder-header : big body.
    let t = f.new_reg();
    let k = f.new_reg();
    let main_header = f.add_block(Block::new(Terminator::Return { value: None }));
    // Chain `factor` copies of the body; copy j's back edge goes to copy
    // j+1's first block, the last copy's to the main header.
    let mut entries: Vec<BlockId> = Vec::new();
    let mut hops: Vec<std::collections::HashMap<BlockId, BlockId>> = Vec::new();
    for _ in 0..factor {
        // Temporarily point back edges at main_header; fixed below.
        let map = clone_body(f, info, true, main_header);
        entries.push(map[&body_first]);
        hops.push(map);
    }
    for j in 0..factor as usize - 1 {
        // Re-point copy j's back edge to copy j+1's entry.
        let targets: Vec<BlockId> = hops[j].values().copied().collect();
        for &copy in &targets {
            let term = &mut f.block_mut(copy).term;
            for s in 0..term.successor_count() {
                if term.successor(s) == Some(main_header) {
                    term.set_successor(s, entries[j + 1]);
                }
            }
        }
    }

    // Fill in the main header: const k = factor; t = lt i, k; br t ?
    // original header (remainder) : first copy.
    let mh = f.block_mut(main_header);
    mh.insts.push(Inst::Const {
        dst: k,
        value: i64::from(factor),
    });
    mh.insts.push(Inst::Binary {
        dst: t,
        op: BinOp::Lt,
        lhs: counted.induction,
        rhs: k,
    });
    mh.term = Terminator::Branch {
        cond: t,
        then_target: header,
        else_target: entries[0],
    };

    // Redirect every entry edge of the loop (edges into the header from
    // outside the body) to the main header.
    let body_set: std::collections::HashSet<BlockId> = info.body.iter().copied().collect();
    let all_copies: std::collections::HashSet<BlockId> =
        hops.iter().flat_map(|m| m.values().copied()).collect();
    for b in f.block_ids().collect::<Vec<_>>() {
        if body_set.contains(&b) || all_copies.contains(&b) || b == main_header {
            continue;
        }
        let term = &mut f.block_mut(b).term;
        for s in 0..term.successor_count() {
            if term.successor(s) == Some(header) {
                term.set_successor(s, main_header);
            }
        }
    }
    let _ = exit_target;

    // Witness: the cloned source blocks (header excluded — its test is
    // elided) and each replica's id, aligned per source block.
    let cloned: Vec<BlockId> = info.body.iter().copied().filter(|&b| b != header).collect();
    let copies: Vec<Vec<BlockId>> = hops
        .iter()
        .map(|map| cloned.iter().map(|b| map[b]).collect())
        .collect();
    UnrolledLoop {
        func: fid,
        header,
        cloned,
        copies,
        mode: UnrollMode::Counted {
            factor,
            induction: counted.induction,
            main_header,
            guard_cond: t,
            guard_bound: k,
        },
    }
}

/// Generic unrolling with tests retained: replicate the body `factor - 1`
/// extra times; copy `j`'s back edge targets copy `j+1`'s header, the
/// last copy's targets the original header.
fn unroll_generic(f: &mut Function, fid: FuncId, info: &LoopInfo, factor: u32) -> UnrolledLoop {
    let mut prev_maps: Vec<std::collections::HashMap<BlockId, BlockId>> = Vec::new();
    for _ in 0..factor - 1 {
        let map = clone_body(f, info, false, info.header);
        prev_maps.push(map);
    }
    // Chain: original body's back edges -> copy 0's header; copy j's back
    // edges -> copy j+1's header; last copy keeps the original header.
    let redirect = |blocks: Vec<BlockId>, from: BlockId, to: BlockId, f: &mut Function| {
        for b in blocks {
            let term = &mut f.block_mut(b).term;
            for s in 0..term.successor_count() {
                if term.successor(s) == Some(from) {
                    // Only rewrite genuine back edges (sources inside the
                    // copy/body); entry edges are excluded by the caller's
                    // block list.
                    term.set_successor(s, to);
                }
            }
        }
    };
    // All latches (original and copies) currently point at the original
    // header: clone_body's `back_to` keeps header-targets unchanged.
    // Re-chain them: original latches -> copy 0's header, copy j's
    // latches -> copy j+1's header; the last copy's latches keep the
    // original header, closing the (factor-times longer) loop.
    let latches: Vec<BlockId> = info.back_edges.iter().map(|e| e.from).collect();
    redirect(latches, info.header, prev_maps[0][&info.header], f);
    for j in 0..prev_maps.len() - 1 {
        let copy_latches: Vec<BlockId> = info
            .back_edges
            .iter()
            .map(|e| prev_maps[j][&e.from])
            .collect();
        redirect(copy_latches, info.header, prev_maps[j + 1][&info.header], f);
    }

    // Witness: every body block (header included — its test is retained)
    // and each replica's id, aligned per source block.
    let copies: Vec<Vec<BlockId>> = prev_maps
        .iter()
        .map(|map| info.body.iter().map(|b| map[b]).collect())
        .collect();
    UnrolledLoop {
        func: fid,
        header: info.header,
        cloned: info.body.clone(),
        copies,
        mode: UnrollMode::Generic {
            factor,
            back_edges: info.back_edges.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::{verify_module, FuncId, FunctionBuilder};
    use ppp_vm::{run, RunOptions};

    /// main: i = n; while (i) { emit i; i -= 1 }
    fn counted_module(n: i64) -> Module {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main", 0);
        let c = b.constant(n);
        let i = b.copy(c);
        let (hdr, body, exit) = (b.new_block(), b.new_block(), b.new_block());
        b.jump(hdr);
        b.switch_to(hdr);
        b.branch(i, body, exit);
        b.switch_to(body);
        b.emit(i);
        let one = b.constant(1);
        b.binary_to(i, BinOp::Sub, i, one);
        b.jump(hdr);
        b.switch_to(exit);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    /// A while-style loop the recognizer must reject: the condition is
    /// recomputed from rand each iteration.
    fn while_module() -> Module {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main", 0);
        let bound = b.constant(40);
        let cond = b.rand(bound);
        let (hdr, body, exit) = (b.new_block(), b.new_block(), b.new_block());
        b.jump(hdr);
        b.switch_to(hdr);
        b.branch(cond, body, exit);
        b.switch_to(body);
        b.emit(cond);
        let v = b.rand(bound);
        b.copy_to(cond, v);
        b.jump(hdr);
        b.switch_to(exit);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    fn traced(m: &Module) -> (ModuleEdgeProfile, u64) {
        let r = run(m, "main", &RunOptions::default().traced()).unwrap();
        (r.edge_profile.unwrap(), r.checksum)
    }

    #[test]
    fn counted_loop_unrolls_and_preserves_semantics() {
        for n in [0, 1, 3, 4, 7, 8, 100, 101, 102, 103] {
            let mut m = counted_module(n.max(20)); // trip >= 8 required
            let (profile, checksum) = traced(&m);
            let report = unroll_module(&mut m, &profile, &UnrollOptions::default());
            assert_eq!(report.counted_unrolled, 1, "n={n}");
            assert_eq!(verify_module(&m), Ok(()));
            let r = run(&m, "main", &RunOptions::default()).unwrap();
            assert_eq!(r.checksum, checksum, "unrolling changed semantics, n={n}");
        }
    }

    #[test]
    fn counted_unrolling_exact_for_various_trip_counts() {
        // Build with trip 20, then verify semantics across remainders by
        // changing the constant *after* unrolling decisions were profiled.
        for n in [8, 9, 10, 11, 20, 41] {
            let mut m = counted_module(n);
            let (profile, checksum) = traced(&m);
            unroll_module(&mut m, &profile, &UnrollOptions::default());
            let r = run(&m, "main", &RunOptions::default()).unwrap();
            assert_eq!(r.checksum, checksum, "n={n}");
        }
    }

    #[test]
    fn low_trip_loops_stay() {
        let mut m = counted_module(3);
        let (profile, _) = traced(&m);
        let report = unroll_module(&mut m, &profile, &UnrollOptions::default());
        assert_eq!(report.counted_unrolled + report.generic_unrolled, 0);
        assert!((report.dynamic_avg_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn while_loops_use_generic_mode() {
        let mut m = while_module();
        let (profile, checksum) = traced(&m);
        let report = unroll_module(&mut m, &profile, &UnrollOptions::default());
        // rand(40) != 0 with p=0.975: expected trip ~40, above threshold.
        assert_eq!(report.counted_unrolled, 0);
        assert_eq!(report.generic_unrolled, 1);
        assert_eq!(verify_module(&m), Ok(()));
        let r = run(&m, "main", &RunOptions::default()).unwrap();
        assert_eq!(r.checksum, checksum, "generic unrolling changed semantics");
    }

    #[test]
    fn unrolled_loops_have_longer_paths() {
        let mut m = counted_module(400);
        let (profile, _) = traced(&m);
        let before = run(&m, "main", &RunOptions::default().traced()).unwrap();
        let before_paths = before.path_profile.unwrap();
        let before_avg = avg_len(&before_paths);
        unroll_module(&mut m, &profile, &UnrollOptions::default());
        let after = run(&m, "main", &RunOptions::default().traced()).unwrap();
        let after_paths = after.path_profile.unwrap();
        let after_avg = avg_len(&after_paths);
        assert!(
            after_avg > before_avg * 1.5,
            "paths should lengthen: {before_avg} -> {after_avg}"
        );
        // And there are fewer dynamic paths (4 iterations merged into 1).
        assert!(after_paths.total_unit_flow() < before_paths.total_unit_flow());
    }

    fn avg_len(p: &ppp_ir::ModulePathProfile) -> f64 {
        let (mut edges, mut count) = (0u64, 0u64);
        for (_, k, s) in p.iter() {
            edges += (k.edges.len() as u64) * s.freq;
            count += s.freq;
        }
        edges as f64 / count.max(1) as f64
    }

    /// Regression: a body that launders a non-1 value through a register
    /// that once held `const 1` must not be recognized as a counted loop
    /// (test-elided unrolling would decrement past zero and diverge).
    #[test]
    fn forged_decrement_is_rejected() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main", 0);
        let c = b.constant(100);
        let i = b.copy(c);
        let (hdr, body, exit) = (b.new_block(), b.new_block(), b.new_block());
        b.jump(hdr);
        b.switch_to(hdr);
        b.branch(i, body, exit);
        b.switch_to(body);
        b.emit(i);
        let one = b.constant(1);
        b.binary_to(one, BinOp::Add, one, one); // one now holds 2
        b.binary_to(i, BinOp::Sub, i, one); // decrement by 2!
        b.jump(hdr);
        b.switch_to(exit);
        b.ret(None);
        m.add_function(b.finish());
        let (profile, checksum) = traced(&m);
        let report = unroll_module(&mut m, &profile, &UnrollOptions::default());
        assert_eq!(
            report.counted_unrolled, 0,
            "forged decrement must not qualify"
        );
        let r = run(&m, "main", &RunOptions::default()).unwrap();
        assert_eq!(r.halt, ppp_vm::HaltReason::Finished);
        assert_eq!(r.checksum, checksum);
    }

    /// Regression: inverted loops (continue on zero) must never be
    /// counted-unrolled — the wide body assumes non-zero-means-continue.
    #[test]
    fn inverted_polarity_is_rejected() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main", 0);
        let c = b.constant(0);
        let i = b.copy(c);
        let (hdr, body, exit) = (b.new_block(), b.new_block(), b.new_block());
        b.jump(hdr);
        b.switch_to(hdr);
        b.branch(i, exit, body); // continue while i == 0
        b.switch_to(body);
        let one = b.constant(1);
        b.binary_to(i, BinOp::Sub, i, one);
        b.jump(hdr);
        b.switch_to(exit);
        b.ret(None);
        m.add_function(b.finish());
        let (profile, checksum) = traced(&m);
        let opts = UnrollOptions {
            min_trip: 0.0,
            ..UnrollOptions::default()
        };
        let report = unroll_module(&mut m, &profile, &opts);
        assert_eq!(report.counted_unrolled, 0, "inverted loop must not qualify");
        let r = run(&m, "main", &RunOptions::default()).unwrap();
        assert_eq!(r.checksum, checksum);
    }

    #[test]
    fn witness_records_each_unrolled_loop() {
        let mut m = counted_module(100);
        let (profile, _) = traced(&m);
        let (report, witness) =
            unroll_module_witnessed(&mut m, &profile, &UnrollOptions::default());
        assert_eq!(report.counted_unrolled, 1);
        let TransformWitness::Unroll(w) = witness else {
            panic!("unroller must emit an unroll witness");
        };
        assert_eq!(w.loops.len(), 1);
        let l = &w.loops[0];
        assert_eq!(l.func, FuncId(0));
        assert!(
            matches!(l.mode, UnrollMode::Counted { factor: 4, .. }),
            "counted mode expected"
        );
        assert_eq!(l.copies.len(), 4, "one replica set per factor step");
        assert!(
            !l.cloned.contains(&l.header),
            "counted mode elides the header test"
        );

        let mut m2 = while_module();
        let (profile2, _) = traced(&m2);
        let (report2, witness2) =
            unroll_module_witnessed(&mut m2, &profile2, &UnrollOptions::default());
        assert_eq!(report2.generic_unrolled, 1);
        let TransformWitness::Unroll(w2) = witness2 else {
            panic!("unroller must emit an unroll witness");
        };
        let l2 = &w2.loops[0];
        assert!(matches!(l2.mode, UnrollMode::Generic { factor: 2, .. }));
        assert_eq!(l2.copies.len(), 1, "generic factor 2 clones once");
        assert!(
            l2.cloned.contains(&l2.header),
            "generic mode retains the header test"
        );
    }

    #[test]
    fn report_weights_by_iterations() {
        let mut m = counted_module(100);
        let (profile, _) = traced(&m);
        let report = unroll_module(&mut m, &profile, &UnrollOptions::default());
        assert!(report.dynamic_avg_factor() > 3.9, "counted loop dominates");
        let _ = FuncId(0);
    }
}
