//! Edge-profile-guided inlining (§7.3).
//!
//! Follows the paper's description of Scale's inliner (after Arnold et
//! al.): each call site gets a priority of *expected benefit over cost* —
//! call-site hotness divided by callee size — and sites are inlined in
//! decreasing priority until total program size grows by the *code bloat*
//! budget (the paper uses 5%). Callees above 200 IR statements and
//! recursive callees are never inlined.

use crate::callgraph::{CallGraph, CallSite};
use ppp_ir::{
    Block, BlockId, InlineStep, InlineWitness, Inst, Module, ModuleEdgeProfile, Reg, Terminator,
    TransformWitness,
};

/// Inliner thresholds (§7.3 defaults).
#[derive(Clone, Copy, Debug)]
pub struct InlineOptions {
    /// Allowed total program growth (0.05 = 5%).
    pub code_bloat: f64,
    /// Callees larger than this many IR statements are never inlined.
    pub max_callee_size: usize,
}

impl Default for InlineOptions {
    fn default() -> Self {
        Self {
            code_bloat: 0.05,
            max_callee_size: 200,
        }
    }
}

/// What the inliner did.
#[derive(Clone, Copy, Debug, Default)]
pub struct InlineReport {
    /// Call sites inlined.
    pub inlined_sites: usize,
    /// Call sites considered.
    pub total_sites: usize,
    /// Dynamic calls removed (sum of inlined sites' frequencies).
    pub inlined_dynamic_calls: u64,
    /// Total dynamic calls in the profile.
    pub total_dynamic_calls: u64,
    /// Program size before, in IR statements.
    pub size_before: usize,
    /// Program size after.
    pub size_after: usize,
}

impl InlineReport {
    /// Fraction of dynamic calls inlined (Table 1's "% calls inlined").
    pub fn dynamic_fraction(&self) -> f64 {
        if self.total_dynamic_calls == 0 {
            0.0
        } else {
            self.inlined_dynamic_calls as f64 / self.total_dynamic_calls as f64
        }
    }
}

/// Inlines hot call sites into `module` under the bloat budget.
///
/// `profile` must describe `module`'s current shape (collect it from a
/// traced run of this exact module). The profile is *not* updated: per the
/// paper's staged methodology, re-profile after optimizing.
pub fn inline_module(
    module: &mut Module,
    profile: &ModuleEdgeProfile,
    options: &InlineOptions,
) -> InlineReport {
    inline_module_witnessed(module, profile, options).0
}

/// Like [`inline_module`], additionally emitting a [`TransformWitness`]
/// recording every splice for translation validation (`ppp-lint`'s
/// transval pass replays the witness against both modules).
pub fn inline_module_witnessed(
    module: &mut Module,
    profile: &ModuleEdgeProfile,
    options: &InlineOptions,
) -> (InlineReport, TransformWitness) {
    debug_assert!(
        profile.shape_matches(module),
        "edge profile shape does not match the module being inlined"
    );
    debug_assert!(
        profile.is_flow_conservative(module),
        "edge profile violates flow conservation; re-profile this exact module"
    );
    let cg = CallGraph::build(module);
    let size_before = module.size();
    let budget = size_before + (size_before as f64 * options.code_bloat).floor() as usize;

    // Score sites: hotness = frequency of the containing block.
    let mut scored: Vec<(CallSite, u64, usize)> = cg
        .sites()
        .iter()
        .map(|&s| {
            let freq = profile.func(s.caller).block(s.block);
            let size = module.function(s.callee).size();
            (s, freq, size)
        })
        .collect();
    let mut report = InlineReport {
        total_sites: scored.len(),
        total_dynamic_calls: scored.iter().map(|&(_, f, _)| f).sum(),
        size_before,
        size_after: size_before,
        ..InlineReport::default()
    };
    // Decreasing priority = freq / size; deterministic tie-break.
    scored.sort_by(|a, b| {
        let pa = a.1 as f64 / a.2.max(1) as f64;
        let pb = b.1 as f64 / b.2.max(1) as f64;
        pb.total_cmp(&pa)
            .then(a.0.caller.cmp(&b.0.caller))
            .then(a.0.block.cmp(&b.0.block))
            .then(a.0.inst.cmp(&b.0.inst))
    });

    // Greedy selection under the budget.
    let mut selected: Vec<CallSite> = Vec::new();
    let mut projected = size_before;
    for &(site, freq, callee_size) in &scored {
        if freq == 0
            || callee_size > options.max_callee_size
            || cg.is_recursive(site.callee)
            || site.caller == site.callee
        {
            continue;
        }
        // Inlining replaces 1 call with callee_size statements (minus the
        // removed call, plus argument copies — approximate by size).
        if projected + callee_size > budget {
            continue;
        }
        projected += callee_size;
        selected.push(site);
        report.inlined_sites += 1;
        report.inlined_dynamic_calls += freq;
    }

    // Apply per caller, later instructions first so earlier site
    // coordinates stay valid (splicing appends blocks and splits the
    // containing block's tail off).
    selected.sort_by(|a, b| {
        a.caller
            .cmp(&b.caller)
            .then(b.block.cmp(&a.block))
            .then(b.inst.cmp(&a.inst))
    });
    let mut steps = Vec::with_capacity(selected.len());
    for site in selected {
        steps.push(inline_one(module, site));
    }
    report.size_after = module.size();
    (report, TransformWitness::Inline(InlineWitness { steps }))
}

/// Splices `site.callee` into `site.caller` at the call instruction and
/// records the splice for the witness.
fn inline_one(module: &mut Module, site: CallSite) -> InlineStep {
    let callee = module.function(site.callee).clone();
    let caller = module.function_mut(site.caller);

    // Detach the call instruction and the block tail.
    let call_block = site.block;
    let mut tail_insts = caller.block_mut(call_block).insts.split_off(site.inst);
    let call = tail_insts.remove(0);
    let Inst::Call {
        dst,
        args,
        callee: callee_id,
    } = call
    else {
        panic!("call site does not point at a call instruction");
    };
    debug_assert_eq!(callee_id, site.callee);

    // Continuation block receives the tail and the original terminator.
    let cont_term = std::mem::replace(
        &mut caller.block_mut(call_block).term,
        Terminator::Return { value: None }, // placeholder
    );
    let cont = caller.add_block(Block {
        insts: tail_insts,
        term: cont_term,
    });

    // Copy callee blocks, remapping registers and block ids.
    let reg_base = caller.reg_count;
    caller.reg_count += callee.reg_count;
    let block_base = caller.blocks.len() as u32;
    let remap_reg = |r: Reg| Reg(r.0 + reg_base);
    let remap_block = |b: BlockId| BlockId(b.0 + block_base);
    for cb in &callee.blocks {
        let insts = cb
            .insts
            .iter()
            .map(|i| remap_inst_regs(i, &remap_reg))
            .collect();
        let term = match &cb.term {
            Terminator::Jump { target } => Terminator::Jump {
                target: remap_block(*target),
            },
            Terminator::Branch {
                cond,
                then_target,
                else_target,
            } => Terminator::Branch {
                cond: remap_reg(*cond),
                then_target: remap_block(*then_target),
                else_target: remap_block(*else_target),
            },
            Terminator::Switch {
                disc,
                targets,
                default,
            } => Terminator::Switch {
                disc: remap_reg(*disc),
                targets: targets.iter().copied().map(remap_block).collect(),
                default: remap_block(*default),
            },
            // Returns become jumps to the continuation, materializing the
            // return value into the call's destination.
            Terminator::Return { .. } => Terminator::Jump { target: cont },
        };
        let mut block = Block { insts, term };
        if let Terminator::Jump { target } = block.term {
            if target == cont {
                if let Some(d) = dst {
                    match &cb.term {
                        Terminator::Return { value: Some(v) } => {
                            block.insts.push(Inst::Copy {
                                dst: d,
                                src: remap_reg(*v),
                            });
                        }
                        Terminator::Return { value: None } => {
                            block.insts.push(Inst::Const { dst: d, value: 0 });
                        }
                        _ => {}
                    }
                }
            }
        }
        caller.blocks.push(block);
    }

    // The VM zeroes a callee's registers on every activation; the inlined
    // body must see the same, or a register the callee reads before
    // writing would observe a stale value from the previous execution of
    // the inlined code. Zero every non-parameter register the callee
    // reads anywhere (a cheap, conservative stand-in for read-before-
    // write analysis), then copy the arguments, then enter the body.
    let mut read_regs = vec![false; callee.reg_count as usize];
    let mut uses = Vec::new();
    for b in &callee.blocks {
        for inst in &b.insts {
            uses.clear();
            inst.uses(&mut uses);
            for &u in &uses {
                read_regs[u.index()] = true;
            }
        }
        if let Some(u) = b.term.use_reg() {
            read_regs[u.index()] = true;
        }
    }
    let zero_inits: Vec<Inst> = read_regs
        .iter()
        .enumerate()
        .skip(callee.param_count as usize)
        .filter(|&(_, &read)| read)
        .map(|(i, _)| Inst::Const {
            dst: Reg(reg_base + i as u32),
            value: 0,
        })
        .collect();
    let arg_copies: Vec<Inst> = args
        .iter()
        .enumerate()
        .map(|(i, &a)| Inst::Copy {
            dst: Reg(reg_base + i as u32),
            src: a,
        })
        .collect();
    let call_blk = caller.block_mut(call_block);
    call_blk.insts.extend(zero_inits);
    call_blk.insts.extend(arg_copies);
    call_blk.term = Terminator::Jump {
        target: remap_block(callee.entry),
    };

    InlineStep {
        caller: site.caller,
        callee: site.callee,
        block: call_block,
        inst: site.inst,
        cont,
        reg_base,
        block_base,
    }
}

fn remap_inst_regs(inst: &Inst, remap: &impl Fn(Reg) -> Reg) -> Inst {
    match inst {
        Inst::Const { dst, value } => Inst::Const {
            dst: remap(*dst),
            value: *value,
        },
        Inst::Copy { dst, src } => Inst::Copy {
            dst: remap(*dst),
            src: remap(*src),
        },
        Inst::Unary { dst, op, src } => Inst::Unary {
            dst: remap(*dst),
            op: *op,
            src: remap(*src),
        },
        Inst::Binary { dst, op, lhs, rhs } => Inst::Binary {
            dst: remap(*dst),
            op: *op,
            lhs: remap(*lhs),
            rhs: remap(*rhs),
        },
        Inst::Load { dst, addr } => Inst::Load {
            dst: remap(*dst),
            addr: remap(*addr),
        },
        Inst::Store { addr, src } => Inst::Store {
            addr: remap(*addr),
            src: remap(*src),
        },
        Inst::Rand { dst, bound } => Inst::Rand {
            dst: remap(*dst),
            bound: remap(*bound),
        },
        Inst::Call { dst, callee, args } => Inst::Call {
            dst: dst.map(remap),
            callee: *callee,
            args: args.iter().copied().map(remap).collect(),
        },
        Inst::Emit { src } => Inst::Emit { src: remap(*src) },
        Inst::Prof(op) => Inst::Prof(*op),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::{verify_module, BinOp, FuncId, FunctionBuilder};
    use ppp_vm::{run, RunOptions};

    /// main loops calling `double(i)` and emitting results.
    fn sample() -> Module {
        let mut m = Module::new();
        let mut mb = FunctionBuilder::new("main", 0);
        let n = mb.constant(50);
        let i = mb.copy(n);
        let (hdr, body, exit) = (mb.new_block(), mb.new_block(), mb.new_block());
        mb.jump(hdr);
        mb.switch_to(hdr);
        mb.branch(i, body, exit);
        mb.switch_to(body);
        let d = mb.call(FuncId(1), vec![i]);
        mb.emit(d);
        let one = mb.constant(1);
        mb.binary_to(i, BinOp::Sub, i, one);
        mb.jump(hdr);
        mb.switch_to(exit);
        mb.ret(None);
        m.add_function(mb.finish());

        let mut db = FunctionBuilder::new("double", 1);
        let x = db.param(0);
        let two = db.constant(2);
        let y = db.binary(BinOp::Mul, x, two);
        db.ret(Some(y));
        m.add_function(db.finish());
        m
    }

    fn traced_profile(m: &Module) -> (ModuleEdgeProfile, u64) {
        let r = run(m, "main", &RunOptions::default().traced()).unwrap();
        (r.edge_profile.unwrap(), r.checksum)
    }

    #[test]
    fn inlining_preserves_semantics() {
        let mut m = sample();
        let (profile, checksum) = traced_profile(&m);
        let report = inline_module(
            &mut m,
            &profile,
            &InlineOptions {
                code_bloat: 1.0, // generous budget for the test
                max_callee_size: 200,
            },
        );
        assert_eq!(report.inlined_sites, 1);
        assert_eq!(verify_module(&m), Ok(()));
        let r = run(&m, "main", &RunOptions::default()).unwrap();
        assert_eq!(r.checksum, checksum, "inlining changed semantics");
        // The call is gone.
        assert_eq!(CallGraph::build(&m).sites().len(), 0);
        assert!(report.dynamic_fraction() > 0.99);
    }

    #[test]
    fn bloat_budget_limits_inlining() {
        let mut m = sample();
        let (profile, _) = traced_profile(&m);
        // Zero budget: nothing fits.
        let report = inline_module(
            &mut m,
            &profile,
            &InlineOptions {
                code_bloat: 0.0,
                max_callee_size: 200,
            },
        );
        assert_eq!(report.inlined_sites, 0);
        assert_eq!(report.size_after, report.size_before);
    }

    #[test]
    fn oversized_callees_are_skipped() {
        let mut m = sample();
        let (profile, _) = traced_profile(&m);
        let report = inline_module(
            &mut m,
            &profile,
            &InlineOptions {
                code_bloat: 1.0,
                max_callee_size: 2, // double() is bigger than this
            },
        );
        assert_eq!(report.inlined_sites, 0);
    }

    #[test]
    fn recursive_callees_are_skipped() {
        let mut m = Module::new();
        let mut mb = FunctionBuilder::new("main", 0);
        let z = mb.constant(3);
        let r = mb.call(FuncId(1), vec![z]);
        mb.emit(r);
        mb.ret(None);
        m.add_function(mb.finish());
        // fact(n): n == 0 ? 1 : n * fact(n-1)
        let mut fb = FunctionBuilder::new("fact", 1);
        let n = fb.param(0);
        let (base, rec) = (fb.new_block(), fb.new_block());
        fb.branch(n, rec, base);
        fb.switch_to(base);
        let one = fb.constant(1);
        fb.ret(Some(one));
        fb.switch_to(rec);
        let one2 = fb.constant(1);
        let nm1 = fb.binary(BinOp::Sub, n, one2);
        let sub = fb.call(FuncId(1), vec![nm1]);
        let prod = fb.binary(BinOp::Mul, n, sub);
        fb.ret(Some(prod));
        m.add_function(fb.finish());

        let (profile, checksum) = traced_profile(&m);
        let report = inline_module(&mut m, &profile, &InlineOptions::default());
        assert_eq!(report.inlined_sites, 0, "recursive callee must be skipped");
        let r2 = run(&m, "main", &RunOptions::default()).unwrap();
        assert_eq!(r2.checksum, checksum);
    }

    #[test]
    fn void_and_valued_returns_handled() {
        let mut m = Module::new();
        let mut mb = FunctionBuilder::new("main", 0);
        mb.call_void(FuncId(1), vec![]);
        let v = mb.call(FuncId(2), vec![]);
        mb.emit(v);
        mb.ret(None);
        m.add_function(mb.finish());
        let mut s = FunctionBuilder::new("side", 0);
        let c = s.constant(11);
        s.emit(c);
        s.ret(None);
        m.add_function(s.finish());
        let mut g = FunctionBuilder::new("get", 0);
        let c = g.constant(5);
        g.ret(Some(c));
        m.add_function(g.finish());

        let (profile, checksum) = traced_profile(&m);
        let report = inline_module(
            &mut m,
            &profile,
            &InlineOptions {
                code_bloat: 2.0,
                max_callee_size: 200,
            },
        );
        assert_eq!(report.inlined_sites, 2);
        assert_eq!(verify_module(&m), Ok(()));
        let r = run(&m, "main", &RunOptions::default()).unwrap();
        assert_eq!(r.checksum, checksum);
    }

    /// Regression: an inlined callee that reads a register before writing
    /// it must observe zero (fresh-activation semantics), not a stale
    /// value from the previous execution of the inlined body.
    #[test]
    fn inlined_callee_registers_are_zeroed_per_activation() {
        let mut m = Module::new();
        let mut mb = FunctionBuilder::new("main", 0);
        let n = mb.constant(5);
        let i = mb.copy(n);
        let (hdr, body, exit) = (mb.new_block(), mb.new_block(), mb.new_block());
        mb.jump(hdr);
        mb.switch_to(hdr);
        mb.branch(i, body, exit);
        mb.switch_to(body);
        let v = mb.call(FuncId(1), vec![]);
        mb.emit(v);
        let one = mb.constant(1);
        mb.binary_to(i, BinOp::Sub, i, one);
        mb.jump(hdr);
        mb.switch_to(exit);
        mb.ret(None);
        m.add_function(mb.finish());
        // g(): acc starts 0 per activation (never written before the add),
        // so every call returns 1.
        let mut g = ppp_ir::Function::new("g", 0);
        g.reg_count = 2;
        g.blocks[0].insts = vec![
            Inst::Const {
                dst: Reg(1),
                value: 1,
            },
            Inst::Binary {
                dst: Reg(0),
                op: BinOp::Add,
                lhs: Reg(0),
                rhs: Reg(1),
            },
        ];
        g.blocks[0].term = Terminator::Return {
            value: Some(Reg(0)),
        };
        m.add_function(g);

        let (profile, checksum) = traced_profile(&m);
        let report = inline_module(
            &mut m,
            &profile,
            &InlineOptions {
                code_bloat: 2.0,
                max_callee_size: 200,
            },
        );
        assert_eq!(report.inlined_sites, 1);
        assert_eq!(verify_module(&m), Ok(()));
        let r = run(&m, "main", &RunOptions::default()).unwrap();
        assert_eq!(
            r.checksum, checksum,
            "inlined read-before-write register observed a stale value"
        );
    }

    #[test]
    fn witness_records_each_splice() {
        let mut m = sample();
        let (profile, _) = traced_profile(&m);
        let caller_blocks_before = m.function(FuncId(0)).blocks.len() as u32;
        let caller_regs_before = m.function(FuncId(0)).reg_count;
        let (report, witness) = inline_module_witnessed(
            &mut m,
            &profile,
            &InlineOptions {
                code_bloat: 1.0,
                max_callee_size: 200,
            },
        );
        let TransformWitness::Inline(w) = witness else {
            panic!("inliner must emit an inline witness");
        };
        assert_eq!(w.steps.len(), report.inlined_sites);
        let step = w.steps[0];
        assert_eq!(step.caller, FuncId(0));
        assert_eq!(step.callee, FuncId(1));
        // cont is appended first, then the cloned callee blocks.
        assert_eq!(step.cont, BlockId(caller_blocks_before));
        assert_eq!(step.block_base, caller_blocks_before + 1);
        assert_eq!(step.reg_base, caller_regs_before);
    }

    #[test]
    fn multiple_sites_in_one_block() {
        let mut m = Module::new();
        let mut mb = FunctionBuilder::new("main", 0);
        let a = mb.call(FuncId(1), vec![]);
        let b = mb.call(FuncId(1), vec![]);
        let s = mb.binary(BinOp::Add, a, b);
        mb.emit(s);
        mb.ret(None);
        m.add_function(mb.finish());
        let mut g = FunctionBuilder::new("get", 0);
        let bound = g.constant(100);
        let v = g.rand(bound);
        g.ret(Some(v));
        m.add_function(g.finish());

        let (profile, checksum) = traced_profile(&m);
        let report = inline_module(
            &mut m,
            &profile,
            &InlineOptions {
                code_bloat: 2.0,
                max_callee_size: 200,
            },
        );
        assert_eq!(report.inlined_sites, 2);
        assert_eq!(verify_module(&m), Ok(()));
        let r = run(&m, "main", &RunOptions::default()).unwrap();
        assert_eq!(r.checksum, checksum, "rand stream order must be preserved");
    }
}
