//! Hot-function selection off a live profile snapshot.
//!
//! A dynamic optimizer does not re-optimize the whole program every
//! generation: it picks the functions carrying most of the observed flow
//! and focuses the expensive transforms there. [`select_hot_functions`]
//! ranks functions by their share of the module's dynamic flow and keeps
//! those at or above a threshold; [`focus_profile`] then zeroes the cold
//! functions' profiles so the profile-guided transforms (which treat
//! zero-flow call sites and loops as not worth touching) skip them while
//! the guidance stays shape-matching and flow-conservative.
//!
//! A threshold of `0.0` keeps every function and makes
//! [`focus_profile`] the identity — the setting the one-shot pipeline
//! equivalence property relies on.

use ppp_ir::{FuncId, Module, ModuleEdgeProfile};

/// A function's share of the module's dynamic flow. Entries are counted
/// alongside edge flow so single-block functions (no internal edges)
/// still register.
fn func_flow(profile: &ModuleEdgeProfile, f: FuncId) -> u64 {
    let p = profile.func(f);
    p.total_edge_flow().saturating_add(p.entries())
}

/// Selects the functions whose share of total dynamic flow is at least
/// `threshold` (a fraction in `[0, 1]`). With `threshold <= 0.0` every
/// function is selected; if no function qualifies the result is empty
/// and the focused profile is all-zero (nothing is hot enough to touch).
pub fn select_hot_functions(
    module: &Module,
    profile: &ModuleEdgeProfile,
    threshold: f64,
) -> Vec<FuncId> {
    if threshold <= 0.0 {
        return module.func_ids().collect();
    }
    let total: u64 = module.func_ids().map(|f| func_flow(profile, f)).sum();
    if total == 0 {
        return Vec::new();
    }
    module
        .func_ids()
        .filter(|&f| func_flow(profile, f) as f64 / total as f64 >= threshold)
        .collect()
}

/// Returns `profile` restricted to the `hot` functions: cold functions'
/// profiles are zeroed (still shape-matching, trivially
/// flow-conservative), hot functions' are copied bit-exact. With every
/// function hot this is a plain clone.
pub fn focus_profile(
    module: &Module,
    profile: &ModuleEdgeProfile,
    hot: &[FuncId],
) -> ModuleEdgeProfile {
    let mut out = profile.clone();
    for f in module.func_ids() {
        if !hot.contains(&f) {
            out.func_mut(f).zero();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_vm::{run, RunOptions};
    use ppp_workloads::{generate, spec2000_suite};

    fn profiled() -> (Module, ModuleEdgeProfile) {
        let spec = spec2000_suite()[0].spec.clone().scaled(0.05);
        let module = generate(&spec);
        let r = run(
            &module,
            "main",
            &RunOptions::default().with_seed(11).traced(),
        )
        .expect("benchmark runs");
        let edges = r.edge_profile.expect("traced");
        (module, edges)
    }

    #[test]
    fn zero_threshold_selects_everything_and_focus_is_identity() {
        let (module, edges) = profiled();
        let hot = select_hot_functions(&module, &edges, 0.0);
        assert_eq!(hot.len(), module.functions.len());
        let focused = focus_profile(&module, &edges, &hot);
        for f in module.func_ids() {
            assert_eq!(focused.func(f).entries(), edges.func(f).entries());
            assert_eq!(
                focused.func(f).total_edge_flow(),
                edges.func(f).total_edge_flow()
            );
        }
    }

    #[test]
    fn a_mid_threshold_drops_cold_functions_but_stays_conservative() {
        let (module, edges) = profiled();
        let hot = select_hot_functions(&module, &edges, 0.05);
        assert!(!hot.is_empty());
        assert!(hot.len() < module.functions.len());
        let focused = focus_profile(&module, &edges, &hot);
        assert!(focused.shape_matches(&module));
        assert!(focused.is_flow_conservative(&module));
        for f in module.func_ids() {
            if !hot.contains(&f) {
                assert!(focused.func(f).is_zero());
            }
        }
        // Selected functions really are the high-share ones.
        let total: u64 = module.func_ids().map(|f| func_flow(&edges, f)).sum();
        for f in module.func_ids() {
            let share = func_flow(&edges, f) as f64 / total as f64;
            assert_eq!(hot.contains(&f), share >= 0.05, "func {f:?} share {share}");
        }
    }

    #[test]
    fn an_impossible_threshold_selects_nothing() {
        let (module, edges) = profiled();
        assert!(select_hot_functions(&module, &edges, 1.1).is_empty());
        let focused = focus_profile(&module, &edges, &[]);
        assert!(focused.shape_matches(&module));
        for f in module.func_ids() {
            assert!(focused.func(f).is_zero());
        }
    }
}
