//! Call graph construction and recursion detection.

use ppp_ir::{BlockId, FuncId, Inst, Module};

/// One call site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CallSite {
    /// Calling function.
    pub caller: FuncId,
    /// Block containing the call.
    pub block: BlockId,
    /// Instruction index within the block.
    pub inst: usize,
    /// Called function.
    pub callee: FuncId,
}

/// The module's call graph.
#[derive(Clone, Debug)]
pub struct CallGraph {
    sites: Vec<CallSite>,
    /// `recursive[f]` is `true` when `f` participates in a call cycle
    /// (including self-recursion).
    recursive: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph of `module`.
    pub fn build(module: &Module) -> Self {
        let n = module.functions.len();
        let mut sites = Vec::new();
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (fi, f) in module.functions.iter().enumerate() {
            for (bi, b) in f.iter_blocks() {
                for (ii, inst) in b.insts.iter().enumerate() {
                    if let Inst::Call { callee, .. } = inst {
                        sites.push(CallSite {
                            caller: FuncId::new(fi),
                            block: bi,
                            inst: ii,
                            callee: *callee,
                        });
                        callees[fi].push(callee.index());
                    }
                }
            }
        }
        // Tarjan-free cycle detection: iterative DFS computing whether a
        // function can reach itself.
        let mut recursive = vec![false; n];
        for start in 0..n {
            let mut seen = vec![false; n];
            let mut stack: Vec<usize> = callees[start].clone();
            while let Some(x) = stack.pop() {
                if x == start {
                    recursive[start] = true;
                    break;
                }
                if !seen[x] {
                    seen[x] = true;
                    stack.extend(callees[x].iter().copied());
                }
            }
        }
        Self { sites, recursive }
    }

    /// All call sites, in deterministic (caller, block, inst) order.
    pub fn sites(&self) -> &[CallSite] {
        &self.sites
    }

    /// Returns `true` if `f` participates in any call cycle.
    pub fn is_recursive(&self, f: FuncId) -> bool {
        self.recursive[f.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::FunctionBuilder;

    fn module_with_calls() -> Module {
        let mut m = Module::new();
        // f0 calls f1 twice; f1 calls f2; f2 calls f1 (cycle f1<->f2);
        // f3 calls itself.
        let mut b0 = FunctionBuilder::new("a", 0);
        b0.call_void(FuncId(1), vec![]);
        b0.call_void(FuncId(1), vec![]);
        b0.ret(None);
        m.add_function(b0.finish());
        let mut b1 = FunctionBuilder::new("b", 0);
        b1.call_void(FuncId(2), vec![]);
        b1.ret(None);
        m.add_function(b1.finish());
        let mut b2 = FunctionBuilder::new("c", 0);
        b2.call_void(FuncId(1), vec![]);
        b2.ret(None);
        m.add_function(b2.finish());
        let mut b3 = FunctionBuilder::new("d", 0);
        b3.call_void(FuncId(3), vec![]);
        b3.ret(None);
        m.add_function(b3.finish());
        m
    }

    #[test]
    fn sites_enumerated_in_order() {
        let m = module_with_calls();
        let cg = CallGraph::build(&m);
        assert_eq!(cg.sites().len(), 5);
        assert_eq!(cg.sites()[0].caller, FuncId(0));
        assert_eq!(cg.sites()[0].inst, 0);
        assert_eq!(cg.sites()[1].inst, 1);
    }

    #[test]
    fn recursion_detected() {
        let m = module_with_calls();
        let cg = CallGraph::build(&m);
        assert!(!cg.is_recursive(FuncId(0)));
        assert!(cg.is_recursive(FuncId(1)));
        assert!(cg.is_recursive(FuncId(2)));
        assert!(cg.is_recursive(FuncId(3)));
    }
}
