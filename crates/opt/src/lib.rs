//! # ppp-opt: edge-profile-guided inlining and unrolling
//!
//! The paper's evaluation first performs *edge profile-guided inlining
//! and unrolling* (§7.3) to approximate the optimized code of a staged
//! dynamic optimizer: these transformations make dynamic paths longer and
//! harder to predict from an edge profile (Table 1), which is the
//! challenging setting PPP is evaluated in.
//!
//! - [`inline_module`]: priority = call-site hotness / callee size, a 5%
//!   code-bloat budget, a 200-statement callee cap, and no recursion;
//! - [`unroll_module`]: hot inner loops, factor 4 for canonical counted
//!   loops (tests elided, remainder loop preserved), factor 2 with tests
//!   retained otherwise; skips trips below 8 and bodies above 256
//!   statements.
//!
//! Both run on a module plus an edge profile of that exact module, and
//! both preserve semantics bit-for-bit (the VM checksum is the oracle in
//! this workspace's tests). Re-profile after optimizing, as a staged
//! system would.
//!
//! Every transform has a `*_witnessed` variant that additionally emits a
//! [`ppp_ir::TransformWitness`] — the block/register correspondence map
//! that `ppp-lint`'s translation-validation pass (PPP3xx) replays and
//! checks against the source and optimized modules.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod callgraph;
pub mod hot;
pub mod inline;
pub mod scalar;
pub mod unroll;

pub use callgraph::{CallGraph, CallSite};
pub use hot::{focus_profile, select_hot_functions};
pub use inline::{inline_module, inline_module_witnessed, InlineOptions, InlineReport};
pub use scalar::{
    optimize_function, optimize_function_witnessed, optimize_module, optimize_module_witnessed,
    ScalarReport,
};
pub use unroll::{unroll_module, unroll_module_witnessed, UnrollOptions, UnrollReport};
