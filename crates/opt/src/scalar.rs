//! Standard scalar optimizations (§7.3: "we perform standard scalar
//! optimizations" before measuring path characteristics).
//!
//! Three classic passes, run to a fixpoint by [`optimize_function`]:
//!
//! - **local constant & copy propagation**: within each block, registers
//!   holding known constants or copies are folded into their uses;
//! - **branch folding**: branches and switches on known constants become
//!   jumps, after which unreachable blocks are removed;
//! - **dead code elimination**: pure instructions (`const`, `copy`,
//!   arithmetic, `load`) whose results are never used are deleted, driven
//!   by a global backward liveness analysis.
//!
//! `rand` is deliberately treated as side-effecting even though its
//! result may be dead: removing a draw would shift the deterministic
//! input stream and change program behaviour. `store`, `emit`, calls,
//! and profiling ops are always kept.

use ppp_ir::{
    BinOp, BlockId, Cfg, Function, Inst, Module, Reg, ScalarFuncWitness, ScalarWitness, Terminator,
    TransformWitness,
};
use std::collections::HashMap;

/// What the scalar pipeline did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScalarReport {
    /// Instructions folded to constants or rewritten by propagation.
    pub folded: usize,
    /// Branches/switches converted to jumps.
    pub branches_folded: usize,
    /// Pure instructions removed as dead.
    pub dead_removed: usize,
    /// Unreachable blocks removed.
    pub blocks_removed: usize,
}

impl ScalarReport {
    fn merge(&mut self, other: ScalarReport) {
        self.folded += other.folded;
        self.branches_folded += other.branches_folded;
        self.dead_removed += other.dead_removed;
        self.blocks_removed += other.blocks_removed;
    }

    /// Total changes (0 means a fixpoint was reached).
    pub fn changes(&self) -> usize {
        self.folded + self.branches_folded + self.dead_removed + self.blocks_removed
    }
}

/// Runs the scalar pipeline on every function.
pub fn optimize_module(module: &mut Module) -> ScalarReport {
    optimize_module_witnessed(module).0
}

/// Like [`optimize_module`], additionally emitting a [`TransformWitness`]
/// with each function's block descent map for translation validation.
pub fn optimize_module_witnessed(module: &mut Module) -> (ScalarReport, TransformWitness) {
    let mut total = ScalarReport::default();
    let mut funcs = Vec::with_capacity(module.functions.len());
    for f in &mut module.functions {
        let (report, w) = optimize_function_witnessed(f);
        total.merge(report);
        funcs.push(w);
    }
    (total, TransformWitness::Scalar(ScalarWitness { funcs }))
}

/// Runs constant/copy propagation, branch folding, and DCE to a fixpoint
/// (bounded, in practice 2–3 rounds).
pub fn optimize_function(f: &mut Function) -> ScalarReport {
    optimize_function_witnessed(f).0
}

/// Like [`optimize_function`], additionally emitting the block descent
/// map (surviving block → source block it descends from).
pub fn optimize_function_witnessed(f: &mut Function) -> (ScalarReport, ScalarFuncWitness) {
    let mut total = ScalarReport::default();
    let mut witness = ScalarFuncWitness::identity(f.blocks.len());
    for _ in 0..8 {
        let mut round = ScalarReport::default();
        round.merge(propagate_locally(f));
        round.merge(fold_branches(f));
        let mapping = ppp_ir::transform::remove_unreachable(f);
        round.blocks_removed += mapping.iter().filter(|m| m.is_none()).count();
        // Compose this round's old→new renumbering into the descent map.
        let mut origin = vec![BlockId::new(0); f.blocks.len()];
        for (old, new) in mapping.iter().enumerate() {
            if let Some(new) = new {
                origin[new.index()] = witness.origin[old];
            }
        }
        witness.origin = origin;
        round.merge(eliminate_dead(f));
        if round.changes() == 0 {
            break;
        }
        total.merge(round);
    }
    (total, witness)
}

/// Per-block abstract value of a register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Value {
    Const(i64),
    CopyOf(Reg),
}

fn propagate_locally(f: &mut Function) -> ScalarReport {
    let mut report = ScalarReport::default();
    for block in &mut f.blocks {
        let mut env: HashMap<Reg, Value> = HashMap::new();
        // Resolve a register through the copy chain to a root or constant.
        let resolve = |env: &HashMap<Reg, Value>, mut r: Reg| -> (Reg, Option<i64>) {
            for _ in 0..env.len() + 1 {
                match env.get(&r) {
                    Some(Value::Const(c)) => return (r, Some(*c)),
                    Some(Value::CopyOf(s)) => r = *s,
                    None => break,
                }
            }
            (r, None)
        };
        for inst in &mut block.insts {
            // First rewrite uses through the environment.
            let before = inst.clone();
            rewrite_uses(inst, |r| resolve(&env, r).0);
            // Then fold if all inputs are known.
            let folded = fold_inst(inst, |r| resolve(&env, r).1);
            if folded || *inst != before {
                report.folded += 1;
            }
            // Update the environment with this instruction's effect.
            match inst {
                Inst::Const { dst, value } => {
                    let (dst, value) = (*dst, *value);
                    kill_copies_of(&mut env, dst);
                    env.insert(dst, Value::Const(value));
                }
                Inst::Copy { dst, src } => {
                    let (dst, src) = (*dst, *src);
                    kill_copies_of(&mut env, dst);
                    if dst != src {
                        let entry = match env.get(&src) {
                            Some(v) => *v,
                            None => Value::CopyOf(src),
                        };
                        env.insert(dst, entry);
                    }
                }
                other => {
                    if let Some(d) = other.def() {
                        kill_copies_of(&mut env, d);
                        env.remove(&d);
                    }
                }
            }
        }
        // Rewrite terminator uses too.
        let resolve_term = |r: Reg| resolve(&env, r).0;
        match &mut block.term {
            Terminator::Branch { cond, .. } => *cond = resolve_term(*cond),
            Terminator::Switch { disc, .. } => *disc = resolve_term(*disc),
            Terminator::Return { value: Some(v) } => *v = resolve_term(*v),
            _ => {}
        }
    }
    report
}

/// Forgets every mapping that refers to `dst` (it is being redefined).
fn kill_copies_of(env: &mut HashMap<Reg, Value>, dst: Reg) {
    env.retain(|_, v| !matches!(v, Value::CopyOf(s) if *s == dst));
}

/// Rewrites an instruction's register uses (not its def).
fn rewrite_uses(inst: &mut Inst, map: impl Fn(Reg) -> Reg) {
    match inst {
        Inst::Const { .. } | Inst::Prof(_) => {}
        Inst::Copy { src, .. } | Inst::Unary { src, .. } | Inst::Emit { src } => *src = map(*src),
        Inst::Binary { lhs, rhs, .. } => {
            *lhs = map(*lhs);
            *rhs = map(*rhs);
        }
        Inst::Load { addr, .. } => *addr = map(*addr),
        Inst::Store { addr, src } => {
            *addr = map(*addr);
            *src = map(*src);
        }
        Inst::Rand { bound, .. } => *bound = map(*bound),
        Inst::Call { args, .. } => {
            for a in args {
                *a = map(*a);
            }
        }
    }
}

/// Replaces an instruction with `const` when its inputs are known.
/// Returns true if folded.
fn fold_inst(inst: &mut Inst, known: impl Fn(Reg) -> Option<i64>) -> bool {
    let replacement = match inst {
        Inst::Copy { dst, src } => known(*src).map(|v| Inst::Const {
            dst: *dst,
            value: v,
        }),
        Inst::Unary { dst, op, src } => known(*src).map(|v| Inst::Const {
            dst: *dst,
            value: op.eval(v),
        }),
        Inst::Binary { dst, op, lhs, rhs } => match (known(*lhs), known(*rhs)) {
            (Some(a), Some(b)) => Some(Inst::Const {
                dst: *dst,
                value: op.eval(a, b),
            }),
            // Algebraic identities with one known side.
            (Some(0), _) if *op == BinOp::Add => Some(Inst::Copy {
                dst: *dst,
                src: *rhs,
            }),
            (_, Some(0))
                if matches!(
                    *op,
                    BinOp::Add | BinOp::Sub | BinOp::Xor | BinOp::Shl | BinOp::Shr
                ) =>
            {
                Some(Inst::Copy {
                    dst: *dst,
                    src: *lhs,
                })
            }
            (_, Some(1)) if *op == BinOp::Mul => Some(Inst::Copy {
                dst: *dst,
                src: *lhs,
            }),
            (Some(1), _) if *op == BinOp::Mul => Some(Inst::Copy {
                dst: *dst,
                src: *rhs,
            }),
            _ => None,
        },
        _ => None,
    };
    match replacement {
        Some(r) if r != *inst => {
            *inst = r;
            true
        }
        _ => false,
    }
}

/// Folds branches/switches whose discriminant is a block-local constant.
fn fold_branches(f: &mut Function) -> ScalarReport {
    let mut report = ScalarReport::default();
    for block in &mut f.blocks {
        // Recompute local constants (cheap; blocks are small).
        let mut consts: HashMap<Reg, i64> = HashMap::new();
        for inst in &block.insts {
            match inst {
                Inst::Const { dst, value } => {
                    consts.insert(*dst, *value);
                }
                other => {
                    if let Some(d) = other.def() {
                        consts.remove(&d);
                    }
                }
            }
        }
        let new_target = match &block.term {
            Terminator::Branch {
                cond,
                then_target,
                else_target,
            } => consts
                .get(cond)
                .map(|&c| if c != 0 { *then_target } else { *else_target }),
            Terminator::Switch {
                disc,
                targets,
                default,
            } => consts.get(disc).map(|&v| {
                if v >= 0 && (v as usize) < targets.len() {
                    targets[v as usize]
                } else {
                    *default
                }
            }),
            _ => None,
        };
        if let Some(target) = new_target {
            block.term = Terminator::Jump { target };
            report.branches_folded += 1;
        }
    }
    report
}

/// Global backward liveness; removes pure dead instructions.
fn eliminate_dead(f: &mut Function) -> ScalarReport {
    let cfg = Cfg::new(f);
    let n = f.blocks.len();
    let mut live_out: Vec<Vec<bool>> = vec![vec![false; f.reg_count as usize]; n];
    let mut live_in: Vec<Vec<bool>> = vec![vec![false; f.reg_count as usize]; n];

    let mut changed = true;
    let mut uses_buf = Vec::new();
    while changed {
        changed = false;
        for &b in cfg.reverse_postorder().iter().rev() {
            let bi = b.index();
            // live_out = union of successors' live_in.
            let mut out = vec![false; f.reg_count as usize];
            for &s in cfg.succs(b) {
                for (o, &i) in out.iter_mut().zip(&live_in[s.index()]) {
                    *o |= i;
                }
            }
            // Transfer backward through the block.
            let mut live = out.clone();
            let block = f.block(b);
            if let Some(r) = block.term.use_reg() {
                live[r.index()] = true;
            }
            for inst in block.insts.iter().rev() {
                if let Some(d) = inst.def() {
                    live[d.index()] = false;
                }
                uses_buf.clear();
                inst.uses(&mut uses_buf);
                for &u in &uses_buf {
                    live[u.index()] = true;
                }
            }
            if live != live_in[bi] || out != live_out[bi] {
                live_in[bi] = live;
                live_out[bi] = out;
                changed = true;
            }
        }
    }

    // Remove pure instructions whose def is dead at their program point.
    let mut report = ScalarReport::default();
    for (bi, block) in f.blocks.iter_mut().enumerate() {
        let mut live = live_out[bi].clone();
        if let Some(r) = block.term.use_reg() {
            live[r.index()] = true;
        }
        let mut keep: Vec<bool> = vec![true; block.insts.len()];
        for (i, inst) in block.insts.iter().enumerate().rev() {
            let pure = matches!(
                inst,
                Inst::Const { .. }
                    | Inst::Copy { .. }
                    | Inst::Unary { .. }
                    | Inst::Binary { .. }
                    | Inst::Load { .. }
            );
            let dead_def = inst.def().is_some_and(|d| !live[d.index()]);
            if pure && dead_def {
                keep[i] = false;
                report.dead_removed += 1;
                continue; // does not execute: no effect on liveness
            }
            if let Some(d) = inst.def() {
                live[d.index()] = false;
            }
            uses_buf.clear();
            inst.uses(&mut uses_buf);
            for &u in &uses_buf {
                live[u.index()] = true;
            }
        }
        let mut it = keep.iter();
        block
            .insts
            .retain(|_| *it.next().expect("keep mask aligned"));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::{verify_module, FunctionBuilder, Module};
    use ppp_vm::{run, RunOptions};

    fn checksum(m: &Module) -> u64 {
        run(m, "main", &RunOptions::default()).unwrap().checksum
    }

    #[test]
    fn constants_fold_through_arithmetic() {
        let mut b = FunctionBuilder::new("main", 0);
        let x = b.constant(6);
        let y = b.constant(7);
        let p = b.binary(BinOp::Mul, x, y);
        b.emit(p);
        b.ret(None);
        let mut m = Module::new();
        m.add_function(b.finish());
        let before = checksum(&m);
        let report = optimize_module(&mut m);
        assert!(report.folded >= 1);
        assert_eq!(verify_module(&m), Ok(()));
        assert_eq!(checksum(&m), before);
        // The multiply became a constant 42.
        let f = &m.functions[0];
        assert!(f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Const { value: 42, .. })));
    }

    #[test]
    fn constant_branches_fold_and_dead_arm_disappears() {
        let mut b = FunctionBuilder::new("main", 0);
        let c = b.constant(1);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, t, e);
        b.switch_to(t);
        let v = b.constant(10);
        b.emit(v);
        b.jump(j);
        b.switch_to(e);
        let w = b.constant(20);
        b.emit(w);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        let mut m = Module::new();
        m.add_function(b.finish());
        let before = checksum(&m);
        let report = optimize_module(&mut m);
        assert!(report.branches_folded >= 1);
        assert!(report.blocks_removed >= 1);
        assert_eq!(checksum(&m), before);
        assert_eq!(verify_module(&m), Ok(()));
    }

    #[test]
    fn dead_code_removed_but_rand_kept() {
        let mut b = FunctionBuilder::new("main", 0);
        let bound = b.constant(100);
        let dead = b.constant(5);
        let _dead2 = b.binary(BinOp::Add, dead, dead);
        let r1 = b.rand(bound); // dead result, but the draw must stay
        let r2 = b.rand(bound);
        b.emit(r2);
        b.ret(None);
        let mut m = Module::new();
        m.add_function(b.finish());
        let before = checksum(&m);
        let report = optimize_module(&mut m);
        assert!(report.dead_removed >= 1);
        assert_eq!(checksum(&m), before, "removing rand would shift the stream");
        let f = &m.functions[0];
        let rands = f.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Rand { .. }))
            .count();
        assert_eq!(rands, 2, "both draws preserved");
        let _ = r1;
    }

    #[test]
    fn copy_chains_collapse() {
        let mut b = FunctionBuilder::new("main", 0);
        let x = b.constant(3);
        let a = b.copy(x);
        let c = b.copy(a);
        let d = b.copy(c);
        b.emit(d);
        b.ret(None);
        let mut m = Module::new();
        m.add_function(b.finish());
        let before = checksum(&m);
        optimize_module(&mut m);
        assert_eq!(checksum(&m), before);
        // Everything collapses to: emit a constant.
        let f = &m.functions[0];
        assert!(f.blocks[0].insts.len() <= 2, "{:?}", f.blocks[0].insts);
    }

    #[test]
    fn redefinition_invalidates_copies() {
        // a = copy x; x = const 9; emit a  — a must keep x's OLD value.
        let mut b = FunctionBuilder::new("main", 0);
        let x = b.constant(3);
        let a = b.copy(x);
        let bound = b.constant(50);
        let fresh = b.rand(bound);
        b.copy_to(x, fresh); // redefine x with an unknown
        b.emit(a);
        b.emit(x);
        b.ret(None);
        let mut m = Module::new();
        m.add_function(b.finish());
        let before = checksum(&m);
        optimize_module(&mut m);
        assert_eq!(checksum(&m), before);
    }

    #[test]
    fn generated_workloads_survive_scalar_opts() {
        use ppp_workloads::{generate, BenchmarkSpec};
        for name in ["scalar-a", "scalar-b"] {
            let mut m = generate(&BenchmarkSpec::named(name).scaled(0.05));
            let before = checksum(&m);
            let size_before = m.size();
            let report = optimize_module(&mut m);
            assert_eq!(verify_module(&m), Ok(()), "{name}");
            assert_eq!(checksum(&m), before, "{name}: semantics changed");
            assert!(
                m.size() <= size_before,
                "{name}: scalar opts must not grow code"
            );
            assert!(report.changes() > 0, "{name}: expected some cleanup");
        }
    }

    #[test]
    fn witness_tracks_block_descent_through_removal() {
        // Constant branch: the dead arm disappears, and the witness must
        // map each surviving block back to its pre-optimization id.
        let mut b = FunctionBuilder::new("main", 0);
        let c = b.constant(1);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, t, e);
        b.switch_to(t);
        let v = b.constant(10);
        b.emit(v);
        b.jump(j);
        b.switch_to(e);
        let w = b.constant(20);
        b.emit(w);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        let mut m = Module::new();
        m.add_function(b.finish());
        let blocks_before = m.functions[0].blocks.len();
        let (report, witness) = optimize_module_witnessed(&mut m);
        assert!(report.blocks_removed >= 1);
        let TransformWitness::Scalar(sw) = witness else {
            panic!("scalar pipeline must emit a scalar witness");
        };
        let origin = &sw.funcs[0].origin;
        assert_eq!(origin.len(), m.functions[0].blocks.len());
        // Injective into the source block space, never hitting the dead arm.
        let mut seen = std::collections::HashSet::new();
        for &o in origin {
            assert!(o.index() < blocks_before);
            assert!(seen.insert(o), "descent map must be injective");
            assert_ne!(o, e, "the folded-away arm has no descendant");
        }
    }

    #[test]
    fn fixpoint_is_reached() {
        let mut b = FunctionBuilder::new("main", 0);
        let x = b.constant(1);
        let y = b.binary(BinOp::Add, x, x);
        b.emit(y);
        b.ret(None);
        let mut m = Module::new();
        m.add_function(b.finish());
        optimize_module(&mut m);
        let after_once = m.clone();
        let second = optimize_module(&mut m);
        assert_eq!(second.changes(), 0, "second run must be a no-op");
        assert_eq!(m, after_once);
    }
}
