//! Differential testing of the optimizer: every suite benchmark must
//! behave identically on the ppp-vm before and after the full
//! inline → unroll → scalar pipeline, across multiple RNG seeds.
//!
//! Observables are the VM halt reason and the emit-stream checksum; the
//! RNG seed is part of the input, so agreement across seeds also pins
//! down the number and order of `Rand` draws through every transform.

use ppp_opt::{inline_module, optimize_module, unroll_module, InlineOptions, UnrollOptions};
use ppp_vm::{run, HaltReason, RunOptions};

const SEEDS: [u64; 2] = [7, 0x5EED];

fn observe(module: &ppp_ir::Module, seed: u64) -> (HaltReason, u64) {
    let r = run(module, "main", &RunOptions::default().with_seed(seed)).unwrap();
    (r.halt, r.checksum)
}

#[test]
fn suite_observables_survive_full_pipeline() {
    for entry in ppp_workloads::spec2000_suite() {
        let name = entry.spec.name.clone();
        let mut module = ppp_workloads::generate(&entry.spec.scaled(0.02));

        let before: Vec<_> = SEEDS.iter().map(|&s| observe(&module, s)).collect();
        for (halt, _) in &before {
            assert_eq!(
                *halt,
                HaltReason::Finished,
                "{name}: baseline did not finish"
            );
        }

        let traced = run(
            &module,
            "main",
            &RunOptions::default().traced().with_seed(SEEDS[0]),
        )
        .unwrap();
        let edges = traced.edge_profile.unwrap();
        inline_module(&mut module, &edges, &InlineOptions::default());

        let traced = run(
            &module,
            "main",
            &RunOptions::default().traced().with_seed(SEEDS[0]),
        )
        .unwrap();
        let edges = traced.edge_profile.unwrap();
        unroll_module(&mut module, &edges, &UnrollOptions::default());

        optimize_module(&mut module);
        assert_eq!(ppp_ir::verify_module(&module), Ok(()), "{name}");

        let after: Vec<_> = SEEDS.iter().map(|&s| observe(&module, s)).collect();
        assert_eq!(
            before, after,
            "{name}: observables diverged after optimization"
        );
    }
}
