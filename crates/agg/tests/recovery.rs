//! The crash-recovery invariant (ISSUE 8 acceptance criterion): for
//! any crash point — at a checkpoint boundary, between deltas, or mid
//! WAL append (a torn tail) — recovering from checkpoint + WAL and
//! replaying the client's **entire** stream yields profiles
//! byte-identical (persist_v2 serialization) to the uncrashed
//! single-shot profiles, with every resent frame deduplicated by the
//! sequence watermark. Checked across {1, 2, 8} shards for every
//! benchmark in the 18-benchmark suite.

use ppp_agg::{AggClient, AggConfig, Aggregator, DurOptions, FrameSink, Hello, IngestOutcome};
use ppp_ir::wire::decode_frame;
use ppp_ir::{write_edge_profile_v2, write_path_profile_v2, Frame, FrameKind, Module};
use ppp_vm::{run, RunOptions, SplitMix64};
use ppp_workloads::{generate, spec2000_suite};
use std::path::PathBuf;
use std::sync::Arc;

const SCALE: f64 = 0.02;
const DELTA_INTERVAL: u64 = 4096;
/// Deliberately tiny so every stream crosses several checkpoint
/// boundaries.
const CHECKPOINT_EVERY: u64 = 3;

/// A [`FrameSink`] that records the exact wire stream a client sends.
struct RecordingSink(Vec<Frame>);

impl FrameSink for RecordingSink {
    fn send_frame(&mut self, bytes: &[u8]) -> Result<(), String> {
        let (frame, used) = decode_frame(bytes).map_err(|e| e.to_string())?;
        assert_eq!(used, bytes.len(), "sink got exactly one frame");
        self.0.push(frame);
        Ok(())
    }
}

/// The sequenced wire stream one client would send for `deltas`.
fn client_stream(bench: &str, module: &Arc<Module>, deltas: &[ppp_vm::ProfileDelta]) -> Vec<Frame> {
    let hello = Hello {
        bench: bench.to_owned(),
        funcs: module.functions.len(),
        scale_bits: SCALE.to_bits(),
        worker: 0,
    };
    let mut client =
        AggClient::open(Arc::clone(module), RecordingSink(Vec::new()), 3, &hello).expect("open");
    for d in deltas {
        client.push_delta(&d.edges, &d.paths).expect("push");
    }
    client.finish().expect("finish");
    client.into_sink().0
}

fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/ppp-scratch/recovery")
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable(bench: &str, module: &Arc<Module>, shards: usize, dir: &PathBuf) -> Aggregator {
    let (agg, _) = Aggregator::recover(
        bench,
        Arc::clone(module),
        AggConfig {
            shards,
            queue_cap: 8,
        },
        DurOptions::new(dir, CHECKPOINT_EVERY),
    )
    .expect("recover");
    agg
}

/// Crashes after `prefix` frames (optionally tearing `torn_bytes` off
/// the WAL tail, simulating a crash mid-append), recovers, replays the
/// full stream, and returns the snapshot bytes.
fn crash_and_recover(
    bench: &str,
    module: &Arc<Module>,
    frames: &[Frame],
    shards: usize,
    dir: &PathBuf,
    prefix: usize,
    torn_bytes: u64,
) -> (String, String, u64) {
    let _ = std::fs::remove_dir_all(dir);
    let agg = durable(bench, module, shards, dir);
    for f in &frames[..prefix] {
        agg.ingest_frame(f).expect("pre-crash ingest");
    }
    // The crash: no drain, no shutdown checkpoint, WAL handle dropped.
    drop(agg);
    if torn_bytes > 0 {
        let wal = ppp_agg::wal::wal_path(dir, bench);
        if let Ok(meta) = std::fs::metadata(&wal) {
            if meta.len() > 0 {
                let keep = meta
                    .len()
                    .saturating_sub(torn_bytes.min(meta.len() - 1).max(1));
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(&wal)
                    .expect("open wal for tearing");
                f.set_len(keep).expect("tear wal tail");
            }
        }
    }
    let agg = durable(bench, module, shards, dir);
    // The resuming client replays everything it ever sent; the
    // watermark must absorb the overlap.
    let mut duplicates = 0u64;
    for f in frames {
        match agg.ingest_frame(f).expect("post-crash replay") {
            IngestOutcome::Applied => {}
            IngestOutcome::Duplicate => duplicates += 1,
        }
    }
    let (edges, paths) = agg.snapshot();
    (
        write_edge_profile_v2(module, &edges),
        write_path_profile_v2(module, &paths),
        duplicates,
    )
}

#[test]
fn recovery_is_byte_identical_at_every_crash_point() {
    for entry in spec2000_suite() {
        let name = &entry.spec.name;
        let module = Arc::new(generate(&entry.spec.clone().scaled(SCALE)));
        let options = RunOptions::default()
            .traced()
            .with_seed(0x5EED)
            .with_delta_interval(DELTA_INTERVAL);
        let result = run(&module, "main", &options).expect("benchmark runs");
        let edges = result.edge_profile.as_ref().expect("traced");
        let paths = result.path_profile.as_ref().expect("traced");
        let edge_bytes = write_edge_profile_v2(&module, edges);
        let path_bytes = write_path_profile_v2(&module, paths);
        let frames = client_stream(name, &module, &result.deltas);
        let seq_frames = frames
            .iter()
            .filter(|f| matches!(f.kind, FrameKind::SeqEdgeDelta | FrameKind::SeqPathDelta))
            .count() as u64;
        assert!(seq_frames >= 2, "{name}: stream worth crashing");

        let mut rng = SplitMix64::new(0xC0FFEE ^ name.len() as u64);
        for shards in [1usize, 2, 8] {
            let dir = scratch(&format!("{name}-{shards}"));
            // Crash points: every checkpoint boundary, plus two seeded
            // mid-interval points, plus the empty and full prefixes.
            let mut prefixes: Vec<usize> = (0..=frames.len())
                .filter(|k| *k == 0 || *k == frames.len() || *k % CHECKPOINT_EVERY as usize == 0)
                .collect();
            for _ in 0..2 {
                prefixes.push((rng.next_u64() % (frames.len() as u64 + 1)) as usize);
            }
            prefixes.dedup();
            for &prefix in &prefixes {
                let (e, p, _) = crash_and_recover(name, &module, &frames, shards, &dir, prefix, 0);
                assert_eq!(
                    e, edge_bytes,
                    "{name} {shards} shards: edges after crash at frame {prefix}"
                );
                assert_eq!(
                    p, path_bytes,
                    "{name} {shards} shards: paths after crash at frame {prefix}"
                );
            }
            // Torn WAL tails: a crash mid-append at seeded depths.
            for _ in 0..2 {
                let prefix = 1 + (rng.next_u64() % frames.len() as u64) as usize;
                let torn = 1 + rng.next_u64() % 64;
                let (e, p, _) =
                    crash_and_recover(name, &module, &frames, shards, &dir, prefix, torn);
                assert_eq!(
                    e, edge_bytes,
                    "{name} {shards} shards: edges after torn tail ({torn}B) at frame {prefix}"
                );
                assert_eq!(
                    p, path_bytes,
                    "{name} {shards} shards: paths after torn tail ({torn}B) at frame {prefix}"
                );
            }
        }
    }
}

#[test]
fn full_resend_after_recovery_is_fully_deduplicated() {
    // A retrying client that crashes *after* the server ingested
    // everything resends its whole stream; every sequenced frame must
    // come back `Duplicate` and the snapshot must not move.
    let suite = spec2000_suite();
    let entry = suite.iter().find(|e| e.spec.name == "mcf").expect("mcf");
    let module = Arc::new(generate(&entry.spec.clone().scaled(SCALE)));
    let options = RunOptions::default()
        .traced()
        .with_seed(42)
        .with_delta_interval(DELTA_INTERVAL);
    let result = run(&module, "main", &options).expect("runs");
    let frames = client_stream("mcf", &module, &result.deltas);
    let seq_frames = frames
        .iter()
        .filter(|f| matches!(f.kind, FrameKind::SeqEdgeDelta | FrameKind::SeqPathDelta))
        .count() as u64;

    let dir = scratch("double-replay");
    let (e1, p1, d1) = crash_and_recover("mcf", &module, &frames, 2, &dir, frames.len(), 0);
    assert_eq!(d1, seq_frames, "everything resent was deduplicated");

    // And replaying a third time over the *same* recovered state —
    // without another crash — still changes nothing.
    let agg = durable("mcf", &module, 2, &dir);
    let mut d2 = 0u64;
    for f in &frames {
        if agg.ingest_frame(f).expect("replay") == IngestOutcome::Duplicate {
            d2 += 1;
        }
    }
    assert_eq!(d2, seq_frames);
    let (edges, paths) = agg.snapshot();
    assert_eq!(write_edge_profile_v2(&module, &edges), e1);
    assert_eq!(write_path_profile_v2(&module, &paths), p1);
    let edges_ref = result.edge_profile.as_ref().expect("traced");
    assert_eq!(e1, write_edge_profile_v2(&module, edges_ref));
}
