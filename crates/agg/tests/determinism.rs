//! The aggregation determinism invariant (ISSUE 5 acceptance criterion):
//! N-way sharded aggregation of a run's delta stream yields profiles
//! **byte-identical** (persist_v2 serialization) to the sequential
//! single-shot profiles, for every benchmark in the 18-benchmark suite,
//! across seeds and shard counts — and every merged snapshot is flow
//! conservative (the PPP308 invariant).

use ppp_agg::{AggClient, AggConfig, AggService, Hello, InProcSink};
use ppp_ir::{write_edge_profile_v2, write_path_profile_v2, Module};
use ppp_vm::{run, RunOptions};
use ppp_workloads::{generate, spec2000_suite};
use std::sync::Arc;

/// Small but non-trivial dynamic work per benchmark: the full suite ×
/// 2 seeds × 3 shard counts must stay test-suite fast.
const SCALE: f64 = 0.02;
const DELTA_INTERVAL: u64 = 4096;

#[test]
fn sharded_aggregation_is_byte_identical_to_sequential() {
    for entry in spec2000_suite() {
        let module = Arc::new(generate(&entry.spec.clone().scaled(SCALE)));
        for seed in [0x5EED_u64, 42] {
            let options = RunOptions::default()
                .traced()
                .with_seed(seed)
                .with_delta_interval(DELTA_INTERVAL);
            let result = run(&module, "main", &options).expect("benchmark runs");
            let edges = result.edge_profile.as_ref().expect("traced");
            let paths = result.path_profile.as_ref().expect("traced");
            assert!(
                !result.deltas.is_empty(),
                "{}: delta stream produced",
                entry.spec.name
            );

            // Reference bytes: the sequential single-shot profile.
            let edge_bytes = write_edge_profile_v2(&module, edges);
            let path_bytes = write_path_profile_v2(&module, paths);

            for shards in [1usize, 2, 8] {
                let (snap_edges, snap_paths) =
                    aggregate(&entry.spec.name, &module, &result.deltas, shards, seed);
                assert_eq!(
                    write_edge_profile_v2(&module, &snap_edges),
                    edge_bytes,
                    "{} seed {seed}: {shards}-shard edge snapshot must be byte-identical",
                    entry.spec.name
                );
                assert_eq!(
                    write_path_profile_v2(&module, &snap_paths),
                    path_bytes,
                    "{} seed {seed}: {shards}-shard path snapshot must be byte-identical",
                    entry.spec.name
                );
                // PPP308: merged snapshots conserve flow at every block.
                assert!(
                    snap_edges.is_flow_conservative(&module),
                    "{} seed {seed}: {shards}-shard snapshot flow",
                    entry.spec.name
                );
            }
        }
    }
}

/// Streams `deltas` through the full client → wire → sharded-aggregator
/// path and snapshots the merge.
fn aggregate(
    bench: &str,
    module: &Arc<Module>,
    deltas: &[ppp_vm::ProfileDelta],
    shards: usize,
    seed: u64,
) -> (ppp_ir::ModuleEdgeProfile, ppp_ir::ModulePathProfile) {
    let service = AggService::new(AggConfig {
        shards,
        queue_cap: 8,
    });
    let key = format!("{bench}-{seed}-{shards}");
    let agg = service.register(&key, module).expect("register");
    let hello = Hello {
        bench: key.clone(),
        funcs: module.functions.len(),
        scale_bits: SCALE.to_bits(),
        worker: 0,
    };
    let mut client = AggClient::open(
        Arc::clone(module),
        InProcSink::new(Arc::clone(&agg)),
        3, // deliberately awkward batch size
        &hello,
    )
    .expect("open");
    for d in deltas {
        client.push_delta(&d.edges, &d.paths).expect("push");
    }
    client.finish().expect("finish");
    agg.snapshot()
}
