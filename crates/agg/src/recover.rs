//! Crash recovery: rebuild an [`Aggregator`] from checkpoint + WAL.
//!
//! The recovery invariant, proven by the property suite in
//! `tests/recovery.rs`: for any crash point — between deltas, at a
//! checkpoint boundary, or mid-WAL-append — recovering and then
//! replaying the client's full stream yields a snapshot
//! **byte-identical** (under persist_v2 serialization) to the snapshot
//! an uncrashed aggregator would have produced. Three mechanisms
//! compose to make that true:
//!
//! 1. checkpoints capture profiles and per-client watermarks in one
//!    consistent cut (the front lock is held across the flush gate);
//! 2. WAL records are appended *before* a delta is applied, so no
//!    applied delta is ever unlogged;
//! 3. replay goes through the same watermark dedup as live ingestion,
//!    so deltas present in both checkpoint and WAL (a crash between
//!    the checkpoint rename and the WAL truncate), or resent by a
//!    retrying client, count exactly once.

use crate::shard::{AggConfig, Aggregator, IngestOutcome};
use crate::wal::{self, DurOptions, Wal};
use ppp_ir::wire::FrameKind;
use ppp_ir::Module;
use std::sync::Arc;

/// What a recovery found and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A checkpoint was loaded.
    pub had_checkpoint: bool,
    /// WAL frames applied on top of the checkpoint.
    pub replayed: u64,
    /// WAL frames dropped by the watermark (already in the
    /// checkpoint — a crash landed between rename and truncate).
    pub duplicates: u64,
    /// Bytes cut from a torn WAL tail (a crash mid-append).
    pub torn_bytes: u64,
    /// Clients with a non-zero watermark after recovery.
    pub clients: usize,
}

impl RecoveryReport {
    /// `true` when recovery found no prior state at all.
    pub fn cold_start(&self) -> bool {
        !self.had_checkpoint && self.replayed == 0 && self.duplicates == 0
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "checkpoint={} wal_replayed={} wal_duplicates={} torn_tail_bytes={} clients={}",
            self.had_checkpoint, self.replayed, self.duplicates, self.torn_bytes, self.clients
        )
    }
}

impl Aggregator {
    /// Builds a durable aggregator from whatever survives under
    /// `dur.dir`: loads the checkpoint (if any), replays the WAL's
    /// valid prefix through the watermark dedup, truncates any torn
    /// tail, and leaves the WAL open for appends. A directory with no
    /// prior state is a cold start — this is also how a durable
    /// aggregator is created in the first place.
    ///
    /// # Errors
    ///
    /// Fails loudly on unreadable/damaged checkpoints, file-system
    /// errors, or a WAL whose records contradict the checkpoint
    /// (sequence gaps): silently starting from zero would violate the
    /// never-silent contract.
    pub fn recover(
        bench: &str,
        module: Arc<Module>,
        config: AggConfig,
        dur: DurOptions,
    ) -> Result<(Aggregator, RecoveryReport), String> {
        std::fs::create_dir_all(&dur.dir)
            .map_err(|e| format!("durability dir {}: {e}", dur.dir.display()))?;
        let agg = Aggregator::new(bench, module, config);
        let mut report = RecoveryReport::default();

        if let Some(ckpt) = wal::read_checkpoint(&dur.dir, bench, agg.module())? {
            report.had_checkpoint = true;
            agg.submit_edges(ckpt.edges)
                .map_err(|e| format!("checkpoint seed: {e}"))?;
            agg.submit_paths(ckpt.paths)
                .map_err(|e| format!("checkpoint seed: {e}"))?;
            agg.front.lock().expect("front lock").watermarks = ckpt.watermarks;
        }

        let path = wal::wal_path(&dur.dir, bench);
        let scan = wal::scan_wal(&path).map_err(|e| format!("wal {}: {e}", path.display()))?;
        for frame in &scan.frames {
            match frame.kind {
                FrameKind::SeqEdgeDelta | FrameKind::SeqPathDelta => {
                    match agg.apply_seq(frame, false) {
                        Ok(IngestOutcome::Applied) => report.replayed += 1,
                        Ok(IngestOutcome::Duplicate) => report.duplicates += 1,
                        Err(e) => return Err(format!("wal replay: {e}")),
                    }
                }
                other => return Err(format!("wal holds an unexpected {other} frame")),
            }
        }
        report.torn_bytes = scan.torn_bytes;
        report.clients = agg.watermarks().len();

        let wal_handle = Wal::open(&path, scan.valid_len, bench)
            .map_err(|e| format!("wal {}: {e}", path.display()))?;
        agg.attach_durability(wal_handle, dur);

        let obs = ppp_obs::global();
        let metrics = obs.metrics();
        metrics.inc(ppp_obs::names::WAL_RECOVERIES, &[("bench", bench)]);
        metrics.inc_by(
            ppp_obs::names::WAL_REPLAYED,
            &[("bench", bench)],
            report.replayed,
        );
        metrics.inc_by(
            ppp_obs::names::WAL_TORN_BYTES,
            &[("bench", bench)],
            report.torn_bytes,
        );
        Ok((agg, report))
    }
}
