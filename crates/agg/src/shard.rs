//! The K-way sharded profile aggregator.
//!
//! One [`Aggregator`] owns the merged profile for one module. Incoming
//! deltas are fanned to K shard threads over bounded queues
//! ([`crate::queue::BoundedQueue`]); shard `k` merges exactly the
//! functions with `func_id % K == k`, so every function is owned by one
//! shard and per-function counts are never raced. Merging uses the
//! saturating adds of [`ModuleEdgeProfile::merge`] /
//! [`ModulePathProfile::merge`], which are commutative and associative —
//! so the merged profile is independent of delta arrival order, and a
//! [`Aggregator::snapshot`] (which assembles functions in id order) is
//! **byte-identical** under persist_v2 serialization to a sequential
//! single-worker merge of the same deltas.
//!
//! A snapshot works by pushing a flush gate through every shard queue:
//! FIFO order guarantees every delta submitted *before* the snapshot is
//! merged before the gate opens, without pausing ingestion of later
//! deltas.

use crate::queue::BoundedQueue;
use crate::wal::{self, DurOptions, Wal};
use ppp_ir::wire::{
    decode_frame, split_seq_payload, split_trace_context, Frame, FrameKind, WireError,
    FRAME_HEADER_LEN,
};
use ppp_ir::{
    read_edge_profile_v2, read_path_profile_v2, Module, ModuleEdgeProfile, ModulePathProfile,
};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Aggregator sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct AggConfig {
    /// Number of shard threads (min 1). Functions are owned by shard
    /// `func_id % shards`.
    pub shards: usize,
    /// Per-shard queue capacity; producers block (backpressure) when a
    /// shard falls this far behind.
    pub queue_cap: usize,
}

impl Default for AggConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_cap: 64,
        }
    }
}

/// Why a frame (or profile) was refused. The `class` is a stable label
/// used for the `ppp_agg_frames_rejected_total{reason}` metric.
#[derive(Clone, Debug)]
pub struct IngestError {
    /// Stable machine-readable rejection class.
    pub class: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.class, self.detail)
    }
}

impl std::error::Error for IngestError {}

/// What happened to an accepted frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IngestOutcome {
    /// The frame's delta was merged (or the frame was control traffic).
    Applied,
    /// A sequenced frame at or below the client's watermark: dropped
    /// without merging. This is the idempotent-retry path, not an
    /// error — the client is resending an unacked window.
    Duplicate,
}

/// The ingest "front" of an aggregator: per-client sequence
/// watermarks plus the durability state (WAL handle, checkpoint
/// cadence). Sequenced ingestion holds this lock across
/// dedup → WAL append → fan-out, and [`Aggregator::checkpoint`] holds
/// it across the flush gate, so a checkpoint's `(profiles,
/// watermarks)` pair is always a consistent cut of the seq stream.
pub(crate) struct Front {
    pub(crate) watermarks: BTreeMap<u64, u64>,
    pub(crate) since_checkpoint: u64,
    pub(crate) wal: Option<Wal>,
    pub(crate) dur: Option<DurOptions>,
}

/// What one shard has merged so far (module-shaped; only the shard's
/// own functions ever carry flow).
struct ShardState {
    edges: ModuleEdgeProfile,
    paths: ModulePathProfile,
}

/// One message through a shard queue. Deltas carry their enqueue time
/// so shards can account queue-wait latency.
enum Msg {
    Edges(Arc<ModuleEdgeProfile>, Instant),
    Paths(Arc<ModulePathProfile>, Instant),
    Flush(Arc<Gate>),
}

/// Countdown barrier for snapshot flushes.
struct Gate {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Gate {
    fn new(n: usize) -> Self {
        Self {
            remaining: Mutex::new(n),
            done: Condvar::new(),
        }
    }

    fn arrive(&self) {
        let mut g = self.remaining.lock().expect("gate lock");
        *g -= 1;
        if *g == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut g = self.remaining.lock().expect("gate lock");
        while *g > 0 {
            g = self.done.wait(g).expect("gate lock");
        }
    }
}

/// Outcome of ingesting one byte stream (see
/// [`Aggregator::ingest_stream`]).
#[derive(Clone, Debug, Default)]
pub struct StreamReport {
    /// Frames decoded and accepted, per kind name.
    pub accepted: Vec<(&'static str, u64)>,
    /// Frames decoded but refused (payload damage, shape mismatch, …):
    /// `(frame index, error)`.
    pub rejected: Vec<(usize, IngestError)>,
    /// Wire-level damage that ended decoding: byte offset + error.
    pub wire_error: Option<(usize, WireError)>,
    /// A `Done` frame was seen (orderly end of stream).
    pub saw_done: bool,
    /// Total payload bytes of accepted frames.
    pub bytes_accepted: u64,
    /// Sequenced frames dropped as duplicates (retry replays). Not a
    /// rejection: duplicates are the idempotence contract working.
    pub duplicates: u64,
}

impl StreamReport {
    /// Total accepted frames.
    pub fn frames_accepted(&self) -> u64 {
        self.accepted.iter().map(|(_, n)| n).sum()
    }

    /// `true` when nothing was refused and the stream ended cleanly
    /// with `Done`.
    pub fn clean(&self) -> bool {
        self.rejected.is_empty() && self.wire_error.is_none() && self.saw_done
    }

    fn bump(&mut self, kind: FrameKind) {
        let name = kind.name();
        match self.accepted.iter_mut().find(|(k, _)| *k == name) {
            Some((_, n)) => *n += 1,
            None => self.accepted.push((name, 1)),
        }
    }
}

/// A sharded, concurrent profile aggregator for one module.
///
/// Dropping the aggregator closes the queues and joins the shard
/// threads; any unsnapshotted flow is discarded.
pub struct Aggregator {
    module: Arc<Module>,
    bench: String,
    queues: Vec<Arc<BoundedQueue<Msg>>>,
    states: Vec<Arc<Mutex<ShardState>>>,
    workers: Vec<JoinHandle<()>>,
    obs: ppp_obs::ObsCtx,
    pub(crate) front: Mutex<Front>,
}

impl Aggregator {
    /// Spawns the shard threads for `module`. `bench` labels this
    /// aggregator's metrics.
    pub fn new(bench: &str, module: Arc<Module>, config: AggConfig) -> Self {
        let shards = config.shards.max(1);
        let obs = ppp_obs::global();
        let mut queues = Vec::with_capacity(shards);
        let mut states = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for k in 0..shards {
            let queue = Arc::new(BoundedQueue::new(config.queue_cap));
            let state = Arc::new(Mutex::new(ShardState {
                edges: ModuleEdgeProfile::zeroed(&module),
                paths: ModulePathProfile::with_capacity(module.functions.len()),
            }));
            let worker = {
                let queue = Arc::clone(&queue);
                let state = Arc::clone(&state);
                let obs = obs.clone();
                let bench = bench.to_owned();
                std::thread::Builder::new()
                    .name(format!("agg-shard-{k}"))
                    .spawn(move || shard_loop(k, shards, &queue, &state, &obs, &bench))
                    .expect("spawn shard thread")
            };
            queues.push(queue);
            states.push(state);
            workers.push(worker);
        }
        Self {
            module,
            bench: bench.to_owned(),
            queues,
            states,
            workers,
            obs,
            front: Mutex::new(Front {
                watermarks: BTreeMap::new(),
                since_checkpoint: 0,
                wal: None,
                dur: None,
            }),
        }
    }

    /// The module this aggregator merges profiles for.
    pub fn module(&self) -> &Arc<Module> {
        &self.module
    }

    /// The benchmark name labelling this aggregator's metrics.
    pub fn bench(&self) -> &str {
        &self.bench
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// Submits an edge-profile delta for merging. Blocks (backpressure)
    /// while shard queues are full.
    ///
    /// # Errors
    ///
    /// Refuses deltas whose shape does not match the module — a
    /// mis-shaped profile must never reach a shard accumulator.
    pub fn submit_edges(&self, delta: ModuleEdgeProfile) -> Result<(), IngestError> {
        if !delta.shape_matches(&self.module) {
            return Err(IngestError {
                class: "shape-mismatch",
                detail: format!(
                    "edge delta has {} functions, module has {}",
                    delta.funcs.len(),
                    self.module.functions.len()
                ),
            });
        }
        self.fan_out(Msg::Edges(Arc::new(delta), Instant::now()))
    }

    /// Submits a path-profile delta for merging (same contract as
    /// [`Aggregator::submit_edges`]).
    ///
    /// # Errors
    ///
    /// Refuses deltas with the wrong function count.
    pub fn submit_paths(&self, delta: ModulePathProfile) -> Result<(), IngestError> {
        if delta.funcs.len() != self.module.functions.len() {
            return Err(IngestError {
                class: "shape-mismatch",
                detail: format!(
                    "path delta has {} functions, module has {}",
                    delta.funcs.len(),
                    self.module.functions.len()
                ),
            });
        }
        self.fan_out(Msg::Paths(Arc::new(delta), Instant::now()))
    }

    fn fan_out(&self, msg: Msg) -> Result<(), IngestError> {
        // One Arc'd delta goes to every shard; each merges only the
        // functions it owns.
        for q in &self.queues {
            self.obs.metrics().observe(
                "ppp_agg_queue_depth",
                &[("bench", &self.bench)],
                q.depth() as u64,
            );
            let m = match &msg {
                Msg::Edges(e, at) => Msg::Edges(Arc::clone(e), *at),
                Msg::Paths(p, at) => Msg::Paths(Arc::clone(p), *at),
                Msg::Flush(_) => unreachable!("fan_out is for deltas"),
            };
            if !q.push(m) {
                return Err(IngestError {
                    class: "closed",
                    detail: "aggregator is shutting down".to_owned(),
                });
            }
        }
        Ok(())
    }

    /// Decodes and ingests one wire frame.
    ///
    /// # Errors
    ///
    /// Refuses frames whose payload fails the strict persist_v2 loaders
    /// or whose shape does not match the module, sequenced frames that
    /// jump past the client's watermark (`seq-gap`), and server-side
    /// frame kinds (`Ack`/`Reject`) arriving inbound. `Hello` payloads
    /// are validated by the transport layer; here they are accepted as
    /// opaque.
    pub fn ingest_frame(&self, frame: &Frame) -> Result<IngestOutcome, IngestError> {
        let started = Instant::now();
        let out = self.ingest_frame_inner(frame);
        self.obs.metrics().observe(
            ppp_obs::names::INGEST_MICROS,
            &[("bench", &self.bench)],
            started.elapsed().as_micros() as u64,
        );
        out
    }

    fn ingest_frame_inner(&self, frame: &Frame) -> Result<IngestOutcome, IngestError> {
        match frame.kind {
            FrameKind::Hello | FrameKind::Done => Ok(IngestOutcome::Applied),
            FrameKind::EdgeDelta => {
                let profile = read_edge_profile_v2(&self.module, &frame.payload).map_err(|e| {
                    IngestError {
                        class: "payload",
                        detail: format!("edge delta: {e}"),
                    }
                })?;
                self.submit_edges(profile)?;
                Ok(IngestOutcome::Applied)
            }
            FrameKind::PathDelta => {
                let profile = read_path_profile_v2(&self.module, &frame.payload).map_err(|e| {
                    IngestError {
                        class: "payload",
                        detail: format!("path delta: {e}"),
                    }
                })?;
                self.submit_paths(profile)?;
                Ok(IngestOutcome::Applied)
            }
            FrameKind::SeqEdgeDelta | FrameKind::SeqPathDelta => self.apply_seq(frame, true),
            FrameKind::Ack | FrameKind::Reject | FrameKind::StatsResponse => Err(IngestError {
                class: "protocol",
                detail: format!("{} frames flow server-to-client only", frame.kind),
            }),
            FrameKind::StatsRequest => Err(IngestError {
                class: "protocol",
                detail: "stats-request is answered by the transport tier, \
                         not merged"
                    .to_owned(),
            }),
        }
    }

    /// Core of sequenced ingestion: dedup against the client watermark,
    /// append to the WAL (when `log` — recovery replays with `log =
    /// false`), then fan out, all under the front lock so a concurrent
    /// checkpoint sees a consistent (profiles, watermarks) cut.
    pub(crate) fn apply_seq(&self, frame: &Frame, log: bool) -> Result<IngestOutcome, IngestError> {
        let (client, seq, container) =
            split_seq_payload(&frame.payload).map_err(|e| IngestError {
                class: "payload",
                detail: format!("seq header: {e}"),
            })?;
        if seq == 0 {
            return Err(IngestError {
                class: "payload",
                detail: format!("client {client} sent sequence 0 (sequences start at 1)"),
            });
        }
        // A traced sender prefixes the container with a trace-context
        // block. Strip it before decoding and open the server-side
        // apply span carrying the sender's ids, so the client's send
        // span and this apply stitch into one cross-process trace.
        // Untraced (pre-trace) frames pass through unchanged.
        let (trace, container) = split_trace_context(container);
        let _apply_span = trace.map(|t| {
            let mut s = self
                .obs
                .span_remote("shard.apply", t.trace_id, t.parent_span);
            s.set("client", client);
            s.set("seq", seq);
            s
        });
        // Decode and shape-check the container before touching any
        // durable state: a damaged payload must be refused, not logged.
        let msg = match frame.kind {
            FrameKind::SeqEdgeDelta => {
                let profile =
                    read_edge_profile_v2(&self.module, container).map_err(|e| IngestError {
                        class: "payload",
                        detail: format!("seq edge delta: {e}"),
                    })?;
                if !profile.shape_matches(&self.module) {
                    return Err(IngestError {
                        class: "shape-mismatch",
                        detail: "seq edge delta shape does not match module".to_owned(),
                    });
                }
                Msg::Edges(Arc::new(profile), Instant::now())
            }
            FrameKind::SeqPathDelta => {
                let profile =
                    read_path_profile_v2(&self.module, container).map_err(|e| IngestError {
                        class: "payload",
                        detail: format!("seq path delta: {e}"),
                    })?;
                Msg::Paths(Arc::new(profile), Instant::now())
            }
            other => {
                return Err(IngestError {
                    class: "protocol",
                    detail: format!("{other} is not a sequenced delta"),
                })
            }
        };
        let mut front = self.front.lock().expect("front lock");
        let watermark = front.watermarks.get(&client).copied().unwrap_or(0);
        if seq <= watermark {
            self.obs
                .metrics()
                .inc(ppp_obs::names::AGG_DUPLICATES, &[("bench", &self.bench)]);
            return Ok(IngestOutcome::Duplicate);
        }
        if seq != watermark + 1 {
            return Err(IngestError {
                class: "seq-gap",
                detail: format!(
                    "client {client} jumped from watermark {watermark} to {seq}; \
                     resend the gap first"
                ),
            });
        }
        if log {
            if let Some(wal) = front.wal.as_mut() {
                if let Err(e) = wal.append(&frame.encode()) {
                    // Never apply what was not logged: losing the WAL
                    // loses the durability contract, so the delta is
                    // refused and the client retries (or fails loudly).
                    self.obs.metrics().inc(
                        ppp_obs::names::WAL_ERRORS,
                        &[("bench", &self.bench), ("op", "append")],
                    );
                    return Err(IngestError {
                        class: "wal",
                        detail: format!("wal append failed: {e}"),
                    });
                }
            }
        }
        front.watermarks.insert(client, seq);
        front.since_checkpoint += 1;
        let due = front.dur.as_ref().is_some_and(|d| {
            d.checkpoint_every > 0 && front.since_checkpoint >= d.checkpoint_every
        });
        let fanned = self.fan_out(msg);
        drop(front);
        fanned?;
        if due {
            if let Err(e) = self.checkpoint() {
                self.obs.metrics().inc(
                    ppp_obs::names::WAL_ERRORS,
                    &[("bench", &self.bench), ("op", "checkpoint")],
                );
                self.obs.warn(
                    "agg.checkpoint_failed",
                    &[("error", ppp_obs::Value::from(e))],
                );
            }
        }
        Ok(IngestOutcome::Applied)
    }

    /// The acked sequence watermark for `client` (0 when unseen).
    pub fn watermark(&self, client: u64) -> u64 {
        self.front
            .lock()
            .expect("front lock")
            .watermarks
            .get(&client)
            .copied()
            .unwrap_or(0)
    }

    /// All per-client watermarks.
    pub fn watermarks(&self) -> BTreeMap<u64, u64> {
        self.front.lock().expect("front lock").watermarks.clone()
    }

    /// Deepest shard queue right now — the admission-control signal for
    /// load shedding.
    pub fn max_queue_depth(&self) -> usize {
        self.queues.iter().map(|q| q.depth()).max().unwrap_or(0)
    }

    /// Per-shard queue depths, in shard order — the live-introspection
    /// view served by the `stats` wire frame.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.queues.iter().map(|q| q.depth()).collect()
    }

    /// Sequenced frames applied since the last checkpoint (the WAL's
    /// replay depth if the process died right now). 0 for non-durable
    /// aggregators.
    pub fn frames_since_checkpoint(&self) -> u64 {
        self.front.lock().expect("front lock").since_checkpoint
    }

    /// Writes a checkpoint (profiles + watermarks in one consistent
    /// cut) and truncates the WAL. Returns `false` for a
    /// non-durable aggregator (nothing to do).
    ///
    /// Sequenced ingestion blocks for the duration — the price of the
    /// exact cut that makes recovery byte-identical.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint I/O failures. The WAL is only truncated
    /// after the checkpoint rename lands, so a failure here never
    /// loses logged deltas.
    pub fn checkpoint(&self) -> Result<bool, String> {
        let mut front = self.front.lock().expect("front lock");
        let Some(dur) = front.dur.clone() else {
            return Ok(false);
        };
        let gate = Arc::new(Gate::new(self.queues.len()));
        for q in &self.queues {
            if !q.push(Msg::Flush(Arc::clone(&gate))) {
                gate.arrive();
            }
        }
        gate.wait();
        let profiles = self.shard_profiles();
        wal::write_checkpoint(
            &dur.dir,
            &self.bench,
            &self.module,
            &front.watermarks,
            &profiles,
        )
        .map_err(|e| format!("checkpoint write: {e}"))?;
        if let Some(w) = front.wal.as_mut() {
            w.reset().map_err(|e| format!("wal reset: {e}"))?;
        }
        front.since_checkpoint = 0;
        Ok(true)
    }

    /// Installs the WAL handle and durability options (recovery calls
    /// this after replay so replayed frames are not re-logged).
    pub(crate) fn attach_durability(&self, wal_handle: Wal, dur: DurOptions) {
        let mut front = self.front.lock().expect("front lock");
        front.wal = Some(wal_handle);
        front.dur = Some(dur);
    }

    /// One module-shaped (edge, path) pair per shard, each carrying
    /// only that shard's owned functions. Callers must have flushed
    /// first (see [`Aggregator::checkpoint`]).
    fn shard_profiles(&self) -> Vec<(ModuleEdgeProfile, ModulePathProfile)> {
        let shards = self.queues.len();
        let funcs = self.module.functions.len();
        let mut out = Vec::with_capacity(shards);
        for (k, state) in self.states.iter().enumerate() {
            let st = state.lock().expect("shard state lock");
            let mut edges = ModuleEdgeProfile::zeroed(&self.module);
            let mut paths = ModulePathProfile::with_capacity(funcs);
            for fid in (k..funcs).step_by(shards) {
                edges.funcs[fid] = st.edges.funcs[fid].clone();
                paths.funcs[fid] = st.paths.funcs[fid].clone();
            }
            out.push((edges, paths));
        }
        out
    }

    /// Decodes a concatenated frame stream and ingests every decodable
    /// frame, recording metrics. Damage never panics and never merges:
    /// wire-level damage ends decoding (no resync), payload-level
    /// damage rejects that frame and continues.
    pub fn ingest_stream(&self, bytes: &[u8]) -> StreamReport {
        let mut report = StreamReport::default();
        let mut pos = 0;
        let mut index = 0usize;
        let metrics = self.obs.metrics();
        let bench: &str = &self.bench;
        while pos < bytes.len() {
            match decode_frame(&bytes[pos..]) {
                Ok((frame, used)) => {
                    match self.ingest_frame(&frame) {
                        Ok(IngestOutcome::Applied) => {
                            report.bump(frame.kind);
                            report.bytes_accepted += frame.payload.len() as u64;
                            metrics.inc(
                                "ppp_agg_frames_ingested_total",
                                &[("bench", bench), ("kind", frame.kind.name())],
                            );
                            metrics.inc_by(
                                "ppp_agg_bytes_ingested_total",
                                &[("bench", bench)],
                                (used - FRAME_HEADER_LEN) as u64,
                            );
                            if frame.kind == FrameKind::Done {
                                report.saw_done = true;
                            }
                        }
                        Ok(IngestOutcome::Duplicate) => {
                            report.duplicates += 1;
                        }
                        Err(e) => {
                            metrics.inc(
                                "ppp_agg_frames_rejected_total",
                                &[("bench", bench), ("reason", e.class)],
                            );
                            report.rejected.push((index, e));
                        }
                    }
                    pos += used;
                    index += 1;
                }
                Err(e) => {
                    metrics.inc(
                        "ppp_agg_frames_rejected_total",
                        &[("bench", bench), ("reason", e.class())],
                    );
                    report.wire_error = Some((pos, e));
                    break;
                }
            }
        }
        report
    }

    /// Flushes every shard and assembles the merged profiles.
    ///
    /// Every delta submitted before this call is included; deltas
    /// submitted concurrently may or may not be. Functions are taken
    /// from their owning shard in function-id order, so the result —
    /// and its persist_v2 serialization — is deterministic.
    pub fn snapshot(&self) -> (ModuleEdgeProfile, ModulePathProfile) {
        let started = Instant::now();
        let gate = Arc::new(Gate::new(self.queues.len()));
        for q in &self.queues {
            // A closed queue means shutdown already started; its shard
            // has merged everything it will ever merge, which is
            // exactly the flush guarantee.
            if !q.push(Msg::Flush(Arc::clone(&gate))) {
                gate.arrive();
            }
        }
        gate.wait();
        let shards = self.queues.len();
        let mut edges = ModuleEdgeProfile::zeroed(&self.module);
        let mut paths = ModulePathProfile::with_capacity(self.module.functions.len());
        for (k, state) in self.states.iter().enumerate() {
            let st = state.lock().expect("shard state lock");
            for fid in 0..self.module.functions.len() {
                if fid % shards == k {
                    edges.funcs[fid] = st.edges.funcs[fid].clone();
                    paths.funcs[fid] = st.paths.funcs[fid].clone();
                }
            }
        }
        self.obs.metrics().observe(
            "ppp_agg_snapshot_micros",
            &[("bench", &self.bench)],
            started.elapsed().as_micros() as u64,
        );
        (edges, paths)
    }

    /// Total backpressure stalls across all shard queues.
    pub fn backpressure_stalls(&self) -> u64 {
        self.queues.iter().map(|q| q.stalls()).sum()
    }

    /// Closes the queues and joins the shard threads. Idempotent; also
    /// runs on drop.
    pub fn shutdown(&mut self) {
        for q in &self.queues {
            q.close();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Aggregator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Body of one shard thread: drain the queue, merge owned functions.
fn shard_loop(
    k: usize,
    shards: usize,
    queue: &BoundedQueue<Msg>,
    state: &Mutex<ShardState>,
    obs: &ppp_obs::ObsCtx,
    bench: &str,
) {
    let shard_label = k.to_string();
    while let Some(msg) = queue.pop() {
        match msg {
            Msg::Edges(delta, enqueued) => {
                record_queue_wait(obs, bench, enqueued);
                let started = Instant::now();
                let mut st = state.lock().expect("shard state lock");
                for fid in (k..delta.funcs.len()).step_by(shards) {
                    if !delta.funcs[fid].is_zero() {
                        st.edges.funcs[fid].merge(&delta.funcs[fid]);
                    }
                }
                drop(st);
                record_merge(obs, bench, &shard_label, started);
            }
            Msg::Paths(delta, enqueued) => {
                record_queue_wait(obs, bench, enqueued);
                let started = Instant::now();
                let mut st = state.lock().expect("shard state lock");
                for fid in (k..delta.funcs.len()).step_by(shards) {
                    if !delta.funcs[fid].paths.is_empty() {
                        st.paths.funcs[fid].merge(&delta.funcs[fid]);
                    }
                }
                drop(st);
                record_merge(obs, bench, &shard_label, started);
            }
            Msg::Flush(gate) => gate.arrive(),
        }
    }
}

fn record_queue_wait(obs: &ppp_obs::ObsCtx, bench: &str, enqueued: Instant) {
    obs.metrics().observe(
        ppp_obs::names::QUEUE_WAIT_MICROS,
        &[("bench", bench)],
        enqueued.elapsed().as_micros() as u64,
    );
}

fn record_merge(obs: &ppp_obs::ObsCtx, bench: &str, shard: &str, started: Instant) {
    let metrics = obs.metrics();
    metrics.inc(
        "ppp_agg_deltas_merged_total",
        &[("bench", bench), ("shard", shard)],
    );
    metrics.observe(
        "ppp_agg_merge_micros",
        &[("bench", bench)],
        started.elapsed().as_micros() as u64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::wire::encode_frame;
    use ppp_ir::{
        write_edge_profile_v2, write_path_profile_v2, BlockId, EdgeRef, FunctionBuilder, Reg,
    };

    fn test_module(funcs: usize) -> Arc<Module> {
        let mut m = Module::new();
        for i in 0..funcs {
            let mut b = FunctionBuilder::new(format!("f{i}"), 1);
            let (t, e) = (b.new_block(), b.new_block());
            b.branch(Reg(0), t, e);
            b.switch_to(t);
            b.ret(None);
            b.switch_to(e);
            b.ret(None);
            m.add_function(b.finish());
        }
        Arc::new(m)
    }

    fn delta_for(m: &Module, fid: usize, weight: u64) -> ModuleEdgeProfile {
        let mut d = ModuleEdgeProfile::zeroed(m);
        let p = &mut d.funcs[fid];
        p.set_entries(weight);
        p.set_block(BlockId(0), weight);
        p.set_edge(EdgeRef::new(BlockId(0), 0), weight);
        p.set_block(BlockId(1), weight);
        d
    }

    #[test]
    fn sharded_merge_equals_sequential_merge() {
        let m = test_module(7);
        for shards in [1usize, 2, 3, 8] {
            let agg = Aggregator::new(
                "t",
                Arc::clone(&m),
                AggConfig {
                    shards,
                    queue_cap: 4,
                },
            );
            let mut reference = ModuleEdgeProfile::zeroed(&m);
            for i in 0..50 {
                let d = delta_for(&m, i % 7, (i as u64) + 1);
                reference.merge(&d);
                agg.submit_edges(d).expect("open");
            }
            let (edges, _) = agg.snapshot();
            assert_eq!(edges, reference, "{shards} shards");
            assert_eq!(
                write_edge_profile_v2(&m, &edges),
                write_edge_profile_v2(&m, &reference)
            );
        }
    }

    #[test]
    fn snapshot_includes_everything_submitted_before_it() {
        let m = test_module(3);
        let agg = Aggregator::new("t", Arc::clone(&m), AggConfig::default());
        agg.submit_edges(delta_for(&m, 0, 5)).expect("open");
        let (a, _) = agg.snapshot();
        assert_eq!(a.funcs[0].entries(), 5);
        agg.submit_edges(delta_for(&m, 0, 5)).expect("open");
        let (b, _) = agg.snapshot();
        assert_eq!(b.funcs[0].entries(), 10, "snapshots are cumulative");
    }

    #[test]
    fn shape_mismatch_is_refused() {
        let m = test_module(3);
        let other = test_module(4);
        let agg = Aggregator::new("t", Arc::clone(&m), AggConfig::default());
        let bad = ModuleEdgeProfile::zeroed(&other);
        assert_eq!(agg.submit_edges(bad).unwrap_err().class, "shape-mismatch");
        let badp = ModulePathProfile::with_capacity(4);
        assert_eq!(agg.submit_paths(badp).unwrap_err().class, "shape-mismatch");
    }

    #[test]
    fn stream_ingest_merges_and_reports() {
        let m = test_module(2);
        let agg = Aggregator::new("t", Arc::clone(&m), AggConfig::default());
        let d = delta_for(&m, 1, 9);
        let paths = ModulePathProfile::with_capacity(2);
        let mut stream = Vec::new();
        stream.extend(encode_frame(FrameKind::Hello, b"hi"));
        stream.extend(encode_frame(
            FrameKind::EdgeDelta,
            write_edge_profile_v2(&m, &d).as_bytes(),
        ));
        stream.extend(encode_frame(
            FrameKind::PathDelta,
            write_path_profile_v2(&m, &paths).as_bytes(),
        ));
        stream.extend(encode_frame(FrameKind::Done, b""));
        let report = agg.ingest_stream(&stream);
        assert!(report.clean(), "{report:?}");
        assert_eq!(report.frames_accepted(), 4);
        let (edges, _) = agg.snapshot();
        assert_eq!(edges.funcs[1].entries(), 9);
    }

    #[test]
    fn damaged_stream_rejects_without_merging_or_panicking() {
        let m = test_module(2);
        let agg = Aggregator::new("t", Arc::clone(&m), AggConfig::default());
        let d = delta_for(&m, 0, 3);
        let good = encode_frame(
            FrameKind::EdgeDelta,
            write_edge_profile_v2(&m, &d).as_bytes(),
        );

        // Flip a payload byte: CRC refuses the frame at the wire layer.
        let mut corrupt = good.clone();
        let at = FRAME_HEADER_LEN + 10;
        corrupt[at] ^= 0x20;
        let report = agg.ingest_stream(&corrupt);
        assert!(report.wire_error.is_some());
        assert_eq!(report.frames_accepted(), 0);

        // Truncate mid-payload: typed truncation, nothing merged.
        let report = agg.ingest_stream(&good[..good.len() - 4]);
        assert!(matches!(
            report.wire_error,
            Some((_, WireError::Truncated { .. }))
        ));

        // A frame whose payload passes CRC but fails the strict loader
        // (wrong profile kind) is rejected at the payload layer.
        let paths = ModulePathProfile::with_capacity(2);
        let wrong = encode_frame(
            FrameKind::EdgeDelta,
            write_path_profile_v2(&m, &paths).as_bytes(),
        );
        let report = agg.ingest_stream(&wrong);
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.rejected[0].1.class, "payload");

        let (edges, _) = agg.snapshot();
        assert!(edges.funcs.iter().all(|f| f.is_zero()), "nothing merged");
    }

    #[test]
    fn concurrent_submitters_converge() {
        let m = test_module(5);
        let agg = Arc::new(Aggregator::new(
            "t",
            Arc::clone(&m),
            AggConfig {
                shards: 3,
                queue_cap: 2,
            },
        ));
        let mut reference = ModuleEdgeProfile::zeroed(&m);
        for w in 0..4u64 {
            for i in 0..25u64 {
                reference.merge(&delta_for(&m, ((w * 25 + i) % 5) as usize, i + 1));
            }
        }
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let agg = Arc::clone(&agg);
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..25u64 {
                        let d = delta_for(&m, ((w * 25 + i) % 5) as usize, i + 1);
                        agg.submit_edges(d).expect("open");
                    }
                });
            }
        });
        let (edges, _) = agg.snapshot();
        assert_eq!(edges, reference);
    }
}
